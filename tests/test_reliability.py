"""Electromigration reliability rules."""

import pytest

from repro.errors import DesignRuleError
from repro.layout.layers import Layer
from repro.layout.reliability import (
    assert_reliable,
    check_wire_currents,
    contact_cuts_for_current,
    wire_width_for_current,
)
from repro.units import UM


class TestWireWidth:
    def test_minimum_enforced(self, tech):
        width = wire_width_for_current(tech, Layer.METAL1, 10e-6)
        assert width == pytest.approx(tech.rules.metal1_min_width)

    def test_high_current_widens(self, tech):
        width = wire_width_for_current(tech, Layer.METAL1, 5e-3)
        assert width >= 5 * UM

    def test_metal2_minimum(self, tech):
        width = wire_width_for_current(tech, Layer.METAL2, 0.0)
        assert width == pytest.approx(tech.rules.metal2_min_width)

    def test_result_on_grid(self, tech):
        width = wire_width_for_current(tech, Layer.METAL1, 3.33e-3)
        steps = width / tech.rules.grid
        assert abs(steps - round(steps)) < 1e-6


class TestContactCuts:
    def test_single_cut_small_current(self, tech):
        assert contact_cuts_for_current(tech, 0.1e-3) == 1

    def test_via_rule_differs(self, tech):
        current = 2.5e-3
        assert contact_cuts_for_current(tech, current, via=True) <= (
            contact_cuts_for_current(tech, current, via=False)
        )


class TestChecker:
    def test_clean_wires_pass(self, tech):
        wires = [("net1", Layer.METAL1, 5 * UM)]
        violations = check_wire_currents(tech, wires, {"net1": 1e-3})
        assert violations == []

    def test_violation_detected(self, tech):
        wires = [("net1", Layer.METAL1, 0.9 * UM)]
        violations = check_wire_currents(tech, wires, {"net1": 5e-3})
        assert len(violations) == 1
        assert violations[0].net == "net1"
        assert violations[0].required > violations[0].width

    def test_zero_current_ignored(self, tech):
        wires = [("quiet", Layer.METAL1, 0.1 * UM)]
        assert check_wire_currents(tech, wires, {}) == []

    def test_assert_raises_with_summary(self, tech):
        wires = [("net1", Layer.METAL2, 0.5 * UM)]
        with pytest.raises(DesignRuleError, match="net1"):
            assert_reliable(tech, wires, {"net1": 10e-3})

    def test_violation_message_readable(self, tech):
        wires = [("hot", Layer.METAL1, 1 * UM)]
        violations = check_wire_currents(tech, wires, {"hot": 8e-3})
        message = str(violations[0])
        assert "hot" in message and "metal1" in message


class TestGeneratedLayoutRespectsEm:
    def test_ota_rails_carry_their_currents(self, ota_layout, tech, hand_sized):
        """Every M2 rail/track in the generated OTA passes the EM check."""
        _sizes, currents = hand_sized
        from repro.layout.ota import _net_currents

        net_currents = _net_currents(currents)
        wires = []
        for shape in ota_layout.cell.flattened():
            if shape.layer is Layer.METAL2 and shape.net in net_currents:
                width = min(shape.rect.width, shape.rect.height)
                wires.append((shape.net, Layer.METAL2, width))
        assert wires, "expected routed metal2 wires"
        violations = check_wire_currents(tech, wires, net_currents)
        assert violations == []
