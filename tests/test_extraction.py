"""Geometric extraction (the independent 'Cadence' role)."""

import pytest

from repro.circuit.net import canonical
from repro.layout.extraction import annotate_circuit, extract_cell
from repro.layout.motif import generate_mos_motif
from repro.units import UM


class TestMotifExtraction:
    """Extraction re-derives what the motif generator drew."""

    @pytest.fixture(scope="class")
    def extracted(self, tech):
        motif = generate_mos_motif(
            tech, "n", 40 * UM, 1 * UM, nf=4,
            net_d="fold1", net_g="vc1", net_s="0",
        )
        return motif, extract_cell(motif.cell, tech)

    def test_drain_diffusion_rederived(self, extracted, tech):
        motif, result = extracted
        area, _perimeter = result.diffusion[("fold1", "n")]
        assert area == pytest.approx(motif.geometry.ad, rel=0.01)

    def test_source_diffusion_rederived(self, extracted):
        motif, result = extracted
        area, _perimeter = result.diffusion[("0", "n")]
        assert area == pytest.approx(motif.geometry.as_, rel=0.01)

    def test_polarity_tagged(self, extracted):
        _motif, result = extracted
        assert all(polarity == "n" for _net, polarity in result.diffusion)

    def test_wire_caps_cover_terminals(self, extracted):
        _motif, result = extracted
        assert result.net_wire_cap["fold1"] > 0
        assert result.net_wire_cap["vc1"] > 0

    def test_gate_poly_over_channel_excluded(self, tech):
        """Gate poly over active is channel charge, not wire capacitance:
        the same gate on a wider device must not add proportional cap."""
        narrow = generate_mos_motif(tech, "n", 10 * UM, 1 * UM, nf=1,
                                    net_g="g")
        wide = generate_mos_motif(tech, "n", 60 * UM, 1 * UM, nf=1,
                                  net_g="g")
        cap_narrow = extract_cell(narrow.cell, tech).net_wire_cap["g"]
        cap_wide = extract_cell(wide.cell, tech).net_wire_cap["g"]
        # Channel area grew 6x; wire cap should grow much less.
        assert cap_wide < 3 * cap_narrow

    def test_pmos_wells_extracted(self, tech):
        motif = generate_mos_motif(tech, "p", 40 * UM, 1 * UM, nf=2,
                                   net_b="vdd!")
        result = extract_cell(motif.cell, tech)
        area, perimeter = result.well["vdd!"]
        assert area == pytest.approx(motif.well_rect.area)
        assert perimeter == pytest.approx(motif.well_rect.perimeter)


class TestCouplingExtraction:
    def test_adjacent_gates_couple(self, tech):
        motif = generate_mos_motif(tech, "n", 40 * UM, 1 * UM, nf=4,
                                   net_d="d", net_g="g", net_s="s")
        result = extract_cell(motif.cell, tech)
        # Vertical drain/source metal-1 straps run parallel to gates.
        assert any("g" in pair for pair in result.coupling)

    def test_coupling_symmetric_keys(self, ota_extraction):
        for net_a, net_b in ota_extraction.coupling:
            assert net_a <= net_b

    def test_fold_nodes_couple_in_channel(self, ota_extraction):
        assert ota_extraction.coupling.get(("fold1", "fold2"), 0.0) > 0


class TestOtaExtraction:
    def test_estimate_close_to_extraction(self, ota_layout, ota_extraction):
        """The paper's case-4 premise: the layout tool's estimate tracks
        the extractor within a few percent per net."""
        for net, extracted in ota_extraction.net_wire_cap.items():
            estimated = ota_layout.report.net_capacitance.get(net, 0.0)
            assert estimated == pytest.approx(extracted, rel=0.12), net

    def test_extraction_slightly_pessimistic(self, ota_layout, ota_extraction):
        total_extracted = sum(ota_extraction.net_wire_cap.values())
        total_estimated = sum(ota_layout.report.net_capacitance.values())
        assert total_extracted >= total_estimated * 0.98

    def test_diffusion_on_both_polarities_at_fold(self, ota_extraction):
        assert ("fold1", "n") in ota_extraction.diffusion
        assert ("fold1", "p") in ota_extraction.diffusion


class TestAnnotation:
    def test_devices_get_geometry(self, tech, ota_layout, ota_extraction,
                                  hand_testbench):
        annotated = annotate_circuit(
            hand_testbench.circuit, ota_extraction, tech
        )
        mp1 = annotated.mos("mp1")
        assert mp1.geometry is not None
        assert mp1.geometry.ad > 0

    def test_parasitic_caps_attached(self, tech, ota_extraction,
                                     hand_testbench):
        annotated = annotate_circuit(
            hand_testbench.circuit, ota_extraction, tech
        )
        assert annotated.total_parasitic_on_net("fold1") > 10e-15

    def test_original_untouched(self, tech, ota_extraction, hand_testbench):
        annotate_circuit(hand_testbench.circuit, ota_extraction, tech)
        assert hand_testbench.circuit.total_parasitic_on_net("fold1") == 0.0

    def test_width_weighted_distribution(self, tech, ota_extraction,
                                         hand_testbench):
        """Devices sharing a net split its diffusion by width."""
        annotated = annotate_circuit(
            hand_testbench.circuit, ota_extraction, tech
        )
        mn5 = annotated.mos("mn5")     # drain on fold1
        mn1c = annotated.mos("mn1c")   # source on fold1
        total = mn5.geometry.ad + mn1c.geometry.as_
        extracted_area, _ = ota_extraction.diffusion[("fold1", "n")]
        assert total == pytest.approx(extracted_area, rel=1e-6)

    def test_supply_well_not_grounded_as_signal(self, tech, ota_extraction,
                                                hand_testbench):
        annotated = annotate_circuit(
            hand_testbench.circuit, ota_extraction, tech,
            supply_nets=("vdd!", "0"),
        )
        # The vdd! well cap must not appear as a vdd-to-ground parasitic
        # burden on signal nets; check no capacitor named for the well.
        well_caps = [
            c for c in annotated.capacitors
            if c.parasitic and canonical(c.a) == "vdd!" and c.value > 500e-15
        ]
        assert not well_caps
