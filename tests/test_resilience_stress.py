"""Randomized fault-injection stress for the synthesis runtime.

A Table-1 case-4 synthesis is run under faults whose sites and firing
schedules are drawn from a seeded RNG.  The contract under test is the
resilience guarantee, not any particular number: every run must
*terminate* with either a valid :class:`SynthesisOutcome` or a typed
:class:`ReproError` — never a hang, a bare ``AssertionError``, or an
exception from outside the library's hierarchy.
"""

from __future__ import annotations

import random
import warnings

import pytest

from repro.core.synthesis import LayoutOrientedSynthesizer, SynthesisOutcome
from repro.errors import AnalysisError, LayoutError, ReproError, SizingError
from repro.resilience import faults
from repro.sizing.specs import ParasiticMode

pytestmark = pytest.mark.faults

#: Site pool: each entry draws its firing schedule from the seeded RNG.
_SITE_POOL = [
    ("solve.linear",
     lambda rng: dict(at=rng.randint(1, 40), times=rng.randint(1, 3))),
    ("model.eval",
     lambda rng: dict(action="nan", at=rng.randint(1, 20), times=1)),
    ("engine.compiled",
     lambda rng: dict(error=AnalysisError("injected engine failure"),
                      times=1)),
    ("synthesis.layout",
     lambda rng: dict(index=rng.randint(1, 3),
                      error=LayoutError("injected layout failure"))),
    ("synthesis.sizing",
     lambda rng: dict(index=rng.randint(2, 3),
                      error=SizingError("injected sizing failure"))),
]


def _scenarios(seed: int = 20260805, count: int = 5):
    rng = random.Random(seed)
    drawn = []
    for _ in range(count):
        site, draw = rng.choice(_SITE_POOL)
        drawn.append((site, draw(rng)))
    return drawn


_SCENARIOS = _scenarios()


@pytest.mark.parametrize(
    "site,kwargs",
    _SCENARIOS,
    ids=[f"{i}-{site}" for i, (site, _) in enumerate(_SCENARIOS)],
)
def test_case4_synthesis_survives_injected_faults(tech, specs, site, kwargs):
    synthesizer = LayoutOrientedSynthesizer(tech, max_layout_calls=3)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        with faults.inject(site, **kwargs):
            try:
                outcome = synthesizer.run(
                    specs, ParasiticMode.FULL, generate=False
                )
            except ReproError as error:
                # Typed, diagnosable failure is an acceptable terminal state.
                assert str(error)
                return
    assert isinstance(outcome, SynthesisOutcome)
    assert outcome.sizing is not None
    assert outcome.feedback is not None
    assert outcome.layout_calls >= 1
