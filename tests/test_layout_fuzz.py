"""Property-based fuzzing of the layout stack.

Random CAIRO programs (devices, pairs, mirrors, capacitors, resistors in
random row arrangements) must always produce DRC-clean geometry whose
extraction is self-consistent — correctness by construction, tested by
construction.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.layout.cairo import CairoProgram
from repro.layout.drc import DrcChecker
from repro.layout.extraction import extract_cell
from repro.units import PF, UM

widths = st.floats(min_value=6e-6, max_value=120e-6)
lengths = st.floats(min_value=0.6e-6, max_value=3e-6)
folds = st.sampled_from([1, 2, 4, 6])
currents = st.floats(min_value=0.0, max_value=2e-3)
polarity = st.sampled_from(["n", "p"])


@st.composite
def random_program_spec(draw):
    """A random well-formed program description."""
    modules = []
    count = draw(st.integers(min_value=1, max_value=4))
    for index in range(count):
        kind = draw(st.sampled_from(["device", "pair", "cap", "res"]))
        modules.append((kind, index, draw(st.integers(0, 10**6))))
    rows = draw(st.integers(min_value=1, max_value=min(3, count)))
    assignment = [
        draw(st.integers(min_value=0, max_value=rows - 1))
        for _ in modules
    ]
    # Ensure every row is non-empty.
    for row in range(rows):
        if row not in assignment:
            assignment[row % len(assignment)] = row
    seeds = {
        "w": draw(widths), "l": draw(lengths), "nf": draw(folds),
        "i": draw(currents), "pol": draw(polarity),
    }
    return modules, rows, assignment, seeds


def build_program(tech, spec):
    modules, rows, assignment, seeds = spec
    program = CairoProgram(tech, "fuzz")
    for kind, index, _salt in modules:
        name = f"{kind}{index}"
        if kind == "device":
            program.device(
                name, seeds["pol"], seeds["w"], seeds["l"],
                nets=(f"d{index}", f"g{index}", f"s{index}",
                      "vdd!" if seeds["pol"] == "p" else "0"),
                nf=seeds["nf"], current=seeds["i"],
            )
        elif kind == "pair":
            program.pair(
                name, seeds["pol"], seeds["w"], seeds["l"],
                nf=max(2, seeds["nf"]),
                names=(f"{name}_a", f"{name}_b"),
                drains=(f"da{index}", f"db{index}"),
                gates=(f"ga{index}", f"gb{index}"),
                source=f"tail{index}",
                bulk="vdd!" if seeds["pol"] == "p" else "0",
                current_per_side=seeds["i"] / 2.0,
            )
        elif kind == "cap":
            program.capacitor(name, 0.5 * PF, f"ct{index}", f"cb{index}")
        else:
            program.resistor(name, 5e3, f"ra{index}", f"rb{index}")
    row_members = {row: [] for row in range(rows)}
    for (kind, index, _salt), row in zip(modules, assignment):
        row_members[row].append(f"{kind}{index}")
    for row in range(rows):
        program.row(*row_members[row])
    return program


class TestRandomPrograms:
    @given(spec=random_program_spec())
    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_generated_layouts_are_drc_clean(self, tech, spec):
        program = build_program(tech, spec)
        try:
            cell, _report = program.generate()
        except Exception as error:
            # Infeasible geometry (e.g. a fold count too high for the
            # width) must fail loudly and cleanly, not draw garbage.
            from repro.errors import ReproError

            assert isinstance(error, ReproError)
            return
        DrcChecker(tech).assert_clean(cell)

    @given(spec=random_program_spec())
    @settings(
        max_examples=15, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_estimate_matches_generate_report(self, tech, spec):
        """Parasitic-calculation mode and generation mode agree."""
        program_a = build_program(tech, spec)
        program_b = build_program(tech, spec)
        try:
            estimate = program_a.calculate_parasitics()
            _cell, generated = program_b.generate()
        except Exception:
            return
        assert estimate.net_capacitance.keys() == (
            generated.net_capacitance.keys()
        )
        for net, value in estimate.net_capacitance.items():
            assert generated.net_capacitance[net] == pytest.approx(value)

    @given(spec=random_program_spec())
    @settings(
        max_examples=15, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_extraction_covers_estimated_nets(self, tech, spec):
        """Every net the estimator reports is visible to the extractor."""
        program = build_program(tech, spec)
        try:
            cell, report = program.generate()
        except Exception:
            return
        extracted = extract_cell(cell, tech)
        for net, value in report.net_capacitance.items():
            if value > 1e-16:
                assert extracted.net_wire_cap.get(net, 0.0) > 0.0, net
