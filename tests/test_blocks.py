"""Building-block sizing routines."""

import math

import pytest

from repro.errors import SizingError
from repro.sizing.blocks import (
    cascode_bias_chain,
    computed_ranges,
    distribute_headroom,
    input_pair_current,
    tail_overdrive_limit,
)


class TestDistributeHeadroom:
    def test_budget_fully_used(self):
        shares = distribute_headroom(0.51, stages=2, margin=0.05)
        assert sum(shares) == pytest.approx(0.46)

    def test_rail_device_gets_more(self):
        first, second = distribute_headroom(0.51, stages=2)
        assert first > second

    def test_single_stage(self):
        (share,) = distribute_headroom(0.4, stages=1, margin=0.05)
        assert share == pytest.approx(0.35)

    def test_too_tight_rejected(self):
        with pytest.raises(SizingError):
            distribute_headroom(0.15, stages=2)

    def test_zero_stages_rejected(self):
        with pytest.raises(SizingError):
            distribute_headroom(0.5, stages=0)


class TestInputPairCurrent:
    def test_square_law_identity(self, pmos_model):
        """Level 1: Id = gm * veff / 2 exactly."""
        gm, veff = 1.2e-3, 0.2
        current = input_pair_current(pmos_model, gm, veff, 1e-6)
        assert current == pytest.approx(gm * veff / 2.0, rel=1e-12)

    def test_level3_needs_more_current(self, tech):
        from repro.mos import make_model

        level3 = make_model(tech.pmos, 3)
        level1 = make_model(tech.pmos, 1)
        gm, veff = 1.2e-3, 0.3
        assert input_pair_current(level3, gm, veff, 1e-6) > input_pair_current(
            level1, gm, veff, 1e-6
        )

    def test_consistency_with_forward_model(self, pmos_model, tech):
        """Sizing the width for the returned current reproduces gm."""
        from repro.mos import width_for_current

        gm, veff, length = 1.0e-3, 0.25, 1e-6
        current = input_pair_current(pmos_model, gm, veff, length)
        width = width_for_current(pmos_model, current, length, veff, vds=0.6)
        op = pmos_model.bias_saturated(width=width, length=length,
                                       veff=veff, vds=0.6)
        # width_for_current folds the CLM factor into the inversion, so the
        # drawn device delivers the target gm exactly at this bias.
        assert op.gm == pytest.approx(gm, rel=1e-6)

    def test_invalid_inputs_rejected(self, pmos_model):
        with pytest.raises(SizingError):
            input_pair_current(pmos_model, 0.0, 0.2, 1e-6)


class TestTailOverdrive:
    def test_headroom_budget(self, pmos_model):
        veff = tail_overdrive_limit(pmos_model, 3.3, 1.84, 0.18)
        vth = pmos_model.threshold(0.0)
        assert 1.84 + veff + vth + 0.18 <= 3.3

    def test_ceiling_applied(self, pmos_model):
        veff = tail_overdrive_limit(pmos_model, 5.0, 1.0, 0.18, ceiling=0.35)
        assert veff == pytest.approx(0.35)

    def test_impossible_icmr_rejected(self, pmos_model):
        with pytest.raises(SizingError):
            tail_overdrive_limit(pmos_model, 3.3, 2.6, 0.18)


@pytest.fixture(scope="module")
def bias_point(nmos_model, pmos_model):
    veff = {
        "input": 0.18, "tail": 0.3, "sink": 0.25,
        "ncas": 0.2, "mirror": 0.3, "pcas": 0.2,
    }
    return veff, cascode_bias_chain(nmos_model, pmos_model, 3.3, veff, 1.2)


class TestBiasChain:
    def test_fold_above_sink_saturation(self, bias_point):
        veff, bias = bias_point
        assert bias.nodes["fold"] > veff["sink"]

    def test_vbn_biases_sink_at_overdrive(self, bias_point, nmos_model):
        veff, bias = bias_point
        assert bias.biases["vbn"] == pytest.approx(
            nmos_model.threshold(0.0) + veff["sink"]
        )

    def test_vc1_accounts_for_body_effect(self, bias_point, nmos_model):
        veff, bias = bias_point
        fold = bias.nodes["fold"]
        expected = fold + nmos_model.threshold(fold) + veff["ncas"]
        assert bias.biases["vc1"] == pytest.approx(expected)

    def test_tail_fixed_point_consistent(self, bias_point, pmos_model):
        veff, bias = bias_point
        tail = bias.nodes["tail"]
        vsb = 3.3 - tail
        assert tail == pytest.approx(
            1.2 + pmos_model.threshold(vsb) + veff["input"], abs=1e-6
        )

    def test_missing_overdrive_rejected(self, nmos_model, pmos_model):
        with pytest.raises(SizingError):
            cascode_bias_chain(nmos_model, pmos_model, 3.3, {"input": 0.2}, 1.2)


class TestComputedRanges:
    def test_ranges_consistent(self, bias_point, nmos_model, pmos_model):
        veff, bias = bias_point
        icmr, out_range = computed_ranges(
            nmos_model, pmos_model, 3.3, veff, bias
        )
        assert icmr[0] < icmr[1]
        assert 0.0 < out_range[0] < out_range[1] < 3.3

    def test_output_low_from_nmos_stack(self, bias_point, nmos_model,
                                        pmos_model):
        veff, bias = bias_point
        _icmr, out_range = computed_ranges(
            nmos_model, pmos_model, 3.3, veff, bias
        )
        assert out_range[0] == pytest.approx(
            veff["sink"] + veff["ncas"] + 0.1
        )
