"""Layout cells: shapes, pins, instances, flattening."""

import pytest

from repro.errors import LayoutError
from repro.layout.cell import Cell
from repro.layout.geometry import Orientation, Rect
from repro.layout.layers import Layer


@pytest.fixture
def leaf():
    cell = Cell("leaf")
    cell.add_shape(Layer.ACTIVE, Rect(0, 0, 2e-6, 1e-6))
    cell.add_shape(Layer.METAL1, Rect(0, 0, 2e-6, 0.5e-6), net="a")
    cell.add_pin("a", Layer.METAL1, Rect(0, 0, 0.5e-6, 0.5e-6))
    return cell


class TestCellBasics:
    def test_nameless_rejected(self):
        with pytest.raises(LayoutError):
            Cell("")

    def test_bbox(self, leaf):
        assert leaf.bbox() == Rect(0, 0, 2e-6, 1e-6)

    def test_dimensions(self, leaf):
        assert leaf.width == pytest.approx(2e-6)
        assert leaf.height == pytest.approx(1e-6)
        assert leaf.area == pytest.approx(2e-12)

    def test_shapes_on_layer(self, leaf):
        assert len(leaf.shapes_on(Layer.METAL1)) == 2

    def test_pin_lookup(self, leaf):
        assert leaf.pin_rect("a") == Rect(0, 0, 0.5e-6, 0.5e-6)

    def test_missing_pin_raises(self, leaf):
        with pytest.raises(LayoutError):
            leaf.pin_rect("b")

    def test_pin_layer_filter(self, leaf):
        with pytest.raises(LayoutError):
            leaf.pin_rect("a", Layer.METAL2)

    def test_nets(self, leaf):
        assert leaf.nets() == ["a"]

    def test_layer_area(self, leaf):
        assert leaf.layer_area(Layer.ACTIVE) == pytest.approx(2e-12)
        assert leaf.layer_area(Layer.METAL1, net="a") == pytest.approx(
            1e-12 + 0.25e-12
        )


class TestInstances:
    def test_translation(self, leaf):
        parent = Cell("parent")
        parent.add_instance(leaf, dx=10e-6, dy=0.0)
        box = parent.bbox()
        assert box.x0 == pytest.approx(10e-6)
        assert box.x1 == pytest.approx(12e-6)

    def test_flatten_applies_transform(self, leaf):
        parent = Cell("parent")
        parent.add_instance(leaf, dx=0.0, dy=0.0, orientation=Orientation.MY)
        shapes = list(parent.flattened())
        box = parent.bbox()
        assert box.x1 == pytest.approx(0.0)
        assert box.x0 == pytest.approx(-2e-6)
        assert len(shapes) == 3

    def test_net_remap(self, leaf):
        parent = Cell("parent")
        parent.add_instance(leaf, net_map={"a": "global_a"})
        nets = parent.nets()
        assert nets == ["global_a"]

    def test_nested_hierarchy(self, leaf):
        mid = Cell("mid")
        mid.add_instance(leaf, dx=1e-6)
        top = Cell("top")
        top.add_instance(mid, dy=2e-6)
        shapes = list(top.flattened())
        assert len(shapes) == 3
        metal = [s for s in shapes if s.layer is Layer.METAL1 and s.net == "a"]
        assert metal[0].rect.x0 == pytest.approx(1e-6)
        assert metal[0].rect.y0 == pytest.approx(2e-6)

    def test_flatten_into_cell(self, leaf):
        parent = Cell("parent")
        parent.add_instance(leaf, dx=5e-6)
        flat = parent.flatten_into()
        assert len(flat.shapes) == 3
        assert not flat.instances

    def test_instance_count_in_repr(self, leaf):
        parent = Cell("parent")
        parent.add_instance(leaf)
        assert "1 instances" in repr(parent)
