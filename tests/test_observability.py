"""Observability layer: metrics registry, trace profiler, run monitor.

Pins the PR-8 contracts: Prometheus-text exposition shape, histogram
bucket-boundary semantics (``v <= le``), snapshot/delta/merge algebra,
the cross-process metrics graft riding the trace payload, exact
self-time partition on serial traces, flamegraph-collapsed output,
monitor progress/ETA arithmetic plus its localhost HTTP endpoints, the
telemetry-preserving shard/task recovery fallback, bit-identical batch
fingerprints with the monitor on and off, bench history bookkeeping,
and the near-zero disabled fast path of every new hook.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro import telemetry
from repro.telemetry import Tracer, metrics, monitor, trace_run
from repro.telemetry.metrics import (
    COUNT_BUCKETS,
    SECONDS_BUCKETS,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.profile import (
    collapsed_stacks,
    format_collapsed,
    format_profile_table,
    node_self_seconds,
    profile_records,
    profile_spans,
)


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture(autouse=True)
def _clean_registry():
    """Each test sees a disarmed, empty process registry."""
    metrics.registry().reset()
    yield
    metrics.registry().reset()


# -- Histogram --------------------------------------------------------------


class TestHistogram:
    def test_value_on_boundary_lands_in_that_bucket(self):
        h = Histogram((1.0, 2.0, 5.0))
        h.observe(1.0)
        assert h.counts[0] == 1  # v <= le: Prometheus bucket semantics
        h.observe(1.0000001)
        assert h.counts[1] == 1
        h.observe(5.0)
        assert h.counts[2] == 1

    def test_overflow_goes_to_inf_bucket(self):
        h = Histogram((1.0, 2.0))
        h.observe(99.0)
        assert h.counts[2] == 1
        assert h.count == 1
        assert h.cumulative() == [0, 0]  # +Inf rides on count, not here

    def test_cumulative_is_monotone_and_ends_at_count(self):
        h = Histogram((0.5, 1.0, 2.0))
        for v in (0.1, 0.6, 0.7, 1.5, 3.0):
            h.observe(v)
        cum = h.cumulative()
        assert cum == sorted(cum) == [1, 3, 4]
        assert cum[-1] + h.counts[-1] == h.count == 5

    def test_sum_tracks_observations(self):
        h = Histogram((1.0,))
        h.observe(0.25)
        h.observe(0.75)
        assert h.sum == pytest.approx(1.0)

    def test_quantile_interpolates(self):
        h = Histogram((1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 3.5):
            h.observe(v)
        assert 0.0 < h.quantile(0.5) <= 2.0
        assert h.quantile(0.95) <= 4.0

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram((2.0, 1.0))

    def test_merge_payload_roundtrip(self):
        a = Histogram((1.0, 2.0))
        b = Histogram((1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(9.0)
        a.merge_payload(b.to_payload())
        assert a.count == 3
        assert a.sum == pytest.approx(11.0)

    def test_merge_rejects_mismatched_bounds(self):
        a = Histogram((1.0, 2.0))
        b = Histogram((1.0, 3.0))
        with pytest.raises(ValueError):
            a.merge_payload(b.to_payload())


# -- Registry ---------------------------------------------------------------


class TestRegistry:
    def test_counters_gauges_histograms(self):
        r = MetricsRegistry()
        r.inc("solver.solves", 2)
        r.inc("solver.solves")
        r.set_gauge("solver.last_residual", 0.5)
        r.observe("layout.call.seconds", 0.02)
        assert r.counter("solver.solves") == 3
        assert r.gauge("solver.last_residual") == 0.5
        assert r.histogram("layout.call.seconds").count == 1

    def test_default_buckets_by_name(self):
        r = MetricsRegistry()
        r.observe("newton.iterations", 4)
        r.observe("mc.shard.seconds", 0.1)
        assert r.histogram("newton.iterations").bounds == COUNT_BUCKETS
        assert r.histogram("mc.shard.seconds").bounds == SECONDS_BUCKETS

    def test_snapshot_delta_subtracts(self):
        r = MetricsRegistry()
        r.inc("a", 5)
        r.observe("h", 1.0, buckets=(2.0,))
        base = r.snapshot()
        r.inc("a", 2)
        r.observe("h", 3.0, buckets=(2.0,))
        r.set_gauge("g", 7.0)
        delta = r.delta_since(base)
        assert delta["counters"] == {"a": 2}
        assert delta["gauges"] == {"g": 7.0}
        (h,) = [h for name, h in delta["histograms"].items() if name == "h"]
        assert h["count"] == 1  # only the post-snapshot observation
        assert h["sum"] == pytest.approx(3.0)

    def test_merge_adds_a_delta(self):
        r = MetricsRegistry()
        r.inc("a", 1)
        other = MetricsRegistry()
        other.inc("a", 3)
        other.observe("h", 0.5, buckets=(1.0,))
        r.merge(other.snapshot())
        assert r.counter("a") == 4
        assert r.histogram("h").count == 1

    def test_absorb_counters_fallback(self):
        r = MetricsRegistry()
        r.absorb_counters({"solver.solves": 4.0})
        assert r.counter("solver.solves") == 4.0

    def test_hooks_no_op_when_disabled(self):
        assert not metrics.enabled()
        metrics.inc("x")
        metrics.set_gauge("g", 1.0)
        metrics.observe("h", 1.0)
        snap = metrics.registry().snapshot()
        assert not snap["counters"] and not snap["histograms"]

    def test_collecting_arms_and_disarms(self):
        with metrics.collecting(fresh=True) as r:
            assert metrics.enabled()
            metrics.inc("x", 2)
            assert r.counter("x") == 2
        assert not metrics.enabled()


# -- Prometheus exposition --------------------------------------------------


class TestPrometheusExposition:
    def test_golden_exposition(self):
        r = MetricsRegistry()
        r.inc("solver.solves", 3)
        r.set_gauge("solver.last_residual", 0.5)
        r.observe("newton.iterations", 2, buckets=(1.0, 2.0, 5.0))
        r.observe("newton.iterations", 9, buckets=(1.0, 2.0, 5.0))
        assert r.to_prometheus() == "\n".join([
            "# TYPE repro_solver_solves_total counter",
            "repro_solver_solves_total 3",
            "# TYPE repro_solver_last_residual gauge",
            "repro_solver_last_residual 0.5",
            "# TYPE repro_newton_iterations histogram",
            'repro_newton_iterations_bucket{le="1"} 0',
            'repro_newton_iterations_bucket{le="2"} 1',
            'repro_newton_iterations_bucket{le="5"} 1',
            'repro_newton_iterations_bucket{le="+Inf"} 2',
            "repro_newton_iterations_sum 11",
            "repro_newton_iterations_count 2",
        ]) + "\n"

    def test_names_are_sanitized(self):
        r = MetricsRegistry()
        r.inc("layout.calls.estimate-fast", 1)
        text = r.to_prometheus()
        assert "repro_layout_calls_estimate_fast_total 1" in text
        assert "estimate-fast" not in text

    def test_histogram_buckets_are_cumulative(self):
        r = MetricsRegistry()
        for v in (0.5, 1.5, 1.5, 10.0):
            r.observe("h", v, buckets=(1.0, 2.0))
        lines = [
            line for line in r.to_prometheus().splitlines()
            if "_bucket" in line
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts)
        assert counts[-1] == 4  # +Inf equals the total count


# -- Cross-process metrics (traced_worker + absorb) -------------------------


class TestTracedWorker:
    def test_payload_carries_scoped_delta(self):
        metrics.registry().inc("pre.existing", 9)
        with telemetry.traced_worker("mc.shard", index=0) as tracer:
            tracer.count("mc.samples_measured", 4)
            metrics.observe("mc.shard.seconds", 0.5)
        payload = tracer.trace_payload()
        delta = payload["metrics"]
        # The delta is scoped to the block: nothing pre-existing leaks in.
        assert delta["counters"] == {"mc.samples_measured": 4}
        assert "mc.shard.seconds" in delta["histograms"]
        assert not metrics.enabled()  # disarmed on exit

    def test_absorb_merges_worker_metrics(self):
        with telemetry.traced_worker("w") as worker:
            worker.count("solver.solves", 2)
            metrics.observe("h", 1.0, buckets=(2.0,))
        payload = worker.trace_payload()
        metrics.registry().reset()
        parent = Tracer()
        with metrics.collecting(fresh=True) as r, parent.activate():
            with parent.span("run"):
                parent.absorb(payload, t_offset=0.1)
            assert r.counter("solver.solves") == 2
            assert r.histogram("h").count == 1

    def test_absorb_merge_metrics_false_skips_registry(self):
        with telemetry.traced_worker("w") as worker:
            worker.count("solver.solves", 2)
        payload = worker.trace_payload()
        metrics.registry().reset()
        parent = Tracer()
        with metrics.collecting(fresh=True) as r, parent.activate():
            with parent.span("run"):
                parent.absorb(payload, merge_metrics=False)
            assert r.counter("solver.solves") == 0
        # The tracer-side aggregates still merged.
        assert parent.counters["solver.solves"] == 2.0

    def test_absorb_falls_back_to_counter_totals(self):
        # A payload without a metrics key (plain worker tracer) still
        # lands its counter totals in the registry.
        worker = Tracer()
        with worker.activate(), worker.span("w"):
            worker.count("solver.solves", 3)
        payload = worker.trace_payload()
        assert "metrics" not in payload
        parent = Tracer()
        with metrics.collecting(fresh=True) as r, parent.activate():
            with parent.span("run"):
                parent.absorb(payload)
            assert r.counter("solver.solves") == 3


# -- Profiler ---------------------------------------------------------------


def _synthetic_trace():
    """root(10 s) -> a(4 s) -> c(1 s); root -> b(2 s); a twice elsewhere."""
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    with tracer.activate():
        with tracer.span("root"):
            with tracer.span("a"):
                with tracer.span("c"):
                    clock.advance(1.0)
                clock.advance(3.0)
            with tracer.span("b"):
                clock.advance(2.0)
            clock.advance(4.0)
    return tracer


class TestProfiler:
    def test_self_times_partition_root_wall_time(self):
        tracer = _synthetic_trace()
        rows = profile_records(tracer.records)
        by_name = {row.name: row for row in rows}
        assert by_name["root"].total_s == pytest.approx(10.0)
        assert by_name["root"].self_s == pytest.approx(4.0)
        assert by_name["a"].self_s == pytest.approx(3.0)
        assert by_name["b"].self_s == pytest.approx(2.0)
        assert by_name["c"].self_s == pytest.approx(1.0)
        # The acceptance identity: self-times partition the wall clock.
        assert sum(row.self_s for row in rows) == pytest.approx(10.0)

    def test_rows_ranked_by_self_time(self):
        rows = profile_records(_synthetic_trace().records)
        self_times = [row.self_s for row in rows]
        assert self_times == sorted(self_times, reverse=True)

    def test_percentiles_over_repeated_spans(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.activate(), tracer.span("root"):
            for dur in (1.0, 2.0, 3.0, 4.0):
                with tracer.span("unit"):
                    clock.advance(dur)
        (unit,) = [
            r for r in profile_records(tracer.records) if r.name == "unit"
        ]
        assert unit.count == 4
        assert unit.p50_s == pytest.approx(2.5)
        assert unit.p95_s == pytest.approx(3.85)

    def test_collapsed_output_is_line_parseable(self):
        tracer = _synthetic_trace()
        roots = tracer.summary().roots
        stacks = collapsed_stacks(roots)
        text = format_collapsed(stacks)
        for line in text.splitlines():
            path, count = line.rsplit(" ", 1)
            assert path and ";".join(path.split(";")) == path
            assert int(count) > 0
        assert stacks["root"] == 4_000_000  # integer microseconds
        assert stacks["root;a;c"] == 1_000_000

    def test_collapsed_drops_non_positive_self(self):
        # Absorbed parallel subtrees overlap: parent self-time goes
        # negative; the profile row keeps it, the flamegraph drops it.
        clock = FakeClock()
        parent = Tracer(clock=clock)
        with parent.activate(), parent.span("pool"):
            for _ in range(2):
                worker = Tracer(clock=FakeClock())
                with worker.activate(), worker.span("work"):
                    worker._clock.advance(0.8)  # type: ignore[attr-defined]
                parent.absorb(worker.trace_payload())
            clock.advance(1.0)
        rows = profile_records(parent.records)
        pool = next(r for r in rows if r.name == "pool")
        assert pool.self_s == pytest.approx(-0.6)
        stacks = collapsed_stacks(parent.summary().roots)
        assert "pool" not in stacks
        assert stacks["pool;work"] == 1_600_000

    def test_table_formatting(self):
        rows = profile_records(_synthetic_trace().records)
        table = format_profile_table(rows, top=2, wall_s=10.0)
        lines = table.splitlines()
        assert lines[0].split() == [
            "span", "calls", "total", "(s)", "self", "(s)",
            "self%", "p50", "(ms)", "p95", "(ms)",
        ]
        assert len(lines) == 4  # header + rule + top 2 rows
        assert "40.0%" in table  # root self share

    def test_node_self_seconds(self):
        (root,) = _synthetic_trace().summary().roots
        assert node_self_seconds(root) == pytest.approx(4.0)
        assert profile_spans([root])[0].name == "root"


# -- Monitor ----------------------------------------------------------------


class TestMonitor:
    def test_inactive_hooks_are_no_ops(self):
        assert not monitor.active()
        assert monitor.current() is None
        monitor.declare("task", 4)
        monitor.unit_complete("task")

    def test_progress_and_eta(self):
        clock = FakeClock()
        m = monitor.RunMonitor(label="t", interval=0, clock=clock)
        m.start()
        try:
            assert monitor.active() and monitor.current() is m
            monitor.declare("task", 4)
            clock.advance(2.0)
            monitor.unit_complete("task", label="case.none", seconds=2.0)
            status = m.status()
            assert status["done"] == 1 and status["total"] == 4
            assert status["last_unit"] == "case.none"
            assert status["last_unit_s"] == 2.0
            # 1 live unit in 2 s -> 0.5 units/s -> 3 remaining = 6 s.
            assert status["eta_s"] == pytest.approx(6.0)
        finally:
            m.stop(final_line=False)
        assert not monitor.active()

    def test_restored_units_do_not_skew_eta(self):
        clock = FakeClock()
        m = monitor.RunMonitor(label="t", interval=0, clock=clock)
        with m:
            monitor.declare("task", 4)
            monitor.unit_complete("task", restored=True)
            monitor.unit_complete("task", restored=True)
            clock.advance(3.0)
            monitor.unit_complete("task", seconds=3.0)
            status = m.status()
            assert status["done"] == 3
            assert status["restored"] == 2
            # Rate counts only the 1 live unit: 1 left at 3 s/unit.
            assert status["eta_s"] == pytest.approx(3.0)

    def test_first_declared_kind_is_the_headline(self):
        m = monitor.RunMonitor(label="t", interval=0, clock=FakeClock())
        with m:
            monitor.declare("task", 2)
            monitor.declare("round", 6)  # nested units: tracked, not headline
            monitor.unit_complete("round")
            status = m.status()
            assert status["kind"] == "task"
            assert status["done"] == 0
            assert status["units"]["round"]["done"] == 1

    def test_format_line_mentions_progress(self):
        clock = FakeClock()
        m = monitor.RunMonitor(label="table1", interval=0, clock=clock)
        with m:
            monitor.declare("task", 8)
            monitor.unit_complete("task", restored=True)
            clock.advance(1.0)
            monitor.unit_complete("task", label="case.full", seconds=1.0)
            line = m.format_line()
        assert line.startswith("monitor[table1]:")
        assert "2/8 task" in line
        assert "1 restored" in line
        assert "last case.full" in line

    def test_http_status_and_metrics_endpoints(self):
        with metrics.collecting(fresh=True):
            metrics.inc("solver.solves", 5)
            m = monitor.RunMonitor(label="t", interval=0, port=0)
            with m:
                monitor.declare("task", 2)
                monitor.unit_complete("task", label="a", seconds=0.5)
                base = f"http://127.0.0.1:{m.port}"
                status = json.loads(
                    urllib.request.urlopen(f"{base}/status").read()
                )
                assert status["done"] == 1 and status["total"] == 2
                response = urllib.request.urlopen(f"{base}/metrics")
                assert response.headers["Content-Type"].startswith(
                    "text/plain; version=0.0.4"
                )
                text = response.read().decode()
                assert "repro_solver_solves_total 5" in text
                with pytest.raises(urllib.error.HTTPError):
                    urllib.request.urlopen(f"{base}/nope")

    def test_heartbeat_thread_emits_lines(self):
        import io

        stream = io.StringIO()
        m = monitor.RunMonitor(label="hb", interval=0.01, stream=stream)
        with m:
            monitor.declare("task", 1)
            time.sleep(0.08)
        lines = [l for l in stream.getvalue().splitlines() if l]
        assert lines
        assert all(line.startswith("monitor[hb]:") for line in lines)


# -- Telemetry-preserving recovery fallback (the satellite fix) -------------


@pytest.mark.faults
class TestRecoveryTelemetry:
    def test_mc_in_process_fallback_keeps_shard_telemetry(
        self, hand_testbench
    ):
        from repro.analysis.montecarlo import run_monte_carlo
        from repro.resilience import faults

        with faults.inject("mc.worker", index=0, times=3):
            with trace_run("mc") as tracer:
                result = run_monte_carlo(
                    hand_testbench, runs=8, seed=7, workers=2,
                    max_shard_retries=1,
                )
        # The injected crash kills the whole pool, so the innocent shard
        # fails collaterally and both recover in-process.
        assert result.shards[0].status == "in-process"
        summary = tracer.summary()
        # Before the fix the recovered shards' telemetry was dropped:
        # totals now match a clean parallel (and serial) run.
        assert summary.counter("mc.samples_measured") == 8.0
        assert summary.span_count("mc.shard") == 2
        assert summary.span_count("mc.shard_fallback") == 2
        # Each recovered shard's spans nest under its fallback marker.
        for fallback in summary.spans("mc.shard_fallback"):
            assert [c.name for c in fallback.children] == ["mc.shard"]

    def test_batch_in_process_fallback_keeps_task_telemetry(self, specs):
        from repro.core.batch import BatchTask, run_batch
        from repro.resilience import faults
        from repro.sizing.specs import ParasiticMode

        tasks = [
            BatchTask(kind="case", technology="0.6um", specs=specs,
                      mode=mode.name)
            for mode in (ParasiticMode.NONE, ParasiticMode.SINGLE_FOLD)
        ]
        with faults.inject("batch.worker", index=0, times=3):
            with trace_run("batch") as tracer:
                result = run_batch(tasks, jobs=2, max_retries=1)
        # Pool death is collateral: both tasks come home in-process.
        assert result.statuses[0].status == "in-process"
        summary = tracer.summary()
        assert summary.span_count("batch.task") == 2
        assert summary.span_count("batch.task_fallback") == 2
        assert summary.counter("solver.solves") > 0


# -- Monitor determinism (fingerprints on vs off) ---------------------------


class TestMonitorDeterminism:
    def test_batch_fingerprints_identical_with_monitor_on(self, specs):
        from repro.core.batch import BatchTask, run_batch
        from repro.sizing.specs import ParasiticMode

        tasks = [
            BatchTask(kind="case", technology="0.6um", specs=specs,
                      mode=mode.name)
            for mode in (ParasiticMode.NONE, ParasiticMode.SINGLE_FOLD)
        ]
        plain = run_batch(tasks, jobs=1)
        with metrics.collecting(fresh=True):
            m = monitor.RunMonitor(label="t", interval=0, port=0)
            with m, trace_run("batch"):
                monitored = run_batch(tasks, jobs=2)
            status = m.status()
        assert status["done"] == 2 and status["total"] == 2
        assert [r.fingerprint() for r in monitored.results] == [
            r.fingerprint() for r in plain.results
        ]
        # The run populated the registry through the tracer mirror.
        assert metrics.registry().counter("batch.tasks") == 2


# -- Bench history and regression-gate skew ---------------------------------


class TestBenchHistory:
    def _entry(self, p50):
        return {"compiled_s": p50, "compiled_p50_s": p50, "legacy_s": 1.0,
                "speedup": 1.0}

    def test_append_and_load_roundtrip(self, tmp_path):
        from repro.perf import append_history, load_history

        path = str(tmp_path / "history.jsonl")
        append_history({"dc_solve": self._entry(0.1)}, path, timestamp=1.0)
        append_history({"dc_solve": self._entry(0.2)}, path, timestamp=2.0)
        entries = load_history(path)
        assert [e["timestamp"] for e in entries] == [1.0, 2.0]
        assert entries[-1]["results"]["dc_solve"]["compiled_p50_s"] == 0.2

    def test_torn_tail_line_is_dropped(self, tmp_path):
        from repro.perf import append_history, load_history

        path = str(tmp_path / "history.jsonl")
        append_history({"a": self._entry(0.1)}, path, timestamp=1.0)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": "repro-bench-hist')  # killed mid-append
        assert len(load_history(path)) == 1

    def test_foreign_schema_rejected(self, tmp_path):
        from repro.perf import load_history

        path = tmp_path / "history.jsonl"
        path.write_text('{"schema": "wat", "results": {}}\n')
        with pytest.raises(ValueError, match="schema"):
            load_history(str(path))

    def test_run_over_run_regression_flagged(self, tmp_path):
        from repro.perf import append_history, check_history_regressions

        path = str(tmp_path / "history.jsonl")
        assert check_history_regressions({"a": self._entry(0.1)}, path) == {}
        append_history({"a": self._entry(0.1)}, path, timestamp=1.0)
        flagged = check_history_regressions(
            {"a": self._entry(0.2)}, path, threshold=0.25
        )
        assert flagged["a"]["ratio"] == pytest.approx(2.0)
        assert check_history_regressions(
            {"a": self._entry(0.11)}, path, threshold=0.25
        ) == {}

    def test_check_regressions_warns_on_one_sided_entries(self):
        from repro.perf import BenchSkewWarning, check_regressions

        skipped: list = []
        with pytest.warns(BenchSkewWarning, match="renamed_bench"):
            regressions = check_regressions(
                {"shared": self._entry(0.1), "new_bench": self._entry(0.1)},
                {"shared": self._entry(0.1),
                 "renamed_bench": self._entry(0.1)},
                skipped=skipped,
            )
        assert regressions == {}
        assert skipped == ["new_bench", "renamed_bench"]

    def test_check_regressions_silent_when_records_match(self):
        import warnings as warnings_mod

        from repro.perf import check_regressions

        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            check_regressions(
                {"a": self._entry(0.1)}, {"a": self._entry(0.1)}
            )


# -- Disabled-path overhead -------------------------------------------------


class TestDisabledOverhead:
    def test_metrics_gate_is_cheap(self):
        """The hot-site metrics gate must stay a near-free int test."""
        assert not metrics.enabled()
        n = 200_000
        start = time.perf_counter()
        for _ in range(n):
            metrics.enabled()
        elapsed = time.perf_counter() - start
        # Same budget as the tracer gate in test_telemetry.py: ~30 ns
        # per call in practice, bounded 25x up for loaded CI machines.
        assert elapsed / n < 750e-9

    def test_disabled_observe_hook_is_cheap(self):
        assert not metrics.enabled()
        n = 200_000
        start = time.perf_counter()
        for _ in range(n):
            metrics.observe("layout.call.seconds", 0.01)
        elapsed = time.perf_counter() - start
        assert elapsed / n < 750e-9
        assert not metrics.registry().snapshot()["histograms"]

    def test_disabled_monitor_hook_is_cheap(self):
        assert not monitor.active()
        n = 200_000
        start = time.perf_counter()
        for _ in range(n):
            monitor.unit_complete("task")
        elapsed = time.perf_counter() - start
        assert elapsed / n < 750e-9
