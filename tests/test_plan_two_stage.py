"""The two-stage Miller OTA design plan."""

import pytest

from repro.sizing.plans.two_stage import TwoStagePlan
from repro.sizing.specs import OtaSpecs, ParasiticMode
from repro.units import PF


@pytest.fixture(scope="module")
def two_stage_specs():
    return OtaSpecs(
        vdd=3.3, gbw=30e6, phase_margin=60.0, cload=2 * PF,
        input_cm_range=(1.0, 2.0), output_range=(0.4, 2.9),
    )


@pytest.fixture(scope="module")
def sized(tech, two_stage_specs):
    return TwoStagePlan(tech).size(two_stage_specs, ParasiticMode.NONE)


class TestSizing:
    def test_gbw_on_target(self, sized, two_stage_specs):
        assert sized.predicted.gbw == pytest.approx(
            two_stage_specs.gbw, rel=0.03
        )

    def test_phase_margin_met(self, sized, two_stage_specs):
        assert sized.predicted.phase_margin_deg >= (
            two_stage_specs.phase_margin - 1.5
        )

    def test_two_stage_gain_exceeds_single(self, sized):
        assert sized.predicted.dc_gain_db > 60.0

    def test_output_stage_carries_more_current(self, sized):
        assert sized.currents["m6"] > sized.currents["m1"]

    def test_matched_input_pair(self, sized):
        assert sized.sizes["m1"] == sized.sizes["m2"]

    def test_mirror_matched(self, sized):
        assert sized.sizes["m3"] == sized.sizes["m4"]

    def test_all_saturated(self, sized):
        assert sized.predicted.all_saturated()


class TestParasiticModes:
    def test_single_fold_mode_runs(self, tech, two_stage_specs):
        result = TwoStagePlan(tech).size(
            two_stage_specs, ParasiticMode.SINGLE_FOLD
        )
        assert result.predicted.gbw == pytest.approx(
            two_stage_specs.gbw, rel=0.03
        )

    def test_diffusion_raises_current_demand(self, tech, two_stage_specs,
                                             sized):
        loaded = TwoStagePlan(tech).size(
            two_stage_specs, ParasiticMode.SINGLE_FOLD
        )
        # Diffusion at the Miller/output nodes costs some extra current.
        assert loaded.currents["m1"] >= sized.currents["m1"] * 0.95


class TestAddingTopologiesIsCheap:
    """The paper's hierarchy claim: a new plan is one subclass."""

    def test_plan_reuses_building_blocks(self):
        import inspect

        from repro.sizing.plans import two_stage

        source = inspect.getsource(two_stage)
        assert "input_pair_current" in source
        assert "distribute_headroom" in source

    def test_plan_registers_like_any_other(self, tech):
        from repro.sizing.comdiac import Comdiac

        tool = Comdiac(tech)
        assert "two_stage" in tool.topologies
