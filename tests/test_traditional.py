"""The traditional flow baseline (paper Figure 1a)."""

import pytest

from repro.core.traditional import TraditionalFlow


@pytest.fixture(scope="module")
def traditional_outcome(tech, specs):
    return TraditionalFlow(tech, max_rounds=6).run(specs)


class TestTraditionalFlow:
    def test_eventually_converges(self, traditional_outcome):
        assert traditional_outcome.converged

    def test_needs_at_least_one_full_round(self, traditional_outcome):
        assert traditional_outcome.full_layout_rounds >= 1

    def test_final_extracted_meets_specs(self, traditional_outcome, specs):
        extracted = traditional_outcome.extracted
        assert extracted.gbw >= specs.gbw * (1 - 0.021)
        assert extracted.phase_margin_deg >= specs.phase_margin - 1.1

    def test_iterations_record_shortfalls(self, traditional_outcome):
        first = traditional_outcome.iterations[0]
        assert first.extracted is not None
        # The first blind round typically misses at least one spec
        # (otherwise there would be nothing to iterate on).
        if traditional_outcome.full_layout_rounds > 1:
            assert first.gbw_shortfall > 0.02 or first.pm_shortfall > 1.0

    def test_layout_kept_from_final_round(self, traditional_outcome):
        assert traditional_outcome.layout.cell is not None


class TestFlowComparison:
    """The paper's argument: the coupled flow avoids the expensive
    generate-extract-resize rounds."""

    def test_layout_oriented_needs_no_full_rounds(self, synthesis_outcome,
                                                  traditional_outcome):
        # The layout-oriented loop runs only estimate-mode calls before
        # final generation; the traditional flow pays one full
        # generate+extract per round.
        assert synthesis_outcome.layout_calls <= 6
        assert traditional_outcome.full_layout_rounds >= 1

    def test_both_meet_specs_eventually(self, synthesis_outcome,
                                        traditional_outcome, specs):
        assert synthesis_outcome.sizing.predicted.gbw >= specs.gbw * 0.98
        assert traditional_outcome.extracted.gbw >= specs.gbw * 0.975
