"""SVG and GDSII exporters."""

import struct

import pytest

from repro.layout.cell import Cell
from repro.layout.gds import DB_UNIT, cell_to_gds, write_gds
from repro.layout.geometry import Rect
from repro.layout.layers import GDS_LAYER_NUMBERS, Layer
from repro.layout.svg import cell_to_svg, write_svg
from repro.units import UM


@pytest.fixture(scope="module")
def sample_cell():
    cell = Cell("sample")
    cell.add_shape(Layer.ACTIVE, Rect(0, 0, 4 * UM, 2 * UM))
    cell.add_shape(Layer.POLY, Rect(1 * UM, -0.5 * UM, 2 * UM, 2.5 * UM), net="g")
    cell.add_shape(Layer.METAL1, Rect(0, 0, 4 * UM, 0.9 * UM), net="d")
    return cell


class TestSvg:
    def test_valid_document_structure(self, sample_cell):
        svg = cell_to_svg(sample_cell)
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")

    def test_one_rect_per_shape(self, sample_cell):
        svg = cell_to_svg(sample_cell)
        # Background rect plus three shape rects.
        assert svg.count("<rect") == 4

    def test_net_in_tooltip(self, sample_cell):
        svg = cell_to_svg(sample_cell)
        assert "net=g" in svg

    def test_layer_filter(self, sample_cell):
        svg = cell_to_svg(sample_cell, layers=[Layer.POLY])
        assert svg.count("<rect") == 2  # background + poly

    def test_scale_changes_size(self, sample_cell):
        small = cell_to_svg(sample_cell, scale=5.0)
        large = cell_to_svg(sample_cell, scale=20.0)
        assert len(small) != len(large) or small != large

    def test_write_to_file(self, sample_cell, tmp_path):
        path = tmp_path / "cell.svg"
        write_svg(sample_cell, str(path))
        assert path.read_text().startswith("<svg")

    def test_ota_renders(self, ota_layout):
        svg = cell_to_svg(ota_layout.cell, scale=2.0)
        assert svg.count("<rect") > 1000


class TestGds:
    def test_header_record(self, sample_cell):
        stream = cell_to_gds(sample_cell)
        length, record, data = struct.unpack(">HBB", stream[:4])
        assert record == 0x00  # HEADER
        version = struct.unpack(">h", stream[4:6])[0]
        assert version == 600

    def test_ends_with_endlib(self, sample_cell):
        stream = cell_to_gds(sample_cell)
        _length, record, _data = struct.unpack(">HBB", stream[-4:])
        assert record == 0x04  # ENDLIB

    def test_record_framing_consistent(self, sample_cell):
        """Walk the stream record by record; lengths must tile exactly."""
        stream = cell_to_gds(sample_cell)
        offset = 0
        records = []
        while offset < len(stream):
            length, record, _data = struct.unpack(
                ">HBB", stream[offset:offset + 4]
            )
            assert length >= 4
            records.append(record)
            offset += length
        assert offset == len(stream)
        assert records[0] == 0x00
        assert 0x08 in records  # at least one BOUNDARY

    def test_boundary_per_shape(self, sample_cell):
        stream = cell_to_gds(sample_cell)
        offset = 0
        boundaries = 0
        while offset < len(stream):
            length, record, _data = struct.unpack(
                ">HBB", stream[offset:offset + 4]
            )
            if record == 0x08:
                boundaries += 1
            offset += length
        assert boundaries == 3

    def test_coordinates_in_database_units(self, sample_cell):
        stream = cell_to_gds(sample_cell)
        offset = 0
        xy_payloads = []
        while offset < len(stream):
            length, record, _data = struct.unpack(
                ">HBB", stream[offset:offset + 4]
            )
            if record == 0x10:  # XY
                xy_payloads.append(stream[offset + 4:offset + length])
            offset += length
        coordinates = struct.unpack(">10i", xy_payloads[0])
        assert max(coordinates) == round(4 * UM / DB_UNIT)

    def test_layer_numbers_match_table(self, sample_cell):
        stream = cell_to_gds(sample_cell)
        offset = 0
        layers = set()
        while offset < len(stream):
            length, record, _data = struct.unpack(
                ">HBB", stream[offset:offset + 4]
            )
            if record == 0x0D:
                layers.add(struct.unpack(">h", stream[offset + 4:offset + 6])[0])
            offset += length
        expected = {
            GDS_LAYER_NUMBERS[Layer.ACTIVE][0],
            GDS_LAYER_NUMBERS[Layer.POLY][0],
            GDS_LAYER_NUMBERS[Layer.METAL1][0],
        }
        assert layers == expected

    def test_write_to_file(self, sample_cell, tmp_path):
        path = tmp_path / "cell.gds"
        write_gds(sample_cell, str(path))
        assert path.stat().st_size > 100

    def test_deterministic_output(self, sample_cell):
        assert cell_to_gds(sample_cell) == cell_to_gds(sample_cell)

    def test_real8_unit_value(self):
        from repro.layout.gds import _real8

        # 1.0 in excess-64 base-16: exponent 65, mantissa 1/16.
        encoded = _real8(1.0)
        assert encoded[0] == 65
        assert encoded[1] == 0x10


class TestGdsReader:
    """Round-trips through the GDSII reader."""

    def test_motif_round_trip_geometry(self, tech):
        from repro.layout.gds import cell_to_gds, gds_to_cell
        from repro.layout.motif import generate_mos_motif

        motif = generate_mos_motif(tech, "n", 40 * UM, 1 * UM, nf=4)
        back = gds_to_cell(cell_to_gds(motif.cell))
        original = sorted(
            (s.layer.value, round(s.rect.x0 * 1e9), round(s.rect.y0 * 1e9),
             round(s.rect.x1 * 1e9), round(s.rect.y1 * 1e9))
            for s in motif.cell.flattened()
        )
        reread = sorted(
            (s.layer.value, round(s.rect.x0 * 1e9), round(s.rect.y0 * 1e9),
             round(s.rect.x1 * 1e9), round(s.rect.y1 * 1e9))
            for s in back.flattened()
        )
        assert original == reread

    def test_structure_name_recovered(self, sample_cell):
        from repro.layout.gds import cell_to_gds, gds_to_cell

        back = gds_to_cell(cell_to_gds(sample_cell))
        assert back.name == "sample"

    def test_file_round_trip(self, sample_cell, tmp_path):
        from repro.layout.gds import read_gds, write_gds

        path = tmp_path / "cell.gds"
        write_gds(sample_cell, str(path))
        back = read_gds(str(path))
        assert len(back.shapes) == len(sample_cell.shapes)

    def test_ota_round_trip_drc_clean(self, ota_layout, tech):
        """The drawn OTA survives a GDS round trip geometrically (nets
        are not stored in GDS, so only the geometric checks apply)."""
        from repro.layout.drc import DrcChecker
        from repro.layout.gds import cell_to_gds, gds_to_cell

        back = gds_to_cell(cell_to_gds(ota_layout.cell))
        checker = DrcChecker(tech)
        geometric = [
            v for v in checker.check(back)
            if v.kind in ("min_width", "cut_size")
        ]
        assert geometric == []

    def test_truncated_stream_rejected(self, sample_cell):
        from repro.layout.gds import cell_to_gds, gds_to_cell

        stream = cell_to_gds(sample_cell)
        with pytest.raises(ValueError):
            gds_to_cell(stream[:-3])
