"""Design rules: scaling, snapping, derived dimensions."""

import dataclasses

import pytest
from hypothesis import given, strategies as st

from repro.errors import TechnologyError
from repro.technology.rules import DesignRules, scalable_rules
from repro.units import UM


@pytest.fixture(scope="module")
def rules():
    return scalable_rules(0.6 * UM)


class TestScalableRules:
    def test_poly_min_width_equals_feature(self, rules):
        assert rules.poly_min_width == pytest.approx(0.6 * UM)

    def test_rules_scale_with_feature(self):
        small = scalable_rules(0.35 * UM)
        large = scalable_rules(0.70 * UM)
        ratio = large.contact_size / small.contact_size
        assert ratio == pytest.approx(2.0)

    def test_validation_passes(self, rules):
        rules.validate()

    def test_nonpositive_rule_rejected(self, rules):
        broken = dataclasses.replace(rules, contact_size=0.0)
        with pytest.raises(TechnologyError):
            broken.validate()

    def test_coarse_grid_rejected(self, rules):
        broken = dataclasses.replace(rules, grid=rules.poly_min_width * 2)
        with pytest.raises(TechnologyError):
            broken.validate()


class TestSnapping:
    def test_snap_to_grid(self, rules):
        snapped = rules.snap(rules.grid * 3.4)
        assert snapped == pytest.approx(rules.grid * 3)

    def test_snap_rounds_up_at_half(self, rules):
        snapped = rules.snap(rules.grid * 3.6)
        assert snapped == pytest.approx(rules.grid * 4)

    def test_snap_up_never_decreases(self, rules):
        value = rules.grid * 3.01
        assert rules.snap_up(value) >= value - 1e-18

    def test_snap_up_idempotent_on_grid(self, rules):
        on_grid = rules.grid * 7
        assert rules.snap_up(on_grid) == pytest.approx(on_grid)

    @given(st.floats(min_value=1e-8, max_value=1e-4))
    def test_snap_error_below_half_grid(self, value):
        rules = scalable_rules(0.6 * UM)
        assert abs(rules.snap(value) - value) <= rules.grid / 2 + 1e-15

    @given(st.floats(min_value=1e-8, max_value=1e-4))
    def test_snap_up_is_on_grid(self, value):
        rules = scalable_rules(0.6 * UM)
        snapped = rules.snap_up(value)
        steps = snapped / rules.grid
        assert abs(steps - round(steps)) < 1e-6


class TestDerivedDimensions:
    def test_contacted_strip_holds_contact(self, rules):
        assert rules.contacted_diffusion_width >= (
            rules.contact_size + 2 * rules.contact_poly_spacing - 1e-15
        )

    def test_end_strip_at_contacted_width(self, rules):
        """End strips are drawn at the full contacted width: the slack
        beyond the bare contact enclosure keeps terminal metal columns at
        legal pitch at minimum gate length (found by DRC fuzzing)."""
        assert rules.end_diffusion_width == pytest.approx(
            rules.contacted_diffusion_width
        )
        assert rules.end_diffusion_width >= (
            rules.contact_poly_spacing
            + rules.contact_size
            + rules.contact_active_enclosure
        )

    def test_gate_pitch_sum(self, rules):
        expected = rules.poly_min_width + rules.contacted_diffusion_width
        assert rules.gate_pitch == pytest.approx(expected)
