"""Analog stack generation (paper Figure 3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LayoutError
from repro.layout.stack import DUMMY, StackPlan, generate_stack


class TestFigure3Mirror:
    """The paper's 1:3:6 current mirror."""

    @pytest.fixture(scope="class")
    def plan(self):
        return generate_stack({"m1": 1, "m2": 3, "m3": 6})

    def test_finger_census(self, plan):
        assert len(plan.positions("m1")) == 1
        assert len(plan.positions("m2")) == 3
        assert len(plan.positions("m3")) == 6

    def test_dummies_at_both_ends(self, plan):
        assert plan.fingers[0].is_dummy
        assert plan.fingers[-1].is_dummy

    def test_largest_device_centred(self, plan):
        """Paper: all transistors centred around the stack midpoint."""
        assert abs(plan.centroid_offset("m3")) < 0.3

    def test_m1_as_central_as_possible(self, plan):
        # 10 active fingers have a half-integer centre: |offset| >= 0.5.
        assert abs(plan.centroid_offset("m1")) == pytest.approx(0.5)

    def test_even_device_current_directions_cancel(self, plan):
        assert plan.orientation_balance("m3") == 0

    def test_odd_devices_one_residual(self, plan):
        assert abs(plan.orientation_balance("m1")) == 1
        assert abs(plan.orientation_balance("m2")) == 1

    def test_few_breaks(self, plan):
        assert len(plan.breaks) <= 2

    def test_pattern_shows_arrows(self, plan):
        pattern = plan.pattern()
        assert ">" in pattern and "<" in pattern
        assert pattern.count("D") == 2

    def test_strip_nets_share_source(self, plan):
        nets = plan.strip_nets(
            {"m1": ("d1", "s"), "m2": ("d2", "s"), "m3": ("d3", "s")}
        )
        assert nets.count("s") >= 4
        assert "d1" in nets and "d2" in nets and "d3" in nets


class TestMatchedPair:
    def test_common_centroid_abba(self):
        plan = generate_stack({"a": 2, "b": 2})
        active = [f.device for f in plan.fingers if not f.is_dummy]
        assert active in (["a", "b", "b", "a"], ["b", "a", "a", "b"])

    def test_pair_perfectly_balanced(self):
        plan = generate_stack({"a": 2, "b": 2})
        assert plan.centroid_offset("a") == 0.0
        assert plan.centroid_offset("b") == 0.0
        assert plan.orientation_balance("a") == 0
        assert plan.orientation_balance("b") == 0

    def test_larger_pair_no_breaks(self):
        plan = generate_stack({"a": 4, "b": 4})
        assert plan.breaks == []
        assert plan.centroid_offset("a") == 0.0

    def test_single_device_all_drains_internal(self):
        plan = generate_stack({"x": 8}, with_dummies=False)
        assert plan.breaks == []
        nets = plan.strip_nets({"x": ("d", "s")})
        assert nets[0] == "s" and nets[-1] == "s"
        assert nets.count("d") == 4


class TestHeuristicPath:
    """Large stacks route through the constructive heuristic."""

    def test_large_pair_balanced(self):
        plan = generate_stack({"a": 16, "b": 16})
        assert plan.centroid_offset("a") == 0.0
        assert plan.centroid_offset("b") == 0.0
        assert plan.breaks == []

    def test_large_mirror_with_odd(self):
        plan = generate_stack({"m1": 3, "m2": 12, "m3": 12})
        assert len(plan.positions("m1")) == 3
        assert abs(plan.centroid_offset("m2")) <= 1.0
        assert abs(plan.centroid_offset("m3")) <= 1.0

    def test_heuristic_matches_search_on_small_input(self):
        from repro.layout.stack import _symmetric_sequence, _assign_orientations

        sequence = _symmetric_sequence({"a": 4, "b": 4}, None)
        _fingers, breaks = _assign_orientations(sequence)
        assert breaks == []


class TestStripNets:
    def test_dummy_adopts_neighbour(self):
        plan = generate_stack({"a": 2}, with_dummies=True)
        nets = plan.strip_nets({"a": ("d", "s")}, dummy_net="gnd")
        # Outer strips belong to the dummies, inner ones to the device.
        assert nets[0] == "gnd"
        assert nets[-1] == "gnd"
        assert "d" in nets

    def test_incompatible_sharing_detected(self):
        plan = StackPlan(
            fingers=generate_stack({"a": 1, "b": 1}, with_dummies=False).fingers,
            units={"a": 1, "b": 1},
            breaks=[],  # deliberately drop the required break
        )
        from repro.layout.stack import StackFinger

        plan.fingers = [
            StackFinger("a", drain_left=False),
            StackFinger("b", drain_left=True),
        ]
        with pytest.raises(LayoutError):
            plan.strip_nets({"a": ("da", "s"), "b": ("db", "s")})


class TestValidation:
    def test_empty_units_rejected(self):
        with pytest.raises(LayoutError):
            generate_stack({})

    def test_nonpositive_units_rejected(self):
        with pytest.raises(LayoutError):
            generate_stack({"a": 0})

    def test_reserved_name_rejected(self):
        with pytest.raises(LayoutError):
            generate_stack({DUMMY: 2})

    def test_unknown_device_centroid_raises(self):
        plan = generate_stack({"a": 2})
        with pytest.raises(LayoutError):
            plan.centroid_offset("zz")

    def test_bad_center_device_rejected(self):
        with pytest.raises(LayoutError):
            generate_stack({"a": 2, "b": 40}, center_device="a")


class TestProperties:
    @given(
        units=st.dictionaries(
            st.sampled_from(["a", "b", "c"]),
            st.integers(min_value=1, max_value=6),
            min_size=1,
            max_size=3,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_all_fingers_accounted(self, units):
        plan = generate_stack(units)
        for device, count in units.items():
            assert len(plan.positions(device)) == count
        dummies = [f for f in plan.fingers if f.is_dummy]
        assert len(dummies) == 2

    @given(
        units=st.dictionaries(
            st.sampled_from(["a", "b"]),
            st.integers(min_value=1, max_value=8),
            min_size=1,
            max_size=2,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_strip_nets_consistent_with_breaks(self, units):
        plan = generate_stack(units)
        terminals = {d: (f"d_{d}", "s") for d in units}
        nets = plan.strip_nets(terminals)
        assert len(nets) == len(plan.fingers) + 1 + len(plan.breaks)

    @given(count=st.integers(min_value=1, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_even_devices_perfectly_oriented(self, count):
        plan = generate_stack({"a": 2 * count})
        assert plan.orientation_balance("a") == 0
