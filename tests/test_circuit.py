"""Netlist container and elements."""

import pytest

from repro.circuit import Circuit, Capacitor, Mos, Resistor
from repro.circuit.net import canonical, is_ground
from repro.errors import CircuitError
from repro.units import UM


@pytest.fixture
def simple_circuit(tech):
    circuit = Circuit("simple")
    circuit.add_vsource("vdd", "vdd!", "0", dc=3.3)
    circuit.add_resistor("r1", "vdd!", "out", 10e3)
    circuit.add_mos(
        "m1", d="out", g="in", s="0", b="0",
        params=tech.nmos, w=20 * UM, l=1 * UM,
    )
    circuit.add_vsource("vin", "in", "0", dc=1.0)
    return circuit


class TestNetNames:
    @pytest.mark.parametrize("name", ["0", "gnd", "GND", "vss", "ground"])
    def test_ground_aliases(self, name):
        assert is_ground(name)

    def test_signal_not_ground(self):
        assert not is_ground("vout")

    def test_canonical_ground(self):
        assert canonical("GND") == "0"

    def test_canonical_signal_unchanged(self):
        assert canonical("vout") == "vout"


class TestCircuitContainer:
    def test_element_count(self, simple_circuit):
        assert len(simple_circuit) == 4

    def test_duplicate_name_rejected(self, simple_circuit):
        with pytest.raises(CircuitError):
            simple_circuit.add_resistor("r1", "a", "b", 1.0)

    def test_lookup(self, simple_circuit):
        assert isinstance(simple_circuit.element("r1"), Resistor)

    def test_lookup_missing_raises(self, simple_circuit):
        with pytest.raises(CircuitError):
            simple_circuit.element("nope")

    def test_mos_lookup_type_checked(self, simple_circuit):
        assert simple_circuit.mos("m1").w == pytest.approx(20 * UM)
        with pytest.raises(CircuitError):
            simple_circuit.mos("r1")

    def test_nets_ground_first(self, simple_circuit):
        nets = simple_circuit.nets
        assert nets[0] == "0"
        assert set(nets) == {"0", "vdd!", "out", "in"}

    def test_elements_on_net(self, simple_circuit):
        names = {e.name for e in simple_circuit.elements_on_net("out")}
        assert names == {"r1", "m1"}

    def test_remove(self, simple_circuit):
        simple_circuit.remove("r1")
        assert "r1" not in simple_circuit

    def test_remove_missing_raises(self, simple_circuit):
        with pytest.raises(CircuitError):
            simple_circuit.remove("nope")

    def test_validate_passes(self, simple_circuit):
        simple_circuit.validate()

    def test_empty_circuit_invalid(self):
        with pytest.raises(CircuitError):
            Circuit("empty").validate()

    def test_no_ground_invalid(self, tech):
        circuit = Circuit("floating")
        circuit.add_resistor("r1", "a", "b", 1.0)
        with pytest.raises(CircuitError):
            circuit.validate()


class TestClone:
    def test_clone_is_independent(self, simple_circuit):
        clone = simple_circuit.clone("copy")
        clone.mos("m1").w = 99 * UM
        assert simple_circuit.mos("m1").w == pytest.approx(20 * UM)

    def test_clone_name(self, simple_circuit):
        assert simple_circuit.clone("copy").name == "copy"


class TestParasitics:
    def test_attach_creates_capacitor(self, simple_circuit):
        cap = simple_circuit.attach_parasitic_cap("out", "0", 1e-15)
        assert cap.parasitic
        assert cap.value == pytest.approx(1e-15)

    def test_attach_accumulates(self, simple_circuit):
        simple_circuit.attach_parasitic_cap("out", "0", 1e-15)
        simple_circuit.attach_parasitic_cap("out", "0", 2e-15)
        assert simple_circuit.total_parasitic_on_net("out") == pytest.approx(3e-15)

    def test_strip_parasitics(self, simple_circuit):
        simple_circuit.attach_parasitic_cap("out", "0", 1e-15)
        simple_circuit.add_capacitor("cload", "out", "0", 1e-12)
        removed = simple_circuit.strip_parasitics()
        assert removed == 1
        assert "cload" in simple_circuit

    def test_negative_parasitic_rejected(self, simple_circuit):
        with pytest.raises(CircuitError):
            simple_circuit.attach_parasitic_cap("out", "0", -1e-15)


class TestElementValidation:
    def test_negative_resistor_rejected(self):
        with pytest.raises(CircuitError):
            Circuit("c").add_resistor("r", "a", "0", -1.0)

    def test_negative_capacitor_rejected(self):
        with pytest.raises(CircuitError):
            Circuit("c").add_capacitor("c1", "a", "0", -1.0)

    def test_mos_without_params_rejected(self):
        with pytest.raises(CircuitError):
            Circuit("c").add(Mos(name="m", d="d", g="g", s="s", b="b",
                                 params=None, w=1e-6, l=1e-6))

    def test_mos_zero_width_rejected(self, tech):
        with pytest.raises(CircuitError):
            Circuit("c").add_mos(
                "m", "d", "g", "s", "b", params=tech.nmos, w=0.0, l=1e-6
            )

    def test_resized_copy(self, tech):
        mos = Mos(name="m", d="d", g="g", s="s", b="b",
                  params=tech.nmos, w=10 * UM, l=1 * UM)
        resized = mos.resized(w=20 * UM)
        assert resized.w == pytest.approx(20 * UM)
        assert mos.w == pytest.approx(10 * UM)
        assert resized.l == mos.l

    def test_summary_mentions_counts(self, simple_circuit):
        summary = simple_circuit.summary()
        assert "1 MOS" in summary
