"""Process corners and corner-based verification."""

import pytest

from repro.errors import TechnologyError
from repro.technology.corners import CORNERS, all_corners, corner


class TestCornerDerivation:
    def test_tt_is_nominal(self, tech):
        typical = corner(tech, "tt")
        assert typical.nmos.vto == pytest.approx(tech.nmos.vto)
        assert typical.pmos.u0 == pytest.approx(tech.pmos.u0)

    def test_ss_raises_thresholds(self, tech):
        slow = corner(tech, "ss")
        assert slow.nmos.vto > tech.nmos.vto
        assert abs(slow.pmos.vto) > abs(tech.pmos.vto)

    def test_ff_lowers_thresholds_and_boosts_mobility(self, tech):
        fast = corner(tech, "ff")
        assert fast.nmos.vto < tech.nmos.vto
        assert fast.nmos.u0 > tech.nmos.u0

    def test_mixed_corner(self, tech):
        mixed = corner(tech, "sf")
        assert mixed.nmos.vto > tech.nmos.vto       # slow NMOS
        assert abs(mixed.pmos.vto) < abs(tech.pmos.vto)  # fast PMOS

    def test_hot_temperature_lowers_mobility(self, tech):
        hot = corner(tech, "tt", delta_temperature=100.0)
        assert hot.nmos.u0 < tech.nmos.u0
        assert hot.temperature == pytest.approx(400.15)

    def test_all_corners_cover_set(self, tech):
        corners = all_corners(tech)
        assert set(corners) == set(CORNERS)
        for technology in corners.values():
            technology.validate()

    def test_corner_names_validated(self, tech):
        with pytest.raises(TechnologyError):
            corner(tech, "xx")
        with pytest.raises(TechnologyError):
            corner(tech, "t")


class TestCornerImpact:
    def test_slow_corner_less_current(self, tech):
        from repro.mos import make_model
        from repro.units import UM

        nominal = make_model(tech.nmos, 1)
        slow = make_model(corner(tech, "ss").nmos, 1)
        vgs = tech.nmos.vto + 0.3
        i_nominal, *_ = nominal.evaluate(20 * UM, 1 * UM, vgs, 1.0, 0.0)
        i_slow, *_ = slow.evaluate(20 * UM, 1 * UM, vgs, 1.0, 0.0)
        assert i_slow < 0.8 * i_nominal

    def test_sized_design_degrades_at_ss(self, tech, plan, specs,
                                         sized_case1):
        """A tt-sized OTA, rebuilt with ss devices, loses GBW."""
        from repro.analysis.metrics import measure_ota
        from repro.sizing.plans.folded_cascode import FoldedCascodePlan
        from repro.sizing.specs import ParasiticMode

        slow_tech = corner(tech, "ss")
        slow_plan = FoldedCascodePlan(slow_tech)
        bench = slow_plan.build_testbench(
            sized_case1, specs, ParasiticMode.NONE
        )
        slow_metrics = measure_ota(bench)
        # Thresholds rose: the fixed bias voltages deliver less current.
        assert slow_metrics.gbw < sized_case1.predicted.gbw

    def test_resizing_at_corner_recovers_spec(self, tech, specs):
        """The plan re-sized *for* the slow corner meets the target again
        (the knowledge-based tool adapts the operating point)."""
        from repro.sizing.plans.folded_cascode import FoldedCascodePlan
        from repro.sizing.specs import ParasiticMode

        slow_tech = corner(tech, "ss")
        result = FoldedCascodePlan(slow_tech).size(specs, ParasiticMode.NONE)
        assert result.predicted.gbw == pytest.approx(specs.gbw, rel=0.02)


class TestPsrr:
    def test_psrr_reported(self, hand_testbench):
        from repro.analysis.metrics import measure_ota

        metrics = measure_ota(hand_testbench)
        assert metrics.psrr_db > 40.0

    def test_psrr_finite(self, hand_testbench):
        from repro.analysis.metrics import measure_ota

        metrics = measure_ota(hand_testbench)
        assert metrics.psrr_db < 200.0


class TestCornerVerification:
    def test_verify_corners_reports_all(self, tech, plan, specs, sized_case1):
        from repro.sizing.verification import VerificationInterface

        reports = VerificationInterface().verify_corners(
            plan, sized_case1, specs
        )
        assert set(reports) == {"tt", "ss", "ff", "sf", "fs"}

    def test_typical_corner_passes(self, tech, plan, specs, sized_case1):
        from repro.sizing.verification import VerificationInterface

        reports = VerificationInterface().verify_corners(
            plan, sized_case1, specs
        )
        assert reports["tt"].passed

    def test_fixed_bias_fails_somewhere(self, tech, plan, specs, sized_case1):
        """Ideal fixed bias voltages are corner-fragile: at least one
        corner fails, motivating a tracking bias generator."""
        from repro.sizing.verification import VerificationInterface

        reports = VerificationInterface().verify_corners(
            plan, sized_case1, specs
        )
        assert any(not report.passed for report in reports.values())

    def test_unmeasurable_corner_is_failed_not_crashed(self, tech, plan,
                                                       specs, sized_case1):
        from repro.sizing.verification import VerificationInterface

        reports = VerificationInterface().verify_corners(
            plan, sized_case1, specs
        )
        for report in reports.values():
            if report.metrics is None:
                assert not report.passed
                assert report.failure_reason
