"""Transfer-function post-processing against analytic responses."""

import numpy as np
import pytest

from repro.analysis.transfer import TransferFunction
from repro.errors import AnalysisError


def single_pole(gain, pole_hz, frequencies):
    frequencies = np.asarray(frequencies, dtype=float)
    return TransferFunction(
        frequencies, gain / (1.0 + 1j * frequencies / pole_hz)
    )


def two_pole(gain, p1, p2, frequencies):
    frequencies = np.asarray(frequencies, dtype=float)
    response = gain / (
        (1.0 + 1j * frequencies / p1) * (1.0 + 1j * frequencies / p2)
    )
    return TransferFunction(frequencies, response)


@pytest.fixture(scope="module")
def grid():
    return np.logspace(0, 10, 600)


class TestBasics:
    def test_dc_gain(self, grid):
        tf = single_pole(100.0, 1e3, grid)
        assert tf.dc_gain == pytest.approx(100.0, rel=1e-4)
        assert tf.dc_gain_db == pytest.approx(40.0, abs=0.01)

    def test_gain_interpolation(self, grid):
        tf = single_pole(100.0, 1e3, grid)
        assert tf.gain_db_at(1e3) == pytest.approx(40.0 - 3.01, abs=0.05)

    def test_phase_interpolation(self, grid):
        tf = single_pole(100.0, 1e3, grid)
        assert tf.phase_deg_at(1e3) == pytest.approx(-45.0, abs=0.5)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(AnalysisError):
            TransferFunction(np.array([1.0, 2.0]), np.array([1.0 + 0j]))

    def test_non_increasing_frequencies_rejected(self):
        with pytest.raises(AnalysisError):
            TransferFunction(
                np.array([2.0, 1.0]), np.array([1.0 + 0j, 1.0 + 0j])
            )


class TestUnityGain:
    def test_single_pole_gbw(self, grid):
        """For a single pole, unity crossing = gain * pole."""
        tf = single_pole(100.0, 1e3, grid)
        assert tf.unity_gain_frequency() == pytest.approx(1e5, rel=0.01)

    def test_no_crossing_returns_none(self, grid):
        tf = single_pole(0.5, 1e3, grid)
        assert tf.unity_gain_frequency() is None

    def test_two_pole_crossing_below_single_pole(self, grid):
        lone = single_pole(1000.0, 1e3, grid).unity_gain_frequency()
        double = two_pole(1000.0, 1e3, 1e5, grid).unity_gain_frequency()
        assert double < lone


class TestPhaseMargin:
    def test_single_pole_ninety_degrees(self, grid):
        tf = single_pole(100.0, 1e3, grid)
        assert tf.phase_margin() == pytest.approx(90.0, abs=1.0)

    def test_two_pole_margin_matches_analytic_phase(self, grid):
        """PM equals 180 minus the analytic phase lag at the crossing."""
        import math

        tf = two_pole(100.0, 1e3, 9.9e4, grid)
        unity = tf.unity_gain_frequency()
        expected = 180.0 - math.degrees(
            math.atan(unity / 1e3) + math.atan(unity / 9.9e4)
        )
        assert tf.phase_margin() == pytest.approx(expected, abs=1.0)

    def test_inverting_response_normalised(self, grid):
        tf = single_pole(100.0, 1e3, grid)
        inverted = TransferFunction(tf.frequencies, -tf.values)
        assert inverted.phase_margin() == pytest.approx(
            tf.phase_margin(), abs=0.5
        )

    def test_no_crossing_returns_none(self, grid):
        tf = single_pole(0.5, 1e3, grid)
        assert tf.phase_margin() is None


class TestBandwidth:
    def test_single_pole_3db(self, grid):
        tf = single_pole(100.0, 1e3, grid)
        assert tf.bandwidth_3db() == pytest.approx(1e3, rel=0.02)

    def test_flat_response_no_3db(self):
        frequencies = np.logspace(0, 6, 50)
        tf = TransferFunction(frequencies, np.ones(50, dtype=complex))
        assert tf.bandwidth_3db() is None


class TestGainMargin:
    def test_two_pole_has_no_180_crossing(self, grid):
        tf = two_pole(100.0, 1e3, 1e5, grid)
        assert tf.gain_margin_db() is None

    def test_three_pole_gain_margin_positive(self, grid):
        response = 100.0 / (
            (1 + 1j * grid / 1e3) * (1 + 1j * grid / 1e5) * (1 + 1j * grid / 2e5)
        )
        tf = TransferFunction(grid, response)
        margin = tf.gain_margin_db()
        assert margin is not None
        assert margin > 0.0
