"""Technology evaluation interface."""

import pytest

from repro.technology.evaluation import TechnologyEvaluator, rank_technologies
from repro.units import UM


@pytest.fixture(scope="module")
def evaluator(tech):
    return TechnologyEvaluator(tech)


class TestFiguresOfMerit:
    def test_ft_realistic(self, evaluator):
        ft = evaluator.transit_frequency("n", 1.2 * UM, 0.2)
        assert 0.2e9 < ft < 20e9

    def test_ft_rises_with_overdrive(self, evaluator):
        assert evaluator.transit_frequency("n", 1.2 * UM, 0.4) > (
            evaluator.transit_frequency("n", 1.2 * UM, 0.15)
        )

    def test_ft_falls_with_length(self, evaluator):
        assert evaluator.transit_frequency("n", 2.4 * UM, 0.2) < (
            evaluator.transit_frequency("n", 0.6 * UM, 0.2)
        )

    def test_pmos_slower(self, evaluator):
        assert evaluator.transit_frequency("p", 1.2 * UM, 0.2) < (
            evaluator.transit_frequency("n", 1.2 * UM, 0.2)
        )

    def test_intrinsic_gain_rises_with_length(self, evaluator):
        assert evaluator.intrinsic_gain("n", 2.4 * UM, 0.2) > (
            evaluator.intrinsic_gain("n", 0.6 * UM, 0.2)
        )

    def test_gm_over_id_is_two_over_veff(self, evaluator):
        assert evaluator.gm_over_id("n", 1.2 * UM, 0.2) == pytest.approx(
            10.0, rel=0.01
        )

    def test_ft_sweep_shape(self, evaluator):
        sweep = evaluator.ft_sweep("n", [0.6 * UM, 1.2 * UM, 2.4 * UM], 0.2)
        values = [ft for _l, ft in sweep]
        assert values == sorted(values, reverse=True)


class TestReport:
    def test_report_fields(self, evaluator):
        report = evaluator.report()
        assert report.technology == "generic-0.6um"
        assert report.ft_nmos > report.ft_pmos

    def test_format_readable(self, evaluator):
        text = evaluator.report().format()
        assert "fT" in text and "gm/ID" in text


class TestRanking:
    def test_finer_node_ranks_first(self, tech, tech_035, tech_080):
        ranked = rank_technologies([tech_080, tech, tech_035], gbw_target=65e6)
        names = [t.name for t, _headroom in ranked]
        assert names[0] == "generic-0.35um"
        assert names[-1] == "generic-0.8um"

    def test_headroom_positive_for_modest_target(self, tech):
        ranked = rank_technologies([tech], gbw_target=65e6)
        assert ranked[0][1] > 1.0
