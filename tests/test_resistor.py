"""Serpentine poly resistor generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LayoutError
from repro.layout.drc import DrcChecker
from repro.layout.layers import Layer
from repro.layout.resistor import poly_resistor
from repro.units import UM


class TestValueAccuracy:
    @pytest.mark.parametrize("value", [500.0, 1e3, 4.7e3, 22e3, 100e3])
    def test_drawn_within_one_percent(self, tech, value):
        resistor = poly_resistor(tech, value, "a", "b")
        assert resistor.actual_widths["res"] == pytest.approx(value, rel=0.01)

    def test_value_from_sheet_resistance(self, tech):
        resistor = poly_resistor(tech, 10e3, "a", "b")
        squares = 10e3 / tech.poly.sheet_resistance
        total_poly = sum(
            s.rect.area for s in resistor.cell.shapes_on(Layer.POLY)
        )
        # The body holds at least `squares` squares of poly.
        width = resistor.finger_width
        assert total_poly >= squares * width * width * 0.95

    @given(value=st.floats(min_value=300.0, max_value=300e3))
    @settings(max_examples=30, deadline=None)
    def test_accuracy_property(self, tech, value):
        resistor = poly_resistor(tech, value, "a", "b")
        assert resistor.actual_widths["res"] == pytest.approx(value, rel=0.02)


class TestGeometry:
    def test_multi_bar_taps_on_opposite_edges(self, tech):
        resistor = poly_resistor(tech, 50e3, "a", "b")
        pin_a = resistor.cell.pin_rect("a")
        pin_b = resistor.cell.pin_rect("b")
        assert pin_b.center.y > pin_a.center.y

    def test_wider_body_shorter_serpentine(self, tech):
        narrow = poly_resistor(tech, 20e3, "a", "b")
        wide = poly_resistor(tech, 20e3, "a", "b",
                             width=4 * tech.rules.poly_min_width)
        assert wide.cell.width >= narrow.cell.width

    @pytest.mark.parametrize("value", [500.0, 4.7e3, 100e3])
    def test_drc_clean(self, tech, value):
        resistor = poly_resistor(tech, value, "a", "b")
        DrcChecker(tech).assert_clean(resistor.cell)

    def test_body_unnetted_by_convention(self, tech):
        """Interior bars carry no net tag (resistive body)."""
        resistor = poly_resistor(tech, 100e3, "a", "b")
        bodies = [s for s in resistor.cell.shapes_on(Layer.POLY)
                  if s.net is None]
        assert bodies


class TestValidation:
    def test_zero_value_rejected(self, tech):
        with pytest.raises(LayoutError):
            poly_resistor(tech, 0.0, "a", "b")

    def test_sub_square_value_rejected(self, tech):
        with pytest.raises(LayoutError):
            poly_resistor(tech, 1.0, "a", "b")

    def test_too_short_for_taps_rejected(self, tech):
        with pytest.raises(LayoutError):
            poly_resistor(tech, 30.0, "a", "b")
