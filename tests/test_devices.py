"""Device generators: rendered stacks, pairs, mirrors."""

import pytest

from repro.errors import LayoutError
from repro.layout.devices import (
    current_mirror_layout,
    differential_pair_layout,
    single_device_layout,
)
from repro.layout.layers import Layer
from repro.units import UM


class TestSingleDevice:
    @pytest.fixture(scope="class")
    def module(self, tech):
        return single_device_layout(
            tech, "n", 40 * UM, 1 * UM, nf=4,
            nets=("fold1", "vc1", "0", "0"),
            drain_current=100e-6, name="mn1c",
        )

    def test_device_keyed_by_name(self, module):
        assert list(module.device_geometry) == ["mn1c"]
        assert module.device_nf["mn1c"] == 4

    def test_pins_are_circuit_nets(self, module):
        assert set(module.cell.pins) == {"fold1", "vc1", "0"}

    def test_actual_width_recorded(self, module):
        assert module.actual_widths["mn1c"] == pytest.approx(40 * UM, rel=0.01)


class TestDifferentialPair:
    @pytest.fixture(scope="class")
    def pair(self, tech):
        return differential_pair_layout(
            tech, "p", 60 * UM, 1 * UM, nf=4,
            names=("mp1", "mp2"),
            drains=("fold1", "fold2"),
            gates=("inp", "inn"),
            source="tail", bulk="vdd!",
            current_per_side=100e-6,
        )

    def test_both_devices_present(self, pair):
        assert set(pair.device_geometry) == {"mp1", "mp2"}

    def test_matched_drain_geometry(self, pair):
        """The signal-carrying drains (fold nodes) must match exactly; the
        shared-source split may differ (dummy-adjacent strips are bookkept
        to the outer device) without electrical consequence."""
        a = pair.device_geometry["mp1"]
        b = pair.device_geometry["mp2"]
        assert a.ad == pytest.approx(b.ad, rel=1e-9)
        assert a.pd == pytest.approx(b.pd, rel=1e-9)

    def test_drain_halved_by_folding(self, pair, tech):
        geometry = pair.device_geometry["mp1"]
        finger = pair.finger_width
        expected = 2 * finger * tech.rules.contacted_diffusion_width
        assert geometry.ad == pytest.approx(expected)

    def test_common_centroid_symmetry(self, pair):
        assert pair.plan.centroid_offset("mp1") == 0.0
        assert pair.plan.centroid_offset("mp2") == 0.0

    def test_dummies_included(self, pair):
        dummies = [f for f in pair.plan.fingers if f.is_dummy]
        assert len(dummies) == 2

    def test_well_covers_row(self, pair):
        assert pair.well_rect is not None
        nwell = pair.cell.shapes_on(Layer.NWELL)
        assert nwell[0].net == "vdd!"

    def test_interdigitated_style(self, tech):
        pair = differential_pair_layout(
            tech, "p", 60 * UM, 1 * UM, nf=4,
            names=("a", "b"), drains=("d1", "d2"), gates=("g1", "g2"),
            source="s", bulk="w", style="interdigitated",
        )
        active = [f.device for f in pair.plan.fingers if not f.is_dummy]
        assert active == ["a", "b", "a", "b", "a", "b", "a", "b"]

    def test_unknown_style_rejected(self, tech):
        with pytest.raises(LayoutError):
            differential_pair_layout(
                tech, "p", 60 * UM, 1 * UM, nf=4,
                names=("a", "b"), drains=("d1", "d2"), gates=("g1", "g2"),
                source="s", bulk="w", style="zigzag",
            )


class TestCurrentMirror:
    @pytest.fixture(scope="class")
    def mirror(self, tech):
        return current_mirror_layout(
            tech, "n", {"m1": 1, "m2": 3, "m3": 6},
            unit_width=5 * UM, l=2 * UM,
            drains={"m1": "bias", "m2": "o2", "m3": "o3"},
            gate="bias", source="0", bulk="0",
            currents={"m1": 100e-6, "m2": 300e-6, "m3": 600e-6},
        )

    def test_widths_follow_ratios(self, mirror):
        assert mirror.actual_widths["m1"] == pytest.approx(5 * UM)
        assert mirror.actual_widths["m2"] == pytest.approx(15 * UM)
        assert mirror.actual_widths["m3"] == pytest.approx(30 * UM)

    def test_diode_device_shares_gate_and_drain_net(self, mirror):
        assert "bias" in mirror.cell.pins

    def test_geometry_total_consistency(self, mirror, tech):
        """Summed drawn diffusion equals the strip census times sizes."""
        total_area = sum(
            g.ad + g.as_ for g in mirror.device_geometry.values()
        )
        assert total_area > 0

    def test_em_wire_widths_scale(self, tech):
        def drain_track_height(layout, net):
            """Tallest metal-2 wire drawn for a net (its track)."""
            return max(
                s.rect.height
                for s in layout.cell.shapes_on(Layer.METAL2)
                if s.net == net and s.rect.width > 5 * UM
            )

        cool = current_mirror_layout(
            tech, "n", {"m1": 2, "m2": 2}, unit_width=10 * UM, l=1 * UM,
            drains={"m1": "a", "m2": "b"}, gate="g", source="0", bulk="0",
            currents={"m1": 10e-6, "m2": 10e-6},
        )
        hot = current_mirror_layout(
            tech, "n", {"m1": 2, "m2": 2}, unit_width=10 * UM, l=1 * UM,
            drains={"m1": "a", "m2": "b"}, gate="g", source="0", bulk="0",
            currents={"m1": 4e-3, "m2": 4e-3},
        )
        assert drain_track_height(hot, "a") > drain_track_height(cool, "a")

    def test_breaks_add_active_segments(self, mirror):
        actives = mirror.cell.shapes_on(Layer.ACTIVE)
        assert len(actives) == 1 + len(mirror.plan.breaks)


class TestStackValidation:
    def test_mixed_sources_rejected(self, tech):
        from repro.layout.stack import generate_stack
        from repro.layout.devices import render_stack

        plan = generate_stack({"a": 2, "b": 2})
        with pytest.raises(LayoutError):
            render_stack(
                tech, plan, "n", 10 * UM, 1 * UM,
                terminals={"a": ("d1", "g1", "s1"), "b": ("d2", "g2", "s2")},
                bulk_net="0",
            )

    def test_narrow_finger_rejected(self, tech):
        from repro.layout.stack import generate_stack
        from repro.layout.devices import render_stack

        plan = generate_stack({"a": 2})
        with pytest.raises(LayoutError):
            render_stack(
                tech, plan, "n", 0.2 * UM, 1 * UM,
                terminals={"a": ("d", "g", "s")},
                bulk_net="0",
            )
