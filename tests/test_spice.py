"""SPICE export."""

import pytest

from repro.circuit import Circuit, to_spice
from repro.units import UM


@pytest.fixture
def deck(tech):
    circuit = Circuit("testckt")
    circuit.add_vsource("vdd", "vdd!", "0", dc=3.3)
    circuit.add_vsource("vin", "in", "0", dc=1.0, ac=1.0)
    circuit.add_isource("ib", "vdd!", "bias", dc=10e-6)
    circuit.add_resistor("r1", "vdd!", "out", 10e3)
    circuit.add_capacitor("cl", "out", "0", 1e-12)
    circuit.add_mos(
        "m1", d="out", g="in", s="0", b="0",
        params=tech.nmos, w=20 * UM, l=1 * UM,
    )
    return to_spice(circuit)


class TestSpiceExport:
    def test_title_line(self, deck):
        assert deck.startswith("* testckt")

    def test_ends_with_end_card(self, deck):
        assert deck.rstrip().endswith(".END")

    def test_mos_card_present(self, deck):
        assert "Mm1 out in 0 0 nch" in deck

    def test_mos_geometry(self, deck):
        assert "W=2e-05" in deck and "L=1e-06" in deck

    def test_resistor_card(self, deck):
        assert "Rr1 vdd! out 10000" in deck

    def test_capacitor_card(self, deck):
        assert "Ccl out 0 1e-12" in deck

    def test_voltage_source_with_ac(self, deck):
        assert "Vvin in 0 DC 1 AC 1" in deck

    def test_current_source(self, deck):
        assert "Iib vdd! bias DC 1e-05" in deck

    def test_model_card_emitted_once(self, deck):
        assert deck.count(".MODEL nch NMOS") == 1

    def test_model_card_has_level(self, deck):
        assert "LEVEL=1" in deck

    def test_geometry_annotations(self, tech):
        from repro.mos.junction import DiffusionGeometry

        circuit = Circuit("geo")
        circuit.add_vsource("vdd", "vdd!", "0", dc=3.3)
        circuit.add_mos(
            "m1", d="vdd!", g="vdd!", s="0", b="0",
            params=tech.nmos, w=20 * UM, l=1 * UM,
            geometry=DiffusionGeometry.single_fold(20 * UM, 1.5 * UM),
        )
        deck = to_spice(circuit)
        assert "AD=" in deck and "PS=" in deck
