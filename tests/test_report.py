"""Table-1 report formatting."""

import pytest

from repro.core.report import TABLE1_ROWS, format_table1, metrics_rows


class TestMetricsRows:
    def test_all_rows_present(self, case4_result):
        rows = metrics_rows(case4_result.synthesized)
        assert len(rows) == len(TABLE1_ROWS)
        assert "GBW (MHz)" in rows

    def test_scaling_applied(self, case4_result):
        rows = metrics_rows(case4_result.synthesized)
        assert rows["GBW (MHz)"] == pytest.approx(
            case4_result.synthesized.gbw / 1e6
        )
        assert rows["Power dissipation (mW)"] == pytest.approx(
            case4_result.synthesized.power * 1e3
        )


class TestFormatTable1:
    def test_paper_layout(self, case4_result):
        table = format_table1([case4_result])
        assert "Case (4)" in table
        assert "DC gain (dB)" in table
        assert "Phase margin (degrees)" in table

    def test_bracket_convention(self, case4_result):
        """Every cell is synthesized(extracted), as in the paper."""
        table = format_table1([case4_result])
        gbw_line = next(l for l in table.splitlines() if l.startswith("GBW"))
        assert "(" in gbw_line and ")" in gbw_line

    def test_layout_calls_row(self, case4_result):
        table = format_table1([case4_result])
        assert "Layout tool calls" in table

    def test_multiple_columns(self, case4_result):
        table = format_table1([case4_result, case4_result])
        header = table.splitlines()[1]
        assert header.count("Case (4)") == 2

    def test_custom_title(self, case4_result):
        table = format_table1([case4_result], title="My experiment")
        assert table.startswith("My experiment")
