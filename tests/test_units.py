"""Unit helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import units


class TestScaleFactors:
    def test_micron_alias(self):
        assert units.UM == 1e-6

    def test_femtofarad_alias(self):
        assert units.FF == 1e-15

    def test_megahertz_alias(self):
        assert units.MHZ == 1e6

    def test_composed_quantity(self):
        assert 3 * units.PF == pytest.approx(3e-12)


class TestThermalVoltage:
    def test_room_temperature_value(self):
        assert units.thermal_voltage() == pytest.approx(0.02585, rel=1e-3)

    def test_scales_linearly_with_temperature(self):
        assert units.thermal_voltage(600.0) == pytest.approx(
            2.0 * units.thermal_voltage(300.0)
        )


class TestDecibels:
    def test_db_of_unity_is_zero(self):
        assert units.db(1.0) == 0.0

    def test_db_of_ten_is_twenty(self):
        assert units.db(10.0) == pytest.approx(20.0)

    def test_db_of_zero_is_minus_infinity(self):
        assert units.db(0.0) == -math.inf

    def test_db_uses_magnitude(self):
        assert units.db(-10.0) == pytest.approx(20.0)

    @given(st.floats(min_value=1e-12, max_value=1e12))
    def test_db_round_trip(self, value):
        assert units.from_db(units.db(value)) == pytest.approx(value, rel=1e-9)


class TestParallel:
    def test_two_equal_resistors(self):
        assert units.parallel(2.0, 2.0) == pytest.approx(1.0)

    def test_infinite_branch_is_ignored(self):
        assert units.parallel(5.0, math.inf) == pytest.approx(5.0)

    def test_all_infinite(self):
        assert units.parallel(math.inf, math.inf) == math.inf

    def test_short_dominates(self):
        assert units.parallel(0.0, 10.0) == 0.0

    @given(
        st.floats(min_value=1e-3, max_value=1e9),
        st.floats(min_value=1e-3, max_value=1e9),
    )
    def test_result_below_either_branch(self, a, b):
        combined = units.parallel(a, b)
        assert combined <= min(a, b) + 1e-12


class TestFormatSi:
    def test_megahertz(self):
        assert units.format_si(65e6, "Hz") == "65MHz"

    def test_femtofarads(self):
        assert units.format_si(2.5e-15, "F") == "2.5fF"

    def test_zero(self):
        assert units.format_si(0.0, "V") == "0V"

    def test_plain_unit(self):
        assert units.format_si(2.0, "V") == "2V"
