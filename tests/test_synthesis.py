"""The layout-oriented synthesis loop (paper Figure 1b)."""

import pytest

from repro.core.synthesis import LayoutOrientedSynthesizer
from repro.errors import SynthesisError
from repro.sizing.specs import ParasiticMode
from repro.units import FF


class TestConvergence:
    def test_converges(self, synthesis_outcome):
        assert synthesis_outcome.converged

    def test_layout_calls_match_paper_scale(self, synthesis_outcome):
        """The paper needed three layout-tool calls; allow a little slack."""
        assert 2 <= synthesis_outcome.layout_calls <= 6

    def test_parasitics_stop_changing(self, synthesis_outcome):
        final = synthesis_outcome.records[-1]
        assert final.distance <= 2 * FF

    def test_first_round_distance_infinite(self, synthesis_outcome):
        assert synthesis_outcome.records[0].distance == float("inf")

    def test_distance_shrinks(self, synthesis_outcome):
        distances = [r.distance for r in synthesis_outcome.records[1:]]
        assert distances == sorted(distances, reverse=True) or (
            distances[-1] <= distances[0]
        )

    def test_sizing_time_far_below_two_minutes(self, synthesis_outcome):
        """Paper: 'The sizing time for each case ... does not exceed two
        minutes' — ours is seconds."""
        assert synthesis_outcome.elapsed < 120.0


class TestOutcome:
    def test_final_specs_met_with_parasitics(self, synthesis_outcome, specs):
        metrics = synthesis_outcome.sizing.predicted
        assert metrics.gbw == pytest.approx(specs.gbw, rel=0.015)
        assert metrics.phase_margin_deg == pytest.approx(
            specs.phase_margin, abs=0.8
        )

    def test_generated_layout_attached(self, synthesis_outcome):
        assert synthesis_outcome.layout is not None
        assert synthesis_outcome.layout.cell is not None

    def test_feedback_has_all_devices(self, synthesis_outcome):
        assert len(synthesis_outcome.feedback.devices) == 11

    def test_fold_counts_stable_at_convergence(self, synthesis_outcome):
        last = synthesis_outcome.records[-1].report
        previous = synthesis_outcome.records[-2].report
        last_folds = {d: p.nf for d, p in last.devices.items()}
        previous_folds = {d: p.nf for d, p in previous.devices.items()}
        assert last_folds == previous_folds

    def test_estimate_only_mode(self, tech, specs, plan):
        synthesizer = LayoutOrientedSynthesizer(tech, plan=plan)
        outcome = synthesizer.run(specs, ParasiticMode.FULL, generate=False)
        assert outcome.layout is None
        assert outcome.feedback is not None


class TestValidation:
    def test_non_layout_mode_rejected(self, tech, specs):
        synthesizer = LayoutOrientedSynthesizer(tech)
        with pytest.raises(SynthesisError):
            synthesizer.run(specs, ParasiticMode.NONE)

    def test_diffusion_only_mode_runs(self, tech, specs, plan):
        synthesizer = LayoutOrientedSynthesizer(tech, plan=plan)
        outcome = synthesizer.run(
            specs, ParasiticMode.LAYOUT_DIFFUSION, generate=False
        )
        assert outcome.layout_calls >= 2


class TestParasiticReportMetric:
    def test_distance_to_self_is_zero(self, synthesis_outcome):
        report = synthesis_outcome.feedback
        assert report.distance(report) == 0.0

    def test_distance_symmetricish(self, synthesis_outcome):
        first = synthesis_outcome.records[0].report
        last = synthesis_outcome.records[-1].report
        assert first.distance(last) == pytest.approx(last.distance(first))

    def test_net_total_includes_coupling(self, synthesis_outcome):
        report = synthesis_outcome.feedback
        assert report.net_total("fold1") > report.net_capacitance["fold1"]

    def test_summary_readable(self, synthesis_outcome):
        text = synthesis_outcome.feedback.summary()
        assert "mp1" in text and "fold1" in text
