"""Capacitance reduction factor F and fold geometry (paper Figure 2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LayoutError
from repro.layout.folding import (
    DiffusionPosition,
    capacitance_reduction_factor,
    choose_fold_count,
    effective_widths,
    folded_diffusion_geometry,
    strip_counts,
)
from repro.units import UM


class TestPaperEquation:
    """The three branches of the paper's equation (1)."""

    def test_unfolded_is_unity(self):
        for position in DiffusionPosition:
            assert capacitance_reduction_factor(1, position) == 1.0

    def test_even_internal_is_half(self):
        for nf in (2, 4, 6, 8, 20):
            assert capacitance_reduction_factor(
                nf, DiffusionPosition.INTERNAL
            ) == pytest.approx(0.5)

    @pytest.mark.parametrize("nf", [2, 4, 6, 10])
    def test_even_external(self, nf):
        expected = (nf + 2) / (2 * nf)
        assert capacitance_reduction_factor(
            nf, DiffusionPosition.EXTERNAL
        ) == pytest.approx(expected)

    @pytest.mark.parametrize("nf", [3, 5, 7, 9])
    def test_odd(self, nf):
        expected = (nf + 1) / (2 * nf)
        assert capacitance_reduction_factor(
            nf, DiffusionPosition.ALTERNATING
        ) == pytest.approx(expected)

    def test_figure2_reference_values(self):
        """Spot values readable off the paper's Figure 2."""
        assert capacitance_reduction_factor(
            2, DiffusionPosition.EXTERNAL
        ) == pytest.approx(1.0)
        assert capacitance_reduction_factor(
            3, DiffusionPosition.ALTERNATING
        ) == pytest.approx(2 / 3)
        assert capacitance_reduction_factor(
            4, DiffusionPosition.EXTERNAL
        ) == pytest.approx(0.75)

    def test_invalid_combinations_rejected(self):
        with pytest.raises(LayoutError):
            capacitance_reduction_factor(4, DiffusionPosition.ALTERNATING)
        with pytest.raises(LayoutError):
            capacitance_reduction_factor(5, DiffusionPosition.INTERNAL)
        with pytest.raises(LayoutError):
            capacitance_reduction_factor(0, DiffusionPosition.INTERNAL)

    @given(nf=st.integers(min_value=2, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_factor_bounds(self, nf):
        if nf % 2 == 0:
            internal = capacitance_reduction_factor(nf, DiffusionPosition.INTERNAL)
            external = capacitance_reduction_factor(nf, DiffusionPosition.EXTERNAL)
            assert 0.5 <= internal <= external <= 1.0
        else:
            factor = capacitance_reduction_factor(
                nf, DiffusionPosition.ALTERNATING
            )
            assert 0.5 < factor <= 1.0

    @given(nf=st.integers(min_value=1, max_value=32))
    @settings(max_examples=40, deadline=None)
    def test_external_decreases_with_folds(self, nf):
        """Figure 2: F falls with the first few folds for cases (b), (c)."""
        position_a = (
            DiffusionPosition.EXTERNAL if nf % 2 == 0
            else DiffusionPosition.ALTERNATING
        )
        position_b = (
            DiffusionPosition.EXTERNAL if (nf + 2) % 2 == 0
            else DiffusionPosition.ALTERNATING
        )
        if nf == 1:
            return
        assert capacitance_reduction_factor(
            nf + 2, position_b
        ) <= capacitance_reduction_factor(nf, position_a) + 1e-12


class TestStripCounts:
    def test_total_strips(self):
        for nf in range(1, 12):
            drain, source = strip_counts(nf, drain_internal=True)
            assert drain + source == nf + 1

    def test_even_internal_drain_census(self):
        drain, source = strip_counts(6, drain_internal=True)
        assert drain == 3
        assert source == 4

    def test_even_external_drain_census(self):
        drain, source = strip_counts(6, drain_internal=False)
        assert drain == 4
        assert source == 3

    def test_odd_split_evenly(self):
        drain, source = strip_counts(5, drain_internal=True)
        assert drain == source == 3


class TestEffectiveWidths:
    def test_consistent_with_factor(self):
        width = 60 * UM
        for nf in (2, 4, 6, 8):
            drain_weff, source_weff = effective_widths(width, nf, True)
            assert drain_weff == pytest.approx(0.5 * width)
            expected_source = capacitance_reduction_factor(
                nf, DiffusionPosition.EXTERNAL
            )
            assert source_weff == pytest.approx(expected_source * width)

    def test_drain_external_swaps(self):
        drain_weff, source_weff = effective_widths(60 * UM, 4, False)
        assert drain_weff > source_weff

    def test_odd_symmetric(self):
        drain_weff, source_weff = effective_widths(60 * UM, 5)
        assert drain_weff == pytest.approx(source_weff)

    @given(
        nf=st.integers(min_value=1, max_value=40),
        width=st.floats(min_value=1e-6, max_value=1e-3),
    )
    @settings(max_examples=60, deadline=None)
    def test_total_diffusion_conserved(self, nf, width):
        """Drain + source effective width = (nf+1)/nf * W * strip fraction.

        Equivalently: total effective width equals W * (nf+1)/ (2nf) * 2
        ... i.e. one strip width per boundary: (nf+1) * (W/nf) fingers.
        """
        drain_weff, source_weff = effective_widths(width, nf)
        expected_total = (nf + 1) * width / nf if nf > 1 else 2 * width
        assert drain_weff + source_weff == pytest.approx(expected_total, rel=1e-9)


class TestFoldedGeometry:
    def test_matches_effective_width_model(self):
        """Drawn areas equal F*W times the strip length for uniform ldif."""
        width, nf, ldif = 60 * UM, 4, 1.5 * UM
        geometry = folded_diffusion_geometry(width, nf, ldif, ldif, True)
        drain_weff, source_weff = effective_widths(width, nf, True)
        assert geometry.ad == pytest.approx(drain_weff * ldif)
        assert geometry.as_ == pytest.approx(source_weff * ldif)

    def test_internal_drain_has_no_outer_edge(self):
        geometry = folded_diffusion_geometry(
            60 * UM, 4, 1.5 * UM, 1.35 * UM, True
        )
        # Internal strips expose only their short ends: 2 strips * 2 * ldif.
        assert geometry.pd == pytest.approx(2 * 2 * 1.5 * UM)

    def test_single_fold_both_external(self):
        geometry = folded_diffusion_geometry(30 * UM, 1, 1.5 * UM, 1.35 * UM)
        assert geometry.ad == pytest.approx(30 * UM * 1.35 * UM)
        assert geometry.pd == pytest.approx((30 + 2 * 1.35) * UM)

    @given(nf=st.integers(min_value=2, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_folding_never_increases_drain_cap(self, nf):
        """The motivation of Figure 2: folding shrinks drain diffusion."""
        width, ldif = 60e-6, 1.5e-6
        folded = folded_diffusion_geometry(width, nf, ldif, ldif, True)
        unfolded = folded_diffusion_geometry(width, 1, ldif, ldif, True)
        assert folded.ad <= unfolded.ad + 1e-18
        assert folded.pd <= unfolded.pd + 1e-12


class TestChooseFoldCount:
    def test_small_device_stays_unfolded(self):
        assert choose_fold_count(5 * UM, 10 * UM) == 1

    def test_prefers_even(self):
        nf = choose_fold_count(55 * UM, 11 * UM, prefer_even=True)
        assert nf % 2 == 0

    def test_odd_allowed_when_not_preferred(self):
        nf = choose_fold_count(55 * UM, 11 * UM, prefer_even=False)
        assert nf == 5

    def test_respects_max(self):
        assert choose_fold_count(1e-3, 1e-6, max_folds=16) == 16

    def test_rejects_nonpositive(self):
        with pytest.raises(LayoutError):
            choose_fold_count(0.0, 1e-6)
