"""The folded-cascode design plan (COMDIAC's core procedure)."""

import pytest

from repro.circuit.topologies.folded_cascode import FOLDED_CASCODE_DEVICES
from repro.mos.junction import DiffusionGeometry
from repro.sizing.plans.folded_cascode import DEVICE_ROLE, FoldedCascodePlan
from repro.sizing.specs import OtaSpecs, ParasiticMode
from repro.units import UM


class TestCaseOneSizing:
    """Mode NONE: only gate capacitances."""

    def test_gbw_on_target(self, sized_case1, specs):
        metrics = sized_case1.predicted
        assert metrics.gbw == pytest.approx(specs.gbw, rel=0.015)

    def test_phase_margin_on_target(self, sized_case1, specs):
        metrics = sized_case1.predicted
        assert metrics.phase_margin_deg == pytest.approx(
            specs.phase_margin, abs=0.8
        )

    def test_all_devices_sized(self, sized_case1):
        assert set(sized_case1.sizes) == set(FOLDED_CASCODE_DEVICES)

    def test_matched_devices_identical(self, sized_case1):
        sizes = sized_case1.sizes
        assert sizes["mp1"] == sizes["mp2"]
        assert sizes["mn5"] == sizes["mn6"]
        assert sizes["mp3"] == sizes["mp4"]
        assert sizes["mn1c"] == sizes["mn2c"]

    def test_current_bookkeeping(self, sized_case1):
        currents = sized_case1.currents
        assert currents["mp5"] == pytest.approx(2 * currents["mp1"])
        assert currents["mn5"] == pytest.approx(
            currents["mp1"] + currents["mn1c"]
        )

    def test_computed_ranges_cover_specs(self, sized_case1, specs):
        vcm_lo, vcm_hi = sized_case1.computed_icmr
        assert vcm_lo <= specs.input_cm_range[0]
        assert vcm_hi >= specs.input_cm_range[1] - 0.25

    def test_devices_saturated(self, sized_case1):
        assert sized_case1.predicted.all_saturated()

    def test_iterations_bounded(self, sized_case1):
        assert sized_case1.iterations <= 30

    def test_input_current_matches_gm_formula(self, sized_case1, specs, plan):
        """gm1 = 2 pi GBW Cl_eff within the effective-load correction."""
        import math

        id1 = sized_case1.currents["mp1"]
        gm_needed = 2 * math.pi * specs.gbw * specs.cload
        id_floor = gm_needed * plan.veff_input / 2.0
        assert id1 >= 0.9 * id_floor


class TestCaseTwoSizing:
    """Mode SINGLE_FOLD: over-estimated diffusion (paper's case 2)."""

    def test_meets_specs_on_assumed_netlist(self, sized_case2, specs):
        metrics = sized_case2.predicted
        assert metrics.gbw == pytest.approx(specs.gbw, rel=0.015)
        assert metrics.phase_margin_deg == pytest.approx(
            specs.phase_margin, abs=0.8
        )

    def test_shorter_cascode_lengths_than_case1(self, sized_case1, sized_case2):
        """Over-estimated fold capacitance pushes lengths down — the
        mechanism behind case 2's gain/Rout/noise degradation."""
        assert sized_case2.sizes["mn1c"][1] < sized_case1.sizes["mn1c"][1]

    def test_lower_gain_than_case1(self, sized_case1, sized_case2):
        assert (
            sized_case2.predicted.dc_gain_db < sized_case1.predicted.dc_gain_db
        )

    def test_lower_output_resistance_than_case1(self, sized_case1, sized_case2):
        assert (
            sized_case2.predicted.output_resistance
            < sized_case1.predicted.output_resistance
        )


class TestGeometryModes:
    def test_mode_none_zero_diffusion(self, plan, sized_case1, specs):
        bench = plan.build_testbench(sized_case1, specs, ParasiticMode.NONE)
        geometry = bench.circuit.mos("mp1").geometry
        assert geometry.ad == 0.0 and geometry.as_ == 0.0

    def test_mode_single_fold_full_diffusion(self, plan, sized_case1, specs,
                                             tech):
        bench = plan.build_testbench(
            sized_case1, specs, ParasiticMode.SINGLE_FOLD
        )
        mos = bench.circuit.mos("mp1")
        expected = DiffusionGeometry.single_fold(mos.w, tech.default_ldif)
        assert mos.geometry.ad == pytest.approx(expected.ad)

    def test_layout_mode_without_feedback_falls_back(self, plan, sized_case1,
                                                     specs):
        bench = plan.build_testbench(
            sized_case1, specs, ParasiticMode.LAYOUT_DIFFUSION, feedback=None
        )
        assert bench.circuit.mos("mp1").geometry.ad > 0

    def test_full_mode_attaches_routing_caps(self, plan, sized_case1, specs,
                                             synthesis_outcome):
        bench = plan.build_testbench(
            sized_case1, specs, ParasiticMode.FULL,
            feedback=synthesis_outcome.feedback,
        )
        assert bench.circuit.total_parasitic_on_net("fold1") > 10e-15

    def test_layout_mode_uses_feedback_geometry(self, plan, sized_case1,
                                                specs, synthesis_outcome):
        bench = plan.build_testbench(
            sized_case1, specs, ParasiticMode.LAYOUT_DIFFUSION,
            feedback=synthesis_outcome.feedback,
        )
        mos = bench.circuit.mos("mp1")
        expected = synthesis_outcome.feedback.devices["mp1"].geometry
        assert mos.geometry.ad == pytest.approx(expected.ad)
        # But no routing caps in mode 3.
        assert bench.circuit.total_parasitic_on_net("fold1") == 0.0


class TestRoles:
    def test_every_device_has_role(self):
        assert set(DEVICE_ROLE) == set(FOLDED_CASCODE_DEVICES)

    def test_specs_validated(self, plan):
        bad = OtaSpecs(gbw=-1.0)
        with pytest.raises(Exception):
            plan.size(bad)


class TestDifferentSpecs:
    def test_lower_gbw_needs_less_current(self, tech, plan, specs,
                                          sized_case1):
        easy = OtaSpecs(
            vdd=specs.vdd, gbw=20e6, phase_margin=specs.phase_margin,
            cload=specs.cload, input_cm_range=specs.input_cm_range,
            output_range=specs.output_range,
        )
        relaxed = FoldedCascodePlan(tech).size(easy, ParasiticMode.NONE)
        assert relaxed.currents["mp1"] < sized_case1.currents["mp1"]

    def test_bigger_load_needs_more_current(self, tech, specs, sized_case1):
        heavy = OtaSpecs(
            vdd=specs.vdd, gbw=specs.gbw, phase_margin=specs.phase_margin,
            cload=3 * specs.cload, input_cm_range=specs.input_cm_range,
            output_range=specs.output_range,
        )
        loaded = FoldedCascodePlan(tech).size(heavy, ParasiticMode.NONE)
        assert loaded.currents["mp1"] > 2 * sized_case1.currents["mp1"]

    def test_level3_plan_runs(self, tech, specs):
        plan3 = FoldedCascodePlan(tech, model_level=3)
        result = plan3.size(specs, ParasiticMode.NONE)
        assert result.predicted.gbw == pytest.approx(specs.gbw, rel=0.02)

    def test_level3_wider_input_devices(self, tech, specs, sized_case1):
        """Mobility degradation costs gm: level 3 sizes wider."""
        plan3 = FoldedCascodePlan(tech, model_level=3)
        result = plan3.size(specs, ParasiticMode.NONE)
        assert result.sizes["mp1"][0] > sized_case1.sizes["mp1"][0]


class TestSlewRateSpec:
    """Optional slew-rate specification (the SC driver needs it)."""

    @pytest.fixture(scope="class")
    def slew_specs(self, specs):
        return OtaSpecs(
            vdd=specs.vdd, gbw=specs.gbw, phase_margin=specs.phase_margin,
            cload=specs.cload, input_cm_range=specs.input_cm_range,
            output_range=specs.output_range,
            slew_rate=140e6,  # well above the gm-driven ~80 V/us
        )

    @pytest.fixture(scope="class")
    def slew_sized(self, tech, slew_specs):
        return FoldedCascodePlan(tech).size(slew_specs, ParasiticMode.NONE)

    def test_slew_target_met(self, slew_sized, slew_specs):
        assert slew_sized.predicted.slew_rate >= 0.97 * slew_specs.slew_rate

    def test_gbw_not_overshot(self, slew_sized, slew_specs):
        """The surplus current goes into overdrive, not bandwidth."""
        assert slew_sized.predicted.gbw == pytest.approx(
            slew_specs.gbw, rel=0.02
        )

    def test_more_current_than_gm_driven(self, slew_sized, sized_case1):
        assert slew_sized.currents["mp5"] > 1.3 * sized_case1.currents["mp5"]

    def test_input_overdrive_opened(self, slew_sized, plan):
        assert slew_sized.overdrives["input"] > plan.veff_input + 0.02

    def test_icmr_still_honoured(self, slew_sized, slew_specs, tech):
        """Opening the overdrive must not break the upper ICMR bound."""
        from repro.mos import make_model

        model_p = make_model(tech.pmos, 1)
        vcm_max = (
            slew_specs.vdd
            - slew_sized.overdrives["tail"]
            - model_p.threshold(0.0)
            - slew_sized.overdrives["input"]
        )
        assert vcm_max >= slew_specs.input_cm_range[1] - 0.06

    def test_easy_slew_spec_changes_nothing(self, tech, specs, sized_case1):
        easy = OtaSpecs(
            vdd=specs.vdd, gbw=specs.gbw, phase_margin=specs.phase_margin,
            cload=specs.cload, input_cm_range=specs.input_cm_range,
            output_range=specs.output_range,
            slew_rate=10e6,
        )
        relaxed = FoldedCascodePlan(tech).size(easy, ParasiticMode.NONE)
        assert relaxed.currents["mp1"] == pytest.approx(
            sized_case1.currents["mp1"], rel=0.02
        )
