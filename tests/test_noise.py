"""Noise analysis against analytic references."""

import math

import numpy as np
import pytest

from repro.analysis import NoiseAnalysis, solve_dc
from repro.circuit import Circuit
from repro.errors import AnalysisError
from repro.units import BOLTZMANN, UM

TEMPERATURE = 300.15


class TestResistorNoise:
    @pytest.fixture(scope="class")
    def divider(self):
        circuit = Circuit("rdiv")
        circuit.add_vsource("vin", "in", "0", dc=0.0, ac=1.0)
        circuit.add_resistor("r1", "in", "out", 10e3)
        circuit.add_resistor("r2", "out", "0", 10e3)
        dc = solve_dc(circuit)
        return circuit, dc

    def test_output_psd_matches_parallel_resistance(self, divider):
        """Output noise of a divider = 4kT * (R1 || R2)."""
        circuit, dc = divider
        analysis = NoiseAnalysis(circuit, dc, "out", temperature=TEMPERATURE)
        result = analysis.run([1e3])
        expected = 4 * BOLTZMANN * TEMPERATURE * 5e3
        assert result.output_psd[0] == pytest.approx(expected, rel=1e-6)

    def test_white_spectrum(self, divider):
        circuit, dc = divider
        result = NoiseAnalysis(circuit, dc, "out").run([1e2, 1e6])
        assert result.output_psd[0] == pytest.approx(result.output_psd[1])

    def test_input_referred_divides_by_gain(self, divider):
        circuit, dc = divider
        result = NoiseAnalysis(circuit, dc, "out").run([1e3])
        # Divider gain is 0.5, so input PSD = output PSD / 0.25.
        assert result.input_psd[0] == pytest.approx(
            result.output_psd[0] / 0.25, rel=1e-9
        )

    def test_contributions_sum_to_total(self, divider):
        circuit, dc = divider
        result = NoiseAnalysis(circuit, dc, "out").run([1e3])
        total = sum(psd[0] for psd in result.contributions.values())
        assert total == pytest.approx(result.output_psd[0], rel=1e-12)

    def test_equal_resistors_contribute_equally(self, divider):
        circuit, dc = divider
        result = NoiseAnalysis(circuit, dc, "out").run([1e3])
        assert result.contributions["r1"][0] == pytest.approx(
            result.contributions["r2"][0], rel=1e-9
        )


class TestMosNoise:
    @pytest.fixture(scope="class")
    def amplifier(self, tech):
        circuit = Circuit("csamp")
        circuit.add_vsource("vdd", "vdd!", "0", dc=3.3)
        circuit.add_vsource("vin", "g", "0", dc=1.1, ac=1.0)
        circuit.add_resistor("rload", "vdd!", "d", 20e3)
        circuit.add_mos("m1", d="d", g="g", s="0", b="0",
                        params=tech.nmos, w=30 * UM, l=1 * UM)
        dc = solve_dc(circuit)
        return circuit, dc

    def test_input_referred_thermal_floor(self, amplifier):
        """At white frequencies, Svin ~= 4kT(2/3)/gm + 4kT R / (gm R)^2."""
        circuit, dc = amplifier
        op = dc.devices["m1"].op
        result = NoiseAnalysis(
            circuit, dc, "d", {"vdd": 0.0, "vin": 1.0}
        ).run([10e6])
        gain = op.gm / (1 / 20e3 + op.gds)
        expected = (
            4 * BOLTZMANN * TEMPERATURE * (2 / 3) * op.gm
            + 4 * BOLTZMANN * TEMPERATURE / 20e3
        ) / (op.gm / (1 / 20e3 + op.gds) * (1 / 20e3 + op.gds)) ** 2
        assert result.input_psd[0] == pytest.approx(expected, rel=0.02)

    def test_flicker_dominates_low_frequency(self, amplifier):
        circuit, dc = amplifier
        result = NoiseAnalysis(
            circuit, dc, "d", {"vdd": 0.0, "vin": 1.0}
        ).run([1.0, 10e6])
        assert result.input_psd[0] > 10 * result.input_psd[1]

    def test_flicker_slope_one_over_f(self, amplifier):
        circuit, dc = amplifier
        result = NoiseAnalysis(
            circuit, dc, "d", {"vdd": 0.0, "vin": 1.0}
        ).run([1.0, 10.0])
        assert result.input_psd[0] == pytest.approx(
            10 * result.input_psd[1], rel=0.05
        )

    def test_integrated_noise_positive(self, amplifier):
        circuit, dc = amplifier
        frequencies = np.logspace(0, 8, 60)
        result = NoiseAnalysis(
            circuit, dc, "d", {"vdd": 0.0, "vin": 1.0}
        ).run(frequencies)
        rms = result.integrated_input_noise(1.0, 1e8)
        assert rms > 0

    def test_dominant_contributor_is_device(self, amplifier):
        circuit, dc = amplifier
        frequencies = np.logspace(0, 8, 40)
        result = NoiseAnalysis(
            circuit, dc, "d", {"vdd": 0.0, "vin": 1.0}
        ).run(frequencies)
        top_name, _value = result.dominant_contributors(1)[0]
        assert top_name == "m1"

    def test_density_helper(self, amplifier):
        circuit, dc = amplifier
        frequencies = np.logspace(0, 8, 40)
        result = NoiseAnalysis(
            circuit, dc, "d", {"vdd": 0.0, "vin": 1.0}
        ).run(frequencies)
        density = result.input_density(1e6)
        assert density == pytest.approx(
            math.sqrt(np.interp(6.0, np.log10(frequencies), result.input_psd)),
            rel=1e-6,
        )


class TestValidation:
    def test_zero_drive_rejected(self):
        circuit = Circuit("silent")
        circuit.add_vsource("vin", "in", "0", dc=0.0, ac=0.0)
        circuit.add_resistor("r1", "in", "out", 1e3)
        circuit.add_resistor("r2", "out", "0", 1e3)
        dc = solve_dc(circuit)
        with pytest.raises(AnalysisError):
            NoiseAnalysis(circuit, dc, "out")

    def test_negative_frequency_rejected(self):
        circuit = Circuit("rdiv")
        circuit.add_vsource("vin", "in", "0", dc=0.0, ac=1.0)
        circuit.add_resistor("r1", "in", "out", 1e3)
        circuit.add_resistor("r2", "out", "0", 1e3)
        dc = solve_dc(circuit)
        with pytest.raises(AnalysisError):
            NoiseAnalysis(circuit, dc, "out").run([-1.0])

    def test_short_band_integration_rejected(self):
        circuit = Circuit("rdiv")
        circuit.add_vsource("vin", "in", "0", dc=0.0, ac=1.0)
        circuit.add_resistor("r1", "in", "out", 1e3)
        circuit.add_resistor("r2", "out", "0", 1e3)
        dc = solve_dc(circuit)
        result = NoiseAnalysis(circuit, dc, "out").run([1e3, 1e4])
        with pytest.raises(AnalysisError):
            result.integrated_input_noise(5e3, 6e3)
