"""Pole analysis."""

import math

import numpy as np
import pytest

from repro.analysis import solve_dc
from repro.analysis.metrics import feedback_dc_solution, measure_ota
from repro.analysis.poles import PoleSet, compute_poles, pole_sensitivity
from repro.circuit import Circuit
from repro.errors import AnalysisError


class TestAnalyticReferences:
    def test_rc_single_pole(self):
        circuit = Circuit("rc")
        circuit.add_vsource("vin", "in", "0", dc=0.0, ac=1.0)
        circuit.add_resistor("r1", "in", "out", 1e3)
        circuit.add_capacitor("c1", "out", "0", 1e-9)
        poles = compute_poles(circuit, solve_dc(circuit))
        assert poles.dominant() == pytest.approx(
            1.0 / (2 * math.pi * 1e3 * 1e-9), rel=1e-6
        )

    def test_two_independent_rc_poles(self):
        circuit = Circuit("rc2")
        circuit.add_vsource("vin", "in", "0", dc=0.0, ac=1.0)
        circuit.add_resistor("r1", "in", "a", 1e3)
        circuit.add_capacitor("c1", "a", "0", 1e-9)
        circuit.add_resistor("r2", "in", "b", 10e3)
        circuit.add_capacitor("c2", "b", "0", 1e-9)
        frequencies = compute_poles(circuit, solve_dc(circuit)).frequencies_hz
        assert frequencies[0] == pytest.approx(
            1.0 / (2 * math.pi * 1e4 * 1e-9), rel=1e-6
        )
        assert frequencies[1] == pytest.approx(
            1.0 / (2 * math.pi * 1e3 * 1e-9), rel=1e-6
        )

    def test_stability_flag(self):
        circuit = Circuit("rc")
        circuit.add_vsource("vin", "in", "0", dc=0.0, ac=1.0)
        circuit.add_resistor("r1", "in", "out", 1e3)
        circuit.add_capacitor("c1", "out", "0", 1e-9)
        assert compute_poles(circuit, solve_dc(circuit)).all_stable()

    def test_capacitor_free_circuit_rejected(self):
        circuit = Circuit("r")
        circuit.add_vsource("vin", "in", "0", dc=0.0)
        circuit.add_resistor("r1", "in", "0", 1e3)
        with pytest.raises(AnalysisError):
            compute_poles(circuit, solve_dc(circuit))


class TestOtaPoles:
    @pytest.fixture(scope="class")
    def ota_poles(self, hand_testbench):
        dc, _offset = feedback_dc_solution(hand_testbench)
        return hand_testbench, dc, compute_poles(hand_testbench.circuit, dc)

    def test_ota_is_stable(self, ota_poles):
        _tb, _dc, poles = ota_poles
        assert poles.all_stable()

    def test_dominant_pole_consistent_with_gain_and_gbw(self, ota_poles):
        """GBW ~= Adc * p1 for a dominant-pole amplifier."""
        tb, _dc, poles = ota_poles
        metrics = measure_ota(tb)
        gain = 10 ** (metrics.dc_gain_db / 20.0)
        assert poles.dominant() * gain == pytest.approx(metrics.gbw, rel=0.1)

    def test_non_dominant_poles_beyond_gbw(self, ota_poles):
        tb, _dc, poles = ota_poles
        metrics = measure_ota(tb)
        for frequency in poles.non_dominant(2):
            assert frequency > metrics.gbw

    def test_output_cap_moves_dominant_pole(self, ota_poles):
        """Extra load capacitance slows the dominant pole."""
        tb, dc, poles = ota_poles
        loaded = tb.circuit.clone("loaded")
        loaded.attach_parasitic_cap(tb.output_net, "0", 3e-12)
        slower = compute_poles(loaded, dc)
        assert slower.dominant() < 0.6 * poles.dominant()

    def test_sensitivity_flags_internal_nodes(self, ota_poles):
        """Probing internal high-frequency nodes shifts the first
        non-dominant pole; probing a bias net does not."""
        tb, dc, _poles = ota_poles
        sensitivities = pole_sensitivity(
            tb.circuit, dc,
            nets=["fold2", "mir", "x4", "vbn"],
            probe_capacitance=200e-15,
        )
        most = max(sensitivities, key=sensitivities.get)
        assert most in ("fold2", "mir", "x4")
        assert sensitivities[most] > 5 * abs(sensitivities["vbn"])

    def test_bad_pole_index_rejected(self, ota_poles):
        tb, dc, _poles = ota_poles
        with pytest.raises(AnalysisError):
            pole_sensitivity(tb.circuit, dc, ["fold1"], pole_index=999)
