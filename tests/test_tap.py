"""Substrate/well tap generator and its integration."""

import pytest

from repro.errors import LayoutError
from repro.layout.drc import DrcChecker
from repro.layout.layers import Layer
from repro.layout.tap import tap_column, taps_needed
from repro.units import UM


class TestTapColumn:
    @pytest.fixture(scope="class")
    def substrate_tap(self, tech):
        return tap_column(tech, "substrate", "0", 15 * UM, name="ntap")

    @pytest.fixture(scope="class")
    def well_tap(self, tech):
        return tap_column(tech, "well", "vdd!", 15 * UM, name="welltap")

    def test_substrate_tap_uses_p_implant(self, substrate_tap):
        assert substrate_tap.cell.shapes_on(Layer.PIMPLANT)
        assert not substrate_tap.cell.shapes_on(Layer.NWELL)

    def test_well_tap_has_well_and_n_implant(self, well_tap):
        assert well_tap.cell.shapes_on(Layer.NIMPLANT)
        wells = well_tap.cell.shapes_on(Layer.NWELL)
        assert wells and wells[0].net == "vdd!"

    def test_contacts_fill_column(self, substrate_tap, tech):
        contacts = substrate_tap.cell.shapes_on(Layer.CONTACT)
        assert len(contacts) >= 4
        assert all(s.net == "0" for s in contacts)

    def test_pin_at_top_edge(self, substrate_tap):
        pin = substrate_tap.cell.pin_rect("0")
        box = substrate_tap.cell.bbox()
        assert pin.center.y > box.center.y

    def test_drc_clean(self, substrate_tap, well_tap, tech):
        checker = DrcChecker(tech)
        checker.assert_clean(substrate_tap.cell)
        checker.assert_clean(well_tap.cell)

    def test_bad_kind_rejected(self, tech):
        with pytest.raises(LayoutError):
            tap_column(tech, "moon", "0", 15 * UM)

    def test_too_short_rejected(self, tech):
        with pytest.raises(LayoutError):
            tap_column(tech, "substrate", "0", 0.1 * UM)


class TestTapPitchRule:
    def test_narrow_row_one_tap(self, tech):
        assert taps_needed(20 * UM, tech) == 1

    def test_wide_row_more_taps(self, tech):
        pitch = tech.rules.well_contact_pitch
        assert taps_needed(2.5 * pitch, tech) == 3


class TestOtaIntegration:
    def test_ota_includes_both_taps(self, ota_layout):
        assert "ntap" in ota_layout.placements
        assert "welltap" in ota_layout.placements

    def test_taps_tie_the_rails(self, ota_layout):
        ntap = ota_layout.placements["ntap"]
        welltap = ota_layout.placements["welltap"]
        assert "0" in ntap.layout.cell.pins
        assert "vdd!" in welltap.layout.cell.pins

    def test_tap_in_dsl(self, tech):
        from repro.layout.cairo import CairoProgram

        program = CairoProgram(tech)
        program.device("m", "n", 20 * UM, 1 * UM, ("d", "g", "s", "0"), nf=2)
        program.tap("ptap", "substrate", "0", 10 * UM)
        program.row("m", "ptap")
        cell, report = program.generate()
        DrcChecker(tech).assert_clean(cell)
        assert report.net_capacitance.get("0", 0.0) > 0
