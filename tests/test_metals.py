"""Interconnect layer electrical model."""

import dataclasses

import pytest
from hypothesis import given, strategies as st

from repro.errors import TechnologyError
from repro.technology.metals import MetalLayer
from repro.units import UM


@pytest.fixture(scope="module")
def metal():
    return MetalLayer(
        name="metal1",
        area_cap=0.035e-3,
        fringe_cap=0.046e-9,
        coupling_cap=0.085e-9,
        min_spacing=0.9 * UM,
        sheet_resistance=0.07,
        max_current_density=1.0e3,
    )


class TestWireCapacitance:
    def test_area_plus_fringe(self, metal):
        length, width = 100 * UM, 1 * UM
        expected = metal.area_cap * length * width + 2 * metal.fringe_cap * length
        assert metal.wire_capacitance(length, width) == pytest.approx(expected)

    def test_zero_length_wire(self, metal):
        assert metal.wire_capacitance(0.0, 1 * UM) == 0.0

    def test_negative_dimensions_rejected(self, metal):
        with pytest.raises(ValueError):
            metal.wire_capacitance(-1.0, 1.0)

    @given(
        st.floats(min_value=1e-7, max_value=1e-3),
        st.floats(min_value=1e-7, max_value=1e-5),
    )
    def test_monotonic_in_length(self, length, width):
        metal = MetalLayer(
            "m", 0.03e-3, 0.04e-9, 0.08e-9, 1e-6, 0.07, 1e3
        )
        assert metal.wire_capacitance(2 * length, width) > metal.wire_capacitance(
            length, width
        )


class TestCouplingCapacitance:
    def test_min_spacing_reference(self, metal):
        run = 50 * UM
        value = metal.coupling_capacitance(run, metal.min_spacing)
        assert value == pytest.approx(metal.coupling_cap * run)

    def test_decays_with_spacing(self, metal):
        run = 50 * UM
        near = metal.coupling_capacitance(run, metal.min_spacing)
        far = metal.coupling_capacitance(run, 3 * metal.min_spacing)
        assert far == pytest.approx(near / 3)

    def test_zero_run_is_zero(self, metal):
        assert metal.coupling_capacitance(0.0, metal.min_spacing) == 0.0

    def test_zero_spacing_rejected(self, metal):
        with pytest.raises(ValueError):
            metal.coupling_capacitance(1e-6, 0.0)


class TestResistanceAndEm:
    def test_square_count(self, metal):
        resistance = metal.wire_resistance(10 * UM, 1 * UM)
        assert resistance == pytest.approx(10 * metal.sheet_resistance)

    def test_zero_width_rejected(self, metal):
        with pytest.raises(ValueError):
            metal.wire_resistance(1e-6, 0.0)

    def test_em_width_small_current_uses_minimum(self, metal):
        width = metal.min_width_for_current(0.1e-3, 0.9 * UM)
        assert width == pytest.approx(0.9 * UM)

    def test_em_width_large_current(self, metal):
        # 5 mA at 1 mA/um needs 5 um.
        width = metal.min_width_for_current(5e-3, 0.9 * UM)
        assert width == pytest.approx(5 * UM)

    def test_em_width_uses_magnitude(self, metal):
        assert metal.min_width_for_current(-5e-3, 0.9 * UM) == pytest.approx(
            metal.min_width_for_current(5e-3, 0.9 * UM)
        )


class TestValidation:
    def test_valid_layer(self, metal):
        metal.validate()

    def test_nameless_layer_rejected(self, metal):
        broken = dataclasses.replace(metal, name="")
        with pytest.raises(TechnologyError):
            broken.validate()

    def test_nonpositive_field_rejected(self, metal):
        broken = dataclasses.replace(metal, area_cap=0.0)
        with pytest.raises(TechnologyError):
            broken.validate()
