"""Crash-safe run journal and deterministic resume.

Contract under test (the durability tentpole): every long-running driver
— Table-1 batches, Monte-Carlo shards, synthesis rounds — journals each
completed unit of work durably, a kill at ANY journal boundary leaves a
valid-JSONL journal, and ``--resume`` reproduces the uninterrupted run's
results bit-identically: ``CaseResult.fingerprint()``, Monte-Carlo
statistics and synthesis warm-start chains included.
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import threading

import pytest

from repro.analysis.montecarlo import run_monte_carlo
from repro.core.batch import BatchTask, run_batch
from repro.core.synthesis import LayoutOrientedSynthesizer
from repro.errors import AnalysisError, JournalError, RunInterrupted
from repro.ioutil import atomic_write
from repro.resilience import faults
from repro.resilience.faults import SimulatedKill
from repro.resilience.journal import (
    JOURNAL_FILENAME,
    JOURNAL_SCHEMA,
    RunJournal,
)
from repro.sizing.specs import ParasiticMode


def journal_lines(run_dir):
    """Parse every line of the journal — fails if any line is invalid."""
    path = os.path.join(str(run_dir), JOURNAL_FILENAME)
    with open(path, "r", encoding="utf-8") as handle:
        raw = handle.read()
    assert raw.endswith("\n"), "journal does not end in a newline"
    return [json.loads(line) for line in raw.splitlines() if line.strip()]


class TestAtomicWrite:
    def test_writes_text_and_bytes(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write(str(path), "hello\n")
        assert path.read_text() == "hello\n"
        atomic_write(str(path), b"\x00\x01")
        assert path.read_bytes() == b"\x00\x01"

    def test_replaces_existing_content(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        atomic_write(str(path), "new")
        assert path.read_text() == "new"

    def test_leaves_no_temp_files(self, tmp_path):
        atomic_write(str(tmp_path / "a.json"), "{}")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["a.json"]


class TestJournalCore:
    def test_create_writes_schema_header(self, tmp_path):
        journal = RunJournal.create(str(tmp_path / "run"), "demo", {"n": 3})
        journal.close()
        header = journal_lines(tmp_path / "run")[0]
        assert header["type"] == "header"
        assert header["schema"] == JOURNAL_SCHEMA
        assert header["kind"] == "demo"
        assert header["config"] == {"n": 3}

    def test_create_refuses_existing_journal(self, tmp_path):
        RunJournal.create(str(tmp_path), "demo").close()
        with pytest.raises(JournalError, match="already exists"):
            RunJournal.create(str(tmp_path), "demo")

    def test_record_and_resume_round_trip(self, tmp_path):
        with RunJournal.create(str(tmp_path), "demo") as journal:
            journal.record("unit.a", {"x": 1.5}, label="a")
            journal.record("unit.b", [1, 2, 3])
            journal.complete()
        resumed = RunJournal.resume(str(tmp_path), kind="demo")
        assert resumed.resumed_unit_count == 2
        assert resumed.is_complete
        assert sorted(resumed.keys()) == ["unit.a", "unit.b"]
        assert resumed.result("unit.a") == {"x": 1.5}
        assert resumed.result_or_none("unit.b") == [1, 2, 3]
        assert resumed.result_or_none("unit.c") is None
        assert resumed.unit_meta("unit.a")["label"] == "a"
        assert "payload" not in resumed.unit_meta("unit.a")

    def test_duplicate_key_refused(self, tmp_path):
        with RunJournal.create(str(tmp_path), "demo") as journal:
            journal.record("unit.a", 1)
            with pytest.raises(JournalError, match="already journaled"):
                journal.record("unit.a", 2)

    def test_resume_missing_journal_raises(self, tmp_path):
        with pytest.raises(JournalError, match="no journal to resume"):
            RunJournal.resume(str(tmp_path / "nope"))

    def test_resume_rejects_wrong_kind(self, tmp_path):
        RunJournal.create(str(tmp_path), "table1").close()
        with pytest.raises(JournalError, match="not a 'flows' run"):
            RunJournal.resume(str(tmp_path), kind="flows")

    def test_resume_rejects_different_config(self, tmp_path):
        RunJournal.create(str(tmp_path), "demo", {"seed": 1}).close()
        with pytest.raises(JournalError, match="different run"):
            RunJournal.resume(str(tmp_path), kind="demo", config={"seed": 2})

    def test_config_normalizes_tuples_to_lists(self, tmp_path):
        RunJournal.create(str(tmp_path), "demo", {"span": (0, 4)}).close()
        resumed = RunJournal.resume(
            str(tmp_path), kind="demo", config={"span": [0, 4]}
        )
        assert resumed.config == {"span": [0, 4]}

    def test_unserialisable_config_rejected(self, tmp_path):
        with pytest.raises(JournalError, match="JSON-serialisable"):
            RunJournal.create(str(tmp_path), "demo", {"f": object()})

    def test_torn_tail_self_heals(self, tmp_path):
        with RunJournal.create(str(tmp_path), "demo") as journal:
            journal.record("unit.a", 1)
            journal.record("unit.b", 2)
        path = tmp_path / JOURNAL_FILENAME
        with open(path, "ab") as handle:
            handle.write(b'{"type": "unit", "seq": 2, "key": "unit.c"')
        resumed = RunJournal.resume(str(tmp_path), kind="demo")
        assert sorted(resumed.keys()) == ["unit.a", "unit.b"]
        # The file was truncated back to valid JSONL on disk.
        assert [r["type"] for r in journal_lines(tmp_path)] == [
            "header", "unit", "unit",
        ]

    def test_terminated_corrupt_line_raises(self, tmp_path):
        RunJournal.create(str(tmp_path), "demo").close()
        with open(tmp_path / JOURNAL_FILENAME, "ab") as handle:
            handle.write(b"not json at all\n")
        with pytest.raises(JournalError, match="malformed journal line"):
            RunJournal.resume(str(tmp_path))

    def test_fully_torn_file_raises(self, tmp_path):
        tmp_path.joinpath(JOURNAL_FILENAME).write_bytes(b'{"type": "hea')
        with pytest.raises(JournalError, match="no journal header"):
            RunJournal.resume(str(tmp_path))

    def test_unknown_record_types_skipped(self, tmp_path):
        with RunJournal.create(str(tmp_path), "demo") as journal:
            journal.record("unit.a", 1)
        with open(tmp_path / JOURNAL_FILENAME, "a", encoding="utf-8") as fh:
            fh.write('{"type": "note", "text": "future extension"}\n')
        resumed = RunJournal.resume(str(tmp_path), kind="demo")
        assert resumed.keys() == ["unit.a"]

    def test_resumed_journal_appends_after_last_seq(self, tmp_path):
        with RunJournal.create(str(tmp_path), "demo") as journal:
            journal.record("unit.a", 1)
        with RunJournal.resume(str(tmp_path)) as resumed:
            resumed.record("unit.b", 2)
        seqs = [
            r["seq"] for r in journal_lines(tmp_path) if r["type"] == "unit"
        ]
        assert seqs == [0, 1]

    def test_complete_is_idempotent(self, tmp_path):
        with RunJournal.create(str(tmp_path), "demo") as journal:
            journal.complete()
            journal.complete()
        types = [r["type"] for r in journal_lines(tmp_path)]
        assert types.count("complete") == 1


@pytest.mark.faults
class TestJournalFaultSites:
    def test_journal_write_fault_raises(self, tmp_path):
        with RunJournal.create(str(tmp_path), "demo") as journal:
            with faults.inject(
                "journal.write", error=AnalysisError("disk full")
            ):
                with pytest.raises(AnalysisError, match="disk full"):
                    journal.record("unit.a", 1)
            # The failed write journaled nothing; the key is still free.
            journal.record("unit.a", 1)
        assert RunJournal.resume(str(tmp_path)).keys() == ["unit.a"]

    def test_process_kill_fires_after_durable_append(self, tmp_path):
        with RunJournal.create(str(tmp_path), "demo") as journal:
            journal.record("unit.a", 1)
            with pytest.raises(SimulatedKill):
                with faults.inject("process.kill"):
                    journal.record("unit.b", 2)
        # The unit that triggered the kill is already on disk.
        resumed = RunJournal.resume(str(tmp_path))
        assert sorted(resumed.keys()) == ["unit.a", "unit.b"]

    def test_arm_from_env_parses_spec(self):
        armed = faults.arm_from_env(
            {"REPRO_FAULTS": "process.kill:at=2,action=crash; mc.worker:index=1"}
        )
        try:
            assert [f.site for f in armed] == ["process.kill", "mc.worker"]
            assert armed[0].at == 2
            assert armed[0].action == "crash"
            assert armed[1].index == 1
            assert faults.active()
        finally:
            faults.disarm_all()
        assert not faults.active()

    def test_arm_from_env_unset_is_noop(self):
        assert faults.arm_from_env({}) == []
        assert not faults.active()

    def test_arm_from_env_rejects_unknown_option(self):
        with pytest.raises(ValueError, match="unknown option"):
            faults.arm_from_env({"REPRO_FAULTS": "process.kill:when=later"})
        faults.disarm_all()


class TestShutdownGuard:
    def test_signal_converts_to_clean_interrupt(self, tmp_path):
        with RunJournal.create(str(tmp_path), "demo") as journal:
            with journal.shutdown_guard():
                assert not journal.interrupted
                journal.check_interrupt("before")  # no-op without a signal
                os.kill(os.getpid(), signal.SIGTERM)
                assert journal.interrupted
                with pytest.raises(RunInterrupted) as excinfo:
                    journal.check_interrupt("unit.boundary")
        error = excinfo.value
        assert error.site == "unit.boundary"
        assert error.signal_name == "SIGTERM"
        assert error.journal is journal

    def test_guard_restores_previous_handlers(self, tmp_path):
        before = signal.getsignal(signal.SIGTERM)
        with RunJournal.create(str(tmp_path), "demo") as journal:
            with journal.shutdown_guard():
                assert signal.getsignal(signal.SIGTERM) is not before
        assert signal.getsignal(signal.SIGTERM) is before

    def test_guard_is_noop_off_main_thread(self, tmp_path):
        outcome = {}

        def body():
            with RunJournal.create(str(tmp_path), "demo") as journal:
                with journal.shutdown_guard():
                    outcome["ok"] = True

        thread = threading.Thread(target=body)
        thread.start()
        thread.join()
        assert outcome == {"ok": True}


def _cheap_tasks(specs):
    """Two fast non-layout cases (sizing only, no synthesis loop)."""
    return [
        BatchTask(kind="case", technology="0.6um", specs=specs,
                  mode=mode.name)
        for mode in (ParasiticMode.NONE, ParasiticMode.SINGLE_FOLD)
    ]


@pytest.fixture(scope="module")
def cheap_fingerprints(specs):
    clean = run_batch(_cheap_tasks(specs), jobs=1)
    return [result.fingerprint() for result in clean.results]


@pytest.mark.faults
class TestBatchKillResume:
    def test_serial_kill_at_every_boundary(
        self, specs, cheap_fingerprints, tmp_path
    ):
        for at in (1, 2):
            run_dir = str(tmp_path / f"serial.{at}")
            journal = RunJournal.create(run_dir, "table1")
            with pytest.raises(SimulatedKill):
                with faults.inject("process.kill", at=at) as fault:
                    run_batch(_cheap_tasks(specs), jobs=1, journal=journal)
            journal.close()
            assert fault.fired == 1
            journal_lines(run_dir)  # valid JSONL after the kill
            resumed = RunJournal.resume(run_dir, kind="table1")
            assert resumed.resumed_unit_count == at
            batch = run_batch(_cheap_tasks(specs), jobs=1, journal=resumed)
            resumed.complete()
            resumed.close()
            assert [
                r.fingerprint() for r in batch.results
            ] == cheap_fingerprints
            statuses = [s.status for s in batch.statuses]
            assert statuses[:at] == ["journaled"] * at

    def test_pooled_kill_then_resume(
        self, specs, cheap_fingerprints, tmp_path
    ):
        journal = RunJournal.create(str(tmp_path), "table1")
        with pytest.raises(SimulatedKill):
            with faults.inject("process.kill", at=1):
                run_batch(_cheap_tasks(specs), jobs=2, journal=journal)
        journal.close()
        resumed = RunJournal.resume(str(tmp_path), kind="table1")
        assert resumed.resumed_unit_count >= 1
        batch = run_batch(_cheap_tasks(specs), jobs=2, journal=resumed)
        resumed.close()
        assert [r.fingerprint() for r in batch.results] == cheap_fingerprints

    def test_serial_interrupt_stops_before_work(self, specs, tmp_path):
        journal = RunJournal.create(str(tmp_path), "table1")
        journal._interrupt_signal = "SIGINT"
        with pytest.raises(RunInterrupted):
            run_batch(_cheap_tasks(specs), jobs=1, journal=journal)
        journal.close()
        assert len(RunJournal.resume(str(tmp_path)).keys()) == 0

    def test_pooled_interrupt_drains_in_flight_work(
        self, specs, cheap_fingerprints, tmp_path
    ):
        journal = RunJournal.create(str(tmp_path), "table1")
        # The signal "arrives" before collection starts: both tasks are
        # already submitted, so the drain must wait for them, journal
        # both results, and only then stop.
        journal._interrupt_signal = "SIGTERM"
        with pytest.raises(RunInterrupted) as excinfo:
            run_batch(_cheap_tasks(specs), jobs=2, journal=journal)
        journal.close()
        assert excinfo.value.site == "batch.drain"
        resumed = RunJournal.resume(str(tmp_path), kind="table1")
        assert resumed.resumed_unit_count == 2
        batch = run_batch(_cheap_tasks(specs), jobs=2, journal=resumed)
        resumed.close()
        assert [s.status for s in batch.statuses] == ["journaled"] * 2
        assert [r.fingerprint() for r in batch.results] == cheap_fingerprints


@pytest.fixture(scope="module")
def clean_case4(tech, specs):
    """An uninterrupted case-4 synthesis run (the resume reference)."""
    return LayoutOrientedSynthesizer(tech).run(
        specs, mode=ParasiticMode.FULL, generate=False
    )


def _assert_outcomes_identical(resumed, clean):
    assert resumed.layout_calls == clean.layout_calls
    assert resumed.converged == clean.converged
    assert resumed.diagnostics == clean.diagnostics
    for got, ref in zip(resumed.records, clean.records):
        assert got.round_index == ref.round_index
        assert got.distance == ref.distance
        assert pickle.dumps(got.sizing.sizes) == pickle.dumps(
            ref.sizing.sizes
        )
    assert pickle.dumps(resumed.sizing.sizes) == pickle.dumps(
        clean.sizing.sizes
    )


@pytest.mark.faults
class TestSynthesisKillResume:
    def test_kill_at_every_round_boundary(self, tech, specs, clean_case4, tmp_path):
        """Walk the whole kill matrix: killed after round k for every k,
        the resumed run must replay rounds 1..k (warm-start chain
        included) and finish bit-identical to the uninterrupted run."""
        boundaries = clean_case4.layout_calls
        assert boundaries >= 2
        for at in range(1, boundaries + 1):
            run_dir = str(tmp_path / f"kill.{at}")
            journal = RunJournal.create(run_dir, "synthesize")
            with pytest.raises(SimulatedKill):
                with faults.inject("process.kill", at=at) as fault:
                    LayoutOrientedSynthesizer(tech).run(
                        specs, mode=ParasiticMode.FULL, generate=False,
                        journal=journal,
                    )
            journal.close()
            assert fault.fired == 1
            journal_lines(run_dir)  # valid JSONL after the kill
            resumed_journal = RunJournal.resume(run_dir, kind="synthesize")
            assert resumed_journal.resumed_unit_count == at
            resumed = LayoutOrientedSynthesizer(tech).run(
                specs, mode=ParasiticMode.FULL, generate=False,
                journal=resumed_journal,
            )
            resumed_journal.complete()
            resumed_journal.close()
            _assert_outcomes_identical(resumed, clean_case4)

    def test_interrupt_at_round_boundary_is_resumable(
        self, tech, specs, clean_case4, tmp_path
    ):
        journal = RunJournal.create(str(tmp_path), "synthesize")
        journal._interrupt_signal = "SIGINT"
        with pytest.raises(RunInterrupted) as excinfo:
            LayoutOrientedSynthesizer(tech).run(
                specs, mode=ParasiticMode.FULL, generate=False,
                journal=journal,
            )
        journal.close()
        assert excinfo.value.site == "synthesis.round"
        resumed_journal = RunJournal.resume(str(tmp_path), kind="synthesize")
        resumed = LayoutOrientedSynthesizer(tech).run(
            specs, mode=ParasiticMode.FULL, generate=False,
            journal=resumed_journal,
        )
        resumed_journal.close()
        _assert_outcomes_identical(resumed, clean_case4)


@pytest.fixture(scope="module")
def mc_testbench():
    from repro.perf import default_testbench

    return default_testbench()


@pytest.fixture(scope="module")
def clean_mc_samples(mc_testbench):
    result = run_monte_carlo(mc_testbench, runs=12, seed=77, workers=4)
    assert result.n_failed == 0
    return result.samples


@pytest.mark.faults
class TestMonteCarloKillResume:
    def test_kill_at_every_shard_boundary(
        self, mc_testbench, clean_mc_samples, tmp_path
    ):
        """workers=4 partitions 12 pre-drawn samples into 4 shards; a
        kill after any shard's journal append must resume to statistics
        bit-identical to the uninterrupted pooled run."""
        for at in range(1, 5):
            run_dir = str(tmp_path / f"kill.{at}")
            journal = RunJournal.create(run_dir, "mc")
            with pytest.raises(SimulatedKill):
                with faults.inject("process.kill", at=at) as fault:
                    run_monte_carlo(
                        mc_testbench, runs=12, seed=77, workers=4,
                        journal=journal,
                    )
            journal.close()
            assert fault.fired == 1
            journal_lines(run_dir)  # valid JSONL after the kill
            resumed_journal = RunJournal.resume(run_dir, kind="mc")
            assert resumed_journal.resumed_unit_count == at
            resumed = run_monte_carlo(
                mc_testbench, runs=12, seed=77, workers=4,
                journal=resumed_journal,
            )
            resumed_journal.complete()
            resumed_journal.close()
            assert resumed.samples == clean_mc_samples
            statuses = [s.status for s in resumed.shards]
            assert statuses.count("journaled") == at

    def test_resume_with_different_worker_count_is_identical(
        self, mc_testbench, clean_mc_samples, tmp_path
    ):
        """The shard partition follows the worker count, so a journal
        recorded at workers=4 offers no skippable spans at workers=2 —
        but the pre-drawn samples still make the statistics identical."""
        journal = RunJournal.create(str(tmp_path), "mc")
        with pytest.raises(SimulatedKill):
            with faults.inject("process.kill", at=2):
                run_monte_carlo(
                    mc_testbench, runs=12, seed=77, workers=4,
                    journal=journal,
                )
        journal.close()
        resumed_journal = RunJournal.resume(str(tmp_path), kind="mc")
        resumed = run_monte_carlo(
            mc_testbench, runs=12, seed=77, workers=2,
            journal=resumed_journal,
        )
        resumed_journal.close()
        assert resumed.samples == clean_mc_samples

    def test_serial_run_journals_one_shard(
        self, mc_testbench, clean_mc_samples, tmp_path
    ):
        journal = RunJournal.create(str(tmp_path), "mc")
        first = run_monte_carlo(
            mc_testbench, runs=12, seed=77, workers=1, journal=journal
        )
        assert journal.keys() == ["mc.shard.0.12"]
        # A second pass restores the journaled shard without re-running.
        replay = run_monte_carlo(
            mc_testbench, runs=12, seed=77, workers=1, journal=journal
        )
        journal.close()
        assert replay.samples == first.samples == clean_mc_samples


class TestCliJournalFlags:
    def test_flags_parse(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(["table1", "--journal", "run.d"])
        assert args.journal == "run.d"
        assert args.resume is None
        args = build_parser().parse_args(["synthesize", "--resume", "run.d"])
        assert args.resume == "run.d"

    def test_journal_and_resume_mutually_exclusive(self):
        from repro.__main__ import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["flows", "--journal", "a", "--resume", "b"]
            )

    def test_resume_missing_run_dir_fails_cleanly(self, tmp_path, capsys):
        from repro.__main__ import main

        code = main(
            ["synthesize", "--resume", str(tmp_path / "missing")]
        )
        assert code == 2
        assert "no journal to resume" in capsys.readouterr().err

    def test_resume_rejects_different_specs(self, tmp_path, capsys):
        from repro.__main__ import main

        run_dir = str(tmp_path / "run")
        with faults.inject("process.kill", at=1):
            with pytest.raises(SimulatedKill):
                main(["synthesize", "--gbw", "30", "--cload", "2",
                      "--journal", run_dir])
        code = main(["synthesize", "--gbw", "42", "--cload", "2",
                     "--resume", run_dir])
        assert code == 2
        assert "different run" in capsys.readouterr().err

    def test_report_interrupt_exit_code(self, tmp_path, capsys):
        from repro.__main__ import EXIT_INTERRUPTED, _report_interrupt

        with RunJournal.create(str(tmp_path), "demo") as journal:
            journal.record("unit.a", 1)
            error = RunInterrupted(
                "stop", site="x", signal_name="SIGINT", journal=journal
            )
            assert _report_interrupt(error) == EXIT_INTERRUPTED
        err = capsys.readouterr().err
        assert "1 completed unit(s) checkpointed" in err
        assert f"--resume {journal.run_dir}" in err


@pytest.mark.faults
class TestCliKillResume:
    def test_synthesize_kill_then_resume_end_to_end(self, tmp_path, capsys):
        from repro.__main__ import main

        argv = ["synthesize", "--gbw", "30", "--cload", "2"]
        assert main(argv) == 0
        clean_out = capsys.readouterr().out

        run_dir = str(tmp_path / "run")
        with faults.inject("process.kill", at=2):
            with pytest.raises(SimulatedKill):
                main(argv + ["--journal", run_dir])
        capsys.readouterr()
        assert main(argv + ["--resume", run_dir]) == 0
        captured = capsys.readouterr()
        assert "resuming synthesize run" in captured.err
        # Everything except the wall-clock line is identical.
        clean_lines = clean_out.splitlines()
        resumed_lines = captured.out.splitlines()
        assert resumed_lines[0].startswith("converged in")
        assert resumed_lines[1:] == clean_lines[1:]
