"""Topology generators."""

import pytest

from repro.analysis import solve_dc
from repro.circuit.topologies import (
    FOLDED_CASCODE_DEVICES,
    DeviceSize,
    FoldedCascodeDesign,
    TwoStageDesign,
    build_current_mirror,
    build_diff_pair,
    build_folded_cascode,
    build_two_stage,
)
from repro.errors import CircuitError
from repro.units import PF, UM


class TestFoldedCascode:
    def test_all_devices_present(self, hand_testbench):
        names = {m.name for m in hand_testbench.circuit.mos_devices}
        assert names == set(FOLDED_CASCODE_DEVICES)

    def test_output_net_exists(self, hand_testbench):
        assert "vout" in hand_testbench.circuit.nets

    def test_load_capacitor(self, hand_testbench):
        cload = hand_testbench.circuit.element("cload")
        assert cload.value == pytest.approx(3 * PF)

    def test_slew_device_is_tail(self, hand_testbench):
        assert hand_testbench.slew_devices == ("mp5",)

    def test_input_pair_shares_tail(self, hand_testbench):
        mp1 = hand_testbench.circuit.mos("mp1")
        mp2 = hand_testbench.circuit.mos("mp2")
        assert mp1.s == mp2.s == "tail"

    def test_mirror_gates_at_mir_node(self, hand_testbench):
        mp3 = hand_testbench.circuit.mos("mp3")
        mp4 = hand_testbench.circuit.mos("mp4")
        assert mp3.g == mp4.g == "mir"

    def test_cascode_output_stacking(self, hand_testbench):
        mn2c = hand_testbench.circuit.mos("mn2c")
        mp4c = hand_testbench.circuit.mos("mp4c")
        assert mn2c.d == "vout"
        assert mp4c.d == "vout"

    def test_missing_device_size_rejected(self, tech):
        design = FoldedCascodeDesign(
            technology=tech,
            sizes={"mp1": DeviceSize(w=10 * UM, l=1 * UM)},
            biases={"vp1": 2.0, "vbn": 1.0, "vc1": 1.5, "vc3": 1.8},
            vdd=3.3,
            vcm=1.2,
            cload=3 * PF,
        )
        with pytest.raises(CircuitError):
            build_folded_cascode(design)

    def test_missing_bias_rejected(self, tech, hand_sized):
        sizes, _ = hand_sized
        design = FoldedCascodeDesign(
            technology=tech,
            sizes={k: DeviceSize(w=w, l=l) for k, (w, l) in sizes.items()},
            biases={"vp1": 2.0},
            vdd=3.3,
            vcm=1.2,
            cload=3 * PF,
        )
        with pytest.raises(CircuitError):
            build_folded_cascode(design)

    def test_extra_net_caps_attached(self, tech, hand_sized):
        sizes, _ = hand_sized
        design = FoldedCascodeDesign(
            technology=tech,
            sizes={k: DeviceSize(w=w, l=l) for k, (w, l) in sizes.items()},
            biases={"vp1": 2.2, "vbn": 1.0, "vc1": 1.5, "vc3": 1.75},
            vdd=3.3,
            vcm=1.2,
            cload=3 * PF,
            extra_net_caps={"fold1": 50e-15},
            coupling_caps={("fold1", "fold2"): 10e-15},
        )
        bench = build_folded_cascode(design)
        assert bench.circuit.total_parasitic_on_net("fold1") == pytest.approx(
            60e-15
        )

    def test_devices_saturate_at_bias(self, hand_testbench):
        solution = solve_dc(hand_testbench.circuit)
        for name, device in solution.devices.items():
            assert device.op.region.value == "saturation", name


class TestDiffPair:
    def test_dc_splits_tail_current(self, tech):
        bench = build_diff_pair(
            tech, w=100 * UM, l=1 * UM, tail_current=200e-6,
            load_resistance=10e3,
        )
        solution = solve_dc(bench.circuit)
        assert solution.devices["m1"].op.id == pytest.approx(100e-6, rel=1e-6)
        assert solution.devices["m2"].op.id == pytest.approx(100e-6, rel=1e-6)

    def test_output_level(self, tech):
        bench = build_diff_pair(
            tech, w=100 * UM, l=1 * UM, tail_current=200e-6,
            load_resistance=10e3, vdd=3.3,
        )
        solution = solve_dc(bench.circuit)
        assert solution.voltage("vout") == pytest.approx(3.3 - 1.0, rel=1e-6)

    def test_invalid_parameters_rejected(self, tech):
        with pytest.raises(CircuitError):
            build_diff_pair(tech, w=100 * UM, l=1 * UM,
                            tail_current=0.0, load_resistance=10e3)


class TestCurrentMirrorCircuit:
    def test_output_ratios(self, tech):
        circuit = build_current_mirror(
            tech, reference_current=50e-6, ratios=[2, 4],
            unit_width=10 * UM, length=2 * UM,
        )
        solution = solve_dc(circuit)
        reference = abs(solution.devices["m1"].op.id)
        assert abs(solution.devices["m2"].op.id) == pytest.approx(
            2 * reference, rel=0.05
        )
        assert abs(solution.devices["m3"].op.id) == pytest.approx(
            4 * reference, rel=0.08
        )

    def test_pmos_variant(self, tech):
        circuit = build_current_mirror(
            tech, reference_current=50e-6, ratios=[2],
            unit_width=20 * UM, length=2 * UM, polarity="p",
        )
        solution = solve_dc(circuit)
        assert abs(solution.devices["m2"].op.id) == pytest.approx(
            2 * abs(solution.devices["m1"].op.id), rel=0.05
        )

    def test_empty_ratios_rejected(self, tech):
        with pytest.raises(CircuitError):
            build_current_mirror(tech, 50e-6, [], 10 * UM, 2 * UM)


class TestTwoStage:
    @pytest.fixture(scope="class")
    def two_stage_bench(self, tech):
        sizes = {
            "m1": DeviceSize(w=30 * UM, l=1 * UM),
            "m2": DeviceSize(w=30 * UM, l=1 * UM),
            "m3": DeviceSize(w=15 * UM, l=1 * UM),
            "m4": DeviceSize(w=15 * UM, l=1 * UM),
            "m5": DeviceSize(w=30 * UM, l=1 * UM),
            "m6": DeviceSize(w=120 * UM, l=0.8 * UM),
            "m7": DeviceSize(w=60 * UM, l=0.8 * UM),
        }
        from repro.mos import make_model

        mn = make_model(tech.nmos, 1)
        design = TwoStageDesign(
            technology=tech,
            sizes=sizes,
            vbn=mn.threshold(0.0) + 0.2,
            vdd=3.3,
            vcm=1.4,
            cload=3 * PF,
            cc=0.8 * PF,
        )
        return build_two_stage(design)

    def test_miller_cap_present(self, two_stage_bench):
        assert "cc" in two_stage_bench.circuit

    def test_dc_converges(self, two_stage_bench):
        solution = solve_dc(two_stage_bench.circuit)
        assert 0.1 < solution.voltage("vout") < 3.2

    def test_nulling_resistor_variant(self, tech, two_stage_bench):
        sizes = {
            name: DeviceSize(w=m.w, l=m.l)
            for name, m in (
                (d.name, d) for d in two_stage_bench.circuit.mos_devices
            )
        }
        design = TwoStageDesign(
            technology=tech, sizes=sizes, vbn=0.95, vdd=3.3, vcm=1.4,
            cload=3 * PF, cc=0.8 * PF, rz=1e3,
        )
        bench = build_two_stage(design)
        assert "rz" in bench.circuit

    def test_zero_cc_rejected(self, tech, two_stage_bench):
        sizes = {
            d.name: DeviceSize(w=d.w, l=d.l)
            for d in two_stage_bench.circuit.mos_devices
        }
        design = TwoStageDesign(
            technology=tech, sizes=sizes, vbn=0.95, vdd=3.3, vcm=1.4,
            cload=3 * PF, cc=0.0,
        )
        with pytest.raises(CircuitError):
            build_two_stage(design)
