"""Table-1 case harness: case 4 end to end, cross-case structure."""

import pytest

from repro.core.cases import run_case
from repro.sizing.specs import ParasiticMode


class TestCaseFour:
    """The layout-oriented flow's headline column."""

    def test_synthesized_meets_specs(self, case4_result, specs):
        metrics = case4_result.synthesized
        assert metrics.gbw == pytest.approx(specs.gbw, rel=0.015)
        assert metrics.phase_margin_deg == pytest.approx(
            specs.phase_margin, abs=0.8
        )

    def test_extracted_matches_synthesized_gbw(self, case4_result):
        """Paper case 4: 'All results match the extracted netlist
        simulations.'"""
        synthesized = case4_result.synthesized
        extracted = case4_result.extracted
        assert extracted.gbw == pytest.approx(synthesized.gbw, rel=0.03)

    def test_extracted_matches_synthesized_pm(self, case4_result):
        assert case4_result.extracted.phase_margin_deg == pytest.approx(
            case4_result.synthesized.phase_margin_deg, abs=1.5
        )

    def test_extracted_meets_specs(self, case4_result, specs):
        extracted = case4_result.extracted
        assert extracted.gbw >= specs.gbw * 0.97
        assert extracted.phase_margin_deg >= specs.phase_margin - 1.5

    def test_gain_agreement(self, case4_result):
        assert case4_result.extracted.dc_gain_db == pytest.approx(
            case4_result.synthesized.dc_gain_db, abs=1.0
        )

    def test_power_agreement(self, case4_result):
        assert case4_result.extracted.power == pytest.approx(
            case4_result.synthesized.power, rel=0.02
        )

    def test_layout_calls_recorded(self, case4_result):
        assert 2 <= case4_result.layout_calls <= 6

    def test_layout_generated(self, case4_result):
        assert case4_result.layout.cell is not None

    def test_offset_sub_millivolt(self, case4_result):
        assert abs(case4_result.extracted.offset_voltage) < 1e-3

    def test_extracted_devices_use_drawn_widths(self, case4_result):
        """Extraction simulates the snapped geometry (the offset source)."""
        report = case4_result.layout.report
        for name, info in report.devices.items():
            assert info.actual_width > 0
            assert abs(info.width_error) < 0.05


class TestCaseOneDegradation:
    """Paper case 1: ignoring parasitics costs GBW and phase margin."""

    @pytest.fixture(scope="class")
    def case1(self, tech, specs):
        return run_case(tech, specs, ParasiticMode.NONE)

    def test_no_layout_calls_during_sizing(self, case1):
        assert case1.layout_calls == 0

    def test_extracted_gbw_degrades(self, case1, specs):
        assert case1.extracted.gbw < 0.95 * specs.gbw

    def test_extracted_pm_degrades(self, case1, specs):
        """Paper: 65.3 synthesized -> 56.3 extracted."""
        assert case1.extracted.phase_margin_deg < specs.phase_margin - 5.0

    def test_dc_quantities_still_match(self, case1):
        """Paper: 'all dc characteristics match the extracted layout
        simulation results'."""
        assert case1.extracted.dc_gain_db == pytest.approx(
            case1.synthesized.dc_gain_db, abs=1.0
        )
        assert case1.extracted.power == pytest.approx(
            case1.synthesized.power, rel=0.02
        )

    def test_case4_beats_case1_after_extraction(self, case1, case4_result,
                                                specs):
        """The paper's bottom line."""
        shortfall_case1 = specs.phase_margin - case1.extracted.phase_margin_deg
        shortfall_case4 = (
            specs.phase_margin - case4_result.extracted.phase_margin_deg
        )
        assert shortfall_case4 < shortfall_case1 - 4.0
