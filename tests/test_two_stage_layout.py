"""Capacitor generator and the two-stage OTA layout (DSL-built)."""

import pytest

from repro.errors import LayoutError
from repro.layout.capacitor import plate_capacitor
from repro.layout.drc import DrcChecker
from repro.layout.layers import Layer
from repro.layout.two_stage_ota import (
    TwoStageLayoutRequest,
    generate_two_stage_layout,
)
from repro.sizing.plans.two_stage import TwoStagePlan
from repro.sizing.specs import OtaSpecs, ParasiticMode
from repro.units import PF, UM


class TestPlateCapacitor:
    @pytest.fixture(scope="class")
    def cap(self, tech):
        return plate_capacitor(tech, 0.75 * PF, "top", "bot", "cc")

    def test_drawn_value_matches(self, cap):
        assert cap.actual_widths["cc"] == pytest.approx(0.75e-12, rel=0.01)

    def test_plates_on_both_poly_layers(self, cap):
        assert cap.cell.shapes_on(Layer.POLY)
        assert cap.cell.shapes_on(Layer.POLY2)

    def test_bottom_plate_encloses_top(self, cap):
        bottom = cap.cell.shapes_on(Layer.POLY)[0].rect
        top = cap.cell.shapes_on(Layer.POLY2)[0].rect
        assert bottom.contains(top)

    def test_pins_on_opposite_edges(self, cap):
        top_pin = cap.cell.pin_rect("top")
        bottom_pin = cap.cell.pin_rect("bot")
        assert top_pin.center.y > bottom_pin.center.y

    def test_drc_clean(self, cap, tech):
        DrcChecker(tech).assert_clean(cap.cell)

    def test_aspect_controls_shape(self, tech):
        square = plate_capacitor(tech, 1 * PF, "a", "b", aspect=1.0)
        tall = plate_capacitor(tech, 1 * PF, "a", "b", aspect=4.0)
        assert tall.cell.height > square.cell.height
        assert tall.cell.width < square.cell.width

    def test_bottom_plate_parasitic_extracted(self, cap, tech):
        """The extractor reports the bottom plate's substrate parasitic —
        the reason the bottom plate goes on the driven node."""
        from repro.layout.extraction import extract_cell

        extracted = extract_cell(cap.cell, tech)
        bottom_parasitic = extracted.net_wire_cap["bot"]
        # Poly area cap of a ~0.75 pF plate (~830 um^2): tens of fF.
        assert bottom_parasitic > 30e-15
        assert extracted.net_wire_cap.get("top", 0.0) < bottom_parasitic

    def test_zero_value_rejected(self, tech):
        with pytest.raises(LayoutError):
            plate_capacitor(tech, 0.0, "a", "b")


@pytest.fixture(scope="module")
def two_stage_sized(tech):
    specs = OtaSpecs(
        vdd=3.3, gbw=30e6, phase_margin=60.0, cload=2 * PF,
        input_cm_range=(1.0, 2.0), output_range=(0.4, 2.9),
    )
    plan = TwoStagePlan(tech)
    result = plan.size(specs, ParasiticMode.SINGLE_FOLD)
    return specs, plan, result


@pytest.fixture(scope="module")
def two_stage_layout(tech, two_stage_sized):
    _specs, _plan, result = two_stage_sized
    request = TwoStageLayoutRequest(
        technology=tech, sizes=result.sizes, currents=result.currents,
        cc=result.biases["_cc"], aspect=1.0,
    )
    return generate_two_stage_layout(request, mode="generate")


class TestTwoStageLayout:
    def test_all_devices_reported(self, two_stage_layout):
        assert set(two_stage_layout.report.devices) == {
            "m1", "m2", "m3", "m4", "m5", "m6", "m7"
        }

    def test_matched_folds(self, two_stage_layout):
        folds = two_stage_layout.fold_config
        assert folds["m1"] == folds["m2"]
        assert folds["m3"] == folds["m4"]

    def test_miller_node_capacitances_reported(self, two_stage_layout):
        report = two_stage_layout.report
        assert report.net_capacitance.get("d2", 0.0) > 1e-15
        assert report.net_capacitance.get("vout", 0.0) > 10e-15

    def test_drc_clean(self, two_stage_layout, tech):
        DrcChecker(tech).assert_clean(two_stage_layout.cell)

    def test_estimate_mode_has_no_cell(self, tech, two_stage_sized):
        _specs, _plan, result = two_stage_sized
        request = TwoStageLayoutRequest(
            technology=tech, sizes=result.sizes, currents=result.currents,
            cc=result.biases["_cc"],
        )
        estimate = generate_two_stage_layout(request, mode="estimate")
        assert estimate.cell is None
        assert estimate.report.net_capacitance

    def test_missing_device_rejected(self, tech, two_stage_sized):
        _specs, _plan, result = two_stage_sized
        partial = {k: v for k, v in result.sizes.items() if k != "m6"}
        request = TwoStageLayoutRequest(
            technology=tech, sizes=partial, currents=result.currents,
            cc=1e-12,
        )
        with pytest.raises(LayoutError):
            generate_two_stage_layout(request)


class TestTwoStageCoupledFlow:
    """The paper's extensibility claim, end to end: the second topology
    runs through the *same* layout-oriented loop."""

    @pytest.fixture(scope="class")
    def outcome(self, tech, two_stage_sized):
        from repro.core.synthesis import LayoutOrientedSynthesizer

        specs, plan, _result = two_stage_sized

        def layout_tool(sizing, mode):
            return generate_two_stage_layout(
                TwoStageLayoutRequest(
                    technology=tech, sizes=sizing.sizes,
                    currents=sizing.currents, cc=sizing.biases["_cc"],
                ),
                mode=mode,
            )

        synthesizer = LayoutOrientedSynthesizer(
            tech, plan=plan, layout_tool=layout_tool
        )
        return specs, plan, synthesizer.run(
            specs, ParasiticMode.FULL, generate=True
        )

    def test_converges(self, outcome):
        _specs, _plan, result = outcome
        assert result.converged
        assert 2 <= result.layout_calls <= 6

    def test_meets_specs_with_parasitics(self, outcome):
        specs, _plan, result = outcome
        metrics = result.sizing.predicted
        assert metrics.gbw == pytest.approx(specs.gbw, rel=0.03)
        assert metrics.phase_margin_deg >= specs.phase_margin - 1.5

    def test_extraction_agrees(self, outcome, tech):
        from repro.core.cases import extract_and_measure

        specs, plan, result = outcome
        extracted = extract_and_measure(
            plan, result.sizing, specs, result.layout, tech
        )
        assert extracted.gbw == pytest.approx(
            result.sizing.predicted.gbw, rel=0.05
        )
        assert extracted.phase_margin_deg == pytest.approx(
            result.sizing.predicted.phase_margin_deg, abs=2.5
        )
