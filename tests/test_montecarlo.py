"""Monte-Carlo mismatch analysis."""

import math

import pytest

from repro.analysis.montecarlo import apply_mismatch, run_monte_carlo

import numpy as np


class TestApplyMismatch:
    def test_clone_is_perturbed(self, hand_testbench):
        rng = np.random.default_rng(7)
        perturbed = apply_mismatch(hand_testbench.circuit, rng)
        shifts = [m.mismatch_vth for m in perturbed.mos_devices]
        assert any(abs(s) > 0 for s in shifts)

    def test_original_untouched(self, hand_testbench):
        rng = np.random.default_rng(7)
        apply_mismatch(hand_testbench.circuit, rng)
        assert all(m.mismatch_vth == 0.0 for m in hand_testbench.circuit.mos_devices)

    def test_pelgrom_scaling(self, hand_testbench, tech):
        """Sampled sigma tracks A_VT / sqrt(WL) for the input device."""
        rng = np.random.default_rng(123)
        samples = []
        for _ in range(300):
            perturbed = apply_mismatch(hand_testbench.circuit, rng)
            samples.append(perturbed.mos("mp1").mismatch_vth)
        mp1 = hand_testbench.circuit.mos("mp1")
        expected_sigma = tech.pmos.avt / math.sqrt(mp1.w * mp1.l)
        assert np.std(samples) == pytest.approx(expected_sigma, rel=0.2)


class TestRunMonteCarlo:
    @pytest.fixture(scope="class")
    def result(self, hand_testbench):
        return run_monte_carlo(hand_testbench, runs=25, seed=42)

    def test_sample_count(self, result):
        assert len(result.samples["offset_voltage"]) == 25

    def test_offset_sigma_in_mv_range(self, result):
        """Matched large devices: offset sigma well below 10 mV."""
        sigma = result.std("offset_voltage")
        assert 0.05e-3 < sigma < 10e-3

    def test_mean_near_systematic_offset(self, result):
        assert abs(result.mean("offset_voltage")) < 5e-3

    def test_reproducible_with_seed(self, hand_testbench, result):
        again = run_monte_carlo(hand_testbench, runs=25, seed=42)
        assert again.samples["offset_voltage"] == result.samples["offset_voltage"]

    def test_different_seed_differs(self, hand_testbench, result):
        other = run_monte_carlo(hand_testbench, runs=25, seed=43)
        assert other.samples["offset_voltage"] != result.samples["offset_voltage"]

    def test_worst_sample_is_extreme(self, result):
        values = np.asarray(result.samples["offset_voltage"])
        worst = result.worst("offset_voltage")
        deviation = np.abs(values - values.mean())
        assert abs(worst - values.mean()) == pytest.approx(deviation.max())

    def test_summary_mentions_statistic(self, result):
        assert "offset_voltage" in result.summary()

    def test_custom_measure(self, hand_testbench):
        def measure(bench):
            return {"constant": 1.0}

        result = run_monte_carlo(hand_testbench, runs=3, measure=measure)
        assert result.samples["constant"] == [1.0, 1.0, 1.0]
