"""Shape functions and slicing composition."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LayoutError
from repro.layout.shape import ShapeFunction, ShapePoint

point_strategy = st.builds(
    ShapePoint,
    st.floats(min_value=1e-6, max_value=1e-3),
    st.floats(min_value=1e-6, max_value=1e-3),
)


class TestFrontier:
    def test_dominated_points_pruned(self):
        function = ShapeFunction(
            [
                ShapePoint(1.0, 5.0),
                ShapePoint(2.0, 6.0),  # dominated: wider AND taller
                ShapePoint(3.0, 2.0),
            ]
        )
        widths = [p.width for p in function]
        assert widths == [1.0, 3.0]

    def test_single_point(self):
        function = ShapeFunction([ShapePoint(2.0, 3.0)])
        assert len(function) == 1

    def test_empty_rejected(self):
        with pytest.raises(LayoutError):
            ShapeFunction([])

    def test_nonpositive_rejected(self):
        with pytest.raises(LayoutError):
            ShapeFunction([ShapePoint(0.0, 1.0)])

    @given(st.lists(point_strategy, min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_frontier_strictly_monotone(self, points):
        function = ShapeFunction(points)
        frontier = list(function)
        for a, b in zip(frontier, frontier[1:]):
            assert b.width > a.width
            assert b.height < a.height


class TestComposition:
    @pytest.fixture
    def pair(self):
        left = ShapeFunction([ShapePoint(1.0, 4.0), ShapePoint(2.0, 2.0)])
        right = ShapeFunction([ShapePoint(1.0, 3.0), ShapePoint(3.0, 1.0)])
        return left, right

    def test_horizontal_adds_widths(self, pair):
        left, right = pair
        combined = ShapeFunction.horizontal(left, right)
        narrowest = min(combined, key=lambda p: p.width)
        assert narrowest.width == pytest.approx(2.0)
        assert narrowest.height == pytest.approx(4.0)

    def test_vertical_adds_heights(self, pair):
        left, right = pair
        combined = ShapeFunction.vertical(left, right)
        shortest = min(combined, key=lambda p: p.height)
        assert shortest.height == pytest.approx(3.0)

    def test_spacing_accounted(self, pair):
        left, right = pair
        with_gap = ShapeFunction.horizontal(left, right, spacing=0.5)
        without = ShapeFunction.horizontal(left, right)
        assert min(p.width for p in with_gap) == pytest.approx(
            min(p.width for p in without) + 0.5
        )

    def test_tags_carry_children(self, pair):
        left, right = pair
        combined = ShapeFunction.horizontal(left, right)
        a, b = combined.points[0].tag
        assert isinstance(a, ShapePoint) and isinstance(b, ShapePoint)

    @given(
        st.lists(point_strategy, min_size=1, max_size=6),
        st.lists(point_strategy, min_size=1, max_size=6),
    )
    @settings(max_examples=30, deadline=None)
    def test_composed_area_lower_bound(self, left_points, right_points):
        """Every composed point is at least as large as its parts."""
        left = ShapeFunction(left_points)
        right = ShapeFunction(right_points)
        combined = ShapeFunction.horizontal(left, right)
        min_area = min(p.area for p in left) + min(p.area for p in right)
        for point in combined:
            assert point.area >= min_area * 0.999


class TestSelection:
    @pytest.fixture
    def function(self):
        return ShapeFunction(
            [ShapePoint(1.0, 9.0), ShapePoint(3.0, 3.0), ShapePoint(9.0, 1.0)]
        )

    def test_best_for_square_aspect(self, function):
        assert function.best_for_aspect(1.0).width == pytest.approx(3.0)

    def test_best_for_tall_aspect(self, function):
        assert function.best_for_aspect(9.0).width == pytest.approx(1.0)

    def test_best_for_height(self, function):
        assert function.best_for_height(3.5).width == pytest.approx(3.0)

    def test_best_for_height_unreachable(self, function):
        # Nothing fits under 0.5; the flattest point wins.
        assert function.best_for_height(0.5).height == pytest.approx(1.0)

    def test_best_for_width(self, function):
        assert function.best_for_width(4.0).width == pytest.approx(3.0)

    def test_minimum_area(self, function):
        assert function.minimum_area().area == pytest.approx(9.0)

    def test_invalid_aspect_rejected(self, function):
        with pytest.raises(LayoutError):
            function.best_for_aspect(0.0)
