"""Transient analysis against analytic references."""

import math

import numpy as np
import pytest

from repro.analysis.transient import (
    measure_slew_rate,
    run_transient,
    step_waveform,
)
from repro.circuit import Circuit
from repro.errors import AnalysisError


class TestWaveforms:
    def test_step_levels(self):
        wave = step_waveform(0.0, 1.0, t_step=1e-6, t_rise=1e-9)
        assert wave(0.0) == 0.0
        assert wave(0.999e-6) == 0.0
        assert wave(1.002e-6) == 1.0

    def test_linear_rise(self):
        wave = step_waveform(0.0, 1.0, t_step=0.0, t_rise=10e-9)
        assert wave(5e-9) == pytest.approx(0.5)


@pytest.fixture(scope="module")
def rc_response():
    circuit = Circuit("rc")
    circuit.add_vsource("vin", "in", "0", dc=0.0)
    circuit.add_resistor("r1", "in", "out", 1e3)
    circuit.add_capacitor("c1", "out", "0", 1e-9)
    return run_transient(
        circuit, t_stop=6e-6, dt=5e-9,
        waveforms={"vin": step_waveform(0.0, 1.0, 0.5e-6, 1e-9)},
    )


class TestRcStep:
    def test_starts_at_zero(self, rc_response):
        assert rc_response.voltage("out")[0] == pytest.approx(0.0, abs=1e-9)

    def test_one_tau_value(self, rc_response):
        t = rc_response.times
        v = rc_response.voltage("out")
        index = np.argmin(np.abs(t - 1.5e-6))
        assert v[index] == pytest.approx(1 - math.exp(-1), abs=0.01)

    def test_final_value(self, rc_response):
        assert rc_response.voltage("out")[-1] == pytest.approx(1.0, abs=0.01)

    def test_monotonic_charging(self, rc_response):
        t = rc_response.times
        v = rc_response.voltage("out")
        after = v[t > 0.51e-6]
        assert np.all(np.diff(after) >= -1e-9)

    def test_settling_time_vs_analytic(self, rc_response):
        """Settling to 2% of a 1 V step takes ~ 4 tau = 4 us."""
        settled = rc_response.settling_time("out", 1.0, 0.02, t_start=0.5e-6)
        assert settled is not None
        assert settled - 0.5e-6 == pytest.approx(3.9e-6, rel=0.15)

    def test_slew_rate_of_rc(self, rc_response):
        """Peak dv/dt of an RC step is V/(RC) right after the edge."""
        slew = rc_response.slew_rate("out", t_start=0.5e-6)
        assert slew == pytest.approx(1.0 / 1e-6, rel=0.15)


class TestNonlinearTransient:
    def test_mos_inverter_switches(self, tech):
        from repro.units import UM

        circuit = Circuit("inv")
        circuit.add_vsource("vdd", "vdd!", "0", dc=3.3)
        circuit.add_vsource("vin", "g", "0", dc=0.0)
        circuit.add_resistor("rload", "vdd!", "out", 20e3)
        circuit.add_mos("m1", d="out", g="g", s="0", b="0",
                        params=tech.nmos, w=20 * UM, l=1 * UM)
        circuit.add_capacitor("cl", "out", "0", 0.5e-12)
        result = run_transient(
            circuit, t_stop=100e-9, dt=0.5e-9,
            waveforms={"vin": step_waveform(0.0, 3.3, 20e-9, 1e-9)},
        )
        v = result.voltage("out")
        assert v[0] == pytest.approx(3.3, abs=0.01)
        assert v[-1] < 0.5

    def test_device_capacitance_slows_edge(self, tech):
        """A bigger device loads its own drain: slower output edge."""
        from repro.units import UM

        def edge(width):
            circuit = Circuit("inv")
            circuit.add_vsource("vdd", "vdd!", "0", dc=3.3)
            circuit.add_vsource("vin", "g", "0", dc=3.3)
            circuit.add_resistor("rload", "vdd!", "out", 100e3)
            circuit.add_mos("m1", d="out", g="g", s="0", b="0",
                            params=tech.nmos, w=width, l=1 * UM)
            # Turn the device off and watch the resistor pull 'out' up
            # against the junction capacitance.
            result = run_transient(
                circuit, t_stop=60e-9, dt=0.25e-9,
                waveforms={"vin": step_waveform(3.3, 0.0, 5e-9, 1e-9)},
            )
            return result.voltage("out")[-1]

        assert edge(10 * UM) > edge(200 * UM)


class TestValidation:
    def test_bad_timestep_rejected(self):
        circuit = Circuit("x")
        circuit.add_vsource("v", "a", "0", dc=1.0)
        circuit.add_resistor("r", "a", "0", 1e3)
        with pytest.raises(AnalysisError):
            run_transient(circuit, t_stop=1e-6, dt=0.0)

    def test_waveform_on_non_source_rejected(self):
        circuit = Circuit("x")
        circuit.add_vsource("v", "a", "0", dc=1.0)
        circuit.add_resistor("r", "a", "0", 1e3)
        with pytest.raises(AnalysisError):
            run_transient(circuit, t_stop=1e-6, dt=1e-9,
                          waveforms={"r": lambda t: 0.0})


class TestOtaSlewMeasurement:
    @pytest.fixture(scope="class")
    def slew_measurement(self, hand_testbench):
        return measure_slew_rate(hand_testbench, step_amplitude=0.8)

    def test_slew_in_estimate_ballpark(self, hand_testbench,
                                       slew_measurement):
        """The measured slew agrees with I/C within a factor of ~2 (the
        estimate ignores the asymmetric branch-current limit)."""
        from repro.analysis.metrics import measure_ota

        slew, _result = slew_measurement
        estimate = measure_ota(hand_testbench).slew_rate
        assert 0.4 * estimate < slew < 1.6 * estimate

    def test_buffer_settles_to_step(self, hand_testbench, slew_measurement):
        _slew, result = slew_measurement
        vcm = hand_testbench.common_mode_voltage()
        final = result.voltage(hand_testbench.output_net)[-1]
        assert final == pytest.approx(vcm + 0.4, abs=0.02)

    def test_settling_time_reported(self, hand_testbench, slew_measurement):
        _slew, result = slew_measurement
        vcm = hand_testbench.common_mode_voltage()
        settled = result.settling_time(
            hand_testbench.output_net, vcm + 0.4, 0.01, t_start=20e-9
        )
        assert settled is not None
        assert settled < 200e-9
