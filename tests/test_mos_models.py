"""MOS device models: level 1 and level 3."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelError
from repro.mos import Level1Model, Level3Model, make_model
from repro.mos.model import Region
from repro.units import UM


class TestFactory:
    def test_level1(self, tech):
        assert isinstance(make_model(tech.nmos, 1), Level1Model)

    def test_level3(self, tech):
        assert isinstance(make_model(tech.nmos, 3), Level3Model)

    def test_unknown_level_rejected(self, tech):
        with pytest.raises(ValueError):
            make_model(tech.nmos, 2)


class TestThreshold:
    def test_zero_body_bias(self, nmos_model, tech):
        assert nmos_model.threshold(0.0) == pytest.approx(tech.nmos.vto)

    def test_body_effect_raises_threshold(self, nmos_model):
        assert nmos_model.threshold(1.0) > nmos_model.threshold(0.0)

    def test_body_effect_formula(self, nmos_model, tech):
        vsb = 1.0
        expected = tech.nmos.vto + tech.nmos.gamma * (
            math.sqrt(tech.nmos.phi + vsb) - math.sqrt(tech.nmos.phi)
        )
        assert nmos_model.threshold(vsb) == pytest.approx(expected)

    def test_pmos_threshold_magnitude(self, pmos_model, tech):
        assert pmos_model.threshold(0.0) == pytest.approx(-tech.pmos.vto)


class TestSquareLaw:
    def test_saturation_current(self, nmos_model, tech):
        w, l, veff, vds = 50 * UM, 1 * UM, 0.3, 1.0
        vgs = tech.nmos.vto + veff
        current, gm, gds, gmb, region = nmos_model.evaluate(w, l, vgs, vds, 0.0)
        lam = tech.nmos.lambda_l / l
        expected = 0.5 * tech.nmos.kp * (w / l) * veff**2 * (1 + lam * vds)
        assert region is Region.SATURATION
        assert current == pytest.approx(expected, rel=1e-9)

    def test_gm_equals_two_id_over_veff(self, nmos_model):
        op = nmos_model.bias_saturated(width=50 * UM, length=1 * UM, veff=0.3)
        assert op.gm == pytest.approx(2 * op.id / 0.3, rel=1e-9)

    def test_gds_proportional_to_lambda(self, nmos_model, tech):
        op = nmos_model.bias_saturated(
            width=50 * UM, length=1 * UM, veff=0.3, vds=1.0
        )
        lam = tech.nmos.lambda_l / (1 * UM)
        assert op.gds == pytest.approx(op.id / (1 + lam) * lam, rel=1e-6)

    def test_longer_device_higher_ro(self, nmos_model):
        short = nmos_model.bias_saturated(width=50 * UM, length=0.6 * UM, veff=0.3)
        long_ = nmos_model.bias_saturated(width=50 * UM, length=2.4 * UM, veff=0.3)
        assert long_.intrinsic_gain > 2 * short.intrinsic_gain

    def test_triode_current_lower_than_saturation(self, nmos_model, tech):
        w, l, veff = 50 * UM, 1 * UM, 0.4
        vgs = tech.nmos.vto + veff
        i_sat, *_ = nmos_model.evaluate(w, l, vgs, 1.0, 0.0)
        i_triode, *_, region = nmos_model.evaluate(w, l, vgs, 0.1, 0.0)
        assert region is Region.TRIODE
        assert i_triode < i_sat

    def test_deep_triode_resistive(self, nmos_model, tech):
        """At tiny vds the channel behaves like 1/(kp W/L veff)."""
        w, l, veff = 50 * UM, 1 * UM, 0.5
        vgs = tech.nmos.vto + veff
        vds = 1e-3
        current, *_ = nmos_model.evaluate(w, l, vgs, vds, 0.0)
        conductance = tech.nmos.kp * (w / l) * veff
        assert current == pytest.approx(conductance * vds, rel=0.02)

    def test_continuity_at_saturation_edge(self, nmos_model, tech):
        w, l, veff = 50 * UM, 1 * UM, 0.3
        vgs = tech.nmos.vto + veff
        below, *_ = nmos_model.evaluate(w, l, vgs, veff - 1e-9, 0.0)
        above, *_ = nmos_model.evaluate(w, l, vgs, veff + 1e-9, 0.0)
        assert below == pytest.approx(above, rel=1e-6)

    def test_negative_vds_rejected(self, nmos_model, tech):
        with pytest.raises(ModelError):
            nmos_model.evaluate(50 * UM, 1 * UM, 1.0, -0.1, 0.0)

    def test_zero_geometry_rejected(self, nmos_model):
        with pytest.raises(ModelError):
            nmos_model.evaluate(0.0, 1 * UM, 1.0, 1.0, 0.0)


class TestWeakInversion:
    def test_subthreshold_region_flag(self, nmos_model, tech):
        vgs = tech.nmos.vto - 0.1
        *_, region = nmos_model.evaluate(50 * UM, 1 * UM, vgs, 1.0, 0.0)
        assert region is Region.CUTOFF

    def test_exponential_slope(self, nmos_model, tech):
        """One decade of current per n*Vt*ln(10) of gate drive."""
        w, l = 50 * UM, 1 * UM
        vgs = tech.nmos.vto - 0.15
        n = nmos_model.slope_factor(0.0)
        step = n * nmos_model.vt * math.log(10.0)
        low, *_ = nmos_model.evaluate(w, l, vgs, 1.0, 0.0)
        high, *_ = nmos_model.evaluate(w, l, vgs + step, 1.0, 0.0)
        assert high / low == pytest.approx(10.0, rel=1e-3)

    def test_continuity_at_weak_inversion_onset(self, nmos_model, tech):
        w, l = 50 * UM, 1 * UM
        onset = nmos_model._weak_inversion_onset(0.0)
        vgs_edge = tech.nmos.vto + onset
        below, *_ = nmos_model.evaluate(w, l, vgs_edge - 1e-9, 1.0, 0.0)
        above, *_ = nmos_model.evaluate(w, l, vgs_edge + 1e-9, 1.0, 0.0)
        assert below == pytest.approx(above, rel=1e-5)

    def test_gm_continuity_at_onset(self, nmos_model, tech):
        w, l = 50 * UM, 1 * UM
        onset = nmos_model._weak_inversion_onset(0.0)
        vgs_edge = tech.nmos.vto + onset
        _, gm_below, *_ = nmos_model.evaluate(w, l, vgs_edge - 1e-9, 1.0, 0.0)
        _, gm_above, *_ = nmos_model.evaluate(w, l, vgs_edge + 1e-9, 1.0, 0.0)
        assert gm_below == pytest.approx(gm_above, rel=1e-4)

    def test_deep_cutoff_current_negligible(self, nmos_model, tech):
        current, *_ = nmos_model.evaluate(
            50 * UM, 1 * UM, 0.0, 1.0, 0.0
        )
        assert current < 1e-12


class TestLevel3:
    def test_less_current_than_level1(self, tech):
        l1 = make_model(tech.nmos, 1)
        l3 = make_model(tech.nmos, 3)
        op1 = l1.bias_saturated(width=50 * UM, length=1 * UM, veff=0.4)
        op3 = l3.bias_saturated(width=50 * UM, length=1 * UM, veff=0.4)
        assert op3.id < op1.id

    def test_degradation_grows_with_overdrive(self, tech):
        l1 = make_model(tech.nmos, 1)
        l3 = make_model(tech.nmos, 3)
        ratio_low = (
            l3.bias_saturated(50 * UM, 1 * UM, veff=0.1).id
            / l1.bias_saturated(50 * UM, 1 * UM, veff=0.1).id
        )
        ratio_high = (
            l3.bias_saturated(50 * UM, 1 * UM, veff=0.6).id
            / l1.bias_saturated(50 * UM, 1 * UM, veff=0.6).id
        )
        assert ratio_high < ratio_low

    def test_velocity_saturation_stronger_at_short_length(self, tech):
        l3 = make_model(tech.nmos, 3)
        assert l3.theta_eff(0.6 * UM) > l3.theta_eff(2.4 * UM)

    def test_triode_saturation_continuity(self, tech):
        l3 = make_model(tech.nmos, 3)
        w, l, veff = 50 * UM, 1 * UM, 0.3
        vgs = tech.nmos.vto + veff
        below, *_ = l3.evaluate(w, l, vgs, veff - 1e-9, 0.0)
        above, *_ = l3.evaluate(w, l, vgs, veff + 1e-9, 0.0)
        assert below == pytest.approx(above, rel=1e-6)

    def test_gm_matches_numeric_derivative(self, tech):
        l3 = make_model(tech.nmos, 3)
        w, l = 50 * UM, 1 * UM
        vgs, vds = 1.2, 1.0
        delta = 1e-6
        i_lo, *_ = l3.evaluate(w, l, vgs - delta, vds, 0.0)
        i_hi, gm, *_ = l3.evaluate(w, l, vgs + delta, vds, 0.0)
        numeric = (i_hi - i_lo) / (2 * delta)
        assert gm == pytest.approx(numeric, rel=1e-3)


class TestPropertyBased:
    @given(
        veff=st.floats(min_value=0.12, max_value=0.8),
        width=st.floats(min_value=2e-6, max_value=500e-6),
        length=st.floats(min_value=0.6e-6, max_value=5e-6),
    )
    @settings(max_examples=60, deadline=None)
    def test_current_positive_and_gm_positive(self, tech, veff, width, length):
        model = make_model(tech.nmos, 1)
        op = model.bias_saturated(width=width, length=length, veff=veff)
        assert op.id > 0
        assert op.gm > 0
        assert op.gds > 0

    @given(
        vgs=st.floats(min_value=0.0, max_value=3.3),
        vds=st.floats(min_value=0.0, max_value=3.3),
        vsb=st.floats(min_value=0.0, max_value=2.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_current_monotonic_in_vgs(self, tech, vgs, vds, vsb):
        model = make_model(tech.nmos, 1)
        w, l = 20e-6, 1e-6
        lower, *_ = model.evaluate(w, l, vgs, vds, vsb)
        upper, *_ = model.evaluate(w, l, vgs + 0.05, vds, vsb)
        assert upper >= lower - 1e-15

    @given(
        vgs=st.floats(min_value=0.9, max_value=3.0),
        vds_a=st.floats(min_value=0.0, max_value=3.0),
        vds_b=st.floats(min_value=0.0, max_value=3.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_current_monotonic_in_vds(self, tech, vgs, vds_a, vds_b):
        model = make_model(tech.nmos, 1)
        w, l = 20e-6, 1e-6
        lo, hi = sorted((vds_a, vds_b))
        i_lo, *_ = model.evaluate(w, l, vgs, lo, 0.0)
        i_hi, *_ = model.evaluate(w, l, vgs, hi, 0.0)
        assert i_hi >= i_lo - 1e-15

    @given(
        veff=st.floats(min_value=0.12, max_value=0.7),
        scale=st.floats(min_value=1.1, max_value=8.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_current_scales_with_width(self, tech, veff, scale):
        model = make_model(tech.nmos, 3)
        base = model.bias_saturated(width=10e-6, length=1e-6, veff=veff)
        scaled = model.bias_saturated(width=10e-6 * scale, length=1e-6, veff=veff)
        assert scaled.id == pytest.approx(base.id * scale, rel=1e-6)


class TestCapacitances:
    def test_saturation_cgs_two_thirds(self, nmos_model, tech):
        w, l = 30 * UM, 1 * UM
        cgs, cgd, _cgb = nmos_model.gate_capacitances(w, l, Region.SATURATION)
        channel = tech.nmos.cox * w * l
        assert cgs == pytest.approx(2 / 3 * channel + tech.nmos.cgso * w)
        assert cgd == pytest.approx(tech.nmos.cgdo * w)

    def test_triode_splits_channel(self, nmos_model, tech):
        w, l = 30 * UM, 1 * UM
        cgs, cgd, _ = nmos_model.gate_capacitances(w, l, Region.TRIODE)
        assert cgs == pytest.approx(cgd)

    def test_cutoff_channel_to_bulk(self, nmos_model, tech):
        w, l = 30 * UM, 1 * UM
        _cgs, _cgd, cgb = nmos_model.gate_capacitances(w, l, Region.CUTOFF)
        assert cgb >= tech.nmos.cox * w * l

    def test_operating_point_has_junction_caps(self, nmos_model):
        op = nmos_model.bias_saturated(width=30 * UM, length=1 * UM, veff=0.3)
        assert op.cdb > 0
        assert op.csb > 0
        # Drain reverse bias exceeds source, so cdb < csb.
        assert op.cdb < op.csb


class TestNoise:
    def test_thermal_noise_proportional_to_gm(self, nmos_model):
        op_small = nmos_model.bias_saturated(width=10 * UM, length=1 * UM, veff=0.2)
        op_large = nmos_model.bias_saturated(width=40 * UM, length=1 * UM, veff=0.2)
        ratio = nmos_model.thermal_noise_current_psd(
            op_large
        ) / nmos_model.thermal_noise_current_psd(op_small)
        assert ratio == pytest.approx(op_large.gm / op_small.gm)

    def test_flicker_inversely_proportional_to_frequency(self, nmos_model):
        op = nmos_model.bias_saturated(width=30 * UM, length=1 * UM, veff=0.3)
        at_1k = nmos_model.flicker_noise_current_psd(op, 1e3)
        at_10k = nmos_model.flicker_noise_current_psd(op, 1e4)
        assert at_1k == pytest.approx(10 * at_10k)

    def test_flicker_decreases_with_length(self, nmos_model):
        short = nmos_model.bias_saturated(width=30 * UM, length=0.6 * UM, veff=0.3)
        long_ = nmos_model.bias_saturated(width=30 * UM, length=2.4 * UM, veff=0.3)
        # Compare at equal current by normalising: psd ~ Id/L^2.
        psd_short = nmos_model.flicker_noise_current_psd(short, 1e3) / short.id
        psd_long = nmos_model.flicker_noise_current_psd(long_, 1e3) / long_.id
        assert psd_long < psd_short

    def test_flicker_corner_positive(self, nmos_model):
        op = nmos_model.bias_saturated(width=30 * UM, length=1 * UM, veff=0.3)
        assert nmos_model.flicker_corner(op) > 0

    def test_negative_frequency_rejected(self, nmos_model):
        op = nmos_model.bias_saturated(width=30 * UM, length=1 * UM, veff=0.3)
        with pytest.raises(ValueError):
            nmos_model.flicker_noise_current_psd(op, 0.0)
