"""AC analysis: RC references, amplifier gains, impedance probing."""

import math

import numpy as np
import pytest

from repro.analysis import ac_sweep, solve_dc, transfer_function
from repro.analysis.ac import logspace_frequencies, output_impedance
from repro.circuit import Circuit
from repro.errors import AnalysisError
from repro.units import UM


@pytest.fixture(scope="module")
def rc_circuit():
    circuit = Circuit("rc")
    circuit.add_vsource("vin", "in", "0", dc=0.0, ac=1.0)
    circuit.add_resistor("r1", "in", "out", 1e3)
    circuit.add_capacitor("c1", "out", "0", 1e-9)
    return circuit


class TestRcLowpass:
    """The simulator against the analytic single-pole response."""

    def test_dc_gain_unity(self, rc_circuit):
        dc = solve_dc(rc_circuit)
        tf = transfer_function(rc_circuit, dc, "out", [1.0])
        assert abs(tf.values[0]) == pytest.approx(1.0, rel=1e-9)

    def test_pole_frequency(self, rc_circuit):
        dc = solve_dc(rc_circuit)
        pole = 1.0 / (2 * math.pi * 1e3 * 1e-9)
        tf = transfer_function(rc_circuit, dc, "out", [pole])
        assert abs(tf.values[0]) == pytest.approx(1 / math.sqrt(2), rel=1e-9)

    def test_phase_at_pole(self, rc_circuit):
        dc = solve_dc(rc_circuit)
        pole = 1.0 / (2 * math.pi * 1e3 * 1e-9)
        tf = transfer_function(rc_circuit, dc, "out", [pole])
        assert np.degrees(np.angle(tf.values[0])) == pytest.approx(-45.0, abs=1e-6)

    def test_rolloff_slope(self, rc_circuit):
        dc = solve_dc(rc_circuit)
        pole = 1.0 / (2 * math.pi * 1e3 * 1e-9)
        tf = transfer_function(
            rc_circuit, dc, "out", [100 * pole, 1000 * pole]
        )
        slope = tf.magnitude_db[1] - tf.magnitude_db[0]
        assert slope == pytest.approx(-20.0, abs=0.1)


class TestCommonSourceGain:
    @pytest.fixture(scope="class")
    def cs_setup(self, tech):
        circuit = Circuit("cs")
        circuit.add_vsource("vdd", "vdd!", "0", dc=3.3)
        circuit.add_vsource("vin", "g", "0", dc=1.1, ac=1.0)
        circuit.add_resistor("rload", "vdd!", "d", 20e3)
        circuit.add_mos("m1", d="d", g="g", s="0", b="0",
                        params=tech.nmos, w=30 * UM, l=1 * UM)
        dc = solve_dc(circuit)
        return circuit, dc

    def test_low_frequency_gain(self, cs_setup):
        circuit, dc = cs_setup
        op = dc.devices["m1"].op
        tf = transfer_function(circuit, dc, "d", [100.0], {"vdd": 0.0, "vin": 1.0})
        expected = op.gm / (1 / 20e3 + op.gds)
        assert abs(tf.values[0]) == pytest.approx(expected, rel=1e-6)

    def test_inverting_phase(self, cs_setup):
        circuit, dc = cs_setup
        tf = transfer_function(circuit, dc, "d", [100.0], {"vdd": 0.0, "vin": 1.0})
        assert abs(abs(np.degrees(np.angle(tf.values[0]))) - 180.0) < 0.5

    def test_gain_drops_at_high_frequency(self, cs_setup):
        circuit, dc = cs_setup
        tf = transfer_function(
            circuit, dc, "d", [1e3, 10e9], {"vdd": 0.0, "vin": 1.0}
        )
        assert abs(tf.values[1]) < abs(tf.values[0])


class TestDrives:
    def test_override_silences_source(self, rc_circuit):
        dc = solve_dc(rc_circuit)
        sweep = ac_sweep(rc_circuit, dc, [1e3], overrides={"vin": 0.0})
        assert abs(sweep.voltage("out")[0]) == pytest.approx(0.0, abs=1e-15)

    def test_amplitude_scales_linearly(self, rc_circuit):
        dc = solve_dc(rc_circuit)
        unit = ac_sweep(rc_circuit, dc, [1e3]).voltage("out")[0]
        double = ac_sweep(rc_circuit, dc, [1e3], overrides={"vin": 2.0}).voltage(
            "out"
        )[0]
        assert double == pytest.approx(2 * unit)

    def test_current_source_drive(self):
        circuit = Circuit("iac")
        circuit.add_vsource("vref", "a", "0", dc=0.0)
        circuit.add_isource("iin", "0", "node", dc=0.0, ac=1e-3)
        circuit.add_resistor("r1", "node", "0", 1e3)
        dc = solve_dc(circuit)
        sweep = ac_sweep(circuit, dc, [1e3])
        assert abs(sweep.voltage("node")[0]) == pytest.approx(1.0, rel=1e-9)

    def test_ground_voltage_is_zero(self, rc_circuit):
        dc = solve_dc(rc_circuit)
        sweep = ac_sweep(rc_circuit, dc, [1e3])
        assert np.all(sweep.voltage("0") == 0.0)


class TestOutputImpedance:
    def test_resistor_impedance(self):
        circuit = Circuit("z")
        circuit.add_vsource("v1", "a", "0", dc=1.0)
        circuit.add_resistor("r1", "a", "out", 5e3)
        circuit.add_resistor("r2", "out", "0", 5e3)
        dc = solve_dc(circuit)
        zout = output_impedance(circuit, dc, "out", [1.0])
        assert zout.magnitude[0] == pytest.approx(2.5e3, rel=1e-9)

    def test_capacitive_rolloff(self):
        circuit = Circuit("zc")
        circuit.add_vsource("v1", "a", "0", dc=0.0)
        circuit.add_resistor("r1", "a", "out", 1e6)
        circuit.add_capacitor("c1", "out", "0", 1e-12)
        dc = solve_dc(circuit)
        frequency = 1e9
        zout = output_impedance(circuit, dc, "out", [frequency])
        expected = 1.0 / (2 * math.pi * frequency * 1e-12)
        assert zout.magnitude[0] == pytest.approx(expected, rel=0.01)


class TestSweepValidation:
    def test_empty_frequencies_rejected(self, rc_circuit):
        dc = solve_dc(rc_circuit)
        with pytest.raises(AnalysisError):
            ac_sweep(rc_circuit, dc, [])

    def test_negative_frequency_rejected(self, rc_circuit):
        dc = solve_dc(rc_circuit)
        with pytest.raises(AnalysisError):
            ac_sweep(rc_circuit, dc, [-1.0])

    def test_logspace_endpoints(self):
        grid = logspace_frequencies(1.0, 1e6, 10)
        assert grid[0] == pytest.approx(1.0)
        assert grid[-1] == pytest.approx(1e6)

    def test_logspace_invalid_range(self):
        with pytest.raises(AnalysisError):
            logspace_frequencies(10.0, 1.0)


class TestBodyEffectStamping:
    """The gmb stamp against the textbook source-follower gain."""

    def test_follower_gain_reduced_by_gmb(self, tech):
        """An NMOS follower with body at ground has
        ``Av = gm / (gm + gmb + gds + 1/R)`` — measurably below the
        body-tied case."""
        from repro.analysis import solve_dc

        def follower_gain(tie_body_to_source):
            circuit = Circuit("follower")
            circuit.add_vsource("vdd", "vdd!", "0", dc=3.3)
            circuit.add_vsource("vin", "g", "0", dc=2.2, ac=1.0)
            circuit.add_resistor("rload", "s", "0", 20e3)
            bulk = "s" if tie_body_to_source else "0"
            circuit.add_mos("m1", d="vdd!", g="g", s="s", b=bulk,
                            params=tech.nmos, w=50 * UM, l=1 * UM)
            dc = solve_dc(circuit)
            op = dc.devices["m1"].op
            tf = transfer_function(circuit, dc, "s", [1e3],
                                   {"vdd": 0.0, "vin": 1.0})
            return float(tf.magnitude[0]), op

        gain_grounded, op = follower_gain(False)
        gain_tied, _ = follower_gain(True)
        expected = op.gm / (op.gm + op.gmb + op.gds + 1 / 20e3)
        assert gain_grounded == pytest.approx(expected, rel=1e-3)
        assert gain_tied > gain_grounded
