"""Technology descriptions: process parameters, presets, validation."""

import dataclasses

import pytest

from repro.errors import TechnologyError
from repro.technology import (
    MetalLayer,
    Technology,
    generic_035,
    generic_060,
    generic_080,
)
from repro.units import UM


class TestPresets:
    @pytest.mark.parametrize(
        "factory, feature",
        [(generic_035, 0.35), (generic_060, 0.60), (generic_080, 0.80)],
    )
    def test_feature_size(self, factory, feature):
        tech = factory()
        assert tech.feature_size == pytest.approx(feature * UM)

    @pytest.mark.parametrize("factory", [generic_035, generic_060, generic_080])
    def test_presets_validate(self, factory):
        factory().validate()

    def test_nmos_faster_than_pmos(self, tech):
        assert tech.nmos.u0 > tech.pmos.u0

    def test_kp_derived_from_mobility_and_oxide(self, tech):
        expected = tech.nmos.u0 * tech.nmos.cox
        assert tech.nmos.kp == pytest.approx(expected)

    def test_cox_magnitude_realistic(self, tech):
        # 0.6 um processes run around 2-3 fF/um^2.
        assert 1.5e-3 < tech.nmos.cox < 3.5e-3

    def test_default_ldif_conservative(self, tech):
        """The pre-layout diffusion assumption exceeds anything the
        generators actually draw (the paper's case-2 over-estimation)."""
        assert tech.default_ldif > 1.5 * tech.rules.contacted_diffusion_width
        assert tech.default_ldif == pytest.approx(
            2.8 * tech.rules.contacted_diffusion_width
        )


class TestDeviceLookup:
    def test_device_n(self, tech):
        assert tech.device("n") is tech.nmos

    def test_device_p(self, tech):
        assert tech.device("p") is tech.pmos

    def test_device_unknown_raises(self, tech):
        with pytest.raises(TechnologyError):
            tech.device("x")

    def test_metal_lookup(self, tech):
        assert tech.metal("metal1").name == "metal1"

    def test_poly_via_metal_lookup(self, tech):
        assert tech.metal("poly") is tech.poly

    def test_unknown_metal_raises(self, tech):
        with pytest.raises(TechnologyError):
            tech.metal("metal9")


class TestValidation:
    def test_swapped_polarity_rejected(self, tech):
        broken = dataclasses.replace(tech, nmos=tech.pmos, pmos=tech.nmos)
        with pytest.raises(TechnologyError):
            broken.validate()

    def test_positive_pmos_vto_rejected(self, tech):
        bad_pmos = dataclasses.replace(tech.pmos, vto=0.85)
        with pytest.raises(TechnologyError):
            bad_pmos.validate()

    def test_negative_nmos_vto_rejected(self, tech):
        bad_nmos = dataclasses.replace(tech.nmos, vto=-0.75)
        with pytest.raises(TechnologyError):
            bad_nmos.validate()

    def test_grading_coefficient_range(self, tech):
        bad = dataclasses.replace(tech.nmos, mj=1.5)
        with pytest.raises(TechnologyError):
            bad.validate()

    def test_zero_feature_size_rejected(self, tech):
        broken = dataclasses.replace(tech, feature_size=0.0)
        with pytest.raises(TechnologyError):
            broken.validate()


class TestWellParams:
    def test_zero_bias_capacitance(self, tech):
        area, perimeter = 100e-12, 40e-6
        value = tech.well.capacitance(area, perimeter, bias=0.0)
        expected = tech.well.cj_area * area + tech.well.cj_perimeter * perimeter
        assert value == pytest.approx(expected)

    def test_reverse_bias_reduces_capacitance(self, tech):
        area, perimeter = 100e-12, 40e-6
        at_zero = tech.well.capacitance(area, perimeter, bias=0.0)
        at_three = tech.well.capacitance(area, perimeter, bias=3.0)
        assert at_three < at_zero


class TestContactRule:
    def test_single_cut_for_small_current(self, tech):
        assert tech.contact.cuts_for_current(0.1e-3) == 1

    def test_multiple_cuts_for_large_current(self, tech):
        cuts = tech.contact.cuts_for_current(2.0e-3)
        assert cuts >= 3

    def test_zero_current_still_one_cut(self, tech):
        assert tech.contact.cuts_for_current(0.0) == 1

    def test_negative_current_uses_magnitude(self, tech):
        assert tech.contact.cuts_for_current(-2.0e-3) == tech.contact.cuts_for_current(
            2.0e-3
        )
