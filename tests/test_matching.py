"""Gradient-induced systematic mismatch (the matching constraints' value)."""

import pytest

from repro.errors import LayoutError
from repro.layout.matching import (
    compare_pair_styles,
    pair_offset_voltage,
    stack_gradient_impact,
)
from repro.layout.stack import generate_stack
from repro.units import UM


class TestStackGradientImpact:
    @pytest.fixture(scope="class")
    def mirror_impact(self, tech):
        plan = generate_stack({"m1": 1, "m2": 3, "m3": 6})
        return plan, stack_gradient_impact(
            plan, tech.rules.gate_pitch, vth_gradient=1.0
        )

    def test_balanced_device_immune(self, mirror_impact):
        """The even-unit, centroid-zero device sees no gradient shift."""
        _plan, impact = mirror_impact
        assert impact["m3"].vth_shift == pytest.approx(0.0, abs=1e-9)
        assert impact["m3"].beta_error == 0.0

    def test_shift_proportional_to_centroid(self, mirror_impact, tech):
        plan, impact = mirror_impact
        pitch = tech.rules.gate_pitch
        for device in ("m1", "m2"):
            expected = plan.centroid_offset(device) * pitch * 1.0
            assert impact[device].vth_shift == pytest.approx(expected)

    def test_orientation_residual_scaled_by_count(self, mirror_impact):
        _plan, impact = mirror_impact
        # m1 (1 unit, |balance| 1) takes the full per-finger error; m2
        # (3 units) averages it down.
        assert abs(impact["m1"].beta_error) > 2 * abs(impact["m2"].beta_error)

    def test_gradient_scales_linearly(self, tech):
        plan = generate_stack({"m1": 1, "m2": 3, "m3": 6})
        one = stack_gradient_impact(plan, tech.rules.gate_pitch, 1.0)
        five = stack_gradient_impact(plan, tech.rules.gate_pitch, 5.0)
        assert five["m1"].vth_shift == pytest.approx(5 * one["m1"].vth_shift)

    def test_bad_pitch_rejected(self, tech):
        plan = generate_stack({"a": 2})
        with pytest.raises(LayoutError):
            stack_gradient_impact(plan, 0.0)


class TestPairOffset:
    def test_common_centroid_pair_has_zero_offset(self, tech):
        plan = generate_stack({"a": 4, "b": 4})
        offset = pair_offset_voltage(
            plan, ("a", "b"), tech.rules.gate_pitch, veff=0.2
        )
        assert offset == pytest.approx(0.0, abs=1e-9)

    def test_unknown_pair_rejected(self, tech):
        plan = generate_stack({"a": 2, "b": 2})
        with pytest.raises(LayoutError):
            pair_offset_voltage(plan, ("a", "zz"), tech.rules.gate_pitch, 0.2)


class TestStyleComparison:
    """The paper's matching claim quantified: common centroid beats
    interdigitated under a linear process gradient."""

    @pytest.fixture(scope="class")
    def styles(self, tech):
        return compare_pair_styles(
            tech, 60 * UM, 1 * UM, nf=4, vth_gradient=1.0
        )

    def test_common_centroid_immune(self, styles):
        assert abs(styles["common_centroid"]) < 1e-9

    def test_interdigitated_sees_gradient(self, styles):
        # ABAB leaves a one-pitch centroid difference: hundreds of uV
        # under 1 mV/mm.
        assert abs(styles["interdigitated"]) > 100e-6

    def test_ordering_robust_across_fold_counts(self, tech):
        for nf in (2, 4, 8):
            styles = compare_pair_styles(
                tech, 60 * UM, 1 * UM, nf=nf, vth_gradient=1.0
            )
            assert abs(styles["common_centroid"]) <= abs(
                styles["interdigitated"]
            ) + 1e-12
