"""Inverse model solvers (width/vgs for a target current)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SizingError
from repro.mos import make_model, vgs_for_current, width_for_current
from repro.units import UM


class TestWidthForCurrent:
    def test_round_trip_level1(self, nmos_model):
        width = width_for_current(nmos_model, 150e-6, 1 * UM, 0.25, vds=0.8)
        op = nmos_model.bias_saturated(
            width=width, length=1 * UM, veff=0.25, vds=0.8
        )
        assert op.id == pytest.approx(150e-6, rel=1e-9)

    def test_round_trip_level3(self, tech):
        model = make_model(tech.nmos, 3)
        width = width_for_current(model, 150e-6, 1 * UM, 0.25, vds=0.8)
        op = model.bias_saturated(width=width, length=1 * UM, veff=0.25, vds=0.8)
        assert op.id == pytest.approx(150e-6, rel=1e-9)

    def test_width_linear_in_current(self, nmos_model):
        w1 = width_for_current(nmos_model, 100e-6, 1 * UM, 0.25)
        w2 = width_for_current(nmos_model, 200e-6, 1 * UM, 0.25)
        assert w2 == pytest.approx(2 * w1, rel=1e-9)

    def test_larger_overdrive_smaller_width(self, nmos_model):
        wide = width_for_current(nmos_model, 100e-6, 1 * UM, 0.15)
        narrow = width_for_current(nmos_model, 100e-6, 1 * UM, 0.4)
        assert narrow < wide

    def test_triode_vds_rejected(self, nmos_model):
        with pytest.raises(SizingError):
            width_for_current(nmos_model, 100e-6, 1 * UM, 0.4, vds=0.2)

    def test_zero_current_rejected(self, nmos_model):
        with pytest.raises(SizingError):
            width_for_current(nmos_model, 0.0, 1 * UM, 0.25)

    @given(
        current=st.floats(min_value=1e-6, max_value=2e-3),
        veff=st.floats(min_value=0.12, max_value=0.6),
        length=st.floats(min_value=0.6e-6, max_value=4e-6),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, tech, current, veff, length):
        model = make_model(tech.pmos, 3)
        width = width_for_current(model, current, length, veff, vds=veff + 0.3)
        op = model.bias_saturated(
            width=width, length=length, veff=veff, vds=veff + 0.3
        )
        assert op.id == pytest.approx(current, rel=1e-6)


class TestVgsForCurrent:
    def test_matches_forward_model(self, nmos_model, tech):
        w, l, vds = 40 * UM, 1 * UM, 1.0
        target = 120e-6
        vgs = vgs_for_current(nmos_model, target, w, l, vds=vds)
        current, *_ = nmos_model.evaluate(w, l, vgs, vds, 0.0)
        assert current == pytest.approx(target, rel=1e-6)

    def test_subthreshold_target(self, nmos_model):
        """Tiny currents land in the weak-inversion tail."""
        w, l = 40 * UM, 1 * UM
        target = 10e-9
        vgs = vgs_for_current(nmos_model, target, w, l, vds=1.0)
        assert vgs < nmos_model.threshold(0.0)
        current, *_ = nmos_model.evaluate(w, l, vgs, 1.0, 0.0)
        assert current == pytest.approx(target, rel=1e-4)

    def test_body_bias_shifts_vgs(self, nmos_model):
        w, l = 40 * UM, 1 * UM
        no_body = vgs_for_current(nmos_model, 100e-6, w, l, vds=1.0, vsb=0.0)
        with_body = vgs_for_current(nmos_model, 100e-6, w, l, vds=1.0, vsb=1.0)
        shift = nmos_model.threshold(1.0) - nmos_model.threshold(0.0)
        assert with_body - no_body == pytest.approx(shift, rel=1e-3)

    def test_zero_current_rejected(self, nmos_model):
        with pytest.raises(SizingError):
            vgs_for_current(nmos_model, 0.0, 40 * UM, 1 * UM)

    @given(current=st.floats(min_value=1e-7, max_value=1e-3))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_over_decades(self, tech, current):
        model = make_model(tech.nmos, 1)
        w, l, vds = 40e-6, 1e-6, 1.2
        vgs = vgs_for_current(model, current, w, l, vds=vds)
        measured, *_ = model.evaluate(w, l, vgs, vds, 0.0)
        assert measured == pytest.approx(current, rel=1e-4)

    @pytest.mark.parametrize("corner_name", ["ss", "ff"])
    def test_bisection_fallback_at_skewed_corners(self, tech, corner_name):
        """A starved Newton budget still converges via bisection.

        ``max_iterations=1`` guarantees Newton gives up immediately, so
        this exercises the bracketing fallback on corner-skewed models.
        """
        from repro.technology.corners import corner

        skewed = corner(tech, corner_name)
        for params in (skewed.nmos, skewed.pmos):
            model = make_model(params, 1)
            w, l, vds = 40 * UM, 1 * UM, 1.2
            target = 120e-6
            vgs = vgs_for_current(
                model, target, w, l, vds=vds, max_iterations=1
            )
            measured, *_ = model.evaluate(w, l, vgs, vds, 0.0)
            assert measured == pytest.approx(target, rel=1e-6)

    def test_bisection_matches_newton(self, nmos_model):
        """Fallback and Newton agree on the same operating point."""
        w, l, vds = 40 * UM, 1 * UM, 1.0
        target = 120e-6
        newton = vgs_for_current(nmos_model, target, w, l, vds=vds)
        bisected = vgs_for_current(
            nmos_model, target, w, l, vds=vds, max_iterations=1
        )
        assert bisected == pytest.approx(newton, abs=1e-6)
