"""The Comdiac sizing-tool facade and verification interface."""

import pytest

from repro.errors import SizingError
from repro.sizing.comdiac import Comdiac
from repro.sizing.plans.base import DesignPlan
from repro.sizing.specs import OtaSpecs, ParasiticMode
from repro.sizing.verification import VerificationInterface


@pytest.fixture(scope="module")
def tool(tech):
    return Comdiac(tech)


class TestRegistry:
    def test_builtin_topologies(self, tool):
        assert tool.topologies == ["folded_cascode", "two_stage"]

    def test_plan_instances_cached(self, tool):
        assert tool.plan("folded_cascode") is tool.plan("folded_cascode")

    def test_unknown_topology_rejected(self, tool):
        with pytest.raises(SizingError):
            tool.plan("telescopic")

    def test_register_custom_plan(self, tech):
        class CustomPlan(DesignPlan):
            topology = "custom"

            def size(self, specs, mode=ParasiticMode.NONE, feedback=None):
                raise NotImplementedError

            def build_testbench(self, result, specs,
                                mode=ParasiticMode.NONE, feedback=None):
                raise NotImplementedError

        tool = Comdiac(tech)
        tool.register_plan(CustomPlan)
        assert "custom" in tool.topologies

    def test_abstract_plan_rejected(self, tech):
        class Nameless(DesignPlan):
            topology = "abstract"

            def size(self, specs, mode=ParasiticMode.NONE, feedback=None):
                raise NotImplementedError

            def build_testbench(self, result, specs,
                                mode=ParasiticMode.NONE, feedback=None):
                raise NotImplementedError

        tool = Comdiac(tech)
        with pytest.raises(SizingError):
            tool.register_plan(Nameless)

    def test_synthesize_dispatches(self, tool, specs, sized_case1):
        result = tool.synthesize("folded_cascode", specs, ParasiticMode.NONE)
        assert result.sizes.keys() == sized_case1.sizes.keys()


class TestVerification:
    def test_passing_design(self, plan, specs, sized_case1):
        bench = plan.build_testbench(sized_case1, specs, ParasiticMode.NONE)
        report = VerificationInterface().verify(bench, specs)
        assert report.passed
        assert report.meets_gbw and report.meets_phase_margin

    def test_failing_design_detected(self, plan, specs, sized_case1):
        bench = plan.build_testbench(sized_case1, specs, ParasiticMode.NONE)
        hard_specs = OtaSpecs(
            vdd=specs.vdd, gbw=specs.gbw * 3, phase_margin=specs.phase_margin,
            cload=specs.cload, input_cm_range=specs.input_cm_range,
            output_range=specs.output_range,
        )
        report = VerificationInterface().verify(bench, hard_specs)
        assert not report.meets_gbw
        assert not report.passed
        assert report.failures()["gbw"] is False

    def test_statistical_analysis_included(self, plan, specs, sized_case1):
        bench = plan.build_testbench(sized_case1, specs, ParasiticMode.NONE)
        report = VerificationInterface().verify(
            bench, specs, statistical_runs=8, seed=7
        )
        assert report.statistics is not None
        assert len(report.statistics.samples["offset_voltage"]) == 8
