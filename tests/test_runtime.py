"""Executor runtime: persistent pool, shm transport, artifact cache.

The contracts under test: the persistent executor is reused across
dispatches and discarded whenever it may be wedged; worker-resident
cache misses are resent without corrupting shard statuses; shared-memory
segments never outlive a run — clean, failing, crash-killed or
SIGTERM'd; and the cross-run artifact cache serves bit-identical results
(warm and cold fingerprints equal) while self-healing corrupt entries.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.analysis.montecarlo import run_monte_carlo
from repro.core.batch import BatchTask, run_batch
from repro.resilience import faults
from repro.runtime import artifacts
from repro.runtime import pool as runtime_pool
from repro.runtime import shm as runtime_shm
from repro.sizing.specs import ParasiticMode

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def _case_tasks(specs, modes=(ParasiticMode.NONE, ParasiticMode.SINGLE_FOLD)):
    return [
        BatchTask(kind="case", technology="0.6um", specs=specs,
                  mode=mode.name)
        for mode in modes
    ]


def _dev_shm() -> set:
    """Current /dev/shm entries (empty set where the mount is absent)."""
    try:
        return set(os.listdir("/dev/shm"))
    except (FileNotFoundError, NotADirectoryError, PermissionError):
        return set()


def _run_script(body: str, env_extra=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        [sys.executable, "-c", body], env=env,
        capture_output=True, text=True, timeout=120,
    )


# ---------------------------------------------------------------------------
# Persistent pool lifecycle
# ---------------------------------------------------------------------------


class TestPersistentPool:
    def test_release_keeps_pool_warm_across_acquires(self):
        with runtime_pool.persistent(True):
            runtime_pool.shutdown()
            first = runtime_pool.acquire(2)
            generation = first.generation
            assert generation == runtime_pool.pool_generation() > 0
            first.release()
            second = runtime_pool.acquire(2)
            assert second.generation == generation
            assert second.executor is first.executor
            second.release()
            runtime_pool.shutdown()

    def test_bigger_request_replaces_pool(self):
        with runtime_pool.persistent(True):
            runtime_pool.shutdown()
            small = runtime_pool.acquire(1)
            small.release()
            grown = runtime_pool.acquire(3)
            assert grown.generation == small.generation + 1
            # A smaller follow-up request fits the grown pool.
            again = runtime_pool.acquire(2)
            assert again.generation == grown.generation
            again.release()
            runtime_pool.shutdown()

    def test_discard_forces_fresh_generation(self):
        with runtime_pool.persistent(True):
            runtime_pool.shutdown()
            lease = runtime_pool.acquire(1)
            lease.discard(wait=True)
            assert runtime_pool.pool_generation() == 0
            fresh = runtime_pool.acquire(1)
            assert fresh.generation == lease.generation + 1
            fresh.release()
            runtime_pool.shutdown()

    def test_disabled_mode_gives_dedicated_pool(self):
        with runtime_pool.persistent(False):
            lease = runtime_pool.acquire(1)
            assert not lease.persistent
            assert lease.state is None
            lease.release()
            # release() in dedicated mode shuts the executor down.
            with pytest.raises(RuntimeError):
                lease.executor.submit(int)

    def test_mc_runs_reuse_one_pool(self, hand_testbench):
        with runtime_pool.persistent(True):
            runtime_pool.shutdown()
            first = run_monte_carlo(hand_testbench, runs=8, seed=7,
                                    workers=2)
            generation = runtime_pool.pool_generation()
            assert generation > 0
            second = run_monte_carlo(hand_testbench, runs=8, seed=7,
                                     workers=2)
            assert runtime_pool.pool_generation() == generation
            assert first.samples == second.samples
            assert all(s.status == "ok" for s in second.shards)
            runtime_pool.shutdown()


class TestResidentCacheResend:
    def test_stale_shipped_key_resends_payload_statuses_stay_ok(
        self, hand_testbench
    ):
        """A pool whose workers never saw the payload, but whose ledger
        claims they did, answers ``CacheMiss``; the dispatcher resends on
        an uncounted round so statuses remain ``ok``."""
        baseline = run_monte_carlo(hand_testbench, runs=8, seed=7, workers=1)
        with runtime_pool.persistent(True):
            runtime_pool.shutdown()
            lease = runtime_pool.acquire(2)  # fresh pool, cold workers
            lease.release()
            payload = pickle.dumps((hand_testbench, None))
            lease.mark_shipped(hashlib.sha256(payload).hexdigest())
            result = run_monte_carlo(hand_testbench, runs=8, seed=7,
                                     workers=2)
            runtime_pool.shutdown()
        assert result.samples == baseline.samples
        assert [s.status for s in result.shards] == ["ok", "ok"]
        assert all(s.attempts == 1 for s in result.shards)

    def test_resident_object_round_trips(self):
        runtime_pool.clear_resident()
        built = []

        def build(payload):
            built.append(payload)
            return pickle.loads(payload)

        payload = pickle.dumps({"a": 1})
        first = runtime_pool.resident_object("k1", payload, build)
        again = runtime_pool.resident_object("k1", None, build)
        assert first is again and built == [payload]
        with pytest.raises(runtime_pool.NeedPayload):
            runtime_pool.resident_object("k2", None, build)
        runtime_pool.clear_resident()

    def test_resident_cache_is_bounded(self):
        runtime_pool.clear_resident()
        for i in range(20):
            runtime_pool.resident_object(
                f"key{i}", pickle.dumps(i), pickle.loads
            )
        assert runtime_pool.resident_cache_size() <= 8
        runtime_pool.clear_resident()

    def test_program_fingerprints_key_compiled_state(self, hand_testbench):
        """The content-keyed caches hang off the compiled programs'
        fingerprints: same circuit, same key; different circuit,
        different key."""
        from repro.analysis.stamps import StampProgram

        one = StampProgram(hand_testbench.circuit)
        two = StampProgram(hand_testbench.circuit)
        assert one.fingerprint() == two.fingerprint()
        other = hand_testbench.circuit.clone("runtime_fp")
        other.add_vsource("_fp", hand_testbench.output_net, "0", dc=0.0)
        assert StampProgram(other).fingerprint() != one.fingerprint()

        from repro.analysis.ensemble import EnsembleProgram

        n = len(one.mos_names)
        rows = np.zeros((3, n))
        stacked = EnsembleProgram.from_mismatch(one, rows, rows)
        assert stacked.fingerprint() == \
            EnsembleProgram.from_mismatch(two, rows, rows).fingerprint()
        skewed = EnsembleProgram.from_mismatch(one, rows + 1e-4, rows)
        assert skewed.fingerprint() != stacked.fingerprint()


# ---------------------------------------------------------------------------
# Shared-memory transport lifecycle
# ---------------------------------------------------------------------------


needs_shm = pytest.mark.skipif(
    not runtime_shm.available(), reason="no shared-memory support"
)


@needs_shm
class TestShmLifecycle:
    def test_publish_read_roundtrip(self):
        vth = np.arange(24, dtype=np.float64).reshape(6, 4)
        beta = np.linspace(-1.0, 1.0, 24).reshape(6, 4)
        with runtime_shm.publish(vth, beta) as block:
            ref_vth, ref_beta = block.refs()
            np.testing.assert_array_equal(runtime_shm.read(ref_vth), vth)
            np.testing.assert_array_equal(
                runtime_shm.read(ref_vth, 2, 5), vth[2:5]
            )
            np.testing.assert_array_equal(
                runtime_shm.read(ref_beta, 0, 1), beta[0:1]
            )
            assert runtime_shm.live_segments() == [ref_vth.name]
        assert runtime_shm.live_segments() == []
        assert ref_vth.name not in _dev_shm()

    def test_close_is_idempotent(self):
        block = runtime_shm.publish(np.zeros(3))
        block.close()
        block.close()
        assert runtime_shm.live_segments() == []

    def test_clean_mc_run_leaks_nothing(self, hand_testbench):
        before = _dev_shm()
        with runtime_shm.use(True):
            result = run_monte_carlo(hand_testbench, runs=8, seed=7,
                                     workers=2)
        assert result.n_failed == 0
        assert runtime_shm.live_segments() == []
        assert _dev_shm() - before == set()

    def test_shard_failure_leaks_nothing(self, hand_testbench):
        before = _dev_shm()
        with runtime_shm.use(True):
            with faults.inject("mc.worker", index=0, times=3):
                result = run_monte_carlo(
                    hand_testbench, runs=8, seed=7, workers=2,
                    max_shard_retries=1,
                )
        assert result.shards[0].status == "in-process"
        assert runtime_shm.live_segments() == []
        assert _dev_shm() - before == set()

    def test_crash_kill_runs_emergency_unlink(self):
        """``REPRO_FAULTS`` ``action="crash"`` dies via ``os._exit`` —
        no ``finally``, no ``atexit`` — so the faults kill-hook must
        unlink the published segment before the process dies."""
        proc = _run_script(
            "import numpy as np\n"
            "from repro.resilience import faults\n"
            "from repro.runtime import shm\n"
            "faults.arm_from_env()\n"
            "block = shm.publish(np.zeros((64, 8)))\n"
            "print(block.refs()[0].name, flush=True)\n"
            "faults.maybe_kill()\n"
            "raise SystemExit('kill fault did not fire')\n",
            env_extra={"REPRO_FAULTS": "process.kill:at=1,action=crash"},
        )
        assert proc.returncode == faults.KILL_EXIT_CODE, proc.stderr
        name = proc.stdout.strip()
        assert name
        assert name not in _dev_shm()

    def test_sigterm_leaves_no_segment_behind(self):
        """A SIGTERM the run never handles is mopped up by the stdlib
        resource tracker, which outlives the parent for this case."""
        proc = subprocess.Popen(
            [
                sys.executable, "-c",
                "import signal, sys\n"
                "import numpy as np\n"
                "from repro.runtime import shm\n"
                "block = shm.publish(np.zeros((64, 8)))\n"
                "print(block.refs()[0].name, flush=True)\n"
                "signal.pause()\n",
            ],
            env={**os.environ, "PYTHONPATH": SRC},
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            name = proc.stdout.readline().strip()
            assert name
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.stdout.close()
            proc.stderr.close()
        # The tracker is a separate process; give its sweep a moment.
        deadline = time.monotonic() + 20.0
        while name in _dev_shm() and time.monotonic() < deadline:
            time.sleep(0.1)
        assert name not in _dev_shm()


class TestShmDeterminism:
    @pytest.fixture(scope="class")
    def baseline(self, hand_testbench):
        return run_monte_carlo(hand_testbench, runs=8, seed=7, workers=1)

    @needs_shm
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("shm_on", [True, False])
    def test_bit_identical_for_any_transport_and_worker_count(
        self, hand_testbench, baseline, workers, shm_on
    ):
        with runtime_shm.use(shm_on):
            result = run_monte_carlo(hand_testbench, runs=8, seed=7,
                                     workers=workers)
        assert result.samples == baseline.samples  # bit-identical
        assert result.mean("offset_voltage") == \
            baseline.mean("offset_voltage")
        assert result.std("offset_voltage") == baseline.std("offset_voltage")

    @pytest.mark.parametrize("pool_on", [True, False])
    def test_bit_identical_for_any_pool_mode(
        self, hand_testbench, baseline, pool_on
    ):
        with runtime_pool.persistent(pool_on):
            result = run_monte_carlo(hand_testbench, runs=8, seed=7,
                                     workers=2)
        assert result.samples == baseline.samples


# ---------------------------------------------------------------------------
# Cross-run artifact cache
# ---------------------------------------------------------------------------


class TestArtifactCache:
    def test_roundtrip_and_counters(self, tmp_path):
        cache = artifacts.ArtifactCache(tmp_path)
        key = artifacts.content_key("unit", {"x": 1.5}, ParasiticMode.NONE)
        assert cache.get("unit", key) is None
        assert cache.put("unit", key, {"value": 42})
        assert cache.get("unit", key) == {"value": 42}
        assert cache.hits == 1 and cache.misses == 1

    def test_content_key_is_stable_and_discriminating(self):
        a = artifacts.content_key("kind", {"w": 1.0, "l": 2.0})
        b = artifacts.content_key("kind", {"l": 2.0, "w": 1.0})
        c = artifacts.content_key("kind", {"w": 1.0, "l": 2.0000000001})
        assert a == b  # mapping order canonicalized away
        assert a != c  # full float precision discriminates

    def test_corrupt_entry_self_heals(self, tmp_path):
        cache = artifacts.ArtifactCache(tmp_path)
        key = artifacts.content_key("unit", "payload")
        cache.put("unit", key, [1, 2, 3])
        path = cache._path("unit", key)
        path.write_bytes(b"not a pickle")
        assert cache.get("unit", key) is None  # miss, not an error
        assert not path.exists()  # deleted so it cannot shadow the slot

    def test_unpicklable_value_is_skipped(self, tmp_path):
        cache = artifacts.ArtifactCache(tmp_path)
        assert not cache.put("unit", "0" * 64, lambda: None)

    def test_disabled_by_default(self):
        if os.environ.get(artifacts.CACHE_DIR_ENV):
            pytest.skip("cache armed via environment")
        with artifacts.using(None):
            assert artifacts.active() is None


class TestBatchWarmRuns:
    def test_warm_serial_batch_is_served_cached_and_bit_identical(
        self, specs, tmp_path
    ):
        tasks = _case_tasks(specs)
        with artifacts.using(tmp_path):
            cold = run_batch(tasks, jobs=1)
            assert [s.status for s in cold.statuses] == ["serial", "serial"]
            warm = run_batch(tasks, jobs=1)
        assert [s.status for s in warm.statuses] == ["cached", "cached"]
        assert all(s.attempts == 0 for s in warm.statuses)
        assert [r.fingerprint() for r in warm.results] == \
            [r.fingerprint() for r in cold.results]

    def test_warm_pooled_batch_is_served_cached(self, specs, tmp_path):
        tasks = _case_tasks(specs)
        with artifacts.using(tmp_path):
            cold = run_batch(tasks, jobs=2)
            warm = run_batch(tasks, jobs=2)
        assert [s.status for s in cold.statuses] == ["ok", "ok"]
        assert [s.status for s in warm.statuses] == ["cached", "cached"]
        assert [r.fingerprint() for r in warm.results] == \
            [r.fingerprint() for r in cold.results]

    def test_cold_and_warm_fingerprints_match_uncached_run(
        self, specs, tmp_path
    ):
        tasks = _case_tasks(specs)
        with artifacts.using(None):
            plain = run_batch(tasks, jobs=1)
        with artifacts.using(tmp_path):
            cold = run_batch(tasks, jobs=1)
            warm = run_batch(tasks, jobs=1)
        fingerprints = [r.fingerprint() for r in plain.results]
        assert [r.fingerprint() for r in cold.results] == fingerprints
        assert [r.fingerprint() for r in warm.results] == fingerprints
