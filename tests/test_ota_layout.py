"""The OTA layout generator (paper Figure 5)."""

import pytest

from repro.circuit.topologies.folded_cascode import FOLDED_CASCODE_DEVICES
from repro.errors import LayoutError
from repro.layout.ota import MODULE_ROWS, OtaLayoutRequest, generate_ota_layout
from repro.units import UM


class TestEstimateMode:
    @pytest.fixture(scope="class")
    def estimate(self, tech, hand_sized):
        sizes, currents = hand_sized
        request = OtaLayoutRequest(
            technology=tech, sizes=sizes, currents=currents, aspect=1.0
        )
        return generate_ota_layout(request, mode="estimate")

    def test_no_cell_in_estimate_mode(self, estimate):
        assert estimate.cell is None
        assert estimate.mode == "estimate"

    def test_every_device_reported(self, estimate):
        assert set(estimate.report.devices) == set(FOLDED_CASCODE_DEVICES)

    def test_fold_counts_positive(self, estimate):
        assert all(nf >= 1 for nf in estimate.fold_config.values())

    def test_matched_devices_get_equal_folds(self, estimate):
        folds = estimate.fold_config
        assert folds["mp1"] == folds["mp2"]
        assert folds["mn5"] == folds["mn6"]
        assert folds["mp3"] == folds["mp4"]

    def test_even_folds_preferred(self, estimate):
        for name, nf in estimate.fold_config.items():
            assert nf == 1 or nf % 2 == 0, name

    def test_critical_nets_have_capacitance(self, estimate):
        for net in ("fold1", "fold2", "vout", "mir", "tail"):
            assert estimate.report.net_capacitance.get(net, 0.0) > 1e-15

    def test_symmetric_fold_nets(self, estimate):
        c1 = estimate.report.net_capacitance["fold1"]
        c2 = estimate.report.net_capacitance["fold2"]
        assert c1 == pytest.approx(c2, rel=0.15)

    def test_well_capacitance_on_supply(self, estimate):
        assert estimate.report.well_capacitance.get("vdd!", 0.0) > 0

    def test_snapped_widths_recorded(self, estimate, hand_sized):
        sizes, _ = hand_sized
        for name, info in estimate.report.devices.items():
            assert info.requested_width == pytest.approx(sizes[name][0])
            assert abs(info.width_error) < 0.05


class TestGenerateMode:
    def test_cell_present(self, ota_layout):
        assert ota_layout.cell is not None
        assert ota_layout.mode == "generate"

    def test_all_modules_placed(self, ota_layout):
        assert set(ota_layout.placements) == set(MODULE_ROWS)

    def test_rows_stack_bottom_up(self, ota_layout):
        def row_y(row):
            members = [
                m for name, m in ota_layout.placements.items()
                if MODULE_ROWS[name][0] == row
            ]
            return min(m.bbox().y0 for m in members)

        assert row_y(0) < row_y(1) < row_y(2) < row_y(3)

    def test_modules_do_not_overlap(self, ota_layout):
        boxes = [m.bbox() for m in ota_layout.placements.values()]
        for i, a in enumerate(boxes):
            for b in boxes[i + 1:]:
                assert not a.intersects(b)

    def test_aspect_near_target(self, ota_layout):
        report = ota_layout.report
        aspect = report.height / report.width
        assert 0.4 < aspect < 2.5

    def test_drawn_nets_cover_circuit_nets(self, ota_layout):
        nets = set(ota_layout.cell.nets())
        for net in ("fold1", "fold2", "mir", "vout", "tail", "inp", "inn"):
            assert net in nets

    def test_pair_module_in_dedicated_row(self, ota_layout):
        assert MODULE_ROWS["pair"][0] == 1

    def test_report_area_matches_cell(self, ota_layout):
        box = ota_layout.cell.bbox()
        # The reported area covers the placed modules (routing may stick
        # out on the side columns).
        assert box.width >= ota_layout.report.width * 0.9


class TestShapeConstraint:
    def test_wide_constraint_gives_wide_layout(self, tech, hand_sized):
        sizes, currents = hand_sized
        wide = generate_ota_layout(
            OtaLayoutRequest(technology=tech, sizes=sizes, currents=currents,
                             aspect=0.5),
            mode="estimate",
        )
        tall = generate_ota_layout(
            OtaLayoutRequest(technology=tech, sizes=sizes, currents=currents,
                             aspect=2.0),
            mode="estimate",
        )
        assert wide.report.height / wide.report.width < (
            tall.report.height / tall.report.width
        )

    def test_fold_config_responds_to_shape(self, tech, hand_sized):
        """Area optimisation under different shapes picks different folds
        for at least one device — the paper's central coupling point."""
        sizes, currents = hand_sized
        wide = generate_ota_layout(
            OtaLayoutRequest(technology=tech, sizes=sizes, currents=currents,
                             aspect=0.4),
            mode="estimate",
        )
        tall = generate_ota_layout(
            OtaLayoutRequest(technology=tech, sizes=sizes, currents=currents,
                             aspect=2.5),
            mode="estimate",
        )
        assert wide.fold_config != tall.fold_config


class TestOddFoldAblation:
    def test_odd_folds_raise_drain_capacitance(self, tech, hand_sized):
        """prefer_even_folds=False forces odd folds: drains lose the
        F=1/2 sharing and their junction capacitance grows."""
        sizes, currents = hand_sized
        even = generate_ota_layout(
            OtaLayoutRequest(technology=tech, sizes=sizes, currents=currents,
                             prefer_even_folds=True),
            mode="estimate",
        )
        odd = generate_ota_layout(
            OtaLayoutRequest(technology=tech, sizes=sizes, currents=currents,
                             prefer_even_folds=False),
            mode="estimate",
        )
        even_ad = even.report.devices["mn1c"].geometry.ad
        odd_ad = odd.report.devices["mn1c"].geometry.ad
        if odd.fold_config["mn1c"] > 1:
            assert odd_ad > even_ad * 0.99


class TestValidation:
    def test_missing_sizes_rejected(self, tech, hand_sized):
        sizes, currents = hand_sized
        partial = dict(sizes)
        del partial["mp1"]
        with pytest.raises(LayoutError):
            generate_ota_layout(
                OtaLayoutRequest(technology=tech, sizes=partial,
                                 currents=currents),
                mode="estimate",
            )

    def test_bad_mode_rejected(self, tech, hand_sized):
        sizes, currents = hand_sized
        with pytest.raises(LayoutError):
            generate_ota_layout(
                OtaLayoutRequest(technology=tech, sizes=sizes,
                                 currents=currents),
                mode="fancy",
            )

    def test_floating_well_option(self, tech, hand_sized):
        sizes, currents = hand_sized
        result = generate_ota_layout(
            OtaLayoutRequest(technology=tech, sizes=sizes, currents=currents,
                             input_pair_well_to_source=True),
            mode="estimate",
        )
        assert result.report.well_capacitance.get("tail", 0.0) > 0
