"""SPICE netlist importer: value parsing and exporter round-trips."""

import pytest

from repro.circuit import Circuit, to_spice
from repro.circuit.parser import from_spice, parse_value
from repro.errors import CircuitError
from repro.units import UM


class TestParseValue:
    @pytest.mark.parametrize(
        "token, expected",
        [
            ("1", 1.0),
            ("3p", 3e-12),
            ("3P", 3e-12),
            ("2.5MEG", 2.5e6),
            ("10k", 10e3),
            ("100u", 100e-6),
            ("5n", 5e-9),
            ("1.5f", 1.5e-15),
            ("-2m", -2e-3),
            ("1e-6", 1e-6),
            ("4.7e3", 4.7e3),
        ],
    )
    def test_suffixes(self, token, expected):
        assert parse_value(token) == pytest.approx(expected)

    def test_garbage_rejected(self):
        with pytest.raises(CircuitError):
            parse_value("abc")

    def test_unknown_suffix_rejected(self):
        with pytest.raises(CircuitError):
            parse_value("3x")


class TestBasicDecks:
    def test_rc_divider(self):
        deck = """* divider
Vin in 0 DC 2 AC 1
R1 in out 10k
C1 out 0 1p
.END
"""
        circuit = from_spice(deck)
        assert len(circuit) == 3
        assert circuit.element("1").value == pytest.approx(10e3)

    def test_continuation_lines(self):
        deck = """* cont
R1 a
+ 0 5k
V1 a 0 1
.END
"""
        circuit = from_spice(deck)
        assert circuit.element("1").value == pytest.approx(5e3)

    def test_comments_skipped(self):
        deck = """* title
* a comment
R1 a 0 1k
V1 a 0 1
.END
"""
        assert len(from_spice(deck)) == 2

    def test_current_source(self):
        deck = """* i
Iin 0 a DC 1m
R1 a 0 1k
.END
"""
        circuit = from_spice(deck)
        source = circuit.element("in")
        assert source.dc == pytest.approx(1e-3)

    def test_unknown_card_rejected(self):
        with pytest.raises(CircuitError):
            from_spice("* t\nQ1 a b c model\n.END\n")

    def test_unknown_model_reference_rejected(self):
        with pytest.raises(CircuitError):
            from_spice("* t\nM1 d g s b ghost W=1u L=1u\n.END\n")

    def test_empty_deck_rejected(self):
        with pytest.raises(CircuitError):
            from_spice("\n\n")


class TestMosDecks:
    DECK = """* amp
Vdd vdd! 0 DC 3.3
Vin g 0 DC 1.1 AC 1
Rload vdd! d 20k
M1 d g 0 0 nch W=30u L=1u
.MODEL nch NMOS (LEVEL=1 VTO=0.75 KP=1e-4 GAMMA=0.8 PHI=0.7 TOX=1.4e-8
+ LAMBDA=1e-7 CJ=8e-4 CJSW=3.2e-10 MJ=0.44 MJSW=0.26 PB=0.9)
.END
"""

    def test_device_parsed(self):
        circuit = from_spice(self.DECK)
        mos = circuit.mos("1")
        assert mos.w == pytest.approx(30e-6)
        assert mos.l == pytest.approx(1e-6)
        assert mos.params.vto == pytest.approx(0.75)

    def test_kp_converted_to_mobility(self):
        circuit = from_spice(self.DECK)
        params = circuit.mos("1").params
        assert params.kp == pytest.approx(1e-4, rel=1e-6)

    def test_parsed_deck_simulates(self):
        from repro.analysis import solve_dc

        circuit = from_spice(self.DECK)
        solution = solve_dc(circuit)
        assert 0.0 < solution.voltage("d") < 3.3

    def test_geometry_annotations(self):
        deck = self.DECK.replace(
            "W=30u L=1u", "W=30u L=1u AD=4.5e-11 PD=3.3e-5 AS=4.5e-11 PS=3.3e-5"
        )
        mos = from_spice(deck).mos("1")
        assert mos.geometry is not None
        assert mos.geometry.ad == pytest.approx(4.5e-11)


class TestRoundTrip:
    def test_ota_round_trip_simulates_identically(self, hand_testbench):
        """Export the OTA, re-import it, and compare DC solutions."""
        from repro.analysis import solve_dc

        deck = to_spice(hand_testbench.circuit)
        reimported = from_spice(deck)
        original = solve_dc(hand_testbench.circuit)
        parsed = solve_dc(reimported)
        for net in ("vout", "fold1", "mir", "tail"):
            assert parsed.voltage(net) == pytest.approx(
                original.voltage(net), abs=2e-3
            ), net

    def test_round_trip_preserves_element_count(self, hand_testbench):
        deck = to_spice(hand_testbench.circuit)
        reimported = from_spice(deck)
        assert len(reimported) == len(hand_testbench.circuit)

    def test_round_trip_preserves_ac_drives(self):
        circuit = Circuit("src")
        circuit.add_vsource("vin", "a", "0", dc=1.5, ac=0.5)
        circuit.add_resistor("r", "a", "0", 1e3)
        reimported = from_spice(to_spice(circuit))
        source = reimported.element("vin")
        assert source.dc == pytest.approx(1.5)
        assert source.ac == pytest.approx(0.5)

    def test_round_trip_level3(self, tech):
        circuit = Circuit("l3")
        circuit.add_vsource("vdd", "vdd!", "0", dc=3.3)
        circuit.add_vsource("vg", "g", "0", dc=1.5)
        circuit.add_mos("m1", d="vdd!", g="g", s="0", b="0",
                        params=tech.nmos, w=30 * UM, l=1 * UM, model_level=3)
        from repro.analysis import solve_dc

        original = solve_dc(circuit).devices["m1"].op.id
        parsed_circuit = from_spice(to_spice(circuit))
        assert parsed_circuit.mos("m1").model_level == 3
        parsed = solve_dc(parsed_circuit).devices["m1"].op.id
        assert parsed == pytest.approx(original, rel=1e-3)
