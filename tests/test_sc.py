"""Switched-capacitor system synthesis (the paper's future-work hook)."""

import math

import pytest

from repro.core.sc import (
    ScIntegratorSpecs,
    synthesize_sc_integrator,
)
from repro.errors import SizingError
from repro.sizing.specs import ParasiticMode
from repro.units import PF


@pytest.fixture(scope="module")
def sc_specs():
    return ScIntegratorSpecs(
        clock=10e6,
        resolution_bits=10,
        sampling_cap=1 * PF,
        integration_cap=4 * PF,
        load_cap=1 * PF,
    )


class TestRequirementDerivation:
    def test_feedback_factor(self, sc_specs):
        assert sc_specs.feedback_factor == pytest.approx(0.8)

    def test_effective_load(self, sc_specs):
        assert sc_specs.effective_load == pytest.approx(1.8e-12)

    def test_settling_window_is_half_period(self, sc_specs):
        assert sc_specs.settling_window == pytest.approx(50e-9)

    def test_time_constants_half_lsb(self, sc_specs):
        assert sc_specs.required_time_constants() == pytest.approx(
            11 * math.log(2)
        )

    def test_required_gbw_formula(self, sc_specs):
        linear_window = 0.75 * 50e-9
        expected = (
            11 * math.log(2) / (0.8 * linear_window)
        ) / (2 * math.pi)
        assert sc_specs.required_gbw() == pytest.approx(expected)

    def test_more_bits_need_more_gbw(self, sc_specs):
        harder = ScIntegratorSpecs(
            clock=10e6, resolution_bits=14,
            sampling_cap=1 * PF, integration_cap=4 * PF,
        )
        assert harder.required_gbw() > sc_specs.required_gbw()

    def test_faster_clock_needs_more_gbw(self, sc_specs):
        faster = ScIntegratorSpecs(
            clock=40e6, resolution_bits=10,
            sampling_cap=1 * PF, integration_cap=4 * PF,
        )
        assert faster.required_gbw() == pytest.approx(
            4 * sc_specs.required_gbw(), rel=1e-9
        )

    def test_slew_budget(self, sc_specs):
        # 1 V across a quarter of the 50 ns window.
        assert sc_specs.required_slew_rate() == pytest.approx(
            1.0 / 12.5e-9
        )

    def test_gain_requirement(self, sc_specs):
        assert sc_specs.required_dc_gain() == pytest.approx(2**11 / 0.8)

    def test_ota_specs_carry_margin(self, sc_specs):
        ota = sc_specs.ota_specs(margin=1.1)
        assert ota.gbw == pytest.approx(1.1 * sc_specs.required_gbw())
        assert ota.cload == pytest.approx(sc_specs.effective_load)

    def test_validation(self):
        with pytest.raises(SizingError):
            ScIntegratorSpecs(
                clock=0.0, resolution_bits=10,
                sampling_cap=1e-12, integration_cap=1e-12,
            ).validate()
        with pytest.raises(SizingError):
            ScIntegratorSpecs(
                clock=1e6, resolution_bits=10,
                sampling_cap=1e-12, integration_cap=1e-12,
                slew_fraction=1.5,
            ).validate()


class TestScSynthesis:
    @pytest.fixture(scope="class")
    def outcome(self, tech, sc_specs):
        return synthesize_sc_integrator(
            tech, sc_specs, mode=ParasiticMode.FULL, generate=False
        )

    def test_flow_converges(self, outcome):
        assert outcome.synthesis.converged

    def test_gbw_met_with_parasitics(self, outcome):
        metrics = outcome.synthesis.sizing.predicted
        assert metrics.gbw >= 0.98 * outcome.ota_specs.gbw

    def test_gain_requirement_checked(self, outcome, sc_specs):
        metrics = outcome.synthesis.sizing.predicted
        gain = 10 ** (metrics.dc_gain_db / 20)
        assert outcome.gain_ok == (gain >= sc_specs.required_dc_gain())

    def test_slew_requirement_checked(self, outcome, sc_specs):
        metrics = outcome.synthesis.sizing.predicted
        assert outcome.slew_ok == (
            metrics.slew_rate >= sc_specs.required_slew_rate()
        )

    def test_overall_verdict_consistent(self, outcome):
        assert outcome.passed == (
            outcome.synthesis.converged and outcome.slew_ok and outcome.gain_ok
        )
