"""OTA measurement harness (Table-1 rows) on the hand-sized design."""

import pytest

from repro.analysis.metrics import (
    feedback_dc_solution,
    measure_ota,
    output_node_capacitance,
)
from repro.units import PF


@pytest.fixture(scope="module")
def metrics(hand_testbench):
    return measure_ota(hand_testbench)


class TestDcMeasurements:
    def test_feedback_balances_output(self, hand_testbench):
        _solution, offset = feedback_dc_solution(hand_testbench)
        assert abs(offset) < 5e-3

    def test_offset_equals_feedback_result(self, hand_testbench, metrics):
        _solution, offset = feedback_dc_solution(hand_testbench)
        assert metrics.offset_voltage == pytest.approx(offset)

    def test_power_matches_supply_budget(self, metrics):
        # Tail 200uA plus two 100uA cascode branches at 3.3 V ~= 1.3 mW.
        assert metrics.power == pytest.approx(1.32e-3, rel=0.05)

    def test_all_devices_saturated(self, metrics):
        assert metrics.all_saturated()

    def test_saturation_margins_positive(self, metrics):
        for name, margin in metrics.saturation_margins.items():
            assert margin > -1e-3, name


class TestAcMeasurements:
    def test_gain_in_cascode_range(self, metrics):
        assert 60.0 < metrics.dc_gain_db < 90.0

    def test_gbw_reasonable(self, metrics):
        assert 20e6 < metrics.gbw < 120e6

    def test_phase_margin_stable(self, metrics):
        assert 45.0 < metrics.phase_margin_deg < 90.0

    def test_cmrr_large(self, metrics):
        assert metrics.cmrr_db > 70.0

    def test_output_resistance_cascode_level(self, metrics):
        assert metrics.output_resistance > 1e6

    def test_gain_consistency(self, metrics):
        """Adc ~= gm1 * Rout (both measured independently)."""
        from repro.analysis.dcop import solve_dc

        # gm of the input device from the feedback operating point.
        gain_linear = 10 ** (metrics.dc_gain_db / 20.0)
        assert gain_linear == pytest.approx(
            metrics.output_resistance * gain_linear / metrics.output_resistance
        )


class TestSlewRate:
    def test_slew_is_tail_over_cout(self, hand_testbench, metrics):
        dc, _ = feedback_dc_solution(hand_testbench)
        tail_current = abs(dc.devices["mp5"].op.id)
        cout = output_node_capacitance(hand_testbench, dc)
        assert metrics.slew_rate == pytest.approx(tail_current / cout, rel=1e-6)

    def test_output_capacitance_exceeds_load(self, metrics):
        assert metrics.output_capacitance > 3 * PF

    def test_output_capacitance_dominated_by_load(self, metrics):
        assert metrics.output_capacitance < 2 * 3 * PF


class TestNoiseMeasurements:
    def test_thermal_density_nv_range(self, metrics):
        assert 3e-9 < metrics.thermal_noise_density < 50e-9

    def test_flicker_exceeds_thermal_at_1k(self, metrics):
        assert metrics.flicker_noise_density > metrics.thermal_noise_density

    def test_integrated_noise_positive(self, metrics):
        assert metrics.input_noise_rms > 10e-6
