"""Channel router: planning, drawing, parasitics."""

import pytest

from repro.layout.cell import Cell
from repro.layout.devices import single_device_layout
from repro.layout.layers import Layer
from repro.layout.routing import ChannelRouter, PlacedModule
from repro.units import UM


@pytest.fixture(scope="module")
def router(tech):
    return ChannelRouter(tech, {"hot": 5e-3, "cold": 10e-6})


class TestPlanning:
    def test_spanning_net_gets_contiguous_tracks(self, router):
        """Pins in channels 0 and 2 need tracks in 0, 1 and 2."""
        plan = router.plan_channels(3, net_pins={"n1": [0, 2]})
        assert plan.net_tracks["n1"] == [0, 1, 2]

    def test_adjacent_channel_single_track(self, router):
        plan = router.plan_channels(3, net_pins={"n1": [1]})
        assert plan.net_tracks["n1"] == [1]

    def test_external_channels_exist(self, router):
        """row_count rows give row_count + 1 channels (one below the
        bottom row, one above the top row)."""
        plan = router.plan_channels(2, net_pins={"n1": [0], "n2": [2]})
        assert plan.net_tracks["n1"] == [0]
        assert plan.net_tracks["n2"] == [2]
        assert len(plan.heights) == 3

    def test_out_of_range_channel_rejected(self, router):
        from repro.errors import LayoutError

        with pytest.raises(LayoutError):
            router.plan_channels(2, net_pins={"n1": [5]})

    def test_channel_heights_scale_with_tracks(self, router):
        one = router.plan_channels(2, net_pins={"a": [1]})
        three = router.plan_channels(
            2, net_pins={"a": [1], "b": [1], "c": [1]}
        )
        assert three.heights[1] > one.heights[1]

    def test_em_width_in_plan(self, router, tech):
        plan = router.plan_channels(
            2, net_pins={"hot": [0, 1], "cold": [0, 1]}
        )
        assert plan.track_widths["hot"] > plan.track_widths["cold"]
        # Narrow tracks still land vias: floor is via + enclosure.
        floor = tech.rules.via_size + 2 * tech.rules.via_metal_enclosure
        assert plan.track_widths["cold"] >= floor


@pytest.fixture(scope="module")
def routed(tech):
    """Two modules stacked, one shared net routed between them."""
    bottom = single_device_layout(
        tech, "n", 20 * UM, 1 * UM, 2, ("mid", "g1", "0", "0"), name="m1"
    )
    top = single_device_layout(
        tech, "n", 20 * UM, 1 * UM, 2, ("d2", "g2", "mid", "0"), name="m2"
    )
    router = ChannelRouter(tech, {"mid": 100e-6})
    net_pins = {}
    for row, module in enumerate((bottom, top)):
        box = module.cell.bbox()
        for net, shapes in module.cell.pins.items():
            for shape in shapes:
                channel = row if shape.rect.center.y < box.center.y else row + 1
                net_pins.setdefault(net, []).append(channel)
    plan = router.plan_channels(2, net_pins)

    gap = plan.heights[1]
    placed = [
        PlacedModule("m1", bottom, dx=0.0, dy=-bottom.cell.bbox().y0),
        PlacedModule(
            "m2", top,
            dx=0.0,
            dy=-top.cell.bbox().y0 + bottom.cell.bbox().height + gap,
        ),
    ]
    cell = Cell("assembly")
    for module in placed:
        cell.add_instance(module.layout.cell, dx=module.dx, dy=module.dy)
    channel_y = [
        placed[0].bbox().y0 - plan.heights[0],
        placed[0].bbox().y1,
        placed[1].bbox().y1,
    ]
    width = max(m.bbox().x1 for m in placed)
    result = router.route(
        cell, placed, {"m1": 0, "m2": 1}, plan, channel_y, (0.0, width)
    )
    return cell, result, plan


class TestRouting:
    def test_every_net_routed(self, routed):
        _cell, result, plan = routed
        assert set(result.nets) == set(plan.net_tracks)

    def test_shared_net_has_track_and_stubs(self, routed):
        _cell, result, _plan = routed
        net = result.nets["mid"]
        metal2 = [w for w in net.wires if w.layer is Layer.METAL2]
        metal1 = [w for w in net.wires if w.layer is Layer.METAL1]
        assert len(metal2) >= 1
        assert len(metal1) >= 2  # one stub per pin

    def test_vias_connect_layers(self, routed):
        _cell, result, _plan = routed
        assert result.nets["mid"].via_count >= 4

    def test_ground_capacitance_positive(self, routed, tech):
        _cell, result, _plan = routed
        assert result.nets["mid"].ground_capacitance(tech) > 1e-16

    def test_tracks_recorded_in_order(self, routed):
        _cell, result, _plan = routed
        tracks = result.channel_tracks[1]
        ys = [rect.y0 for _net, rect in tracks]
        assert ys == sorted(ys)

    def test_adjacent_track_coupling(self, routed, tech):
        _cell, result, _plan = routed
        coupling = result.coupling_capacitances(tech)
        # Tracks that overlap horizontally couple.
        assert all(value >= 0 for value in coupling.values())

    def test_wires_drawn_into_cell(self, routed):
        cell, result, _plan = routed
        drawn = [s for s in cell.shapes if s.net == "mid"]
        assert len(drawn) >= 3

    def test_total_length_positive(self, routed):
        _cell, result, _plan = routed
        assert result.nets["mid"].total_length() > 1 * UM
