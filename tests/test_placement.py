"""Slicing-tree placement and area optimisation."""

import pytest

from repro.errors import LayoutError
from repro.layout.cell import Cell
from repro.layout.devices import ModuleLayout
from repro.layout.geometry import Rect
from repro.layout.layers import Layer
from repro.layout.placement import LeafNode, ModuleVariant, SliceNode, optimize, realize
from repro.units import UM


def block(name, width, height):
    """A module with one rectangular variant."""
    cell = Cell(name)
    cell.add_shape(Layer.METAL1, Rect(0, 0, width, height))
    layout = ModuleLayout(
        cell=cell, device_geometry={}, device_nf={},
        finger_width=0.0, length=0.0,
    )
    return ModuleVariant(tag=name, layout=layout)


def leaf(name, *sizes):
    return LeafNode(name, [block(f"{name}{i}", w, h) for i, (w, h) in enumerate(sizes)])


class TestLeaf:
    def test_variants_become_frontier(self):
        node = leaf("a", (1 * UM, 4 * UM), (4 * UM, 1 * UM), (2 * UM, 2 * UM))
        assert len(node.shape_function()) == 3

    def test_empty_variants_rejected(self):
        with pytest.raises(LayoutError):
            LeafNode("x", [])


class TestSliceComposition:
    def test_horizontal_dimensions(self):
        root = SliceNode("h", [leaf("a", (2e-6, 3e-6)), leaf("b", (1e-6, 5e-6))],
                         spacings=[1e-6])
        point = root.shape_function().points[0]
        assert point.width == pytest.approx(4e-6)
        assert point.height == pytest.approx(5e-6)

    def test_vertical_dimensions(self):
        root = SliceNode("v", [leaf("a", (2e-6, 3e-6)), leaf("b", (1e-6, 5e-6))])
        point = root.shape_function().points[0]
        assert point.width == pytest.approx(2e-6)
        assert point.height == pytest.approx(8e-6)

    def test_bad_kind_rejected(self):
        with pytest.raises(LayoutError):
            SliceNode("x", [leaf("a", (1e-6, 1e-6))])

    def test_wrong_spacing_count_rejected(self):
        with pytest.raises(LayoutError):
            SliceNode("h", [leaf("a", (1e-6, 1e-6))], spacings=[1.0, 2.0])


class TestRealize:
    def test_horizontal_positions(self):
        root = SliceNode(
            "h", [leaf("a", (2e-6, 3e-6)), leaf("b", (1e-6, 3e-6))],
            spacings=[1e-6], align="min",
        )
        point = root.shape_function().points[0]
        placements = {p.name: p for p in realize(point)}
        assert placements["a"].dx == pytest.approx(0.0)
        assert placements["b"].dx == pytest.approx(3e-6)

    def test_vertical_positions(self):
        root = SliceNode(
            "v", [leaf("a", (2e-6, 3e-6)), leaf("b", (2e-6, 1e-6))],
            spacings=[2e-6], align="min",
        )
        point = root.shape_function().points[0]
        placements = {p.name: p for p in realize(point)}
        assert placements["b"].dy == pytest.approx(5e-6)

    def test_center_alignment(self):
        root = SliceNode(
            "v", [leaf("wide", (4e-6, 1e-6)), leaf("narrow", (2e-6, 1e-6))],
            align="center",
        )
        point = root.shape_function().points[0]
        placements = {p.name: p for p in realize(point)}
        assert placements["narrow"].dx == pytest.approx(1e-6)

    def test_variant_selection_by_aspect(self):
        node = leaf("a", (1e-6, 16e-6), (4e-6, 4e-6), (16e-6, 1e-6))
        point, placements = optimize(node, aspect=1.0)
        assert placements[0].variant.layout.cell.width == pytest.approx(4e-6)

    def test_fold_choice_responds_to_constraint(self):
        """The paper's point: the shape constraint picks implementations."""
        node = leaf("a", (1e-6, 16e-6), (16e-6, 1e-6))
        _point, tall = optimize(node, aspect=16.0)
        _point, flat = optimize(node, aspect=1.0 / 16.0)
        assert tall[0].variant.layout.cell.height > flat[0].variant.layout.cell.height

    def test_conflicting_constraints_rejected(self):
        node = leaf("a", (1e-6, 1e-6))
        with pytest.raises(LayoutError):
            optimize(node, aspect=1.0, height=2e-6)

    def test_minimum_area_default(self):
        node = leaf("a", (1e-6, 9e-6), (2e-6, 2e-6), (9e-6, 1e-6))
        point, _ = optimize(node)
        assert point.area == pytest.approx(4e-12)

    def test_nested_tree(self):
        bottom = SliceNode("h", [leaf("a", (2e-6, 2e-6)), leaf("b", (2e-6, 2e-6))])
        root = SliceNode("v", [bottom, leaf("c", (3e-6, 1e-6))])
        point, placements = optimize(root)
        names = sorted(p.name for p in placements)
        assert names == ["a", "b", "c"]
        assert point.height == pytest.approx(3e-6)
