"""The CAIRO-style procedural layout language."""

import pytest

from repro.errors import LayoutError
from repro.layout.cairo import CairoProgram
from repro.units import UM


@pytest.fixture
def mirror_program(tech):
    program = CairoProgram(tech, "mirror_example")
    program.mirror(
        "mir", "n", {"m1": 1, "m2": 3, "m3": 6},
        unit_width=5 * UM, l=2 * UM,
        drains={"m1": "bias", "m2": "o2", "m3": "o3"},
        gate="bias", source="0", bulk="0",
        currents={"m1": 100e-6, "m2": 300e-6, "m3": 600e-6},
    )
    program.device("cas", "n", 20 * UM, 1 * UM, ("out", "vc", "o2", "0"),
                   nf=2, current=300e-6)
    program.row("mir")
    program.row("cas")
    program.net_current("o2", 300e-6)
    return program


class TestProgramStructure:
    def test_duplicate_module_rejected(self, tech):
        program = CairoProgram(tech)
        program.device("a", "n", 10 * UM, 1 * UM, ("d", "g", "s", "b"))
        with pytest.raises(LayoutError):
            program.device("a", "n", 10 * UM, 1 * UM, ("d", "g", "s", "b"))

    def test_unknown_module_in_row_rejected(self, tech):
        program = CairoProgram(tech)
        with pytest.raises(LayoutError):
            program.row("ghost")

    def test_no_rows_rejected(self, tech):
        program = CairoProgram(tech)
        program.device("a", "n", 10 * UM, 1 * UM, ("d", "g", "s", "b"))
        with pytest.raises(LayoutError):
            program.calculate_parasitics()


class TestParasiticMode:
    def test_report_covers_all_devices(self, mirror_program):
        report = mirror_program.calculate_parasitics()
        assert set(report.devices) == {"m1", "m2", "m3", "cas"}

    def test_shared_net_capacitance(self, mirror_program):
        report = mirror_program.calculate_parasitics()
        assert report.net_capacitance["o2"] > 0

    def test_area_reported(self, mirror_program):
        report = mirror_program.calculate_parasitics()
        assert report.width > 10 * UM
        assert report.height > 10 * UM


class TestGenerateMode:
    def test_cell_and_report(self, mirror_program):
        cell, report = mirror_program.generate()
        assert len(list(cell.flattened())) > 50
        assert report.net_capacitance

    def test_shape_constraint_respected(self, tech):
        def build(aspect):
            program = CairoProgram(tech)
            program.device("a", "n", 80 * UM, 1 * UM, ("d1", "g1", "s", "0"),
                           nf=4)
            program.device("b", "n", 80 * UM, 1 * UM, ("d2", "g2", "s", "0"),
                           nf=4)
            program.row("a")
            program.row("b")
            program.shape(aspect=aspect)
            return program.calculate_parasitics()

        square = build(1.0)
        assert square.width > 0

    def test_single_row_program(self, tech):
        program = CairoProgram(tech)
        program.device("a", "n", 20 * UM, 1 * UM, ("d", "g", "s", "0"), nf=2)
        program.row("a")
        cell, report = program.generate()
        assert "d" in report.net_capacitance

    def test_pair_declaration(self, tech):
        program = CairoProgram(tech)
        program.pair(
            "p1", "p", 40 * UM, 1 * UM, nf=2,
            names=("ma", "mb"), drains=("da", "db"), gates=("ga", "gb"),
            source="tail", bulk="vdd!",
        )
        program.row("p1")
        report = program.calculate_parasitics()
        assert set(report.devices) == {"ma", "mb"}
        assert report.well_capacitance.get("vdd!", 0.0) > 0
