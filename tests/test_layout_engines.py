"""Layout-path engines: golden equivalence, spatial index, memo caches.

The vectorized extraction and grid-indexed DRC are exact replacements for
the scalar references — same keys, same floats (within 1e-12), same
violation order — verified here on both OTA topologies plus synthetic
cells that hit every violation kind.  The composition and estimate memo
caches must be invisible: a warm hit returns the identical content a cold
run computes.
"""

from __future__ import annotations

import pytest

from repro.layout.cell import Cell
from repro.layout.drc import DrcChecker
from repro.layout.engine import (
    ALLPAIRS,
    GRID,
    SCALAR,
    VECTOR,
    drc_engine,
    extraction_engine,
)
from repro.layout.extraction import extract_cell
from repro.layout.geometry import GridIndex, Rect, interval_pairs
from repro.layout.layers import Layer
from repro.layout.shape import (
    ShapeFunction,
    ShapePoint,
    clear_compose_cache,
    compose_frontier,
)
from repro.units import UM


@pytest.fixture(scope="module")
def two_stage_cell(tech):
    from repro.layout.two_stage_ota import (
        TwoStageLayoutRequest,
        generate_two_stage_layout,
    )
    from repro.sizing.plans.two_stage import TwoStagePlan
    from repro.sizing.specs import OtaSpecs, ParasiticMode

    specs = OtaSpecs(
        vdd=3.3, gbw=30e6, phase_margin=60.0, cload=2e-12,
        input_cm_range=(1.0, 2.0), output_range=(0.4, 2.9),
    )
    result = TwoStagePlan(tech).size(specs, ParasiticMode.SINGLE_FOLD)
    request = TwoStageLayoutRequest(
        technology=tech, sizes=result.sizes, currents=result.currents,
        cc=result.biases["_cc"], aspect=1.0,
    )
    return generate_two_stage_layout(request, mode="generate").cell


@pytest.fixture
def dirty_cell(tech):
    """A cell tripping every violation kind the checker knows."""
    rules = tech.rules
    cell = Cell("dirty")
    # Short: different nets overlapping on metal1.
    cell.add_shape(Layer.METAL1, Rect(0, 0, 5 * UM, 1 * UM), net="a")
    cell.add_shape(Layer.METAL1, Rect(4 * UM, 0, 9 * UM, 1 * UM), net="b")
    # Spacing: two metal2 wires half a rule apart.
    gap = rules.metal2_spacing / 2
    cell.add_shape(Layer.METAL2, Rect(0, 0, 5 * UM, 1 * UM), net="c")
    cell.add_shape(
        Layer.METAL2, Rect(0, 1 * UM + gap, 5 * UM, 2 * UM + gap), net="d"
    )
    # Min width: a sliver of metal1 far from everything else.
    cell.add_shape(
        Layer.METAL1,
        Rect(20 * UM, 0, 25 * UM, rules.metal1_min_width / 2),
        net="e",
    )
    # Cut size: an oversized contact; enclosure: a bare correctly-sized one.
    size = rules.contact_size
    cell.add_shape(
        Layer.CONTACT, Rect(40 * UM, 0, 40 * UM + 2 * size, size), net="f"
    )
    cell.add_shape(
        Layer.CONTACT, Rect(60 * UM, 0, 60 * UM + size, size), net="g"
    )
    return cell


class TestEngineSwitch:
    def test_defaults(self):
        assert extraction_engine.resolve(None) == VECTOR
        assert drc_engine.resolve(None) == GRID

    def test_explicit_resolve(self):
        assert extraction_engine.resolve(SCALAR) == SCALAR
        assert drc_engine.resolve(ALLPAIRS) == ALLPAIRS

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            extraction_engine.resolve("fpga")

    def test_use_scopes_and_restores(self):
        before = extraction_engine.resolve(None)
        with extraction_engine.use(SCALAR):
            assert extraction_engine.resolve(None) == SCALAR
        assert extraction_engine.resolve(None) == before

    def test_use_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with drc_engine.use(ALLPAIRS):
                raise RuntimeError("boom")
        assert drc_engine.resolve(None) == GRID


def _assert_extractions_match(cell, tech):
    scalar = extract_cell(cell, tech, engine=SCALAR)
    vector = extract_cell(cell, tech, engine=VECTOR)
    for attr in ("net_wire_cap", "coupling", "diffusion", "well"):
        got = getattr(vector, attr)
        want = getattr(scalar, attr)
        assert list(got) == list(want), f"{attr} keys differ"
        for key in want:
            assert got[key] == pytest.approx(
                want[key], rel=1e-12, abs=1e-30
            ), f"{attr}[{key}]"


class TestExtractionGolden:
    def test_folded_cascode_matches_scalar(self, ota_layout, tech):
        _assert_extractions_match(ota_layout.cell, tech)

    def test_two_stage_matches_scalar(self, two_stage_cell, tech):
        _assert_extractions_match(two_stage_cell, tech)

    def test_coupling_keys_canonical(self, ota_layout, tech):
        for engine in (SCALAR, VECTOR):
            extracted = extract_cell(ota_layout.cell, tech, engine=engine)
            for net_a, net_b in extracted.coupling:
                assert net_a < net_b
            assert list(extracted.coupling) == sorted(extracted.coupling)

    def test_default_engine_is_vector(self, ota_layout, tech):
        default = extract_cell(ota_layout.cell, tech)
        vector = extract_cell(ota_layout.cell, tech, engine=VECTOR)
        assert default.net_wire_cap == vector.net_wire_cap
        assert default.coupling == vector.coupling


class TestDrcGolden:
    def test_clean_cell_identical(self, ota_layout, tech):
        checker = DrcChecker(tech)
        grid = checker.check(ota_layout.cell, engine=GRID)
        allpairs = checker.check(ota_layout.cell, engine=ALLPAIRS)
        assert grid == allpairs == []

    def test_two_stage_identical(self, two_stage_cell, tech):
        checker = DrcChecker(tech)
        assert checker.check(two_stage_cell, engine=GRID) == checker.check(
            two_stage_cell, engine=ALLPAIRS
        )

    def test_dirty_cell_identical_and_ordered(self, dirty_cell, tech):
        checker = DrcChecker(tech)
        grid = checker.check(dirty_cell, engine=GRID)
        allpairs = checker.check(dirty_cell, engine=ALLPAIRS)
        kinds = {v.kind for v in allpairs}
        assert {"short", "spacing", "min_width", "cut_size",
                "enclosure"} <= kinds
        # Same violations in the same order, field for field.
        assert grid == allpairs


class TestGridIndex:
    def _brute(self, rects, window, margin):
        grown = Rect(
            window.x0 - margin, window.y0 - margin,
            window.x1 + margin, window.y1 + margin,
        )
        return [
            i for i, r in enumerate(rects)
            if grown.x0 < r.x1 and r.x0 < grown.x1
            and grown.y0 < r.y1 and r.y0 < grown.y1
        ]

    def test_query_matches_brute_force(self):
        rects = [
            Rect(x * 1.5, y * 2.0, x * 1.5 + 1.0, y * 2.0 + 1.2)
            for x in range(7)
            for y in range(5)
        ]
        index = GridIndex.for_rects(rects)
        for window in (
            Rect(0.0, 0.0, 1.0, 1.0),
            Rect(2.2, 1.1, 6.4, 3.3),
            Rect(-5.0, -5.0, 50.0, 50.0),
            Rect(100.0, 100.0, 101.0, 101.0),
        ):
            for margin in (0.0, 0.7):
                got = index.query(window, margin)
                assert got == self._brute(rects, window, margin)

    def test_results_sorted_and_unique(self):
        rects = [Rect(0, 0, 10, 10) for _ in range(4)]
        index = GridIndex.for_rects(rects)
        hits = index.query(Rect(1, 1, 2, 2))
        assert hits == sorted(set(hits)) == [0, 1, 2, 3]

    def test_incremental_insert(self):
        index = GridIndex.for_rects([Rect(0, 0, 1, 1)])
        index.insert(Rect(0.5, 0.5, 1.5, 1.5))
        assert index.query(Rect(1.2, 1.2, 1.4, 1.4)) == [1]

    def test_query_counter(self):
        index = GridIndex.for_rects([Rect(0, 0, 1, 1)])
        before = index.queries
        index.query(Rect(0, 0, 1, 1))
        index.query(Rect(5, 5, 6, 6))
        assert index.queries == before + 2


class TestIntervalPairs:
    def test_matches_brute_force(self):
        starts = [0.0, 0.5, 2.0, 2.1, 10.0]
        ends = [1.0, 1.5, 3.0, 2.6, 11.0]
        for window in (0.0, 0.5, 5.0):
            ii, jj = interval_pairs(starts, ends, window)
            got = sorted(zip(ii.tolist(), jj.tolist()))
            # Brute force: pairs whose x-extents come within `window`.
            want = sorted(
                (i, j)
                for i in range(len(starts))
                for j in range(i + 1, len(starts))
                if max(starts[i], starts[j]) - min(ends[i], ends[j])
                <= window
            )
            assert got == want

    def test_empty_input(self):
        ii, jj = interval_pairs([], [], 1.0)
        assert ii.size == 0 and jj.size == 0


class TestComposeCache:
    def test_hit_matches_cold_run(self):
        clear_compose_cache()
        children = [
            [ShapePoint(1.0, 4.0), ShapePoint(2.0, 2.5), ShapePoint(4.0, 1.0)],
            [ShapePoint(1.5, 3.0), ShapePoint(3.0, 1.5)],
        ]
        cold = compose_frontier("h", children, 0.25)
        warm = compose_frontier("h", children, 0.25)
        assert cold == warm

    def test_matches_direct_stockmeyer(self):
        clear_compose_cache()
        left = ShapeFunction(
            [ShapePoint(1.0, 4.0), ShapePoint(2.0, 2.5), ShapePoint(4.0, 1.0)]
        )
        right = ShapeFunction([ShapePoint(1.5, 3.0), ShapePoint(3.0, 1.5)])
        direct = ShapeFunction.horizontal(left, right, spacing=0.25)
        combos = compose_frontier(
            "h", [left.points, right.points], 0.25
        )
        rebuilt = [
            (
                left.points[i].width + right.points[j].width + 0.25,
                max(left.points[i].height, right.points[j].height),
            )
            for i, j in combos
        ]
        assert rebuilt == [(p.width, p.height) for p in direct.points]

    def test_vertical_composition(self):
        clear_compose_cache()
        bottom = ShapeFunction([ShapePoint(1.0, 2.0), ShapePoint(3.0, 1.0)])
        top = ShapeFunction([ShapePoint(2.0, 2.0), ShapePoint(4.0, 0.5)])
        direct = ShapeFunction.vertical(bottom, top, spacing=0.1)
        combos = compose_frontier(
            "v", [bottom.points, top.points], 0.1
        )
        rebuilt = [
            (
                max(bottom.points[i].width, top.points[j].width),
                bottom.points[i].height + top.points[j].height + 0.1,
            )
            for i, j in combos
        ]
        assert rebuilt == [(p.width, p.height) for p in direct.points]


class TestEstimateMemo:
    def _sizing(self, tech):
        from repro.sizing.specs import SizingResult

        return SizingResult(
            sizes={"m1": (10 * UM, 1 * UM)},
            currents={"m1": 1e-4},
            biases={"vb": 1.0},
        )

    def test_identical_sizing_hits_cache(self, tech):
        from repro.core.synthesis import LayoutOrientedSynthesizer
        from repro.layout.parasitics import ParasiticReport

        calls = []

        def layout_tool(sizing, mode):
            calls.append(mode)

            class _Result:
                report = ParasiticReport()

            return _Result()

        synthesizer = LayoutOrientedSynthesizer(
            tech, layout_tool=layout_tool
        )
        sizing = self._sizing(tech)
        first = synthesizer._estimate(sizing)
        second = synthesizer._estimate(sizing)
        assert second is first
        assert calls == ["estimate"]

    def test_different_sizing_misses(self, tech):
        from repro.core.synthesis import LayoutOrientedSynthesizer
        from repro.layout.parasitics import ParasiticReport

        calls = []

        def layout_tool(sizing, mode):
            calls.append(dict(sizing.sizes))

            class _Result:
                report = ParasiticReport()

            return _Result()

        synthesizer = LayoutOrientedSynthesizer(
            tech, layout_tool=layout_tool
        )
        a = self._sizing(tech)
        b = self._sizing(tech)
        b.sizes = {"m1": (12 * UM, 1 * UM)}
        synthesizer._estimate(a)
        synthesizer._estimate(b)
        assert len(calls) == 2

    def test_non_dict_sizes_bypass_cache(self, tech):
        from repro.core.synthesis import LayoutOrientedSynthesizer
        from repro.layout.parasitics import ParasiticReport

        calls = []

        def layout_tool(sizing, mode):
            calls.append(mode)

            class _Result:
                report = ParasiticReport()

            return _Result()

        synthesizer = LayoutOrientedSynthesizer(
            tech, layout_tool=layout_tool
        )

        class _Opaque:
            sizes = "scripted"

        synthesizer._estimate(_Opaque())
        synthesizer._estimate(_Opaque())
        assert calls == ["estimate", "estimate"]
