"""Resilience subsystem: escalation policies, deadline budgets,
deterministic fault injection, Monte-Carlo shard recovery, and the
synthesis loop's degradation paths.

Every degradation path the fault harness can reach is pinned here:
ladder exhaustion with a structured report, compiled-to-legacy engine
fallback, budget expiry at clean boundaries with partial progress,
crashed/timed-out Monte-Carlo shards, and the synthesis loop's
fall-back-to-last-good-round and soft-accept behaviours.
"""

from __future__ import annotations

import multiprocessing
import time
import warnings

import numpy as np
import pytest

from repro.analysis.dcop import solve_dc
from repro.analysis.engine import use_engine
from repro.analysis.metrics import feedback_dc_solution
from repro.analysis.montecarlo import run_monte_carlo
from repro.circuit import Circuit
from repro.core.synthesis import LayoutOrientedSynthesizer
from repro.errors import (
    AnalysisError,
    BudgetExceededError,
    ConvergenceError,
    LayoutError,
    SynthesisError,
)
from repro.resilience import Budget, ConvergenceReport, Deadline, faults
from repro.sizing.specs import ParasiticMode
from repro.units import UM

pytestmark = pytest.mark.faults


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


class FakeClock:
    """Injectable clock: deadlines expire when the test says so."""

    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t


class TickingClock:
    """Clock advancing one second per reading (deterministic expiry)."""

    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        self.t += 1.0
        return self.t


def _divider() -> Circuit:
    circuit = Circuit("divider")
    circuit.add_vsource("v1", "a", "0", dc=2.0)
    circuit.add_resistor("r1", "a", "mid", 1e3)
    circuit.add_resistor("r2", "mid", "0", 1e3)
    return circuit


def _mos_diode(tech) -> Circuit:
    circuit = Circuit("diode")
    circuit.add_vsource("vdd", "vdd!", "0", dc=3.3)
    circuit.add_isource("ib", "vdd!", "g", dc=100e-6)
    circuit.add_mos("m1", d="g", g="g", s="0", b="0",
                    params=tech.nmos, w=50 * UM, l=1 * UM)
    return circuit


def _starved(tech) -> Circuit:
    """A node nothing can supply: naturally exhausts the whole ladder."""
    circuit = Circuit("starved")
    circuit.add_vsource("vdd", "vdd!", "0", dc=3.3)
    circuit.add_vsource("vg", "g", "0", dc=1.0)
    circuit.add_isource("ib", "s", "0", dc=50e-6)
    circuit.add_mos("m1", d="0", g="g", s="s", b="vdd!",
                    params=tech.pmos, w=50 * UM, l=1 * UM)
    return circuit


def _slow_in_worker_measure(tb):
    """Module-level (picklable) measure that stalls only inside a pool
    worker, so shard timeouts are reachable while the in-process
    fallback stays fast."""
    if multiprocessing.parent_process() is not None:
        time.sleep(1.0)
    _dc, offset = feedback_dc_solution(tb)
    return {"offset_voltage": offset}


# ---------------------------------------------------------------------------
# Fault registry semantics
# ---------------------------------------------------------------------------


class TestFaultRegistry:
    def test_inactive_by_default(self):
        assert not faults.active()
        assert faults.fire("solve.linear") is None

    def test_at_and_times_counting(self):
        with faults.inject("x", at=3, times=2) as fault:
            assert faults.active()
            assert faults.fire("x") is None      # hit 1
            assert faults.fire("x") is None      # hit 2
            assert faults.fire("x") is fault     # hit 3: first firing
            assert faults.fire("x") is fault     # hit 4: second firing
            assert faults.fire("x") is None      # exhausted
            assert fault.hits == 5
            assert fault.fired == 2
        assert not faults.active()

    def test_index_pinning(self):
        with faults.inject("x", index=1) as fault:
            assert faults.fire("x", index=0) is None
            assert faults.fire("x", index=1) is fault
            assert fault.hits == 1

    def test_maybe_raise_default_error(self):
        with faults.inject("x"):
            with pytest.raises(AnalysisError, match="injected fault at 'x'"):
                faults.maybe_raise("x")

    def test_maybe_raise_custom_error(self):
        with faults.inject("x", error=LayoutError("boom")):
            with pytest.raises(LayoutError, match="boom"):
                faults.maybe_raise("x")


# ---------------------------------------------------------------------------
# Deadlines and budgets
# ---------------------------------------------------------------------------


class TestBudget:
    def test_deadline_requires_positive_seconds(self):
        with pytest.raises(ValueError):
            Deadline(0.0)

    def test_deadline_expiry_is_deterministic(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)
        assert not deadline.expired()
        assert deadline.remaining == 10.0
        clock.t = 4.0
        assert deadline.elapsed == 4.0
        deadline.check("site.a")  # not expired: no raise
        clock.t = 10.0
        assert deadline.expired()
        with pytest.raises(BudgetExceededError) as excinfo:
            deadline.check("site.a", round=3)
        error = excinfo.value
        assert error.site == "site.a"
        assert error.elapsed == 10.0
        assert "round=3" in str(error)

    def test_empty_budget_checks_nothing(self):
        Budget().check("anywhere")  # no deadline: never raises

    def test_sizing_iteration_cap(self):
        assert Budget().sizing_iteration_cap(15) == 15
        assert Budget(max_sizing_iterations=3).sizing_iteration_cap(15) == 3
        assert Budget(max_sizing_iterations=99).sizing_iteration_cap(15) == 15
        # A degenerate cap still allows the one mandatory iteration.
        assert Budget(max_sizing_iterations=0).sizing_iteration_cap(15) == 1

    def test_budget_caps_real_plan_iterations(self, plan, specs):
        result = plan.size(
            specs, ParasiticMode.NONE,
            budget=Budget(max_sizing_iterations=1),
        )
        assert result.iterations == 1

    def test_deadline_trips_inside_sizing_loop(self, plan, specs):
        budget = Budget(deadline=Deadline(0.5, clock=TickingClock()))
        with pytest.raises(BudgetExceededError) as excinfo:
            plan.size(specs, ParasiticMode.NONE, budget=budget)
        assert excinfo.value.site == "sizing.iteration"


# ---------------------------------------------------------------------------
# Escalation policies and convergence reports
# ---------------------------------------------------------------------------


class TestEscalationPolicy:
    def test_happy_path_attaches_report(self):
        solution = solve_dc(_divider())
        report = solution.convergence
        assert isinstance(report, ConvergenceReport)
        assert report.converged
        assert report.strategy == "direct-newton"
        assert report.achieved_gmin == solution.gmin == 0.0
        assert report.iterations == solution.iterations
        assert [r.stage for r in report.rungs] == ["gmin=1e-12", "gmin=0"]
        assert all(np.isfinite(report.residual_history()))
        assert report.engine_fallback is None

    def test_legacy_happy_path_report(self):
        with use_engine("legacy"):
            solution = solve_dc(_divider())
        report = solution.convergence
        assert report is not None and report.converged
        assert report.strategy == "gmin-ramp"
        assert report.achieved_gmin == 0.0

    def test_injected_linear_failure_escalates(self):
        with faults.inject("solve.linear") as fault:
            solution = solve_dc(_divider())
        assert fault.fired == 1
        report = solution.convergence
        assert report.converged
        # The direct fast path absorbed the singular solve and failed...
        assert report.rungs[0].strategy == "direct-newton"
        assert not report.rungs[0].converged
        # ...and the next rung finished the job.
        assert report.strategy == "gmin-ramp"
        assert solution.voltage("mid") == pytest.approx(1.0)

    def test_nan_model_eval_escalates(self, tech):
        with np.errstate(all="ignore"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                with faults.inject("model.eval", action="nan") as fault:
                    solution = solve_dc(_mos_diode(tech))
        assert fault.fired == 1
        report = solution.convergence
        assert report.converged
        assert not report.rungs[0].converged
        assert solution.devices["m1"].op.id == pytest.approx(100e-6, rel=1e-6)

    def test_injected_exhaustion_produces_report(self):
        with faults.inject("solve.linear", times=10_000):
            with pytest.raises(ConvergenceError) as excinfo:
                solve_dc(_divider())
        report = excinfo.value.report
        assert isinstance(report, ConvergenceReport)
        assert not report.converged
        strategies = {r.strategy for r in report.rungs}
        assert strategies == {"direct-newton", "gmin-ramp", "source-stepping"}
        assert len(report.residual_history()) == len(report.rungs)
        assert report.worst_nodes  # failure forensics survive the raise
        assert {name for name, _ in report.worst_nodes} <= {"a", "mid"}
        assert "NOT CONVERGED" in report.summary()

    def test_natural_exhaustion_names_starved_node(self, tech):
        with pytest.raises(ConvergenceError) as excinfo:
            solve_dc(_starved(tech))
        report = excinfo.value.report
        assert report is not None and not report.converged
        assert report.worst_nodes
        # The starved net carries the worst KCL residual.
        worst_net, worst_residual = report.worst_nodes[0]
        assert worst_net == "s"
        assert worst_residual > 1e-6

    def test_compiled_failure_falls_back_to_legacy(self, tech):
        circuit = _mos_diode(tech)
        with use_engine("legacy"):
            reference = solve_dc(circuit)
        with faults.inject(
            "engine.compiled", error=AnalysisError("injected compile failure")
        ) as fault:
            solution = solve_dc(circuit)
        assert fault.fired == 1
        report = solution.convergence
        assert report is not None and report.converged
        assert "injected compile failure" in report.engine_fallback
        # The fallback runs the exact legacy path: bit-identical result.
        assert solution.voltages == reference.voltages


# ---------------------------------------------------------------------------
# Monte-Carlo shard recovery
# ---------------------------------------------------------------------------


class TestMonteCarloRecovery:
    @pytest.fixture(scope="class")
    def baseline(self, hand_testbench):
        return run_monte_carlo(hand_testbench, runs=8, seed=7, workers=1)

    def test_crashed_shard_is_resubmitted_bit_identical(
        self, hand_testbench, baseline
    ):
        with faults.inject("mc.worker", index=0) as fault:
            result = run_monte_carlo(
                hand_testbench, runs=8, seed=7, workers=2
            )
        assert fault.fired == 1
        assert result.n_failed == 0
        assert result.samples == baseline.samples  # bit-identical
        assert [s.span for s in result.shards] == [(0, 4), (4, 8)]
        assert result.shards[0].status == "resubmitted"
        assert result.shards[0].attempts == 2
        assert "worker died" in result.shards[0].error
        assert result.shards[1].status in ("ok", "resubmitted")

    def test_persistent_crash_falls_back_in_process(
        self, hand_testbench, baseline
    ):
        # Crashes on submission and on the bounded resubmission too:
        # the shard comes home in-process, still bit-identical.
        with faults.inject("mc.worker", index=0, times=3) as fault:
            result = run_monte_carlo(
                hand_testbench, runs=8, seed=7, workers=2,
                max_shard_retries=1,
            )
        assert fault.fired == 2  # one per pool round; in-process skips it
        assert result.n_failed == 0
        assert result.samples == baseline.samples
        assert result.shards[0].status == "in-process"
        assert result.shards[0].attempts == 3

    def test_shard_timeout_recovers_in_process(self, hand_testbench):
        result = run_monte_carlo(
            hand_testbench, runs=2, seed=7, workers=2,
            measure=_slow_in_worker_measure,
            shard_timeout=0.25, max_shard_retries=0,
        )
        assert result.n_failed == 0
        assert len(result.samples["offset_voltage"]) == 2
        assert all(s.status == "in-process" for s in result.shards)
        assert all("timed out" in s.error for s in result.shards)

    def test_unpicklable_measure_raises_with_context(self, hand_testbench):
        with pytest.raises(AnalysisError, match=r"workers=2"):
            run_monte_carlo(
                hand_testbench, runs=4, seed=7, workers=2,
                measure=lambda tb: {"x": 0.0},
            )

    def test_budget_checked_before_dispatch(self, hand_testbench):
        clock = FakeClock()
        budget = Budget(deadline=Deadline(1.0, clock=clock))
        clock.t = 5.0  # already expired when the run starts
        with pytest.raises(BudgetExceededError) as excinfo:
            run_monte_carlo(hand_testbench, runs=2, budget=budget)
        assert excinfo.value.site == "montecarlo.start"

    def test_budget_checked_per_legacy_sample(self, hand_testbench):
        clock = FakeClock()
        budget = Budget(deadline=Deadline(1.5, clock=clock))

        def measure(tb):
            clock.t += 1.0
            return {"x": 0.0}

        with pytest.raises(BudgetExceededError) as excinfo:
            run_monte_carlo(
                hand_testbench, runs=10, engine="legacy",
                measure=measure, budget=budget,
            )
        assert excinfo.value.site == "montecarlo.sample"


# ---------------------------------------------------------------------------
# Synthesis-loop degradation
# ---------------------------------------------------------------------------


class _StubReport:
    """Parasitic report standing: distance is plain value difference."""

    def __init__(self, value: float):
        self.value = value

    def distance(self, other: "_StubReport") -> float:
        return abs(self.value - other.value)


class _StubEstimate:
    def __init__(self, value: float):
        self.report = _StubReport(value)


class _StubPlan:
    """Counts sizing calls; each round returns a distinct token."""

    topology = "stub"

    def __init__(self):
        self.calls = 0

    def size(self, specs, mode, feedback, budget=None):
        self.calls += 1
        return f"sizing-round-{self.calls}"


def _stub_tool(values, clock=None, advance=0.0, generate_error=None):
    """A layout tool yielding reports with scripted distances; optionally
    advances a fake clock per call or fails the generation pass."""
    state = {"i": 0}

    def tool(sizing, mode):
        if mode == "generate" and generate_error is not None:
            raise generate_error
        value = values[min(state["i"], len(values) - 1)]
        state["i"] += 1
        if clock is not None:
            clock.t += advance
        return _StubEstimate(value)

    return tool


def _synthesizer(tech, values, max_layout_calls=4, **kwargs):
    return LayoutOrientedSynthesizer(
        tech,
        convergence_tolerance=1.0,
        max_layout_calls=max_layout_calls,
        plan=_StubPlan(),
        layout_tool=_stub_tool(values, **kwargs),
    )


class TestSynthesisDegradation:
    def test_constructor_rejects_zero_rounds(self, tech):
        with pytest.raises(SynthesisError, match="max_layout_calls"):
            LayoutOrientedSynthesizer(tech, max_layout_calls=0)

    def test_constructor_rejects_bad_tolerance(self, tech):
        with pytest.raises(SynthesisError, match="convergence_tolerance"):
            LayoutOrientedSynthesizer(tech, convergence_tolerance=0.0)
        with pytest.raises(SynthesisError, match="convergence_tolerance"):
            LayoutOrientedSynthesizer(
                tech, convergence_tolerance=float("nan")
            )

    def test_clean_convergence_has_empty_diagnostics(self, tech, specs):
        outcome = _synthesizer(tech, [0.0, 0.1]).run(
            specs, ParasiticMode.FULL, generate=False
        )
        assert outcome.converged
        assert outcome.diagnostics == {}
        assert outcome.layout_calls == 2

    def test_soft_accept_is_flagged_and_warned(self, tech, specs):
        synthesizer = _synthesizer(tech, [0.0, 5.0], max_layout_calls=2)
        with pytest.warns(RuntimeWarning, match="soft-accepting"):
            outcome = synthesizer.run(specs, ParasiticMode.FULL, generate=False)
        assert outcome.converged
        assert outcome.diagnostics["soft_accept"] is True
        assert outcome.diagnostics["final_distance"] == 5.0

    def test_far_from_tolerance_is_not_soft_accepted(self, tech, specs):
        outcome = _synthesizer(tech, [0.0, 50.0], max_layout_calls=2).run(
            specs, ParasiticMode.FULL, generate=False
        )
        assert not outcome.converged
        assert "soft_accept" not in outcome.diagnostics

    def test_mid_loop_failure_degrades_to_last_good_round(self, tech, specs):
        synthesizer = _synthesizer(tech, [0.0, 0.1])
        with faults.inject(
            "synthesis.layout", index=2, error=LayoutError("injected crash")
        ):
            with pytest.warns(RuntimeWarning, match="degrading"):
                outcome = synthesizer.run(
                    specs, ParasiticMode.FULL, generate=False
                )
        assert not outcome.converged
        diagnostics = outcome.diagnostics
        assert diagnostics["degraded"] is True
        assert diagnostics["failed_round"] == 2
        assert diagnostics["failed_stage"] == "layout"
        assert "injected crash" in diagnostics["failure"]
        # The outcome is the round-1 state, not half of round 2.
        assert outcome.sizing == "sizing-round-1"
        assert outcome.feedback.value == 0.0
        assert outcome.layout_calls == 1

    def test_first_round_failure_raises_typed_error(self, tech, specs):
        synthesizer = _synthesizer(tech, [0.0, 0.1])
        with faults.inject("synthesis.sizing", index=1):
            with pytest.raises(SynthesisError, match="round 1"):
                synthesizer.run(specs, ParasiticMode.FULL, generate=False)

    def test_generation_failure_keeps_sizing(self, tech, specs):
        synthesizer = LayoutOrientedSynthesizer(
            tech,
            convergence_tolerance=1.0,
            plan=_StubPlan(),
            layout_tool=_stub_tool(
                [0.0, 0.1], generate_error=LayoutError("no geometry")
            ),
        )
        with pytest.warns(RuntimeWarning, match="generation failed"):
            outcome = synthesizer.run(specs, ParasiticMode.FULL, generate=True)
        assert outcome.converged
        assert outcome.layout is None
        assert "no geometry" in outcome.diagnostics["generate_failure"]

    def test_deadline_expiry_carries_partial_records(self, tech, specs):
        clock = FakeClock()
        budget = Budget(deadline=Deadline(5.0, clock=clock))
        synthesizer = _synthesizer(
            tech, [0.0, 0.1], clock=clock, advance=10.0
        )
        with pytest.raises(BudgetExceededError) as excinfo:
            synthesizer.run(
                specs, ParasiticMode.FULL, generate=False, budget=budget
            )
        error = excinfo.value
        assert error.site == "synthesis.round"
        assert error.partial is not None and len(error.partial) == 1
        assert error.partial[0].round_index == 1
        assert error.partial[0].sizing == "sizing-round-1"
