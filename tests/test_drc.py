"""Design-rule checking: the checker itself and generator cleanliness."""

import pytest

from repro.layout.cell import Cell
from repro.layout.drc import DrcChecker
from repro.layout.geometry import Rect
from repro.layout.layers import Layer
from repro.units import UM


@pytest.fixture(scope="module")
def drc(tech):
    return DrcChecker(tech)


class TestCheckerDetections:
    def test_clean_cell_passes(self, drc):
        cell = Cell("clean")
        cell.add_shape(Layer.METAL1, Rect(0, 0, 5 * UM, 1 * UM), net="a")
        assert drc.check(cell) == []

    def test_narrow_wire_detected(self, drc, tech):
        cell = Cell("narrow")
        cell.add_shape(
            Layer.METAL1,
            Rect(0, 0, 5 * UM, tech.rules.metal1_min_width / 2),
            net="a",
        )
        violations = drc.check(cell)
        assert len(violations) == 1
        assert violations[0].kind == "min_width"

    def test_spacing_violation_detected(self, drc, tech):
        cell = Cell("close")
        gap = tech.rules.metal1_spacing / 2
        cell.add_shape(Layer.METAL1, Rect(0, 0, 5 * UM, 1 * UM), net="a")
        cell.add_shape(
            Layer.METAL1,
            Rect(0, 1 * UM + gap, 5 * UM, 2 * UM + gap),
            net="b",
        )
        violations = drc.check(cell)
        assert any(v.kind == "spacing" for v in violations)

    def test_exact_spacing_passes(self, drc, tech):
        cell = Cell("exact")
        spacing = tech.rules.metal1_spacing
        cell.add_shape(Layer.METAL1, Rect(0, 0, 5 * UM, 1 * UM), net="a")
        cell.add_shape(
            Layer.METAL1,
            Rect(0, 1 * UM + spacing, 5 * UM, 2 * UM + spacing),
            net="b",
        )
        assert drc.check(cell) == []

    def test_short_detected(self, drc):
        cell = Cell("short")
        cell.add_shape(Layer.METAL1, Rect(0, 0, 5 * UM, 1 * UM), net="a")
        cell.add_shape(Layer.METAL1, Rect(4 * UM, 0, 9 * UM, 1 * UM), net="b")
        violations = drc.check(cell)
        assert any(v.kind == "short" for v in violations)

    def test_same_net_overlap_allowed(self, drc):
        cell = Cell("merge")
        cell.add_shape(Layer.METAL1, Rect(0, 0, 5 * UM, 1 * UM), net="a")
        cell.add_shape(Layer.METAL1, Rect(4 * UM, 0, 9 * UM, 1 * UM), net="a")
        assert drc.check(cell) == []

    def test_wrong_cut_size_detected(self, drc, tech):
        cell = Cell("fatcut")
        size = tech.rules.contact_size
        cell.add_shape(Layer.CONTACT, Rect(0, 0, 2 * size, size), net="a")
        violations = drc.check(cell)
        assert any(v.kind == "cut_size" for v in violations)

    def test_unenclosed_contact_detected(self, drc, tech):
        cell = Cell("bare")
        size = tech.rules.contact_size
        cell.add_shape(Layer.CONTACT, Rect(0, 0, size, size), net="a")
        violations = drc.check(cell)
        assert any(v.kind == "enclosure" for v in violations)

    def test_enclosed_contact_passes(self, drc, tech):
        cell = Cell("landed")
        size = tech.rules.contact_size
        margin = tech.rules.contact_metal_enclosure
        cell.add_shape(Layer.CONTACT, Rect(0, 0, size, size), net="a")
        cell.add_shape(
            Layer.METAL1,
            Rect(-margin, -margin, size + margin, size + margin),
            net="a",
        )
        assert drc.check(cell) == []

    def test_assert_clean_raises_with_summary(self, drc):
        cell = Cell("bad")
        cell.add_shape(Layer.METAL1, Rect(0, 0, 5 * UM, 0.1 * UM), net="a")
        with pytest.raises(AssertionError, match="min_width"):
            drc.assert_clean(cell)


class TestGeneratorsAreClean:
    """Every generator's output passes DRC — the paper's procedural
    correctness-by-construction claim, verified."""

    @pytest.mark.parametrize("nf", [1, 2, 4, 5, 8])
    def test_motif_clean(self, drc, tech, nf):
        from repro.layout.motif import generate_mos_motif

        motif = generate_mos_motif(
            tech, "n", 40 * UM, 1 * UM, nf=nf, drain_current=400e-6
        )
        drc.assert_clean(motif.cell)

    def test_pmos_motif_clean(self, drc, tech):
        from repro.layout.motif import generate_mos_motif

        motif = generate_mos_motif(tech, "p", 60 * UM, 1.2 * UM, nf=4)
        drc.assert_clean(motif.cell)

    def test_differential_pair_clean(self, drc, tech):
        from repro.layout.devices import differential_pair_layout

        pair = differential_pair_layout(
            tech, "p", 60 * UM, 1 * UM, nf=4, names=("a", "b"),
            drains=("d1", "d2"), gates=("g1", "g2"),
            source="s", bulk="w", current_per_side=100e-6,
        )
        drc.assert_clean(pair.cell)

    def test_figure3_mirror_clean(self, drc, tech):
        from repro.layout.devices import current_mirror_layout

        mirror = current_mirror_layout(
            tech, "n", {"m1": 1, "m2": 3, "m3": 6},
            unit_width=6 * UM, l=2 * UM,
            drains={"m1": "bias", "m2": "o2", "m3": "o3"},
            gate="bias", source="0", bulk="0",
            currents={"m1": 100e-6, "m2": 300e-6, "m3": 600e-6},
        )
        drc.assert_clean(mirror.cell)

    def test_full_ota_clean(self, drc, ota_layout):
        drc.assert_clean(ota_layout.cell)

    def test_other_technologies_clean(self, tech_035, tech_080):
        """Technology independence: the same generator honours each
        process's own rules."""
        from repro.layout.motif import generate_mos_motif

        for technology in (tech_035, tech_080):
            motif = generate_mos_motif(
                technology, "n", 30 * UM, 2 * technology.feature_size, nf=2
            )
            DrcChecker(technology).assert_clean(motif.cell)


class TestCheckerProperties:
    """Property-based: the checker finds planted violations and never
    flags well-spaced layouts."""

    @pytest.mark.parametrize("seed", range(6))
    def test_planted_spacing_violation_found(self, drc, tech, seed):
        import random

        rng = random.Random(seed)
        cell = Cell("planted")
        spacing = tech.rules.metal1_spacing
        # A legal field of wires...
        pitch = 3 * spacing
        for i in range(6):
            cell.add_shape(
                Layer.METAL1,
                Rect(0, i * pitch, 20 * UM, i * pitch + spacing),
                net=f"n{i}",
            )
        # ...plus one intruder placed too close to a random wire.
        victim = rng.randrange(6)
        y = victim * pitch + spacing + spacing / 3
        cell.add_shape(
            Layer.METAL1, Rect(0, y, 20 * UM, y + spacing), net="intruder"
        )
        violations = drc.check(cell)
        assert any(
            v.kind == "spacing" and "intruder" in v.message
            for v in violations
        )

    @pytest.mark.parametrize("count", [2, 5, 9])
    def test_legal_grid_always_clean(self, drc, tech, count):
        cell = Cell("grid")
        pitch = tech.rules.metal1_min_width + tech.rules.metal1_spacing
        for i in range(count):
            cell.add_shape(
                Layer.METAL1,
                Rect(i * pitch, 0, i * pitch + tech.rules.metal1_min_width,
                     30 * UM),
                net=f"n{i}",
            )
        assert drc.check(cell) == []

    def test_union_enclosure_accepted(self, drc, tech):
        """A via covered only by the union of two same-net plates passes."""
        size = tech.rules.via_size
        margin = tech.rules.via_metal_enclosure
        minimum = max(tech.rules.metal1_min_width, tech.rules.metal2_min_width)
        cell = Cell("union")
        cell.add_shape(Layer.VIA1, Rect(0, 0, size, size), net="a")
        # Two overlapping plates per landing layer, neither covering the
        # whole window on its own; each wide enough for the width rule.
        for layer in (Layer.METAL1, Layer.METAL2):
            cell.add_shape(
                layer,
                Rect(-margin, -margin, -margin + minimum, size + margin),
                net="a",
            )
            cell.add_shape(
                layer,
                Rect(size + margin - minimum, -margin,
                     size + margin, size + margin),
                net="a",
            )
        # Sanity: neither plate alone encloses the via.
        window = Rect(-margin, -margin, size + margin, size + margin)
        assert not Rect(-margin, -margin, -margin + minimum,
                        size + margin).contains(window)
        assert drc.check(cell) == []

    def test_gapped_union_enclosure_rejected(self, drc, tech):
        """Two plates leaving a sliver uncovered fail the enclosure."""
        size = tech.rules.via_size
        margin = tech.rules.via_metal_enclosure
        cell = Cell("gap")
        cell.add_shape(Layer.VIA1, Rect(0, 0, size, size), net="a")
        for layer in (Layer.METAL1, Layer.METAL2):
            cell.add_shape(
                layer,
                Rect(-margin, -margin, size / 4, size + margin), net="a",
            )
            cell.add_shape(
                layer,
                Rect(3 * size / 4, -margin, size + margin, size + margin),
                net="a",
            )
        violations = drc.check(cell)
        assert any(v.kind == "enclosure" for v in violations)
