"""Command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.technology == "0.6um"
        assert args.gbw == 65.0

    def test_spec_overrides(self):
        args = build_parser().parse_args(
            ["synthesize", "--gbw", "40", "--cload", "5", "--vdd", "5.0"]
        )
        assert args.gbw == 40.0
        assert args.cload == 5.0
        assert args.vdd == 5.0


class TestCommands:
    def test_figure2_prints_curve(self, capsys):
        assert main(["figure2", "--max-folds", "6"]) == 0
        out = capsys.readouterr().out
        assert "0.5000" in out
        assert "0.6667" in out

    def test_figure3_prints_stack(self, capsys, tmp_path):
        svg = tmp_path / "mirror.svg"
        assert main(["figure3", "--svg", str(svg)]) == 0
        out = capsys.readouterr().out
        assert "centroid" in out
        assert svg.stat().st_size > 1000

    def test_evaluate_ranks(self, capsys):
        assert main(["evaluate", "--gbw", "65"]) == 0
        out = capsys.readouterr().out
        assert "generic-0.35um" in out
        assert "headroom" in out

    def test_synthesize_runs(self, capsys, tmp_path):
        svg = tmp_path / "ota.svg"
        code = main([
            "synthesize", "--gbw", "30", "--cload", "2",
            "--svg", str(svg),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "converged in" in out
        assert "GBW" in out
        assert svg.stat().st_size > 10_000
