"""Command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.technology == "0.6um"
        assert args.gbw == 65.0

    def test_spec_overrides(self):
        args = build_parser().parse_args(
            ["synthesize", "--gbw", "40", "--cload", "5", "--vdd", "5.0"]
        )
        assert args.gbw == 40.0
        assert args.cload == 5.0
        assert args.vdd == 5.0

    def test_monitor_flag_shapes(self):
        parser = build_parser()
        assert parser.parse_args(["synthesize"]).monitor is None
        # Bare --monitor means heartbeat only (no HTTP server).
        assert parser.parse_args(["synthesize", "--monitor"]).monitor == -1
        assert parser.parse_args(["table1", "--monitor", "0"]).monitor == 0
        args = parser.parse_args(["flows", "--monitor", "8123"])
        assert args.monitor == 8123

    def test_bench_history_flag(self):
        args = build_parser().parse_args(
            ["bench", "--history", "bench.jsonl"]
        )
        assert args.history == "bench.jsonl"

    def test_profile_flags(self):
        args = build_parser().parse_args(
            ["profile", "run.jsonl", "--top", "7", "--collapsed", "c.txt"]
        )
        assert args.file == "run.jsonl"
        assert args.top == 7
        assert args.collapsed == "c.txt"


class TestCommands:
    def test_figure2_prints_curve(self, capsys):
        assert main(["figure2", "--max-folds", "6"]) == 0
        out = capsys.readouterr().out
        assert "0.5000" in out
        assert "0.6667" in out

    def test_figure3_prints_stack(self, capsys, tmp_path):
        svg = tmp_path / "mirror.svg"
        assert main(["figure3", "--svg", str(svg)]) == 0
        out = capsys.readouterr().out
        assert "centroid" in out
        assert svg.stat().st_size > 1000

    def test_evaluate_ranks(self, capsys):
        assert main(["evaluate", "--gbw", "65"]) == 0
        out = capsys.readouterr().out
        assert "generic-0.35um" in out
        assert "headroom" in out

    def test_synthesize_runs(self, capsys, tmp_path):
        svg = tmp_path / "ota.svg"
        code = main([
            "synthesize", "--gbw", "30", "--cload", "2",
            "--svg", str(svg),
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "converged in" in captured.out
        assert "GBW" in captured.out
        # Prose notices go to stderr; stdout carries the machine line.
        assert "layout written to" in captured.err
        assert f"svg: {svg}" in captured.out
        assert svg.stat().st_size > 10_000

    def test_synthesize_with_trace_writes_replayable_jsonl(
        self, capsys, tmp_path
    ):
        trace = tmp_path / "run.jsonl"
        code = main([
            "synthesize", "--gbw", "30", "--cload", "2",
            "--trace", str(trace),
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert f"trace: {trace}" in captured.out
        assert "trace written to" in captured.err
        assert trace.stat().st_size > 0

        from repro.telemetry import read_jsonl, summarize

        summary = summarize(read_jsonl(str(trace)))
        # The acceptance shape: per-round solver activity and layout
        # call modes are all recoverable from the exported trace.
        assert summary.span_count("synthesis.round") >= 3
        assert summary.counter("solver.solves") > 0
        assert summary.counter("solver.rung.direct-newton") > 0
        assert summary.counter("layout.calls.estimate") >= 3
        assert summary.counter("layout.calls.generate") == 1
        for round_span in summary.spans("synthesis.round"):
            counts = round_span.subtree_counts()
            assert counts.get("solver.solves", 0) > 0
            assert counts.get("layout.calls.estimate", 0) == 1

        # And the trace subcommand replays it.
        assert main(["trace", str(trace)]) == 0
        replay = capsys.readouterr()
        assert "cli.synthesize" in replay.out
        assert "synthesis.round" in replay.out

        assert main(["trace", str(trace), "--json"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-trace-summary-v1"
        assert payload["counters"]["synthesis.rounds"] >= 3

    def test_trace_missing_file_is_an_error(self, capsys):
        assert main(["trace", "/nonexistent/trace.jsonl"]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "error:" in captured.err

    def test_profile_reports_self_time_and_collapsed(
        self, capsys, tmp_path
    ):
        trace = tmp_path / "run.jsonl"
        assert main([
            "synthesize", "--gbw", "30", "--cload", "2",
            "--trace", str(trace),
        ]) == 0
        capsys.readouterr()  # drain the synthesize output

        collapsed = tmp_path / "collapsed.txt"
        code = main([
            "profile", str(trace), "--top", "25",
            "--collapsed", str(collapsed),
        ])
        assert code == 0
        captured = capsys.readouterr()
        # Table header plus the hot spans from the synthesis loop.
        assert "self (s)" in captured.out
        assert "synthesis.round" in captured.out
        assert f"collapsed: {collapsed}" in captured.out

        # Collapsed stacks are flamegraph.pl-compatible: each line is
        # "root;child;... <integer microseconds>".
        lines = collapsed.read_text().splitlines()
        assert lines
        for line in lines:
            stack, value = line.rsplit(" ", 1)
            assert stack
            assert int(value) > 0
        assert any(
            "synthesis.round" in line.rsplit(" ", 1)[0] for line in lines
        )

    def test_profile_missing_file_is_an_error(self, capsys):
        assert main(["profile", "/nonexistent/trace.jsonl"]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "error:" in captured.err
