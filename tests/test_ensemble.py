"""Stacked-ensemble solves vs the per-sample golden path.

The ensemble engine must be a pure performance transform: sample-for-
sample equal results (rtol 1e-9; in practice bitwise), per-member failure
isolation, and worker-count independence.  These tests pin the design
rules documented in :mod:`repro.analysis.ensemble`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.engine import PERSAMPLE, STACKED, ensemble_engine
from repro.analysis.ensemble import EnsembleProgram, measure_ota_ensemble
from repro.analysis.montecarlo import run_monte_carlo
from repro.analysis.stamps import StampProgram
from repro.errors import ConvergenceError
from repro.perf import default_testbench, two_stage_testbench
from repro.sizing.specs import OtaSpecs
from repro.technology import generic_035
from repro.technology.corners import corner_set

RTOL = 1e-9

TESTBENCHES = {
    "folded_cascode": default_testbench,
    "two_stage": two_stage_testbench,
}


@pytest.fixture(scope="module", params=sorted(TESTBENCHES))
def tb(request):
    return TESTBENCHES[request.param]()


@pytest.fixture(scope="module")
def feedback(tb):
    circuit = tb.circuit.clone("ensemble_fb")
    circuit.remove(tb.source_neg)
    circuit.add_vsource("_fb", tb.input_neg_net, tb.output_net, dc=0.0)
    return circuit


class TestMonteCarloParity:
    def test_stacked_matches_per_sample(self, tb):
        with ensemble_engine.use(PERSAMPLE):
            reference = run_monte_carlo(tb, runs=40, seed=99)
        with ensemble_engine.use(STACKED):
            stacked = run_monte_carlo(tb, runs=40, seed=99)
        assert set(stacked.samples) == set(reference.samples)
        for key, values in reference.samples.items():
            np.testing.assert_allclose(
                stacked.samples[key], values, rtol=RTOL, atol=1e-12
            )

    def test_stacked_statistics_identical_for_any_worker_count(self, tb):
        with ensemble_engine.use(STACKED):
            serial = run_monte_carlo(tb, runs=12, seed=77, workers=1)
            pooled = run_monte_carlo(tb, runs=12, seed=77, workers=4)
        assert serial.samples == pooled.samples
        assert pooled.n_failed == 0

    def test_scoped_engine_override_crosses_worker_boundary(self, tb):
        """A scoped per-sample override must also govern pool workers."""
        with ensemble_engine.use(PERSAMPLE):
            reference = run_monte_carlo(tb, runs=12, seed=77, workers=4)
        with ensemble_engine.use(STACKED):
            stacked = run_monte_carlo(tb, runs=12, seed=77, workers=4)
        for key, values in reference.samples.items():
            np.testing.assert_allclose(
                stacked.samples[key], values, rtol=RTOL, atol=1e-12
            )


class TestMemberMasking:
    def test_member_rows_independent_of_batch(self, feedback):
        """A member's trajectory must not depend on who shares its batch."""
        program = StampProgram(feedback)
        n = program._n_mos
        rng = np.random.default_rng(5)
        vth = rng.normal(scale=2e-3, size=(3, n))
        beta = rng.normal(scale=5e-3, size=(3, n))
        small = EnsembleProgram.from_mismatch(program, vth, beta).solve()
        assert small.converged.all()

        # Append a pathological fourth member; the first three rows must
        # come out bitwise identical whatever happens to the new one.
        vth4 = np.vstack([vth, np.full((1, n), 50.0)])
        beta4 = np.vstack([beta, np.full((1, n), -0.99)])
        big = EnsembleProgram.from_mismatch(program, vth4, beta4).solve()
        assert np.array_equal(big.voltages[:3], small.voltages)
        np.testing.assert_array_equal(big.converged[:3], small.converged)
        np.testing.assert_array_equal(big.iterations[:3], small.iterations)

    def test_diverging_member_reported_not_poisoning(self, feedback):
        """A member that genuinely fails DC is isolated: the others
        converge to their per-sample values and the failure carries the
        per-sample ConvergenceError/report."""
        program = StampProgram(feedback)
        n = program._n_mos
        rng = np.random.default_rng(11)
        vth = rng.normal(scale=2e-3, size=(4, n))
        beta = rng.normal(scale=5e-3, size=(4, n))
        # Member 2 is unsolvable (NaN threshold shifts poison the model
        # evaluation on every rung, batched and scalar alike).
        vth[2] = np.nan
        solution = EnsembleProgram.from_mismatch(program, vth, beta).solve()
        assert not solution.converged[2]
        assert solution.converged[[0, 1, 3]].all()
        assert 2 in solution.errors
        report = solution.reports[2]
        assert not report.converged
        assert report.rungs
        for k in (0, 1, 3):
            program.set_mismatch(vth[k], beta[k])
            program._swap_cache = None
            voltages, _, _ = program.solve_voltages()
            np.testing.assert_allclose(
                solution.voltages[k], voltages, rtol=RTOL, atol=1e-12
            )
        program.set_mismatch(vth[2], beta[2])
        program._swap_cache = None
        with pytest.raises(ConvergenceError) as excinfo:
            program.solve_voltages()
        assert str(solution.errors[2]) == str(excinfo.value)
        with pytest.raises(ConvergenceError):
            solution.raise_on_failure()

    def test_singular_batch_demotes_members_not_the_ensemble(
        self, feedback, monkeypatch
    ):
        """LAPACK raises one LinAlgError for the whole (K, n, n) stack
        even when a single member is singular: the batched solve must
        re-solve member-by-member, demote only the genuinely singular
        member to the scalar fallback ladder, and still converge every
        member to its per-sample value."""
        from repro import telemetry

        program = StampProgram(feedback)
        n = program._n_mos
        rng = np.random.default_rng(5)
        vth = rng.normal(scale=2e-3, size=(3, n))
        beta = rng.normal(scale=5e-3, size=(3, n))
        reference = EnsembleProgram.from_mismatch(program, vth, beta).solve()
        assert reference.converged.all()

        real_solve = np.linalg.solve
        state = {"batched_failed": False, "member_failed": False}

        def flaky_solve(a, b):
            if np.asarray(a).ndim == 3:
                state["batched_failed"] = True
                raise np.linalg.LinAlgError("singular stacked batch")
            if state["batched_failed"] and not state["member_failed"]:
                # First per-member re-solve: exactly one singular member.
                state["member_failed"] = True
                raise np.linalg.LinAlgError("singular member")
            return real_solve(a, b)

        tracer = telemetry.Tracer()
        monkeypatch.setattr(np.linalg, "solve", flaky_solve)
        with tracer.activate():
            solution = EnsembleProgram.from_mismatch(
                program, vth, beta
            ).solve()
        assert state["member_failed"]
        assert solution.converged.all()
        np.testing.assert_allclose(
            solution.voltages, reference.voltages, rtol=RTOL, atol=1e-12
        )
        assert tracer.counters["ensemble.singular_batches"] >= 1
        assert tracer.counters["ensemble.singular_members"] == 1


class TestEnsembleMeasurement:
    def test_corner_measurement_matches_per_sample(self):
        technology = generic_035()
        specs = OtaSpecs()
        from repro.sizing.plans.folded_cascode import FoldedCascodePlan

        plan = FoldedCascodePlan(technology, 1)
        sizing = plan.size(specs)
        benches = [
            type(plan)(tech, 1).build_testbench(sizing, specs)
            for tech in corner_set(technology).values()
        ]
        stacked = measure_ota_ensemble(benches, engine=STACKED)
        reference = measure_ota_ensemble(benches, engine=PERSAMPLE)
        assert len(stacked) == len(reference) == len(benches)
        for got, ref in zip(stacked, reference):
            if ref.metrics is None:
                assert got.metrics is None
                assert got.error == ref.error
                continue
            for attr in (
                "dc_gain_db", "gbw", "phase_margin_deg", "slew_rate",
                "cmrr_db", "psrr_db", "offset_voltage",
                "output_resistance", "input_noise_rms", "power",
            ):
                assert getattr(got.metrics, attr) == pytest.approx(
                    getattr(ref.metrics, attr), rel=RTOL, abs=1e-15
                ), attr
