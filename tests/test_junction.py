"""Junction capacitance model and diffusion geometry."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mos.junction import DiffusionGeometry, junction_capacitance
from repro.units import UM


class TestDiffusionGeometry:
    def test_single_fold_area(self):
        geometry = DiffusionGeometry.single_fold(10 * UM, 1.5 * UM)
        assert geometry.ad == pytest.approx(15e-12)
        assert geometry.as_ == pytest.approx(15e-12)

    def test_single_fold_perimeter_excludes_gate_edge(self):
        geometry = DiffusionGeometry.single_fold(10 * UM, 1.5 * UM)
        assert geometry.pd == pytest.approx((10 + 2 * 1.5) * UM)

    def test_from_effective_widths(self):
        geometry = DiffusionGeometry.from_effective_widths(
            drain_weff=5 * UM, source_weff=10 * UM, ldif=1.5 * UM
        )
        assert geometry.ad == pytest.approx(7.5e-12)
        assert geometry.as_ == pytest.approx(15e-12)

    def test_scaled(self):
        geometry = DiffusionGeometry.single_fold(10 * UM, 1.5 * UM).scaled(2.0)
        assert geometry.ad == pytest.approx(30e-12)
        assert geometry.pd == pytest.approx(2 * (10 + 3) * UM)


class TestJunctionCapacitance:
    def test_zero_bias(self, tech):
        params = tech.nmos
        area, perimeter = 20e-12, 15e-6
        value = junction_capacitance(params, area, perimeter, 0.0)
        assert value == pytest.approx(params.cj * area + params.cjsw * perimeter)

    def test_reverse_bias_reduces(self, tech):
        params = tech.nmos
        at_zero = junction_capacitance(params, 20e-12, 15e-6, 0.0)
        at_two = junction_capacitance(params, 20e-12, 15e-6, 2.0)
        assert at_two < at_zero

    def test_grading_exponent(self, tech):
        params = tech.nmos
        area = 20e-12
        bottom_only = junction_capacitance(params, area, 0.0, params.pb)
        expected = params.cj * area / 2.0**params.mj
        assert bottom_only == pytest.approx(expected)

    def test_forward_bias_linearised(self, tech):
        params = tech.nmos
        value = junction_capacitance(params, 20e-12, 0.0, -0.2)
        expected = params.cj * 20e-12 * (1 + params.mj * 0.2 / params.pb)
        assert value == pytest.approx(expected)

    def test_negative_area_rejected(self, tech):
        with pytest.raises(ValueError):
            junction_capacitance(tech.nmos, -1.0, 0.0, 0.0)

    @given(
        bias_a=st.floats(min_value=0.0, max_value=3.0),
        bias_b=st.floats(min_value=0.0, max_value=3.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_monotonically_decreasing_in_bias(self, tech, bias_a, bias_b):
        lo, hi = sorted((bias_a, bias_b))
        at_lo = junction_capacitance(tech.nmos, 20e-12, 15e-6, lo)
        at_hi = junction_capacitance(tech.nmos, 20e-12, 15e-6, hi)
        assert at_hi <= at_lo + 1e-20

    @given(scale=st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=30, deadline=None)
    def test_linear_in_area(self, tech, scale):
        base = junction_capacitance(tech.nmos, 20e-12, 0.0, 1.0)
        scaled = junction_capacitance(tech.nmos, 20e-12 * scale, 0.0, 1.0)
        assert scaled == pytest.approx(base * scale, rel=1e-9)
