"""Telemetry subsystem: spans, counters, export, replay and overhead.

Pins the contracts the instrumented hot paths rely on: exception-safe
span nesting, thread-local activation with restore, the cross-process
payload graft the Monte-Carlo shards use (including bit-identical
numerics with tracing on and off), the JSONL round trip, and the
near-zero disabled fast path.
"""

from __future__ import annotations

import time

import pytest

from repro import telemetry
from repro.errors import (
    DegradedRunWarning,
    LayoutGenerationWarning,
    ReproWarning,
    SoftAcceptWarning,
)
from repro.telemetry import (
    SUMMARY_SCHEMA,
    TRACE_SCHEMA,
    Tracer,
    read_jsonl,
    summarize,
    trace_run,
    write_jsonl,
)


class FakeClock:
    """Deterministic clock for timestamp assertions."""

    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestTracerCore:
    def test_disabled_by_default(self):
        assert not telemetry.enabled()
        assert telemetry.current() is None
        # Module-level helpers are silent no-ops when no tracer is armed.
        telemetry.count("noop")
        telemetry.event("noop")
        telemetry.gauge("noop", 1.0)
        with telemetry.span("noop"):
            pass

    def test_span_nesting_records_parent_ids(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.activate():
            with telemetry.span("outer"):
                with telemetry.span("inner"):
                    pass
            with telemetry.span("sibling"):
                pass
        spans = {r["name"]: r for r in tracer.records if r["type"] == "span"}
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        assert spans["outer"]["parent"] is None
        assert spans["sibling"]["parent"] is None

    def test_exception_marks_span_and_unwinds_stack(self):
        tracer = Tracer()
        with tracer.activate():
            with pytest.raises(ValueError):
                with tracer.span("boom"):
                    raise ValueError("nope")
            with tracer.span("after"):
                pass
        spans = {r["name"]: r for r in tracer.records if r["type"] == "span"}
        assert spans["boom"]["status"] == "error"
        assert "nope" in spans["boom"]["error"]
        # The stack unwound: the next span is a root again, and clean.
        assert spans["after"]["parent"] is None
        assert spans["after"]["status"] == "ok"

    def test_activation_is_scoped_and_restores_previous(self):
        outer, inner = Tracer(), Tracer()
        with outer.activate():
            with inner.activate():
                telemetry.count("x")
            telemetry.count("y")
        assert inner.counters == {"x": 1.0}
        assert outer.counters == {"y": 1.0}
        assert not telemetry.enabled()

    def test_counters_and_gauges_aggregate(self):
        with trace_run("t") as tracer:
            for _ in range(5):
                telemetry.count("a")
            telemetry.count("b", 2.5)
            telemetry.gauge("g", 1.0)
            telemetry.gauge("g", 3.0)
        assert tracer.counters["a"] == 5.0
        assert tracer.counters["b"] == 2.5
        assert tracer.gauges["g"] == 3.0

    def test_span_timestamps_use_injected_clock(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.activate():
            with tracer.span("timed"):
                clock.advance(1.5)
        record = tracer.records[-1]
        assert record["t0"] == 0.0
        assert record["dur"] == 1.5


class TestAbsorb:
    def test_payload_grafts_under_current_span(self):
        worker = Tracer(clock=FakeClock())
        with worker.activate():
            with worker.span("mc.shard", index=0):
                worker.count("mc.samples_measured", 4)
        payload = worker.trace_payload()

        parent = Tracer(clock=FakeClock(10.0))
        with parent.activate():
            with parent.span("mc.run"):
                parent.absorb(payload, t_offset=2.0)
        summary = parent.summary()
        assert parent.counters["mc.samples_measured"] == 4.0
        (shard,) = summary.spans("mc.shard")
        (run,) = summary.spans("mc.run")
        assert shard in run.children
        assert shard.t0 == 2.0  # worker-relative 0.0 shifted to submit time
        assert shard.subtree_counts()["mc.samples_measured"] == 4.0

    def test_absorb_keeps_ids_disjoint(self):
        worker = Tracer()
        with worker.activate():
            with worker.span("w"):
                pass
        parent = Tracer()
        with parent.activate():
            with parent.span("p"):
                parent.absorb(worker.trace_payload())
            with parent.span("later"):
                pass
        ids = [r["id"] for r in parent.records if r["type"] == "span"]
        assert len(ids) == len(set(ids))


class TestJsonlRoundTrip:
    def test_write_read_summarize(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with trace_run("root") as tracer:
            with telemetry.span("child", k="v"):
                telemetry.count("hits", 3)
                telemetry.event("note", detail=1)
            telemetry.gauge("level", 0.5)
        tracer.write_jsonl(path, name="root")

        records = read_jsonl(path)
        summary = summarize(records)
        assert summary.counters == tracer.counters
        assert summary.gauges == tracer.gauges
        (root,) = summary.spans("root")
        (child,) = summary.spans("child")
        assert child in root.children
        assert child.attrs == {"k": "v"}
        assert child.counts == {"hits": 3.0}
        assert [e["name"] for e in child.events] == ["note"]
        payload = summary.to_json()
        assert payload["schema"] == SUMMARY_SCHEMA
        assert summary.format_tree()  # renders without error

    def test_header_carries_schema(self, tmp_path):
        import json

        path = str(tmp_path / "t.jsonl")
        write_jsonl([], path)
        with open(path) as handle:
            header = json.loads(handle.readline())
        assert header["schema"] == TRACE_SCHEMA

    def test_reader_rejects_missing_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "span", "id": 0}\n')
        with pytest.raises(ValueError, match="not a repro-trace"):
            read_jsonl(str(path))

    def test_reader_reports_malformed_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"type": "header", "schema": "%s", "name": "t"}\n'
            "not json\n" % TRACE_SCHEMA
        )
        with pytest.raises(ValueError, match=r"\.jsonl:2: malformed"):
            read_jsonl(str(path))

    def test_appended_segments_replay_as_one_trace(self, tmp_path):
        """A resumed run appends its own header+records segment; the
        reader re-bases span ids per segment so both runs replay into
        one summary with no id collisions."""
        path = str(tmp_path / "trace.jsonl")
        with trace_run("root") as first:
            with telemetry.span("original"):
                telemetry.count("hits", 1)
        first.write_jsonl(path, name="root")
        with trace_run("root") as second:
            with telemetry.span("resumed"):
                telemetry.count("hits", 2)
        second.write_jsonl(path, name="root", append=True)

        records = read_jsonl(path)
        ids = [r["id"] for r in records if r.get("type") == "span"]
        assert len(ids) == len(set(ids)), "span ids collide across segments"
        summary = summarize(records)
        assert summary.counters["hits"] == 3.0
        assert summary.span_count("original") == 1
        assert summary.span_count("resumed") == 1
        assert summary.span_count("root") == 2

    def test_partial_trace_is_replayable(self):
        # A crash mid-run leaves counts whose parent span never closed;
        # replay keeps them as orphans instead of dropping the data.
        tracer = Tracer()
        with tracer.activate():
            with tracer.span("closed"):
                pass
            tracer._stack.append(tracer._allocate_id())  # simulated crash
            tracer.count("orphaned", 2)
        summary = summarize(tracer.records)
        assert summary.counters["orphaned"] == 2.0
        assert summary.span_count("closed") == 1


class TestMonteCarloTracing:
    @pytest.fixture(scope="class")
    def bench_tb(self):
        from repro.perf import default_testbench

        return default_testbench()

    def test_worker_spans_and_counters_cross_process(self, bench_tb):
        from repro.analysis.montecarlo import run_monte_carlo

        with trace_run("mc") as tracer:
            result = run_monte_carlo(bench_tb, runs=8, workers=2, seed=7)
        assert len(result.samples["offset_voltage"]) == 8
        summary = tracer.summary()
        # Worker-side counts crossed the process boundary and aggregated.
        assert summary.counter("mc.samples") == 8.0
        assert summary.counter("mc.samples_measured") == 8.0
        assert summary.span_count("mc.shard") == 2
        (run_span,) = summary.spans("mc.run")
        shard_parents = {s.name for s in run_span.children}
        assert "mc.shard" in shard_parents

    def test_results_bit_identical_with_tracing(self, bench_tb):
        from repro.analysis.montecarlo import run_monte_carlo

        baseline = run_monte_carlo(bench_tb, runs=6, seed=99)
        with trace_run("mc"):
            traced = run_monte_carlo(bench_tb, runs=6, seed=99)
        assert traced.samples == baseline.samples

    def test_single_worker_records_one_shard(self, bench_tb):
        from repro.analysis.montecarlo import run_monte_carlo

        with trace_run("mc") as tracer:
            run_monte_carlo(bench_tb, runs=4, workers=1, seed=5)
        summary = tracer.summary()
        assert summary.span_count("mc.shard") == 1
        assert summary.counter("mc.samples") == 4.0


class _StubReport:
    def __init__(self, value: float):
        self.value = value

    def distance(self, other: "_StubReport") -> float:
        return abs(self.value - other.value)


class _StubPlan:
    topology = "stub"

    def size(self, specs, mode, feedback, budget=None):
        return "sizing"


def _stub_synthesizer(tech, values):
    """A synthesizer over scripted parasitic distances (no real layout)."""
    from repro.core.synthesis import LayoutOrientedSynthesizer

    state = {"i": 0}

    class _Estimate:
        def __init__(self, value):
            self.report = _StubReport(value)

    def tool(sizing, mode):
        value = values[min(state["i"], len(values) - 1)]
        state["i"] += 1
        return _Estimate(value)

    return LayoutOrientedSynthesizer(
        tech, convergence_tolerance=1.0, plan=_StubPlan(), layout_tool=tool
    )


class TestSynthesisTrace:
    def test_outcome_carries_trace_summary(self, tech, specs):
        from repro.sizing.specs import ParasiticMode

        synthesizer = _stub_synthesizer(tech, [0.0, 0.1])
        with trace_run("run"):
            outcome = synthesizer.run(
                specs, mode=ParasiticMode.FULL, generate=False
            )
        assert outcome.trace is not None
        assert outcome.trace.counter("synthesis.rounds") == 2.0
        assert outcome.trace.span_count("synthesis.round") == 2
        rounds = outcome.trace.spans("synthesis.round")
        assert [s.attrs["round"] for s in rounds] == [1, 2]
        completes = [
            e for s in rounds for e in s.events
            if e["name"] == "synthesis.round.complete"
        ]
        assert completes[-1]["attrs"]["distance"] == 0.1

    def test_outcome_trace_is_none_untraced(self, tech, specs):
        from repro.sizing.specs import ParasiticMode

        outcome = _stub_synthesizer(tech, [0.0, 0.1]).run(
            specs, mode=ParasiticMode.FULL, generate=False
        )
        assert outcome.trace is None


class TestWarningHierarchy:
    def test_repro_warnings_stay_runtime_warnings(self):
        # Existing pytest.warns(RuntimeWarning) assertions must keep
        # catching the typed subclasses.
        for cls in (DegradedRunWarning, SoftAcceptWarning,
                    LayoutGenerationWarning):
            assert issubclass(cls, ReproWarning)
            assert issubclass(cls, RuntimeWarning)


class TestDisabledOverhead:
    def test_disabled_guard_is_cheap(self):
        """The hot-site gate must stay a near-free global-int test."""
        assert not telemetry.enabled()
        n = 200_000
        start = time.perf_counter()
        for _ in range(n):
            telemetry.enabled()
        elapsed = time.perf_counter() - start
        # ~30 ns/call in practice; the bound is 25x that to stay
        # unflaky on loaded CI machines while still catching a switch
        # to an expensive lookup.
        assert elapsed / n < 750e-9

    def test_disabled_helpers_do_not_allocate_spans(self):
        first = telemetry.span("a")
        second = telemetry.span("b")
        assert first is second  # the shared no-op singleton
