"""Parallel batch driver: determinism, recovery, fingerprints, CLI.

The contract under test: ``run_batch`` returns results in task order
that are bit-identical for any ``jobs`` value (compared through
``CaseResult.fingerprint()``, which excludes wall-clock timings), and a
task whose worker dies is resubmitted and, failing that, run in-process
— the same recovery discipline as the Monte-Carlo shards.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.batch import (
    TECHNOLOGY_PRESETS,
    BatchTask,
    run_batch,
    run_task,
)
from repro.core.cases import CaseResult
from repro.errors import SynthesisError
from repro.resilience import faults
from repro.sizing.specs import ParasiticMode


def _case_tasks(specs, modes=(ParasiticMode.NONE, ParasiticMode.SINGLE_FOLD)):
    return [
        BatchTask(kind="case", technology="0.6um", specs=specs,
                  mode=mode.name)
        for mode in modes
    ]


@pytest.fixture(scope="module")
def serial_batch(specs):
    return run_batch(_case_tasks(specs), jobs=1)


class TestBatchTask:
    def test_picklable(self, specs):
        tasks = _case_tasks(specs)
        assert pickle.loads(pickle.dumps(tasks)) == tasks

    def test_labels(self, specs):
        task = BatchTask(kind="case", technology="0.6um", specs=specs,
                         mode="FULL", corner="ss")
        assert task.label == "case.full@ss"
        flow = BatchTask(kind="flow", technology="0.6um", specs=specs,
                         variant="traditional")
        assert flow.label == "flow.traditional"

    def test_unknown_kind_rejected(self, specs):
        with pytest.raises(SynthesisError):
            run_task(BatchTask(kind="wat", technology="0.6um", specs=specs))

    def test_unknown_technology_rejected(self, specs):
        with pytest.raises(SynthesisError):
            run_task(BatchTask(kind="case", technology="7nm", specs=specs))

    def test_presets_cover_cli_choices(self):
        assert set(TECHNOLOGY_PRESETS) == {"0.35um", "0.6um", "0.8um"}


class TestFingerprint:
    def test_stable_across_runs(self, specs, serial_batch):
        again = run_batch(_case_tasks(specs), jobs=1)
        assert [r.fingerprint() for r in again.results] == [
            r.fingerprint() for r in serial_batch.results
        ]

    def test_excludes_elapsed(self, serial_batch):
        result = serial_batch.results[0]
        assert isinstance(result, CaseResult)
        fingerprint = result.fingerprint()
        result.elapsed += 1000.0
        assert result.fingerprint() == fingerprint

    def test_sensitive_to_content(self, serial_batch):
        a, b = serial_batch.results
        assert a.fingerprint() != b.fingerprint()
        fingerprint = a.fingerprint()
        a.layout_calls += 1
        try:
            assert a.fingerprint() != fingerprint
        finally:
            a.layout_calls -= 1


class TestRunBatch:
    def test_invalid_jobs_rejected(self, specs):
        with pytest.raises(SynthesisError):
            run_batch(_case_tasks(specs), jobs=0)

    def test_serial_statuses(self, serial_batch):
        assert [s.status for s in serial_batch.statuses] == ["serial"] * 2
        assert serial_batch.jobs == 1

    def test_parallel_bit_identical_to_serial(self, specs, serial_batch):
        parallel = run_batch(_case_tasks(specs), jobs=2)
        assert parallel.jobs == 2
        assert [r.fingerprint() for r in parallel.results] == [
            r.fingerprint() for r in serial_batch.results
        ]
        assert [s.status for s in parallel.statuses] == ["ok", "ok"]

    def test_corner_task_differs_from_nominal(self, specs, serial_batch):
        skewed = run_batch(
            [BatchTask(kind="case", technology="0.6um", specs=specs,
                       mode=ParasiticMode.NONE.name, corner="ss")],
            jobs=1,
        )
        assert (
            skewed.results[0].fingerprint()
            != serial_batch.results[0].fingerprint()
        )

    def test_flow_tasks_run(self, specs):
        batch = run_batch(
            [BatchTask(kind="flow", technology="0.6um", specs=specs,
                       variant=variant)
             for variant in ("traditional", "oriented")],
            jobs=1,
        )
        traditional, oriented = batch.results
        assert traditional.full_layout_rounds >= 1
        assert oriented.layout_calls >= 1


@pytest.mark.faults
class TestBatchRecovery:
    def test_crashed_worker_resubmitted_bit_identical(
        self, specs, serial_batch
    ):
        with faults.inject("batch.worker", index=0) as fault:
            result = run_batch(_case_tasks(specs), jobs=2)
        assert fault.fired == 1
        assert result.statuses[0].status == "resubmitted"
        assert result.statuses[0].attempts == 2
        assert "worker died" in result.statuses[0].error
        assert [r.fingerprint() for r in result.results] == [
            r.fingerprint() for r in serial_batch.results
        ]

    def test_persistent_crash_falls_back_in_process(
        self, specs, serial_batch
    ):
        with faults.inject("batch.worker", index=0, times=3) as fault:
            result = run_batch(_case_tasks(specs), jobs=2, max_retries=1)
        assert fault.fired == 2  # one per pool round; in-process skips it
        assert result.statuses[0].status == "in-process"
        assert result.statuses[0].attempts == 3
        assert [r.fingerprint() for r in result.results] == [
            r.fingerprint() for r in serial_batch.results
        ]


class TestCli:
    def test_table1_flags_parse(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(
            ["table1", "--jobs", "4", "--corners", "tt,ss", "--fingerprint"]
        )
        assert args.jobs == 4
        assert args.corners == "tt,ss"
        assert args.fingerprint is True

    def test_flows_jobs_parse(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(["flows", "--jobs", "2"])
        assert args.jobs == 2

    def test_table1_rejects_unknown_corner(self, capsys):
        from repro.__main__ import main

        assert main(["table1", "--corners", "nope"]) == 2
        assert "unknown corners" in capsys.readouterr().err
