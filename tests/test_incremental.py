"""Incremental synthesis hot path.

Pins the tentpole contract: the differential/incremental caches, the
speculative evaluator and the chord-Newton rung change wall-clock, never
output bits — synthesis fingerprints are identical across incremental
on/off, any cache temperature and any speculation worker count, and the
chord solver's fixed point matches full Newton.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import telemetry
from repro.analysis import warmstart
from repro.analysis.engine import newton_engine
from repro.analysis.stamps import StampProgram
from repro.core.synthesis import LayoutOrientedSynthesizer
from repro.layout import incremental
from repro.layout.engine import incremental_engine
from repro.layout.incremental import LruStore
from repro.layout.ota import OtaLayoutRequest, generate_ota_layout
from repro.layout.two_stage_ota import (
    TwoStageLayoutRequest,
    generate_two_stage_layout,
)
from repro.runtime import speculate
from repro.sizing.plans.folded_cascode import FoldedCascodePlan
from repro.sizing.plans.two_stage import TwoStagePlan
from repro.sizing.specs import OtaSpecs, ParasiticMode
from repro.telemetry import trace_run
from repro.units import PF


@pytest.fixture(autouse=True)
def _fresh_stores():
    """Each test starts (and leaves) the process-wide stores empty."""
    incremental.clear()
    yield
    incremental.clear()


def _reports_equal(a, b, rel=1e-12):
    """Two parasitic reports agree to ``rel`` on every entry."""
    assert set(a.devices) == set(b.devices)
    for name, info in a.devices.items():
        other = b.devices[name]
        assert info.nf == other.nf
        assert info.actual_width == pytest.approx(
            other.actual_width, rel=rel
        )
        assert info.geometry.ad == pytest.approx(other.geometry.ad, rel=rel)
    for field in ("net_capacitance", "coupling", "well_capacitance"):
        left, right = getattr(a, field), getattr(b, field)
        assert set(left) == set(right)
        for key, value in left.items():
            assert value == pytest.approx(right[key], rel=rel)
    assert a.width == pytest.approx(b.width, rel=rel)
    assert a.height == pytest.approx(b.height, rel=rel)


class TestLruStore:
    def test_hit_miss_and_eviction(self):
        store = LruStore(capacity=2)
        assert store.get("a") is None
        store.put("a", 1)
        store.put("b", 2)
        assert store.get("a") == 1  # refreshes "a"
        store.put("c", 3)  # evicts "b", the least recently used
        assert store.get("b") is None
        assert store.get("a") == 1
        assert store.get("c") == 3
        assert store.evictions == 1
        assert store.hits == 3
        assert store.misses == 2

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LruStore(capacity=0)


class TestExtractionParity:
    """Incremental extraction returns the bits a full pass produces."""

    def test_folded_cascode_incremental_matches_full(self, tech, hand_sized):
        sizes, currents = hand_sized
        request = OtaLayoutRequest(
            technology=tech, sizes=sizes, currents=currents, aspect=1.0
        )
        with incremental_engine.use("off"):
            full = generate_ota_layout(request, mode="estimate")
        cold = generate_ota_layout(request, mode="estimate")
        warm = generate_ota_layout(request, mode="estimate")
        _reports_equal(full.report, cold.report)
        _reports_equal(full.report, warm.report)
        assert full.fold_config == cold.fold_config == warm.fold_config
        # The warm repeat was served from the layout-call store.
        assert incremental.stats()["layout"]["hits"] >= 1

    def test_two_stage_incremental_matches_full(self, tech):
        specs = OtaSpecs(
            vdd=3.3, gbw=30e6, phase_margin=60.0, cload=2 * PF,
            input_cm_range=(1.0, 2.0), output_range=(0.4, 2.9),
        )
        result = TwoStagePlan(tech).size(specs, ParasiticMode.SINGLE_FOLD)
        request = TwoStageLayoutRequest(
            technology=tech,
            sizes=result.sizes,
            currents=result.currents,
            cc=result.biases["_cc"],
        )
        with incremental_engine.use("off"):
            full = generate_two_stage_layout(request, mode="estimate")
        cold = generate_two_stage_layout(request, mode="estimate")
        warm = generate_two_stage_layout(request, mode="estimate")
        _reports_equal(full.report, cold.report)
        _reports_equal(full.report, warm.report)
        assert incremental.stats()["layout"]["hits"] >= 1

    def test_generate_mode_shares_the_estimate_build(self, tech, hand_sized):
        """Both modes project one cached full build; generate after
        estimate does not rebuild and still carries the cell."""
        sizes, currents = hand_sized
        request = OtaLayoutRequest(
            technology=tech, sizes=sizes, currents=currents, aspect=1.0
        )
        estimate = generate_ota_layout(request, mode="estimate")
        builds = incremental.stats()["layout"]["misses"]
        generated = generate_ota_layout(request, mode="generate")
        assert incremental.stats()["layout"]["misses"] == builds
        assert estimate.cell is None
        assert generated.cell is not None
        _reports_equal(estimate.report, generated.report)


class TestDirtyInvalidation:
    """Changing one device re-extracts its module; the rest reuse."""

    def test_one_device_change_dirties_few_modules(self, tech, hand_sized):
        sizes, currents = hand_sized
        base = OtaLayoutRequest(
            technology=tech, sizes=sizes, currents=currents, aspect=1.0
        )
        generate_ota_layout(base, mode="estimate")
        before = incremental.stats()["extraction"]
        total_modules = before["misses"]

        # mp5 is the tail source — the one device whose drawn width is
        # not slaved to a matched partner, so the perturbation reaches
        # the geometry.
        touched = dict(sizes)
        w, l = touched["mp5"]
        touched["mp5"] = (w * 2.0, l)
        dirty_request = OtaLayoutRequest(
            technology=tech, sizes=touched, currents=currents, aspect=1.0
        )
        generate_ota_layout(dirty_request, mode="estimate")
        after = incremental.stats()["extraction"]

        reused = after["hits"] - before["hits"]
        dirty = after["misses"] - before["misses"]
        assert reused > 0, "unchanged modules must reuse their extraction"
        assert dirty > 0, "the resized device's module must re-extract"
        assert dirty < total_modules, (
            "a single-device change must not re-extract every module"
        )

    def test_identical_request_reuses_every_module(self, tech, hand_sized):
        sizes, currents = hand_sized
        request = OtaLayoutRequest(
            technology=tech, sizes=sizes, currents=currents, aspect=1.0
        )
        generate_ota_layout(request, mode="estimate")
        before = incremental.stats()["extraction"]
        # Bypass the whole-call store with a fresh but content-identical
        # request after clearing only the layout store: every module
        # extraction must hit.
        incremental._layout_store.clear()
        generate_ota_layout(request, mode="estimate")
        after = incremental.stats()["extraction"]
        assert after["misses"] == before["misses"]
        assert after["hits"] > before["hits"]

    def test_fault_injection_bypasses_stores(self, tech, hand_sized):
        from repro.resilience import faults

        sizes, currents = hand_sized
        request = OtaLayoutRequest(
            technology=tech, sizes=sizes, currents=currents, aspect=1.0
        )
        generate_ota_layout(request, mode="estimate")
        with faults.inject("test.unreached"):
            assert not incremental.enabled()
            generate_ota_layout(request, mode="estimate")
        assert incremental.stats()["layout"]["hits"] == 0


class TestChordNewton:
    def test_max_reuse_zero_is_bitwise_full_newton(self, hand_testbench):
        program = StampProgram(hand_testbench.circuit)
        start = program.initial_guess()
        full = program.newton(start, 1e-12)
        chord = program.newton_chord(start, 1e-12, max_reuse=0)
        assert (full[0] == chord[0]).all()
        assert full[1:] == chord[1:]

    def test_chord_solution_matches_full(self, hand_testbench):
        full = StampProgram(hand_testbench.circuit)
        v_full, _, gmin_full = full.solve_voltages()
        chord = StampProgram(hand_testbench.circuit)
        with newton_engine.use("chord"):
            v_chord, _, gmin_chord = chord.solve_voltages()
        assert chord.last_convergence.strategy == "chord-newton"
        assert gmin_full == gmin_chord
        np.testing.assert_allclose(v_chord, v_full, rtol=1e-9, atol=1e-12)

    def test_refactor_counter_counts_refreshes(self, hand_testbench):
        with trace_run("chord") as tracer:
            program = StampProgram(hand_testbench.circuit)
            with newton_engine.use("chord"):
                program.solve_voltages()
        assert tracer.counters.get("newton.refactor", 0) >= 1

    def test_full_engine_never_refactors(self, hand_testbench):
        with trace_run("full") as tracer:
            StampProgram(hand_testbench.circuit).solve_voltages()
        assert "newton.refactor" not in tracer.counters

    def test_ensemble_chord_matches_full(self, hand_testbench):
        from repro.analysis.montecarlo import run_monte_carlo

        full = run_monte_carlo(hand_testbench, runs=8, seed=11)
        with newton_engine.use("chord"):
            chord = run_monte_carlo(hand_testbench, runs=8, seed=11)
        for key, values in full.samples.items():
            np.testing.assert_allclose(
                chord.samples[key], values, rtol=1e-6, err_msg=key
            )


class TestSynthesisDeterminism:
    """The acceptance contract: fingerprints are independent of the
    incremental engine, cache temperature and speculation workers."""

    @pytest.fixture(scope="class")
    def reference(self, tech, specs):
        incremental.clear()
        with incremental_engine.use("off"):
            synthesizer = LayoutOrientedSynthesizer(
                tech, plan=FoldedCascodePlan(tech)
            )
            outcome = synthesizer.run(
                specs, ParasiticMode.FULL, generate=True
            )
        return outcome.fingerprint()

    def _run(self, tech, specs):
        synthesizer = LayoutOrientedSynthesizer(
            tech, plan=FoldedCascodePlan(tech)
        )
        return synthesizer.run(specs, ParasiticMode.FULL, generate=True)

    def test_cold_and_warm_match_from_scratch(self, tech, specs, reference):
        cold = self._run(tech, specs)
        assert cold.fingerprint() == reference
        warm = self._run(tech, specs)
        assert warm.fingerprint() == reference
        stats = incremental.stats()
        assert stats["sizing"]["hits"] > 0, (
            "a warm repeat must serve sizing rounds from the memo"
        )
        assert stats["layout"]["hits"] > 0

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_speculative_hits_are_deterministic(
        self, tech, specs, reference, workers
    ):
        incremental.clear()
        with speculate.session(workers) as scope:
            outcome = self._run(tech, specs)
        assert outcome.fingerprint() == reference
        assert scope.hits >= 1, (
            "the loop must consume at least one speculative estimate"
        )


class TestWarmStartLru:
    def test_session_cap_evicts_lru(self):
        voltages = np.zeros(3)
        with trace_run("warm") as tracer:
            with warmstart.session(limit=2):
                key_a = (("a",), ())
                key_b = (("b",), ())
                key_c = (("c",), ())
                warmstart.record(key_a, voltages)
                warmstart.record(key_b, voltages)
                assert warmstart.lookup(key_a) is not None  # refresh a
                warmstart.record(key_c, voltages)  # evicts b
                assert warmstart.lookup(key_b) is None
                assert warmstart.lookup(key_a) is not None
                assert warmstart.lookup(key_c) is not None
                assert warmstart.evictions() == 1
        assert tracer.counters["dc.warm_start.evicted"] == 1

    def test_snapshot_restore_preserves_order(self):
        with warmstart.session(limit=2):
            key_a = (("a",), ())
            key_b = (("b",), ())
            warmstart.record(key_a, np.zeros(2))
            warmstart.record(key_b, np.ones(2))
            snap = warmstart.snapshot()
            warmstart.restore(snap)
            # "a" is still the LRU entry after a restore: recording a
            # third key evicts it, not "b".
            warmstart.record((("c",), ()), np.zeros(2))
            assert warmstart.lookup(key_a) is None
            assert warmstart.lookup(key_b) is not None

    def test_unbounded_session(self):
        with warmstart.session(limit=None):
            for i in range(100):
                warmstart.record(((str(i),), ()), np.zeros(1))
            assert warmstart.evictions() == 0
