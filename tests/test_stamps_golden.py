"""Golden-equivalence tests: compiled-stamp engine vs legacy engine.

The compiled engine must be a pure performance change — every analysis
result has to match the legacy per-element reference to tight floating
point tolerance (rtol=1e-9) on both bundled OTA topologies (the
folded-cascode benchmark circuit and the Miller two-stage).  The
Monte-Carlo test additionally pins the workers=1 vs workers=4 process
pool to bit-identical samples: all mismatch draws happen before any work
is scheduled, so the partitioning cannot change the statistics.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.analysis.ac import ac_sweep
from repro.analysis.dcop import solve_dc
from repro.analysis.engine import COMPILED, LEGACY, use_engine
from repro.analysis.metrics import measure_ota
from repro.analysis.montecarlo import run_monte_carlo
from repro.analysis.noise import NoiseAnalysis
from repro.perf import default_testbench, two_stage_testbench

RTOL = 1e-9
ATOL = 1e-9

TESTBENCHES = {
    "folded_cascode": default_testbench,
    "two_stage": two_stage_testbench,
}


@pytest.fixture(scope="module", params=sorted(TESTBENCHES))
def tb(request):
    return TESTBENCHES[request.param]()


@pytest.fixture(scope="module")
def feedback(tb):
    circuit = tb.circuit.clone("golden_fb")
    circuit.remove(tb.source_neg)
    circuit.add_vsource("_fb", tb.input_neg_net, tb.output_net, dc=0.0)
    return circuit


@pytest.fixture(scope="module")
def dc_pair(feedback):
    with use_engine(LEGACY):
        legacy = solve_dc(feedback)
    with use_engine(COMPILED):
        compiled = solve_dc(feedback)
    return legacy, compiled


def _op_numbers(op):
    return {
        f.name: getattr(op, f.name)
        for f in dataclasses.fields(op)
        if isinstance(getattr(op, f.name), float)
    }


def test_dc_voltages_match(dc_pair):
    legacy, compiled = dc_pair
    assert set(legacy.voltages) == set(compiled.voltages)
    for net, value in legacy.voltages.items():
        assert compiled.voltages[net] == pytest.approx(
            value, rel=RTOL, abs=ATOL
        ), net


def test_dc_device_operating_points_match(dc_pair):
    legacy, compiled = dc_pair
    assert set(legacy.devices) == set(compiled.devices)
    for name, ref in legacy.devices.items():
        got = compiled.devices[name]
        assert got.swapped == ref.swapped
        assert got.op.region == ref.op.region
        assert got.terminal_current == pytest.approx(
            ref.terminal_current, rel=RTOL, abs=1e-15
        )
        for field, value in _op_numbers(ref.op).items():
            assert getattr(got.op, field) == pytest.approx(
                value, rel=RTOL, abs=1e-15
            ), f"{name}.{field}"


def test_dc_source_currents_match(dc_pair):
    legacy, compiled = dc_pair
    assert set(legacy.source_currents) == set(compiled.source_currents)
    for name, value in legacy.source_currents.items():
        assert compiled.source_currents[name] == pytest.approx(
            value, rel=RTOL, abs=1e-15
        ), name


def test_ac_sweep_matches(tb, feedback, dc_pair):
    legacy_dc, _ = dc_pair
    frequencies = np.logspace(0.0, 9.0, 120)
    drive = {tb.source_pos: 0.5, "_fb": 0.0}
    with use_engine(LEGACY):
        legacy = ac_sweep(feedback, legacy_dc, frequencies, drive)
    with use_engine(COMPILED):
        compiled = ac_sweep(feedback, legacy_dc, frequencies, drive)
    np.testing.assert_allclose(
        compiled.solutions, legacy.solutions, rtol=RTOL, atol=ATOL
    )


def test_noise_matches(tb, feedback, dc_pair):
    legacy_dc, _ = dc_pair
    frequencies = np.logspace(0.0, 9.0, 60)
    drive = {tb.source_pos: 1.0, "_fb": 0.0}
    with use_engine(LEGACY):
        legacy = NoiseAnalysis(
            feedback, legacy_dc, tb.output_net, input_overrides=drive
        ).run(frequencies)
    with use_engine(COMPILED):
        compiled = NoiseAnalysis(
            feedback, legacy_dc, tb.output_net, input_overrides=drive
        ).run(frequencies)
    np.testing.assert_allclose(
        compiled.output_psd, legacy.output_psd, rtol=RTOL, atol=0.0
    )
    np.testing.assert_allclose(
        compiled.input_psd, legacy.input_psd, rtol=RTOL, atol=0.0
    )
    assert set(compiled.contributions) == set(legacy.contributions)
    for name, ref in legacy.contributions.items():
        np.testing.assert_allclose(
            compiled.contributions[name], ref, rtol=RTOL, atol=0.0
        )


def test_full_metrics_match(tb):
    """End to end: the entire Table-1 measurement suite agrees."""
    with use_engine(LEGACY):
        legacy = measure_ota(tb)
    with use_engine(COMPILED):
        compiled = measure_ota(tb)
    for field in dataclasses.fields(legacy):
        ref = getattr(legacy, field.name)
        if not isinstance(ref, float):
            continue
        assert getattr(compiled, field.name) == pytest.approx(
            ref, rel=1e-6, abs=1e-12
        ), field.name


def test_monte_carlo_workers_deterministic():
    """The process pool must not change any sampled statistic."""
    tb = default_testbench()
    with use_engine(COMPILED):
        serial = run_monte_carlo(tb, runs=12, seed=77, workers=1)
        pooled = run_monte_carlo(tb, runs=12, seed=77, workers=4)
    assert set(serial.samples) == set(pooled.samples)
    for key, values in serial.samples.items():
        assert pooled.samples[key] == values, key


def test_monte_carlo_seed_reproducible():
    tb = default_testbench()
    with use_engine(COMPILED):
        first = run_monte_carlo(tb, runs=8, seed=5)
        second = run_monte_carlo(tb, runs=8, seed=5)
    assert first.samples == second.samples
