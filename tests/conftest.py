"""Shared fixtures.

Expensive artefacts (sized OTAs, generated layouts, synthesis outcomes)
are session-scoped so the suite exercises the full pipeline exactly once
and every test reads from the cached results.
"""

from __future__ import annotations

import pytest

from repro.circuit.topologies import DeviceSize, FoldedCascodeDesign, build_folded_cascode
from repro.core.cases import run_case
from repro.core.synthesis import LayoutOrientedSynthesizer
from repro.layout.extraction import extract_cell
from repro.layout.ota import OtaLayoutRequest, generate_ota_layout
from repro.mos import make_model, width_for_current
from repro.sizing.plans.folded_cascode import FoldedCascodePlan
from repro.sizing.specs import OtaSpecs, ParasiticMode
from repro.technology import generic_035, generic_060, generic_080
from repro.units import PF, UM


@pytest.fixture(scope="session")
def tech():
    """The paper's 0.6 um technology."""
    return generic_060()


@pytest.fixture(scope="session")
def tech_035():
    return generic_035()


@pytest.fixture(scope="session")
def tech_080():
    return generic_080()


@pytest.fixture(scope="session")
def specs():
    """The paper's Table-1 input specifications."""
    return OtaSpecs(
        vdd=3.3,
        gbw=65e6,
        phase_margin=65.0,
        cload=3 * PF,
        input_cm_range=(0.55, 1.84),
        output_range=(0.51, 2.31),
    )


@pytest.fixture(scope="session")
def nmos_model(tech):
    return make_model(tech.nmos, level=1)


@pytest.fixture(scope="session")
def pmos_model(tech):
    return make_model(tech.pmos, level=1)


def _hand_sizes(tech):
    """A fixed hand-sized OTA used by layout/circuit tests."""
    mn = make_model(tech.nmos, 1)
    mp = make_model(tech.pmos, 1)
    length = 1.0 * UM
    i_tail, i_sink = 200e-6, 200e-6
    i_casc = i_sink - i_tail / 2.0

    def w(model, current, veff):
        return width_for_current(model, current, length, veff)

    sizes = {
        "mp1": (w(mp, i_tail / 2, 0.2), length),
        "mp2": (w(mp, i_tail / 2, 0.2), length),
        "mp5": (w(mp, i_tail, 0.25), length),
        "mn5": (w(mn, i_sink, 0.25), length),
        "mn6": (w(mn, i_sink, 0.25), length),
        "mn1c": (w(mn, i_casc, 0.2), length),
        "mn2c": (w(mn, i_casc, 0.2), length),
        "mp3": (w(mp, i_casc, 0.25), length),
        "mp4": (w(mp, i_casc, 0.25), length),
        "mp3c": (w(mp, i_casc, 0.2), length),
        "mp4c": (w(mp, i_casc, 0.2), length),
    }
    currents = {
        "mp1": i_tail / 2, "mp2": i_tail / 2, "mp5": i_tail,
        "mn5": i_sink, "mn6": i_sink,
        "mn1c": i_casc, "mn2c": i_casc,
        "mp3": i_casc, "mp4": i_casc, "mp3c": i_casc, "mp4c": i_casc,
    }
    return sizes, currents


@pytest.fixture(scope="session")
def hand_sized(tech):
    """(sizes, currents) for a plausible hand-designed OTA."""
    return _hand_sizes(tech)


@pytest.fixture(scope="session")
def hand_testbench(tech, hand_sized):
    """A measurable hand-designed folded-cascode testbench."""
    mn = make_model(tech.nmos, 1)
    mp = make_model(tech.pmos, 1)
    sizes, _currents = hand_sized
    vdd = 3.3
    veff_sink, veff_ncas, veff_mirror, veff_pcas = 0.25, 0.2, 0.25, 0.2
    veff_tail = 0.25
    fold = veff_sink + 0.15
    x_node = vdd - veff_mirror - 0.15
    biases = {
        "vbn": mn.threshold(0.0) + veff_sink,
        "vc1": fold + mn.threshold(fold) + veff_ncas,
        "vp1": vdd - (mp.threshold(0.0) + veff_tail),
        "vc3": x_node - (mp.threshold(vdd - x_node) + veff_pcas),
    }
    design = FoldedCascodeDesign(
        technology=tech,
        sizes={name: DeviceSize(w=w, l=l) for name, (w, l) in sizes.items()},
        biases=biases,
        vdd=vdd,
        vcm=1.2,
        cload=3 * PF,
    )
    return build_folded_cascode(design)


@pytest.fixture(scope="session")
def ota_layout(tech, hand_sized):
    """A generated OTA layout (generate mode) for the hand-sized design."""
    sizes, currents = hand_sized
    request = OtaLayoutRequest(
        technology=tech, sizes=sizes, currents=currents, aspect=1.0
    )
    return generate_ota_layout(request, mode="generate")


@pytest.fixture(scope="session")
def ota_extraction(tech, ota_layout):
    """Geometric extraction of the generated OTA layout."""
    return extract_cell(ota_layout.cell, tech)


@pytest.fixture(scope="session")
def plan(tech):
    return FoldedCascodePlan(tech)


@pytest.fixture(scope="session")
def sized_case1(plan, specs):
    """Case-1 sizing result (no layout capacitances)."""
    return plan.size(specs, ParasiticMode.NONE)


@pytest.fixture(scope="session")
def sized_case2(plan, specs):
    """Case-2 sizing result (single-fold diffusion assumption)."""
    return plan.size(specs, ParasiticMode.SINGLE_FOLD)


@pytest.fixture(scope="session")
def synthesis_outcome(tech, specs, plan):
    """Full layout-oriented synthesis (case 4) with generated layout."""
    synthesizer = LayoutOrientedSynthesizer(tech, plan=plan)
    return synthesizer.run(specs, mode=ParasiticMode.FULL, generate=True)


@pytest.fixture(scope="session")
def case4_result(tech, specs):
    """Complete case-4 run including extraction."""
    return run_case(tech, specs, ParasiticMode.FULL)
