"""Transistor motif generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DesignRuleError, LayoutError
from repro.layout.folding import folded_diffusion_geometry
from repro.layout.layers import Layer
from repro.layout.motif import generate_mos_motif
from repro.units import UM


class TestBasicMotif:
    @pytest.fixture(scope="class")
    def motif(self, tech):
        return generate_mos_motif(
            tech, "n", 40 * UM, 1 * UM, nf=4, drain_current=500e-6
        )

    def test_gate_count(self, motif):
        # One poly shape per finger plus the strap and the tap pad.
        gates = [
            s for s in motif.cell.shapes_on(Layer.POLY)
            if s.rect.height > 2 * s.rect.width
        ]
        assert len(gates) == 4

    def test_strip_count(self, motif):
        assert len(motif.strips) == 5

    def test_drain_strips_internal(self, motif):
        drains = [s for s in motif.strips if s.is_drain]
        assert len(drains) == 2
        assert all(not s.is_end for s in drains)

    def test_sources_at_ends(self, motif):
        ends = [s for s in motif.strips if s.is_end]
        assert len(ends) == 2
        assert all(not s.is_drain for s in ends)

    def test_geometry_matches_formula(self, motif, tech):
        expected = folded_diffusion_geometry(
            motif.actual_w,
            4,
            ldif_internal=tech.rules.contacted_diffusion_width,
            ldif_end=tech.rules.end_diffusion_width,
            drain_internal=True,
        )
        assert motif.geometry.ad == pytest.approx(expected.ad)
        assert motif.geometry.ps == pytest.approx(expected.ps)

    def test_pins_present(self, motif):
        assert set(motif.cell.pins) == {"d", "g", "s"}

    def test_contacts_in_every_strip(self, motif):
        assert all(s.contacts >= 1 for s in motif.strips)

    def test_nmos_has_no_well(self, motif):
        assert motif.well_rect is None
        assert not motif.cell.shapes_on(Layer.NWELL)


class TestFoldStyles:
    def test_drain_external_option(self, tech):
        motif = generate_mos_motif(
            tech, "n", 40 * UM, 1 * UM, nf=4, drain_internal=False
        )
        ends = [s for s in motif.strips if s.is_end]
        assert all(s.is_drain for s in ends)

    def test_odd_fold_mixed(self, tech):
        motif = generate_mos_motif(tech, "n", 40 * UM, 1 * UM, nf=5)
        drains = [s for s in motif.strips if s.is_drain]
        assert len(drains) == 3
        assert sum(1 for s in drains if s.is_end) == 1

    def test_more_folds_less_drain_area(self, tech):
        unfolded = generate_mos_motif(tech, "n", 40 * UM, 1 * UM, nf=1)
        folded = generate_mos_motif(tech, "n", 40 * UM, 1 * UM, nf=4)
        assert folded.geometry.ad < unfolded.geometry.ad

    def test_folding_shrinks_bbox_height_wise(self, tech):
        unfolded = generate_mos_motif(tech, "n", 40 * UM, 1 * UM, nf=1)
        folded = generate_mos_motif(tech, "n", 40 * UM, 1 * UM, nf=4)
        assert folded.cell.height < unfolded.cell.height
        assert folded.cell.width > unfolded.cell.width


class TestGridSnapping:
    def test_actual_width_on_grid(self, tech):
        motif = generate_mos_motif(tech, "n", 40.37 * UM, 1 * UM, nf=4)
        steps = motif.finger_width / tech.rules.grid
        assert abs(steps - round(steps)) < 1e-6

    def test_width_error_reported(self, tech):
        motif = generate_mos_motif(tech, "n", 40.37 * UM, 1 * UM, nf=4)
        assert motif.actual_w == pytest.approx(4 * motif.finger_width)
        assert abs(motif.width_error) < 0.01

    @given(
        width=st.floats(min_value=10e-6, max_value=300e-6),
        nf=st.sampled_from([1, 2, 4, 6, 8]),
    )
    @settings(max_examples=40, deadline=None)
    def test_snapping_error_bounded(self, tech, width, nf):
        motif = generate_mos_motif(tech, "n", width, 1e-6, nf=nf)
        # Error per finger bounded by half a grid step.
        assert abs(motif.actual_w - width) <= nf * tech.rules.grid / 2 + 1e-15


class TestReliabilityRules:
    def test_high_current_widens_rails(self, tech):
        quiet = generate_mos_motif(tech, "n", 40 * UM, 1 * UM, nf=4,
                                   drain_current=0.0)
        hot = generate_mos_motif(tech, "n", 40 * UM, 1 * UM, nf=4,
                                 drain_current=5e-3)
        rail_quiet = quiet.cell.pin_rect("d")
        rail_hot = hot.cell.pin_rect("d")
        assert rail_hot.height > rail_quiet.height

    def test_impossible_current_rejected(self, tech):
        # Tiny fingers cannot hold the cuts a huge current needs.
        with pytest.raises(DesignRuleError):
            generate_mos_motif(tech, "n", 8 * UM, 1 * UM, nf=4,
                               drain_current=20e-3)

    def test_more_contacts_for_wider_fingers(self, tech):
        narrow = generate_mos_motif(tech, "n", 16 * UM, 1 * UM, nf=4)
        wide = generate_mos_motif(tech, "n", 80 * UM, 1 * UM, nf=4)
        assert wide.strips[0].contacts > narrow.strips[0].contacts


class TestPmosMotif:
    def test_well_drawn(self, tech):
        motif = generate_mos_motif(tech, "p", 40 * UM, 1 * UM, nf=2,
                                   net_b="vdd!")
        assert motif.well_rect is not None
        wells = motif.cell.shapes_on(Layer.NWELL)
        assert wells[0].net == "vdd!"

    def test_well_encloses_active(self, tech):
        motif = generate_mos_motif(tech, "p", 40 * UM, 1 * UM, nf=2)
        active = motif.cell.shapes_on(Layer.ACTIVE)[0].rect
        assert motif.well_rect.contains(active)


class TestValidation:
    def test_short_gate_rejected(self, tech):
        with pytest.raises(DesignRuleError):
            generate_mos_motif(tech, "n", 10 * UM, 0.3 * UM)

    def test_too_many_folds_rejected(self, tech):
        with pytest.raises(DesignRuleError):
            generate_mos_motif(tech, "n", 4 * UM, 1 * UM, nf=8)

    def test_bad_polarity_rejected(self, tech):
        with pytest.raises(LayoutError):
            generate_mos_motif(tech, "x", 10 * UM, 1 * UM)

    def test_custom_nets_propagate(self, tech):
        motif = generate_mos_motif(
            tech, "n", 20 * UM, 1 * UM, nf=2,
            net_d="fold1", net_g="vc1", net_s="0",
        )
        assert set(motif.cell.pins) == {"fold1", "vc1", "0"}
