"""Planar geometry primitives."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LayoutError
from repro.layout.geometry import Orientation, Point, Rect, bounding_box

rect_strategy = st.builds(
    Rect.from_size,
    st.floats(min_value=-1e-3, max_value=1e-3),
    st.floats(min_value=-1e-3, max_value=1e-3),
    st.floats(min_value=1e-9, max_value=1e-3),
    st.floats(min_value=1e-9, max_value=1e-3),
)


class TestRectBasics:
    def test_measures(self):
        rect = Rect(0.0, 0.0, 2.0, 3.0)
        assert rect.width == 2.0
        assert rect.height == 3.0
        assert rect.area == 6.0
        assert rect.perimeter == 10.0

    def test_center(self):
        assert Rect(0.0, 0.0, 2.0, 4.0).center == Point(1.0, 2.0)

    def test_malformed_rejected(self):
        with pytest.raises(LayoutError):
            Rect(1.0, 0.0, 0.0, 1.0)

    def test_from_size_negative_rejected(self):
        with pytest.raises(LayoutError):
            Rect.from_size(0.0, 0.0, -1.0, 1.0)

    def test_centered_constructor(self):
        rect = Rect.centered(5.0, 5.0, 2.0, 4.0)
        assert rect == Rect(4.0, 3.0, 6.0, 7.0)

    def test_translation(self):
        rect = Rect(0.0, 0.0, 1.0, 1.0).translated(2.0, 3.0)
        assert rect == Rect(2.0, 3.0, 3.0, 4.0)

    def test_expansion(self):
        rect = Rect(1.0, 1.0, 2.0, 2.0).expanded(0.5)
        assert rect == Rect(0.5, 0.5, 2.5, 2.5)


class TestTransforms:
    def test_r90_swaps_dimensions(self):
        rect = Rect(0.0, 0.0, 2.0, 1.0).transformed(Orientation.R90)
        assert rect.width == pytest.approx(1.0)
        assert rect.height == pytest.approx(2.0)

    def test_mirror_y_flips_x(self):
        rect = Rect(1.0, 0.0, 3.0, 1.0).transformed(Orientation.MY)
        assert rect == Rect(-3.0, 0.0, -1.0, 1.0)

    def test_mirror_x_flips_y(self):
        rect = Rect(0.0, 1.0, 1.0, 3.0).transformed(Orientation.MX)
        assert rect == Rect(0.0, -3.0, 1.0, -1.0)

    def test_r180_negates_both(self):
        rect = Rect(1.0, 2.0, 3.0, 4.0).transformed(Orientation.R180)
        assert rect == Rect(-3.0, -4.0, -1.0, -2.0)

    @given(rect_strategy)
    @settings(max_examples=40, deadline=None)
    def test_transforms_preserve_area(self, rect):
        for orientation in Orientation:
            assert rect.transformed(orientation).area == pytest.approx(rect.area)

    @given(rect_strategy)
    @settings(max_examples=40, deadline=None)
    def test_double_mirror_is_identity(self, rect):
        twice = rect.transformed(Orientation.MY).transformed(Orientation.MY)
        assert twice.x0 == pytest.approx(rect.x0)
        assert twice.y1 == pytest.approx(rect.y1)


class TestPredicates:
    def test_intersects_overlap(self):
        a = Rect(0.0, 0.0, 2.0, 2.0)
        b = Rect(1.0, 1.0, 3.0, 3.0)
        assert a.intersects(b)

    def test_touching_edges_do_not_intersect(self):
        a = Rect(0.0, 0.0, 1.0, 1.0)
        b = Rect(1.0, 0.0, 2.0, 1.0)
        assert not a.intersects(b)

    def test_contains(self):
        outer = Rect(0.0, 0.0, 4.0, 4.0)
        inner = Rect(1.0, 1.0, 2.0, 2.0)
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_intersection_region(self):
        a = Rect(0.0, 0.0, 2.0, 2.0)
        b = Rect(1.0, 1.0, 3.0, 3.0)
        assert a.intersection(b) == Rect(1.0, 1.0, 2.0, 2.0)

    def test_disjoint_intersection_none(self):
        a = Rect(0.0, 0.0, 1.0, 1.0)
        b = Rect(2.0, 2.0, 3.0, 3.0)
        assert a.intersection(b) is None

    def test_distance_horizontal(self):
        a = Rect(0.0, 0.0, 1.0, 1.0)
        b = Rect(3.0, 0.0, 4.0, 1.0)
        assert a.distance_to(b) == pytest.approx(2.0)

    def test_distance_diagonal(self):
        a = Rect(0.0, 0.0, 1.0, 1.0)
        b = Rect(4.0, 5.0, 5.0, 6.0)
        assert a.distance_to(b) == pytest.approx(5.0)

    def test_parallel_run(self):
        a = Rect(0.0, 0.0, 10.0, 1.0)
        b = Rect(5.0, 2.0, 20.0, 3.0)
        assert a.parallel_run_x(b) == pytest.approx(5.0)
        assert a.parallel_run_y(b) == 0.0

    @given(rect_strategy, rect_strategy)
    @settings(max_examples=50, deadline=None)
    def test_intersection_symmetric(self, a, b):
        ab = a.intersection(b)
        ba = b.intersection(a)
        assert (ab is None) == (ba is None)
        if ab is not None:
            assert ab == ba

    @given(rect_strategy, rect_strategy)
    @settings(max_examples=50, deadline=None)
    def test_intersection_inside_both(self, a, b):
        overlap = a.intersection(b)
        if overlap is not None:
            assert a.contains(overlap)
            assert b.contains(overlap)


class TestBoundingBox:
    def test_union(self):
        box = bounding_box([Rect(0, 0, 1, 1), Rect(2, -1, 3, 4)])
        assert box == Rect(0, -1, 3, 4)

    def test_empty_rejected(self):
        with pytest.raises(LayoutError):
            bounding_box([])

    @given(st.lists(rect_strategy, min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_contains_all_members(self, rects):
        box = bounding_box(rects)
        for rect in rects:
            assert box.x0 <= rect.x0 and box.x1 >= rect.x1
            assert box.y0 <= rect.y0 and box.y1 >= rect.y1
