"""Nonlinear DC operating-point solver."""

import pytest

from repro.analysis import solve_dc
from repro.circuit import Circuit
from repro.errors import AnalysisError, ConvergenceError
from repro.units import UM


class TestLinearCircuits:
    def test_voltage_divider(self):
        circuit = Circuit("divider")
        circuit.add_vsource("v1", "a", "0", dc=2.0)
        circuit.add_resistor("r1", "a", "mid", 1e3)
        circuit.add_resistor("r2", "mid", "0", 1e3)
        solution = solve_dc(circuit)
        assert solution.voltage("mid") == pytest.approx(1.0)

    def test_source_current_direction(self):
        """A delivering supply has negative branch current (pos->neg)."""
        circuit = Circuit("load")
        circuit.add_vsource("v1", "a", "0", dc=2.0)
        circuit.add_resistor("r1", "a", "0", 1e3)
        solution = solve_dc(circuit)
        assert solution.source_currents["v1"] == pytest.approx(-2e-3)
        assert solution.source_power("v1") == pytest.approx(4e-3)

    def test_current_source_into_resistor(self):
        circuit = Circuit("isrc")
        circuit.add_vsource("vref", "a", "0", dc=0.0)
        circuit.add_isource("i1", "0", "node", dc=1e-3)
        circuit.add_resistor("r1", "node", "0", 2e3)
        solution = solve_dc(circuit)
        assert solution.voltage("node") == pytest.approx(2.0)

    def test_capacitor_open_at_dc(self):
        circuit = Circuit("cap")
        circuit.add_vsource("v1", "a", "0", dc=1.0)
        circuit.add_resistor("r1", "a", "b", 1e3)
        circuit.add_capacitor("c1", "b", "0", 1e-12)
        # b floats through the capacitor; gmin pins it to the driven value.
        solution = solve_dc(circuit)
        assert solution.voltage("b") == pytest.approx(1.0, abs=1e-3)

    def test_stacked_sources(self):
        circuit = Circuit("stack")
        circuit.add_vsource("v1", "a", "0", dc=1.0)
        circuit.add_vsource("v2", "b", "a", dc=1.5)
        circuit.add_resistor("r1", "b", "0", 1e3)
        solution = solve_dc(circuit)
        assert solution.voltage("b") == pytest.approx(2.5)


class TestMosDc:
    def test_diode_connected_device(self, tech):
        """Diode device conducts its bias current at vgs > vth."""
        circuit = Circuit("diode")
        circuit.add_vsource("vdd", "vdd!", "0", dc=3.3)
        circuit.add_isource("ib", "vdd!", "g", dc=100e-6)
        circuit.add_mos("m1", d="g", g="g", s="0", b="0",
                        params=tech.nmos, w=50 * UM, l=1 * UM)
        solution = solve_dc(circuit)
        op = solution.devices["m1"].op
        assert op.id == pytest.approx(100e-6, rel=1e-6)
        assert solution.voltage("g") > tech.nmos.vto

    def test_common_source_amplifier(self, tech):
        circuit = Circuit("cs")
        circuit.add_vsource("vdd", "vdd!", "0", dc=3.3)
        circuit.add_vsource("vin", "g", "0", dc=1.0)
        circuit.add_resistor("rload", "vdd!", "d", 10e3)
        circuit.add_mos("m1", d="d", g="g", s="0", b="0",
                        params=tech.nmos, w=20 * UM, l=1 * UM)
        solution = solve_dc(circuit)
        op = solution.devices["m1"].op
        assert solution.voltage("d") == pytest.approx(3.3 - op.id * 10e3, rel=1e-6)

    def test_cutoff_device(self, tech):
        circuit = Circuit("off")
        circuit.add_vsource("vdd", "vdd!", "0", dc=3.3)
        circuit.add_vsource("vin", "g", "0", dc=0.2)
        circuit.add_resistor("rload", "vdd!", "d", 10e3)
        circuit.add_mos("m1", d="d", g="g", s="0", b="0",
                        params=tech.nmos, w=20 * UM, l=1 * UM)
        solution = solve_dc(circuit)
        assert solution.voltage("d") == pytest.approx(3.3, abs=1e-3)
        assert solution.devices["m1"].op.region.value == "cutoff"

    def test_reverse_conduction_swaps_terminals(self, tech):
        """Drain biased below source: solver works in swapped orientation."""
        circuit = Circuit("swap")
        circuit.add_vsource("vhigh", "s_pin", "0", dc=2.0)
        circuit.add_vsource("vg", "g", "0", dc=3.3)
        circuit.add_resistor("r1", "d_pin", "0", 1e3)
        circuit.add_mos("m1", d="d_pin", g="g", s="s_pin", b="0",
                        params=tech.nmos, w=20 * UM, l=1 * UM)
        solution = solve_dc(circuit)
        device = solution.devices["m1"]
        assert device.swapped
        # Current flows from s_pin (higher) to d_pin: into d_pin terminal
        # it is negative.
        assert device.terminal_current < 0.0
        assert solution.voltage("d_pin") > 0.1

    def test_pmos_source_follower(self, tech):
        circuit = Circuit("pmosf")
        circuit.add_vsource("vdd", "vdd!", "0", dc=3.3)
        circuit.add_vsource("vg", "g", "0", dc=1.0)
        # Bias current injected into the source node from the supply.
        circuit.add_isource("ib", "vdd!", "s", dc=50e-6)
        circuit.add_mos("m1", d="0", g="g", s="s", b="vdd!",
                        params=tech.pmos, w=50 * UM, l=1 * UM)
        solution = solve_dc(circuit)
        # Source sits roughly one |vgs| above the gate.
        assert solution.voltage("s") > 1.0 + abs(tech.pmos.vto) * 0.8
        assert solution.devices["m1"].op.id == pytest.approx(50e-6, rel=1e-6)

    def test_starved_node_raises_convergence_error(self, tech):
        """A current source pulling from a node nothing can supply."""
        circuit = Circuit("starved")
        circuit.add_vsource("vdd", "vdd!", "0", dc=3.3)
        circuit.add_vsource("vg", "g", "0", dc=1.0)
        circuit.add_isource("ib", "s", "0", dc=50e-6)
        circuit.add_mos("m1", d="0", g="g", s="s", b="vdd!",
                        params=tech.pmos, w=50 * UM, l=1 * UM)
        with pytest.raises(ConvergenceError):
            solve_dc(circuit)

    def test_mismatch_shifts_current(self, tech):
        def run(mismatch):
            circuit = Circuit("mm")
            circuit.add_vsource("vdd", "vdd!", "0", dc=3.3)
            circuit.add_vsource("vg", "g", "0", dc=1.2)
            circuit.add_mos("m1", d="vdd!", g="g", s="0", b="0",
                            params=tech.nmos, w=20 * UM, l=1 * UM)
            circuit.mos("m1").mismatch_vth = mismatch
            return solve_dc(circuit).devices["m1"].op.id

        assert run(+0.02) < run(0.0) < run(-0.02)

    def test_beta_mismatch_scales_current(self, tech):
        circuit = Circuit("beta")
        circuit.add_vsource("vdd", "vdd!", "0", dc=3.3)
        circuit.add_vsource("vg", "g", "0", dc=1.2)
        circuit.add_mos("m1", d="vdd!", g="g", s="0", b="0",
                        params=tech.nmos, w=20 * UM, l=1 * UM)
        nominal = solve_dc(circuit).devices["m1"].op.id
        circuit.mos("m1").mismatch_beta = 0.1
        scaled = solve_dc(circuit).devices["m1"].op.id
        assert scaled == pytest.approx(1.1 * nominal, rel=1e-6)


class TestFullOta:
    def test_converges(self, hand_testbench):
        solution = solve_dc(hand_testbench.circuit)
        assert solution.gmin == 0.0

    def test_branch_currents_balance(self, hand_testbench):
        solution = solve_dc(hand_testbench.circuit)
        i_mp1 = solution.devices["mp1"].op.id
        i_mp2 = solution.devices["mp2"].op.id
        assert i_mp1 == pytest.approx(i_mp2, rel=1e-3)

    def test_kcl_at_fold_node(self, hand_testbench):
        """mn5 sinks the input device current plus the cascode current."""
        solution = solve_dc(hand_testbench.circuit)
        i_sink = solution.devices["mn5"].op.id
        i_input = solution.devices["mp1"].op.id
        i_cascode = solution.devices["mn1c"].op.id
        assert i_sink == pytest.approx(i_input + i_cascode, rel=1e-6)

    def test_supply_power_is_positive(self, hand_testbench):
        solution = solve_dc(hand_testbench.circuit)
        assert solution.total_supply_power() > 0.5e-3

    def test_tail_current_splits(self, hand_testbench):
        solution = solve_dc(hand_testbench.circuit)
        tail = solution.devices["mp5"].op.id
        split = solution.devices["mp1"].op.id + solution.devices["mp2"].op.id
        assert tail == pytest.approx(split, rel=1e-6)


class TestFailureModes:
    def test_unknown_net_in_index(self):
        from repro.analysis.mna import NodeIndex

        circuit = Circuit("x")
        circuit.add_vsource("v1", "a", "0", dc=1.0)
        circuit.add_resistor("r1", "a", "0", 1.0)
        index = NodeIndex(circuit)
        with pytest.raises(AnalysisError):
            index.node("nonexistent")

    def test_conflicting_sources_fail(self):
        """Two ideal sources forcing different voltages on one net."""
        circuit = Circuit("conflict")
        circuit.add_vsource("v1", "a", "0", dc=1.0)
        circuit.add_vsource("v2", "a", "0", dc=2.0)
        circuit.add_resistor("r1", "a", "0", 1e3)
        with pytest.raises((AnalysisError, ConvergenceError)):
            solve_dc(circuit)
