"""Atomic filesystem write discipline.

Every artifact the package writes — ``BENCH_analysis.json``, GDS/SVG
exports, JSONL traces, journal checkpoints — must never be observable in
a half-written state: a process killed mid-write would otherwise leave a
truncated file that poisons the next consumer (a CI baseline comparison,
a resume, a GDS import).  :func:`atomic_write` provides the shared
discipline: write the full payload to a temporary file in the *same
directory* (so the final rename never crosses a filesystem), flush,
fsync, then ``os.replace`` onto the destination.  Readers therefore see
either the previous complete file or the new complete file, never a mix.

This module is dependency-free on purpose: the telemetry, layout and
resilience layers all import it without creating cycles.
"""

from __future__ import annotations

import os
import tempfile
from typing import Union


def fsync_directory(path: str) -> None:
    """Flush a directory entry to disk (best-effort on platforms without
    directory fds, e.g. Windows)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write(
    path: str, data: Union[str, bytes], encoding: str = "utf-8"
) -> None:
    """Write ``data`` to ``path`` atomically (temp file + ``os.replace``).

    The temporary file lives next to the destination so the final rename
    is atomic on POSIX; the data is flushed and fsynced before the
    rename, and the directory entry is fsynced after it, so a kill at
    any instant leaves either the old file or the complete new one.
    """
    directory = os.path.dirname(os.path.abspath(path))
    if isinstance(data, str):
        data = data.encode(encoding)
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    fsync_directory(directory)
