"""Performance instrumentation for the analysis engines.

Small, dependency-free timing helpers plus the canonical benchmark
fixtures (the paper's Table-1 specs and the hand-sized folded-cascode
testbench) shared by ``benchmarks/test_perf_analysis.py`` and the
``python -m repro bench`` subcommand.

The machine-readable output is ``BENCH_analysis.json`` at the repo root:

.. code-block:: json

    {
      "schema": "repro-bench-v2",
      "results": {
        "dc_solve": {"legacy_s": ..., "compiled_s": ..., "speedup": ...,
                     "legacy_p50_s": ..., "compiled_p95_s": ...},
        ...
      }
    }

Every entry times the *same* call with the legacy and compiled engines
(flipped via :func:`repro.analysis.engine.use_engine`), so a speedup of
1.0 means "no change" and regressions show up as values < previous runs.
The v2 schema adds p50/p95 percentiles next to best-of; :func:`load_bench`
still reads v1 records (which simply lack the percentile keys).
"""

from __future__ import annotations

import json
import time
import warnings
from typing import Any, Callable, Dict, List, Optional

BENCH_SCHEMA = "repro-bench-v2"
#: Older schemas :func:`load_bench` accepts (entries lack p50/p95 keys).
BENCH_COMPAT_SCHEMAS = ("repro-bench-v1",)
BENCH_FILENAME = "BENCH_analysis.json"
#: Schema tag on every line of a ``bench --history`` JSONL file.
BENCH_HISTORY_SCHEMA = "repro-bench-history-v1"


class BenchSkewWarning(UserWarning):
    """A regression comparison skipped entries the two records don't share
    (renamed or newly added benchmarks) — the gate covered less than the
    full suite."""


def _percentile(sorted_samples: list, q: float) -> float:
    """Linear-interpolation percentile of an already sorted sample list."""
    if len(sorted_samples) == 1:
        return sorted_samples[0]
    position = q * (len(sorted_samples) - 1)
    lo = int(position)
    hi = min(lo + 1, len(sorted_samples) - 1)
    fraction = position - lo
    return sorted_samples[lo] * (1.0 - fraction) + sorted_samples[hi] * fraction


def time_call(
    fn: Callable[[], Any], repeat: int = 3, warmup: int = 1
) -> Dict[str, float]:
    """Best-of-``repeat`` wall-clock timing of ``fn()``.

    Returns ``{"best_s": ..., "mean_s": ..., "p50_s": ..., "p95_s": ...,
    "repeat": ...}``.  Best-of is the robust statistic for latency
    benchmarks — the minimum is the run least disturbed by the OS; the
    percentiles expose the tail the minimum hides.
    """
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    ordered = sorted(samples)
    return {
        "best_s": ordered[0],
        "mean_s": sum(samples) / len(samples),
        "p50_s": _percentile(ordered, 0.50),
        "p95_s": _percentile(ordered, 0.95),
        "repeat": float(repeat),
    }


def _engine_entry(
    legacy: Dict[str, float], compiled: Dict[str, float]
) -> Dict[str, float]:
    """A v2 record entry from two :func:`time_call` results.

    ``legacy``/``compiled`` generalize to any before/after pair (scalar
    vs vectorized extraction, all-pairs vs grid DRC, serial vs parallel
    batch) — the keys stay the same so every entry renders through
    :func:`format_bench_table`.
    """
    return {
        "legacy_s": legacy["best_s"],
        "compiled_s": compiled["best_s"],
        "legacy_p50_s": legacy["p50_s"],
        "legacy_p95_s": legacy["p95_s"],
        "compiled_p50_s": compiled["p50_s"],
        "compiled_p95_s": compiled["p95_s"],
        "speedup": legacy["best_s"] / compiled["best_s"]
        if compiled["best_s"] > 0
        else float("inf"),
    }


def compare_engines(
    fn: Callable[[], Any], repeat: int = 3, warmup: int = 1
) -> Dict[str, float]:
    """Time ``fn()`` under both analysis engines and report the speedup."""
    from repro.analysis.engine import COMPILED, LEGACY, use_engine

    with use_engine(LEGACY):
        legacy = time_call(fn, repeat=repeat, warmup=warmup)
    with use_engine(COMPILED):
        compiled = time_call(fn, repeat=repeat, warmup=warmup)
    return _engine_entry(legacy, compiled)


def write_bench(results: Dict[str, Dict[str, float]], path: str) -> None:
    """Write the machine-readable benchmark record (atomically: the
    record doubles as a CI regression baseline, so a crash mid-write must
    never leave a truncated JSON file behind)."""
    from repro.ioutil import atomic_write

    payload = {"schema": BENCH_SCHEMA, "results": results}
    atomic_write(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_bench(path: str) -> Dict[str, Dict[str, float]]:
    """Read a benchmark record written by :func:`write_bench`.

    Accepts the current schema and every entry of
    :data:`BENCH_COMPAT_SCHEMAS` — a v1 record loads fine, its entries
    just lack the percentile keys v2 added.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    schema = payload.get("schema")
    if schema != BENCH_SCHEMA and schema not in BENCH_COMPAT_SCHEMAS:
        raise ValueError(f"unrecognized bench schema in {path!r}")
    return payload["results"]


def check_regressions(
    fresh: Dict[str, Dict[str, float]],
    baseline: Dict[str, Dict[str, float]],
    threshold: float = 0.25,
    skipped: Optional[List[str]] = None,
    floor_s: float = 1e-3,
) -> Dict[str, Dict[str, float]]:
    """Compiled-path entries of ``fresh`` slower than ``baseline``.

    Compares ``compiled_p50_s`` (the representative latency; best-of is
    too flattering, p95 too noisy for a gate) per entry present in both
    records and returns ``{name: {"fresh_p50_s", "baseline_p50_s",
    "ratio"}}`` for every entry more than ``threshold`` slower — empty
    means the gate passes.  An entry present in only one of the two
    records (a renamed or newly added benchmark) is *skipped*, not
    compared: a :class:`BenchSkewWarning` names it, and when the caller
    passes a ``skipped`` list the names are appended there so the CLI
    can report exactly what the gate did not cover.  A baseline without
    percentile keys (v1 schema) falls back to best-of.

    Both p50s are clamped up to ``floor_s`` before the ratio: entries
    faster than the floor (cache-hit paths land in microseconds) sit at
    the timer's noise level, where a 25% ratio gate would flag pure
    jitter rather than a regression.
    """
    missing = sorted(set(fresh) ^ set(baseline))
    if missing:
        if skipped is not None:
            skipped.extend(missing)
        warnings.warn(
            f"bench comparison skipped {len(missing)} entr"
            f"{'y' if len(missing) == 1 else 'ies'} present in only one "
            f"record: {', '.join(missing)}",
            BenchSkewWarning,
            stacklevel=2,
        )
    regressions: Dict[str, Dict[str, float]] = {}
    for name, entry in sorted(fresh.items()):
        base = baseline.get(name)
        if base is None:
            continue
        fresh_p50 = entry.get("compiled_p50_s", entry.get("compiled_s"))
        base_p50 = base.get("compiled_p50_s", base.get("compiled_s"))
        if not fresh_p50 or not base_p50:
            continue
        ratio = max(fresh_p50, floor_s) / max(base_p50, floor_s)
        if ratio > 1.0 + threshold:
            regressions[name] = {
                "fresh_p50_s": fresh_p50,
                "baseline_p50_s": base_p50,
                "ratio": ratio,
            }
    return regressions


# -- Run-over-run history ----------------------------------------------------


def append_history(
    results: Dict[str, Dict[str, float]],
    path: str,
    timestamp: Optional[float] = None,
) -> Dict[str, Any]:
    """Append one run's results to a JSONL bench history file.

    Each line is self-describing — ``{"schema", "timestamp",
    "results"}`` — so the file survives partial writes (a truncated tail
    line is skipped by :func:`load_history`, everything before it loads).
    Returns the appended entry.
    """
    entry: Dict[str, Any] = {
        "schema": BENCH_HISTORY_SCHEMA,
        "timestamp": time.time() if timestamp is None else timestamp,
        "results": results,
    }
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def load_history(path: str) -> List[Dict[str, Any]]:
    """Every well-formed entry of a bench history file, oldest first.

    Lines that do not parse or carry a foreign schema raise ``ValueError``
    with the line number — except a truncated *final* line (a run killed
    mid-append), which is dropped silently: everything durably written
    before it is still a valid history.
    """
    entries: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    for line_no, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            if line_no == len(lines):
                break  # torn tail from a killed append; keep the rest
            raise ValueError(
                f"{path}:{line_no}: malformed bench history line"
            ) from None
        if entry.get("schema") != BENCH_HISTORY_SCHEMA:
            raise ValueError(
                f"{path}:{line_no}: expected schema "
                f"{BENCH_HISTORY_SCHEMA!r}, got {entry.get('schema')!r}"
            )
        entries.append(entry)
    return entries


def check_history_regressions(
    results: Dict[str, Dict[str, float]],
    path: str,
    threshold: float = 0.25,
    skipped: Optional[List[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Run-over-run p50 check of ``results`` against the *latest* entry
    of the history at ``path`` (empty dict when there is no history yet
    or no entry regressed past ``threshold``)."""
    try:
        history = load_history(path)
    except FileNotFoundError:
        return {}
    if not history:
        return {}
    return check_regressions(
        results, history[-1]["results"], threshold=threshold, skipped=skipped
    )


def format_bench_table(results: Dict[str, Dict[str, float]]) -> str:
    """Human-readable before/after table for the CLI."""
    rows = [("benchmark", "legacy", "compiled", "speedup")]
    for name in sorted(results):
        entry = results[name]
        rows.append(
            (
                name,
                f"{entry['legacy_s'] * 1e3:.1f} ms",
                f"{entry['compiled_s'] * 1e3:.1f} ms",
                f"{entry['speedup']:.2f}x",
            )
        )
    widths = [max(len(row[col]) for row in rows) for col in range(4)]
    lines = []
    for i, row in enumerate(rows):
        lines.append(
            "  ".join(cell.ljust(widths[col]) for col, cell in enumerate(row))
        )
        if i == 0:
            lines.append("  ".join("-" * widths[col] for col in range(4)))
    return "\n".join(lines)


# -- Canonical benchmark fixtures -------------------------------------------------


def table1_specs():
    """The paper's Table-1 input specifications (case-4 synthesis input)."""
    from repro.sizing.specs import OtaSpecs
    from repro.units import PF

    return OtaSpecs(
        vdd=3.3,
        gbw=65e6,
        phase_margin=65.0,
        cload=3 * PF,
        input_cm_range=(0.55, 1.84),
        output_range=(0.51, 2.31),
    )


def default_testbench(technology=None):
    """The hand-sized folded-cascode testbench used across the benchmarks.

    Mirrors the ``hand_testbench`` fixture in ``tests/conftest.py`` so the
    bench exercises exactly the circuit the tier-1 suite measures.
    """
    from repro.circuit.topologies import (
        DeviceSize,
        FoldedCascodeDesign,
        build_folded_cascode,
    )
    from repro.mos import make_model, width_for_current
    from repro.technology import generic_060
    from repro.units import PF, UM

    tech = technology if technology is not None else generic_060()
    mn = make_model(tech.nmos, 1)
    mp = make_model(tech.pmos, 1)
    length = 1.0 * UM
    i_tail, i_sink = 200e-6, 200e-6
    i_casc = i_sink - i_tail / 2.0

    def w(model, current, veff):
        return width_for_current(model, current, length, veff)

    sizes = {
        "mp1": (w(mp, i_tail / 2, 0.2), length),
        "mp2": (w(mp, i_tail / 2, 0.2), length),
        "mp5": (w(mp, i_tail, 0.25), length),
        "mn5": (w(mn, i_sink, 0.25), length),
        "mn6": (w(mn, i_sink, 0.25), length),
        "mn1c": (w(mn, i_casc, 0.2), length),
        "mn2c": (w(mn, i_casc, 0.2), length),
        "mp3": (w(mp, i_casc, 0.25), length),
        "mp4": (w(mp, i_casc, 0.25), length),
        "mp3c": (w(mp, i_casc, 0.2), length),
        "mp4c": (w(mp, i_casc, 0.2), length),
    }
    vdd = 3.3
    veff_sink, veff_ncas, veff_mirror, veff_pcas = 0.25, 0.2, 0.25, 0.2
    veff_tail = 0.25
    fold = veff_sink + 0.15
    x_node = vdd - veff_mirror - 0.15
    biases = {
        "vbn": mn.threshold(0.0) + veff_sink,
        "vc1": fold + mn.threshold(fold) + veff_ncas,
        "vp1": vdd - (mp.threshold(0.0) + veff_tail),
        "vc3": x_node - (mp.threshold(vdd - x_node) + veff_pcas),
    }
    design = FoldedCascodeDesign(
        technology=tech,
        sizes={name: DeviceSize(w=w, l=l) for name, (w, l) in sizes.items()},
        biases=biases,
        vdd=vdd,
        vcm=1.2,
        cload=3 * PF,
    )
    return build_folded_cascode(design)


def hand_ota_layout(technology=None):
    """A generated (case-4 style) OTA layout for the layout benchmarks.

    Mirrors the ``ota_layout`` fixture in ``tests/conftest.py``: the same
    hand-sized folded-cascode design as :func:`default_testbench`, run
    through the layout generator in generate mode, so the layout
    benchmarks time exactly the cell the tier-1 suite extracts.
    """
    from repro.layout.ota import OtaLayoutRequest, generate_ota_layout
    from repro.mos import make_model, width_for_current
    from repro.technology import generic_060
    from repro.units import UM

    tech = technology if technology is not None else generic_060()
    mn = make_model(tech.nmos, 1)
    mp = make_model(tech.pmos, 1)
    length = 1.0 * UM
    i_tail, i_sink = 200e-6, 200e-6
    i_casc = i_sink - i_tail / 2.0

    def w(model, current, veff):
        return width_for_current(model, current, length, veff)

    sizes = {
        "mp1": (w(mp, i_tail / 2, 0.2), length),
        "mp2": (w(mp, i_tail / 2, 0.2), length),
        "mp5": (w(mp, i_tail, 0.25), length),
        "mn5": (w(mn, i_sink, 0.25), length),
        "mn6": (w(mn, i_sink, 0.25), length),
        "mn1c": (w(mn, i_casc, 0.2), length),
        "mn2c": (w(mn, i_casc, 0.2), length),
        "mp3": (w(mp, i_casc, 0.25), length),
        "mp4": (w(mp, i_casc, 0.25), length),
        "mp3c": (w(mp, i_casc, 0.2), length),
        "mp4c": (w(mp, i_casc, 0.2), length),
    }
    currents = {
        "mp1": i_tail / 2, "mp2": i_tail / 2, "mp5": i_tail,
        "mn5": i_sink, "mn6": i_sink,
        "mn1c": i_casc, "mn2c": i_casc,
        "mp3": i_casc, "mp4": i_casc, "mp3c": i_casc, "mp4c": i_casc,
    }
    request = OtaLayoutRequest(
        technology=tech, sizes=sizes, currents=currents, aspect=1.0
    )
    return generate_ota_layout(request, mode="generate")


def two_stage_testbench(technology=None):
    """A hand-sized Miller two-stage OTA testbench.

    The second topology of the golden-equivalence suite: it exercises the
    compiled engine on a different device count, a compensation network
    (Miller cap) and an NMOS-input stage.
    """
    from repro.circuit.topologies import (
        DeviceSize,
        TwoStageDesign,
        build_two_stage,
    )
    from repro.mos import make_model
    from repro.technology import generic_060
    from repro.units import PF, UM

    tech = technology if technology is not None else generic_060()
    mn = make_model(tech.nmos, 1)
    design = TwoStageDesign(
        technology=tech,
        sizes={
            "m1": DeviceSize(w=30 * UM, l=1 * UM),
            "m2": DeviceSize(w=30 * UM, l=1 * UM),
            "m3": DeviceSize(w=15 * UM, l=1 * UM),
            "m4": DeviceSize(w=15 * UM, l=1 * UM),
            "m5": DeviceSize(w=30 * UM, l=1 * UM),
            "m6": DeviceSize(w=120 * UM, l=0.8 * UM),
            "m7": DeviceSize(w=60 * UM, l=0.8 * UM),
        },
        vbn=mn.threshold(0.0) + 0.2,
        vdd=3.3,
        vcm=1.4,
        cload=3 * PF,
        cc=0.8 * PF,
    )
    return build_two_stage(design)


# -- The benchmark suite ----------------------------------------------------------


def run_benchmarks(
    repeat: int = 3,
    include_synthesis: bool = True,
    mc_runs: int = 50,
) -> Dict[str, Dict[str, float]]:
    """Time the canonical analysis workloads under both engines.

    Workloads: one feedback DC solve, a 200-point AC sweep, a
    ``mc_runs``-sample Monte-Carlo offset analysis and (unless disabled)
    the full Table-1 case-4 ``LayoutOrientedSynthesizer.run``.  Returns
    the :func:`write_bench`-ready mapping.
    """
    import numpy as np

    from repro.analysis.ac import ac_sweep
    from repro.analysis.dcop import solve_dc
    from repro.analysis.montecarlo import run_monte_carlo

    tb = default_testbench()
    feedback = tb.circuit.clone("bench_fb")
    feedback.remove(tb.source_neg)
    feedback.add_vsource("_fb", tb.input_neg_net, tb.output_net, dc=0.0)
    dc = solve_dc(feedback)
    frequencies = np.logspace(0.0, 9.0, 200)
    drive = {tb.source_pos: 0.5, "_fb": 0.0}

    results: Dict[str, Dict[str, float]] = {
        "dc_solve": compare_engines(
            lambda: solve_dc(feedback), repeat=repeat
        ),
        "ac_sweep_200": compare_engines(
            lambda: ac_sweep(feedback, dc, frequencies, drive),
            repeat=repeat,
        ),
        f"monte_carlo_{mc_runs}": compare_engines(
            lambda: run_monte_carlo(tb, runs=mc_runs, seed=1234),
            repeat=max(1, repeat - 2),
        ),
    }

    # Stacked-ensemble entries: per-sample (legacy column) vs the stacked
    # (K, n, n) Newton (compiled column), both on the compiled engine.
    from repro.analysis.engine import PERSAMPLE, STACKED, ensemble_engine
    from repro.analysis.ensemble import measure_ota_ensemble

    mc_repeat = max(1, repeat - 2)
    with ensemble_engine.use(PERSAMPLE):
        per_sample = time_call(
            lambda: run_monte_carlo(tb, runs=200, seed=1234),
            repeat=mc_repeat,
        )
    with ensemble_engine.use(STACKED):
        stacked = time_call(
            lambda: run_monte_carlo(tb, runs=200, seed=1234),
            repeat=mc_repeat,
        )
    results["monte_carlo_200_ensemble"] = _engine_entry(per_sample, stacked)

    from repro.sizing.plans.folded_cascode import FoldedCascodePlan
    from repro.technology import generic_060
    from repro.technology.corners import corner_set

    tech = generic_060()
    specs = table1_specs()
    plan = FoldedCascodePlan(tech)
    sizing = plan.size(specs)
    benches = [
        FoldedCascodePlan(corner_tech).build_testbench(sizing, specs)
        for corner_tech in corner_set(tech).values()
    ]
    per_corner = time_call(
        lambda: measure_ota_ensemble(benches, engine=PERSAMPLE),
        repeat=repeat,
    )
    stacked_corners = time_call(
        lambda: measure_ota_ensemble(benches, engine=STACKED),
        repeat=repeat,
    )
    results["corners_batch_ensemble"] = _engine_entry(
        per_corner, stacked_corners
    )
    if include_synthesis:
        from repro.core.synthesis import LayoutOrientedSynthesizer
        from repro.sizing.plans.folded_cascode import FoldedCascodePlan
        from repro.sizing.specs import ParasiticMode
        from repro.technology import generic_060

        tech = generic_060()
        specs = table1_specs()

        def synthesize():
            synthesizer = LayoutOrientedSynthesizer(
                tech, plan=FoldedCascodePlan(tech)
            )
            return synthesizer.run(
                specs, mode=ParasiticMode.FULL, generate=True
            )

        # The differential caches would mask the engine difference this
        # entry exists to measure (a warm repeat skips the physics in
        # both columns), so the raw legacy-vs-compiled comparison runs
        # from scratch; the ``_incremental`` entry below owns the cached
        # comparison.
        from repro.layout import incremental
        from repro.layout.engine import (
            FROM_SCRATCH,
            INCREMENTAL,
            incremental_engine,
        )

        synth_repeat = max(1, repeat - 1)
        with incremental_engine.use(FROM_SCRATCH):
            results["synthesize_case4"] = compare_engines(
                synthesize, repeat=synth_repeat
            )

        # Incremental hot path: from-scratch synthesis (legacy column)
        # vs the differential caches (compiled column).  The warmup call
        # inside time_call fills the stores, so the timed incremental
        # repeats measure the warm loop — the case the sizing<->layout
        # iteration actually hits from round two onward.
        incremental.clear()
        with incremental_engine.use(FROM_SCRATCH):
            scratch = time_call(synthesize, repeat=synth_repeat)
        incremental.clear()
        with incremental_engine.use(INCREMENTAL):
            differential = time_call(synthesize, repeat=synth_repeat)
        incremental.clear()
        results["synthesize_case4_incremental"] = _engine_entry(
            scratch, differential
        )
    return results


def run_layout_benchmarks(
    repeat: int = 3, batch_jobs: int = 0
) -> Dict[str, Dict[str, float]]:
    """Time the layout-path workloads under both geometry engines.

    ``layout_extract`` compares scalar vs vectorized extraction and
    ``layout_drc`` all-pairs vs grid-indexed DRC, both on the generated
    case-4 OTA cell (``legacy``/``compiled`` columns read as
    before/after).  With ``batch_jobs >= 2``, ``table1_batch_jobs{N}``
    additionally compares a serial four-case Table-1 batch against the
    ``--jobs N`` process pool — only meaningful on a multi-core host
    (one core makes the pool pure overhead).
    """
    from repro.layout.drc import DrcChecker
    from repro.layout.engine import (
        ALLPAIRS,
        GRID,
        SCALAR,
        VECTOR,
        drc_engine,
        extraction_engine,
    )
    from repro.layout.extraction import extract_cell
    from repro.technology import generic_060

    tech = generic_060()
    cell = hand_ota_layout(tech).cell
    checker = DrcChecker(tech)

    from repro.layout import incremental
    from repro.layout.engine import (
        FROM_SCRATCH,
        INCREMENTAL,
        incremental_engine,
    )

    results: Dict[str, Dict[str, float]] = {}
    # Caches off: warm repeats would hit the per-module store in both
    # columns and mask the scalar-vs-vector difference this entry
    # measures; the ``extraction_incremental`` entry owns the cached
    # comparison.
    with incremental_engine.use(FROM_SCRATCH):
        with extraction_engine.use(SCALAR):
            scalar = time_call(
                lambda: extract_cell(cell, tech), repeat=repeat
            )
        with extraction_engine.use(VECTOR):
            vector = time_call(
                lambda: extract_cell(cell, tech), repeat=repeat
            )
    results["layout_extract"] = _engine_entry(scalar, vector)

    with drc_engine.use(ALLPAIRS):
        allpairs = time_call(lambda: checker.check(cell), repeat=repeat)
    with drc_engine.use(GRID):
        grid = time_call(lambda: checker.check(cell), repeat=repeat)
    results["layout_drc"] = _engine_entry(allpairs, grid)

    # Differential extraction: repeated extraction of the same cell
    # from scratch (legacy column) vs served per-module from the
    # content-keyed store (compiled column; the warmup fills it).
    incremental.clear()
    with incremental_engine.use(FROM_SCRATCH):
        scratch = time_call(lambda: extract_cell(cell, tech), repeat=repeat)
    incremental.clear()
    with incremental_engine.use(INCREMENTAL):
        warm = time_call(lambda: extract_cell(cell, tech), repeat=repeat)
    incremental.clear()
    results["extraction_incremental"] = _engine_entry(scratch, warm)

    if batch_jobs >= 2:
        from repro.core.batch import BatchTask, run_batch
        from repro.sizing.specs import ParasiticMode

        specs = table1_specs()
        tasks = [
            BatchTask(kind="case", technology="0.6um", specs=specs,
                      mode=mode.name)
            for mode in ParasiticMode
        ]
        serial = time_call(
            lambda: run_batch(tasks, jobs=1), repeat=1, warmup=0
        )
        parallel = time_call(
            lambda: run_batch(tasks, jobs=batch_jobs), repeat=1, warmup=0
        )
        results[f"table1_batch_jobs{batch_jobs}"] = _engine_entry(
            serial, parallel
        )
    return results


def _sample_entry(samples: List[float]) -> Dict[str, float]:
    """A :func:`time_call`-shaped stats dict from raw second samples."""
    ordered = sorted(samples)
    return {
        "best_s": ordered[0],
        "mean_s": sum(samples) / len(samples),
        "p50_s": _percentile(ordered, 0.50),
        "p95_s": _percentile(ordered, 0.95),
        "repeat": float(len(samples)),
    }


def run_runtime_benchmarks(repeat: int = 3) -> Dict[str, Dict[str, float]]:
    """Time the persistent-runtime wins (the ``repro.runtime`` stack).

    ``mc_dispatch_overhead`` runs the same 2-worker Monte-Carlo dispatch
    with a dedicated pool per round and pickled sample transport (the
    pre-runtime behavior; ``legacy`` column) and with the persistent
    executor plus shared-memory samples (``compiled`` column), so the
    speedup is pure dispatch overhead — the physics per shard is
    identical and results are bit-identical in both modes.

    ``table1_warm_vs_cold`` runs two cheap Table-1 cases against an
    empty cross-run artifact cache (``legacy``) and then re-runs them
    against the now-populated cache (``compiled``): the warm run is
    served from disk without re-synthesizing.
    """
    import tempfile

    from repro.analysis.montecarlo import run_monte_carlo
    from repro.runtime import artifacts
    from repro.runtime import pool as runtime_pool
    from repro.runtime import shm as runtime_shm

    tb = default_testbench()

    def mc():
        return run_monte_carlo(tb, runs=64, seed=1234, workers=4)

    # Per-round pools, pickled samples: every timed call pays four
    # process spawns plus a testbench + sample-rows pickle per shard.
    with runtime_pool.persistent(False), runtime_shm.use(False):
        runtime_pool.shutdown()
        per_round = time_call(mc, repeat=repeat, warmup=0)
    # Persistent pool, shared-memory samples: the warmup call creates
    # the pool and ships the compiled-state payload once; the timed
    # calls measure reuse.
    with runtime_pool.persistent(True), runtime_shm.use(True):
        runtime_pool.shutdown()
        warm_pool = time_call(mc, repeat=repeat, warmup=1)
    results = {
        "mc_dispatch_overhead": _engine_entry(per_round, warm_pool)
    }

    from repro.core.batch import BatchTask, run_batch

    specs = table1_specs()
    tasks = [
        BatchTask(kind="case", technology="0.6um", specs=specs, mode=mode)
        for mode in ("NONE", "SINGLE_FOLD")
    ]
    cold_samples: List[float] = []
    warm_samples: List[float] = []
    for _ in range(max(1, repeat - 1)):
        # A fresh cache root per iteration keeps every cold sample
        # genuinely cold; the warm sample re-runs the identical batch
        # against the cache the cold run just filled.
        with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as root:
            with artifacts.using(root):
                start = time.perf_counter()
                run_batch(tasks, jobs=1)
                cold_samples.append(time.perf_counter() - start)
                start = time.perf_counter()
                run_batch(tasks, jobs=1)
                warm_samples.append(time.perf_counter() - start)
    results["table1_warm_vs_cold"] = _engine_entry(
        _sample_entry(cold_samples), _sample_entry(warm_samples)
    )
    return results
