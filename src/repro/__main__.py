"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's experiments:

* ``table1``      — the four parasitic-awareness cases (Table 1);
* ``synthesize``  — layout-oriented synthesis for custom specs (Fig 1b);
* ``flows``       — traditional vs layout-oriented flow comparison;
* ``figure2``     — the capacitance reduction factor curves;
* ``figure3``     — the 1:3:6 current-mirror stack;
* ``evaluate``    — technology characterisation and ranking;
* ``bench``       — legacy vs compiled analysis-engine timings
  (writes ``BENCH_analysis.json``);
* ``trace``       — replay a JSONL telemetry trace written by ``--trace``.

Output discipline: stdout carries the command's report (tables, metrics,
machine-readable ``key: path`` lines); progress notices and diagnostics go
to stderr, so stdout stays pipeable.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Optional

from repro.errors import (
    BudgetExceededError,
    ConvergenceError,
    JournalError,
    ReproError,
    RunInterrupted,
)
from repro.sizing.specs import OtaSpecs, ParasiticMode
from repro.technology import generic_035, generic_060, generic_080
from repro.units import UM

#: Exit code of a run stopped cleanly by SIGINT/SIGTERM with a resumable
#: journal checkpoint on disk.
EXIT_INTERRUPTED = 3


def dump_failure(error: ReproError) -> None:
    """Structured stderr dump of a typed failure (diagnostics included)."""
    print(f"error: {type(error).__name__}: {error}", file=sys.stderr)
    if isinstance(error, BudgetExceededError):
        if error.site is not None:
            print(f"  budget tripped at: {error.site}", file=sys.stderr)
        if error.elapsed is not None:
            print(f"  elapsed: {error.elapsed:.3f} s", file=sys.stderr)
        records = error.partial or []
        if records:
            print(f"  completed rounds before expiry: {len(records)}",
                  file=sys.stderr)
            for record in records:
                distance = (
                    "inf" if record.distance == float("inf")
                    else f"{record.distance:.3e} F"
                )
                print(f"    round {record.round_index}: parasitic distance "
                      f"{distance}", file=sys.stderr)
    report = getattr(error, "report", None)
    if report is None and isinstance(error.__cause__, ConvergenceError):
        report = error.__cause__.report
    if report is not None:
        for line in report.summary().splitlines():
            print(f"  {line}", file=sys.stderr)

_TECHNOLOGIES = {
    "0.35um": generic_035,
    "0.6um": generic_060,
    "0.8um": generic_080,
}


def _add_technology_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--technology", choices=sorted(_TECHNOLOGIES), default="0.6um",
        help="process preset (default: the paper's 0.6um)",
    )


def _specs_from_args(args: argparse.Namespace) -> OtaSpecs:
    return OtaSpecs(
        vdd=args.vdd,
        gbw=args.gbw * 1e6,
        phase_margin=args.phase_margin,
        cload=args.cload * 1e-12,
        input_cm_range=(0.55 * args.vdd / 3.3, 1.84 * args.vdd / 3.3),
        output_range=(0.51 * args.vdd / 3.3, 2.31 * args.vdd / 3.3),
    )


def _add_trace_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record a JSONL telemetry trace of the run to FILE "
             "(replay it with 'python -m repro trace FILE', profile it "
             "with 'python -m repro profile FILE')",
    )


def _add_monitor_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--monitor", metavar="PORT", nargs="?", const=-1, type=int,
        default=None,
        help="live progress heartbeat on stderr (units done/total, ETA, "
             "last-unit seconds); with PORT also serve GET /metrics "
             "(Prometheus text) and /status (JSON) on 127.0.0.1:PORT "
             "(0 picks a free port); results stay bit-identical",
    )


def _add_metrics_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="write a Prometheus text snapshot of the run's counters and "
             "histograms to FILE at exit (observation only; results stay "
             "bit-identical)",
    )


def _add_runtime_arguments(
    parser: argparse.ArgumentParser, pool: bool = True
) -> None:
    parser.add_argument(
        "--cache-dir", metavar="DIR", nargs="?", const="", default=None,
        help="enable the cross-run artifact cache rooted at DIR (no "
             "value: ~/.cache/repro); later runs with identical inputs "
             "are served from disk, bit-identical to a cold run",
    )
    if pool:
        parser.add_argument(
            "--no-persistent-pool", action="store_true",
            help="tear the worker pool down after every dispatch round "
                 "instead of keeping it warm for the whole process",
        )
    parser.add_argument(
        "--no-incremental", action="store_true",
        help="disable the differential layout/sizing caches and recompute "
             "every round from scratch (results are bit-identical either "
             "way; this flag only trades wall-clock for memory)",
    )


def _configure_runtime(args: argparse.Namespace) -> None:
    """Apply --cache-dir / --no-persistent-pool / --no-incremental
    before any dispatch."""
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is not None:
        from repro.runtime import artifacts

        root = artifacts.default_root() if cache_dir == "" else cache_dir
        artifacts.configure(root)
        print(f"artifact cache: {root}", file=sys.stderr)
    if getattr(args, "no_persistent_pool", False):
        from repro.runtime import pool as runtime_pool

        runtime_pool.set_persistent(False)
    if getattr(args, "no_incremental", False):
        from repro.layout.engine import FROM_SCRATCH, incremental_engine

        incremental_engine.set_default(FROM_SCRATCH)


def _add_journal_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--journal", metavar="RUN_DIR", default=None,
        help="journal completed units of work to RUN_DIR/journal.jsonl "
             "(crash-safe; continue a killed run with --resume RUN_DIR)",
    )
    group.add_argument(
        "--resume", metavar="RUN_DIR", default=None,
        help="resume a journaled run: restore completed units from "
             "RUN_DIR and run only the remaining work (results are "
             "bit-identical to an uninterrupted run)",
    )


def _open_journal(args: argparse.Namespace, kind: str, config: dict):
    """The run's :class:`RunJournal` per --journal/--resume, or None."""
    from repro.resilience.journal import RunJournal

    run_dir = getattr(args, "resume", None)
    if run_dir:
        journal = RunJournal.resume(run_dir, kind=kind, config=config)
        print(f"resuming {kind} run from {run_dir}: "
              f"{journal.resumed_unit_count} journaled unit(s) restored",
              file=sys.stderr)
        return journal
    run_dir = getattr(args, "journal", None)
    if run_dir:
        return RunJournal.create(run_dir, kind=kind, config=config)
    return None


def _report_interrupt(error: RunInterrupted) -> int:
    """Stderr checkpoint notice for a cleanly interrupted run."""
    journal = error.journal
    signal_name = error.signal_name or "signal"
    units = len(journal) if journal is not None else 0
    print(f"interrupted by {signal_name}: {units} completed unit(s) "
          f"checkpointed", file=sys.stderr)
    if journal is not None:
        print(f"continue with: --resume {journal.run_dir}", file=sys.stderr)
    return EXIT_INTERRUPTED


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--gbw", type=float, default=65.0,
                        help="gain-bandwidth target, MHz (default 65)")
    parser.add_argument("--phase-margin", type=float, default=65.0,
                        help="phase margin target, degrees (default 65)")
    parser.add_argument("--cload", type=float, default=3.0,
                        help="load capacitance, pF (default 3)")
    parser.add_argument("--vdd", type=float, default=3.3,
                        help="supply voltage, V (default 3.3)")


def cmd_table1(args: argparse.Namespace) -> int:
    from repro.core.batch import BatchTask, run_batch
    from repro.core.report import format_table1
    from repro.technology.corners import CORNERS

    specs = _specs_from_args(args)
    if args.corners:
        corners = [name.strip() for name in args.corners.split(",")
                   if name.strip()]
        unknown = sorted(set(corners) - set(CORNERS))
        if unknown:
            print(f"error: unknown corners {unknown} "
                  f"(choose from {list(CORNERS)})", file=sys.stderr)
            return 2
    else:
        corners = [None]
    modes = list(ParasiticMode)
    tasks = [
        BatchTask(kind="case", technology=args.technology, specs=specs,
                  mode=mode.name, corner=corner)
        for corner in corners
        for mode in modes
    ]
    config = {
        "technology": args.technology,
        "specs": dataclasses.asdict(specs),
        "corners": corners,
        "modes": [mode.name for mode in modes],
    }
    try:
        journal = _open_journal(args, "table1", config)
    except JournalError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    for task in tasks:
        print(f"running {task.label} ...", file=sys.stderr)
    try:
        if journal is not None:
            with journal, journal.shutdown_guard():
                batch = run_batch(tasks, jobs=args.jobs, journal=journal)
                journal.complete()
        else:
            batch = run_batch(tasks, jobs=args.jobs)
    except RunInterrupted as error:
        return _report_interrupt(error)
    if batch.jobs > 1:
        print(f"ran {len(tasks)} cases on {batch.jobs} workers",
              file=sys.stderr)
    for block, corner in enumerate(corners):
        results = batch.results[block * len(modes):(block + 1) * len(modes)]
        title = "Table 1" if corner is None else f"Table 1 [{corner}]"
        if block:
            print()
        print(format_table1(results, title=title))
        if args.fingerprint:
            for result in results:
                suffix = "" if corner is None else f" [{corner}]"
                print(f"fingerprint {result.label}{suffix}: "
                      f"{result.fingerprint()}")
    return 0


def cmd_synthesize(args: argparse.Namespace) -> int:
    from contextlib import nullcontext

    from repro.core.synthesis import LayoutOrientedSynthesizer
    from repro.layout.gds import write_gds
    from repro.layout.svg import write_svg
    from repro.resilience.budget import Budget
    from repro.runtime import speculate

    technology = _TECHNOLOGIES[args.technology]()
    specs = _specs_from_args(args)
    budget = (
        Budget.from_seconds(args.deadline) if args.deadline else None
    )
    synthesizer = LayoutOrientedSynthesizer(technology, aspect=args.aspect)
    config = {
        "technology": args.technology,
        "specs": dataclasses.asdict(specs),
        "aspect": args.aspect,
    }
    try:
        journal = _open_journal(args, "synthesize", config)
    except JournalError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    speculation = (
        speculate.session(args.speculate) if args.speculate
        else nullcontext()
    )
    try:
        with speculation:
            if journal is not None:
                with journal, journal.shutdown_guard():
                    outcome = synthesizer.run(
                        specs, mode=ParasiticMode.FULL, generate=True,
                        budget=budget, journal=journal,
                    )
                    journal.complete()
            else:
                outcome = synthesizer.run(
                    specs, mode=ParasiticMode.FULL, generate=True,
                    budget=budget,
                )
    except RunInterrupted as error:
        return _report_interrupt(error)
    except ReproError as error:
        dump_failure(error)
        return 1

    metrics = outcome.sizing.predicted
    status = "converged" if outcome.converged else "DEGRADED"
    print(f"{status} in {outcome.layout_calls} layout calls "
          f"({outcome.elapsed:.1f} s)")
    if args.fingerprint:
        print(f"fingerprint: {outcome.fingerprint()}")
    if outcome.diagnostics:
        print(f"diagnostics: {outcome.diagnostics}", file=sys.stderr)
    print(f"  DC gain       {metrics.dc_gain_db:7.1f} dB")
    print(f"  GBW           {metrics.gbw / 1e6:7.1f} MHz")
    print(f"  phase margin  {metrics.phase_margin_deg:7.1f} deg")
    print(f"  slew rate     {metrics.slew_rate / 1e6:7.1f} V/us")
    print(f"  power         {metrics.power * 1e3:7.2f} mW")
    if outcome.layout is not None and outcome.layout.cell is not None:
        report = outcome.layout.report
        print(f"  layout        {report.width / UM:.1f} x "
              f"{report.height / UM:.1f} um")
    for name in sorted(outcome.sizing.sizes):
        width, length = outcome.sizing.sizes[name]
        info = outcome.feedback.devices[name]
        print(f"    {name:<5} W/L {width / UM:7.1f}/{length / UM:4.2f} um  "
              f"nf={info.nf}")
    if outcome.layout is not None and outcome.layout.cell is not None:
        if args.svg:
            write_svg(outcome.layout.cell, args.svg, scale=8)
            print(f"layout written to {args.svg}", file=sys.stderr)
            print(f"svg: {args.svg}")
        if args.gds:
            write_gds(outcome.layout.cell, args.gds)
            print(f"GDSII written to {args.gds}", file=sys.stderr)
            print(f"gds: {args.gds}")
    if args.verify_corners:
        from repro.sizing.verification import VerificationInterface

        reports = VerificationInterface().verify_corners(
            synthesizer.plan, outcome.sizing, specs
        )
        print("corner verification (stacked ensemble):")
        for name, report in reports.items():
            if report.metrics is None:
                print(f"  {name}  FAIL  ({report.failure_reason})")
                continue
            verdict = "pass" if report.passed else "FAIL"
            failed = [k for k, ok in report.failures().items() if not ok]
            detail = f"  [{', '.join(failed)}]" if failed else ""
            print(f"  {name}  {verdict}  "
                  f"gbw {report.metrics.gbw / 1e6:6.1f} MHz  "
                  f"pm {report.metrics.phase_margin_deg:5.1f} deg{detail}")
    return 0


def cmd_flows(args: argparse.Namespace) -> int:
    from repro.core.batch import BatchTask, run_batch

    specs = _specs_from_args(args)
    tasks = [
        BatchTask(kind="flow", technology=args.technology, specs=specs,
                  variant=variant)
        for variant in ("traditional", "oriented")
    ]
    config = {
        "technology": args.technology,
        "specs": dataclasses.asdict(specs),
        "variants": [task.variant for task in tasks],
    }
    try:
        journal = _open_journal(args, "flows", config)
    except JournalError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        if journal is not None:
            with journal, journal.shutdown_guard():
                batch = run_batch(tasks, jobs=args.jobs, journal=journal)
                journal.complete()
        else:
            batch = run_batch(tasks, jobs=args.jobs)
    except RunInterrupted as error:
        return _report_interrupt(error)
    traditional, oriented = batch.results
    print(f"{'flow':<18}{'rounds':>8}{'time (s)':>10}"
          f"{'GBW (MHz)':>11}{'PM (deg)':>10}")
    print(f"{'traditional':<18}{traditional.full_layout_rounds:>8}"
          f"{traditional.elapsed:>10.1f}"
          f"{traditional.extracted.gbw / 1e6:>11.1f}"
          f"{traditional.extracted.phase_margin_deg:>10.1f}")
    metrics = oriented.sizing.predicted
    print(f"{'layout-oriented':<18}{oriented.layout_calls:>8}"
          f"{oriented.elapsed:>10.1f}"
          f"{metrics.gbw / 1e6:>11.1f}"
          f"{metrics.phase_margin_deg:>10.1f}")
    return 0


def cmd_figure2(args: argparse.Namespace) -> int:
    from repro.layout.folding import (
        DiffusionPosition,
        capacitance_reduction_factor,
    )

    print("Nf    F(a) internal   F(b) external   F(c) odd")
    for nf in range(1, args.max_folds + 1):
        if nf == 1:
            print(f"{nf:<5} {1.0:>13.4f} {1.0:>15.4f} {1.0:>10.4f}")
        elif nf % 2 == 0:
            internal = capacitance_reduction_factor(
                nf, DiffusionPosition.INTERNAL
            )
            external = capacitance_reduction_factor(
                nf, DiffusionPosition.EXTERNAL
            )
            print(f"{nf:<5} {internal:>13.4f} {external:>15.4f} {'-':>10}")
        else:
            odd = capacitance_reduction_factor(
                nf, DiffusionPosition.ALTERNATING
            )
            print(f"{nf:<5} {'-':>13} {'-':>15} {odd:>10.4f}")
    return 0


def cmd_figure3(args: argparse.Namespace) -> int:
    from repro.layout.devices import current_mirror_layout
    from repro.layout.svg import write_svg

    technology = _TECHNOLOGIES[args.technology]()
    mirror = current_mirror_layout(
        technology, "n", {"m1": 1, "m2": 3, "m3": 6},
        unit_width=6 * UM, l=2 * UM,
        drains={"m1": "bias", "m2": "out2", "m3": "out3"},
        gate="bias", source="0", bulk="0",
        currents={"m1": 0.1e-3, "m2": 0.3e-3, "m3": 0.6e-3},
    )
    assert mirror.plan is not None
    print("stack  :", mirror.plan.pattern())
    for device in ("m1", "m2", "m3"):
        print(f"{device}: centroid {mirror.plan.centroid_offset(device):+.2f} "
              f"pitches, orientation balance "
              f"{mirror.plan.orientation_balance(device):+d}")
    if args.svg:
        write_svg(mirror.cell, args.svg, scale=12)
        print(f"layout written to {args.svg}", file=sys.stderr)
        print(f"svg: {args.svg}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    import os

    from repro.perf import (
        append_history,
        check_history_regressions,
        check_regressions,
        format_bench_table,
        load_bench,
        run_benchmarks,
        run_layout_benchmarks,
        run_runtime_benchmarks,
        write_bench,
    )

    if args.repeat < 1:
        print("error: --repeat must be >= 1", file=sys.stderr)
        return 2
    baseline = None
    if args.against:
        try:
            baseline = load_bench(args.against)
        except (OSError, ValueError, KeyError) as error:
            print(f"error: cannot read baseline {args.against!r}: {error}",
                  file=sys.stderr)
            return 2
    json_dir = os.path.dirname(os.path.abspath(args.json))
    if not os.path.isdir(json_dir):
        print(f"error: output directory does not exist: {json_dir}",
              file=sys.stderr)
        return 2
    print("timing legacy vs compiled engines ...", file=sys.stderr)
    results = run_benchmarks(
        repeat=args.repeat,
        include_synthesis=not args.no_synthesis,
    )
    if not args.no_layout:
        print("timing scalar vs vectorized layout path ...", file=sys.stderr)
        results.update(
            run_layout_benchmarks(
                repeat=args.repeat, batch_jobs=args.table1_jobs
            )
        )
    if not args.no_runtime:
        print("timing per-round vs persistent executor runtime ...",
              file=sys.stderr)
        results.update(run_runtime_benchmarks(repeat=args.repeat))
    print(format_bench_table(results))
    write_bench(results, args.json)
    print(f"benchmark record written to {args.json}", file=sys.stderr)
    print(f"bench: {args.json}")
    if args.history:
        try:
            flagged = check_history_regressions(
                results, args.history, threshold=args.max_regression
            )
            append_history(results, args.history)
        except (OSError, ValueError) as error:
            print(f"error: cannot use history {args.history!r}: {error}",
                  file=sys.stderr)
            return 2
        if flagged:
            print(f"run-over-run p50 regressions vs the previous entry of "
                  f"{args.history} (> {args.max_regression:.0%} slower):",
                  file=sys.stderr)
            for name, info in flagged.items():
                print(f"  {name}: {info['baseline_p50_s'] * 1e3:.1f} ms -> "
                      f"{info['fresh_p50_s'] * 1e3:.1f} ms "
                      f"({info['ratio']:.2f}x)", file=sys.stderr)
        print(f"history appended to {args.history}", file=sys.stderr)
    if baseline is not None:
        skipped: list = []
        regressions = check_regressions(
            results, baseline, threshold=args.max_regression,
            skipped=skipped,
        )
        if skipped:
            print(f"bench gate skipped {len(skipped)} one-sided "
                  f"entr{'y' if len(skipped) == 1 else 'ies'}: "
                  f"{', '.join(skipped)}", file=sys.stderr)
        if regressions:
            print(f"performance regressions vs {args.against} "
                  f"(> {args.max_regression:.0%} slower at p50):",
                  file=sys.stderr)
            for name, info in regressions.items():
                print(f"  {name}: {info['baseline_p50_s'] * 1e3:.1f} ms -> "
                      f"{info['fresh_p50_s'] * 1e3:.1f} ms "
                      f"({info['ratio']:.2f}x)", file=sys.stderr)
            return 1
        print(f"no compiled-path regressions vs {args.against} "
              f"(threshold {args.max_regression:.0%})", file=sys.stderr)
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.telemetry import read_jsonl, summarize
    from repro.telemetry.profile import (
        collapsed_stacks,
        format_collapsed,
        format_profile_table,
        profile_spans,
    )

    try:
        records = read_jsonl(args.file)
    except (OSError, ValueError) as error:
        print(f"error: cannot read trace {args.file!r}: {error}",
              file=sys.stderr)
        return 2
    roots = summarize(records).roots
    if not roots:
        print(f"error: trace {args.file!r} has no spans to profile",
              file=sys.stderr)
        return 2
    rows = profile_spans(roots)
    wall = sum(root.dur for root in roots)
    # Write the artifact before touching stdout so a closed pipe
    # (profile ... | head) cannot lose the collapsed stacks.
    if args.collapsed:
        stacks = collapsed_stacks(roots)
        with open(args.collapsed, "w", encoding="utf-8") as handle:
            handle.write(format_collapsed(stacks) + "\n")
        print(f"collapsed stacks written to {args.collapsed} "
              f"({len(stacks)} unique stacks; feed to flamegraph.pl)",
              file=sys.stderr)
    print(format_profile_table(rows, top=args.top, wall_s=wall or None))
    if args.collapsed:
        print(f"collapsed: {args.collapsed}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.telemetry import read_jsonl, summarize

    try:
        records = read_jsonl(args.file)
    except (OSError, ValueError) as error:
        print(f"error: cannot read trace {args.file!r}: {error}",
              file=sys.stderr)
        return 2
    summary = summarize(records)
    if args.json:
        print(summary.format_json())
    else:
        print(summary.format_tree())
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.technology.evaluation import (
        TechnologyEvaluator,
        rank_technologies,
    )

    technologies = [factory() for factory in _TECHNOLOGIES.values()]
    for technology in technologies:
        print(TechnologyEvaluator(technology).report().format())
        print()
    print(f"ranking for GBW = {args.gbw:.0f} MHz:")
    for technology, headroom in rank_technologies(
        technologies, args.gbw * 1e6
    ):
        print(f"  {technology.name:<16} fT headroom {headroom:8.1f}x")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Layout-oriented analog synthesis (DATE 2000 "
                    "reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    table1 = subparsers.add_parser("table1", help="reproduce Table 1")
    _add_technology_argument(table1)
    _add_spec_arguments(table1)
    table1.add_argument("--jobs", type=int, default=1,
                        help="run cases concurrently on N worker processes "
                             "(results are bit-identical to --jobs 1)")
    table1.add_argument("--corners", default=None, metavar="NAMES",
                        help="comma-separated process corners "
                             "(tt,ss,ff,sf,fs); one table per corner")
    table1.add_argument("--fingerprint", action="store_true",
                        help="print a deterministic content hash per case "
                             "(excludes timings; for determinism checks)")
    _add_trace_argument(table1)
    _add_monitor_argument(table1)
    _add_metrics_argument(table1)
    _add_journal_arguments(table1)
    _add_runtime_arguments(table1)
    table1.set_defaults(func=cmd_table1)

    synthesize = subparsers.add_parser(
        "synthesize", help="layout-oriented synthesis (case 4)"
    )
    _add_technology_argument(synthesize)
    _add_spec_arguments(synthesize)
    synthesize.add_argument("--aspect", type=float, default=1.0,
                            help="layout aspect ratio H/W (default 1.0)")
    synthesize.add_argument("--deadline", type=float, default=None,
                            help="wall-clock budget in seconds; expiry "
                                 "aborts at a round boundary with a "
                                 "diagnostics dump")
    synthesize.add_argument("--svg", help="write the layout as SVG")
    synthesize.add_argument("--gds", help="write the layout as GDSII")
    synthesize.add_argument(
        "--verify-corners", action="store_true",
        help="re-verify the synthesized sizing at the five process "
             "corners as one stacked ensemble measurement")
    synthesize.add_argument(
        "--fingerprint", action="store_true",
        help="print the outcome's content fingerprint (a short digest of "
             "sizes, feedback and layout; identical runs print identical "
             "fingerprints regardless of caches or speculation)")
    synthesize.add_argument(
        "--speculate", type=int, default=0, metavar="N",
        help="evaluate next-round layout estimates speculatively on N "
             "pool workers while the current round sizes (results are "
             "bit-identical; mis-speculations are kept as artifacts)")
    _add_trace_argument(synthesize)
    _add_monitor_argument(synthesize)
    _add_metrics_argument(synthesize)
    _add_journal_arguments(synthesize)
    _add_runtime_arguments(synthesize, pool=False)
    synthesize.set_defaults(func=cmd_synthesize)

    flows = subparsers.add_parser(
        "flows", help="traditional vs layout-oriented flow"
    )
    _add_technology_argument(flows)
    _add_spec_arguments(flows)
    flows.add_argument("--jobs", type=int, default=1,
                       help="run the two flows concurrently on N worker "
                            "processes")
    _add_trace_argument(flows)
    _add_monitor_argument(flows)
    _add_metrics_argument(flows)
    _add_journal_arguments(flows)
    _add_runtime_arguments(flows)
    flows.set_defaults(func=cmd_flows)

    figure2 = subparsers.add_parser(
        "figure2", help="capacitance reduction factor curves"
    )
    figure2.add_argument("--max-folds", type=int, default=20)
    figure2.set_defaults(func=cmd_figure2)

    figure3 = subparsers.add_parser(
        "figure3", help="the 1:3:6 current-mirror stack"
    )
    _add_technology_argument(figure3)
    figure3.add_argument("--svg", help="write the layout as SVG")
    figure3.set_defaults(func=cmd_figure3)

    bench = subparsers.add_parser(
        "bench", help="time the legacy vs compiled analysis engines"
    )
    bench.add_argument("--repeat", type=int, default=3,
                       help="best-of repetitions per workload (default 3)")
    bench.add_argument("--no-synthesis", action="store_true",
                       help="skip the end-to-end synthesis benchmark")
    bench.add_argument("--no-layout", action="store_true",
                       help="skip the layout-path benchmarks (extraction, "
                            "DRC)")
    bench.add_argument("--no-runtime", action="store_true",
                       help="skip the executor-runtime benchmarks "
                            "(persistent pool, shared memory, artifact "
                            "cache)")
    bench.add_argument("--table1-jobs", type=int, default=0, metavar="N",
                       help="also time a serial vs --jobs N Table-1 batch "
                            "(needs a multi-core host; default: skip)")
    bench.add_argument(
        "--against", default=None, metavar="PATH",
        help="baseline bench JSON to compare against; exit 1 if any "
             "shared compiled entry regresses past --max-regression")
    bench.add_argument(
        "--max-regression", type=float, default=0.25, metavar="FRACTION",
        help="allowed compiled-p50 slowdown vs --against "
             "(default 0.25 = 25%%)")
    bench.add_argument("--json", default="BENCH_analysis.json",
                       help="output record path "
                            "(default BENCH_analysis.json)")
    bench.add_argument(
        "--history", default=None, metavar="FILE",
        help="append this run to a JSONL bench history and flag "
             "run-over-run p50 regressions vs the previous entry "
             "(informational; --against remains the hard gate)")
    bench.add_argument(
        "--no-incremental", action="store_true",
        help="run the suite with the differential caches globally off "
             "(the *_incremental entries still flip the switch per "
             "column)")
    _add_trace_argument(bench)
    bench.set_defaults(func=cmd_bench)

    trace = subparsers.add_parser(
        "trace", help="replay a JSONL telemetry trace"
    )
    trace.add_argument("file", help="trace file written by --trace")
    trace.add_argument("--json", action="store_true",
                       help="emit the summary as JSON instead of a tree")
    trace.set_defaults(func=cmd_trace)

    profile = subparsers.add_parser(
        "profile",
        help="profile a JSONL telemetry trace (self-time per span name)",
    )
    profile.add_argument("file", help="trace file written by --trace")
    profile.add_argument("--top", type=int, default=None, metavar="N",
                         help="only the N hottest rows (by self-time)")
    profile.add_argument(
        "--collapsed", default=None, metavar="FILE",
        help="also write flamegraph-collapsed 'stack;path count' lines "
             "to FILE (input for flamegraph.pl / speedscope)")
    profile.set_defaults(func=cmd_profile)

    evaluate = subparsers.add_parser(
        "evaluate", help="characterise and rank the bundled technologies"
    )
    evaluate.add_argument("--gbw", type=float, default=65.0,
                          help="GBW target for the ranking, MHz")
    evaluate.set_defaults(func=cmd_evaluate)

    return parser


def main(argv: Optional[list] = None) -> int:
    from repro.resilience import faults

    # The CI kill-resume smoke job (and any operator) can arm fault
    # sites from the environment, e.g.
    # REPRO_FAULTS="process.kill:at=2,action=crash".
    faults.arm_from_env()
    # Each CLI invocation is its own process in real use; in-process
    # callers (tests, scripts calling main() repeatedly) share the
    # module-level differential stores, which would make a later
    # invocation's trace and timings reflect an earlier one's work.
    # Start every invocation cold so one `main()` call behaves like one
    # process.
    from repro.layout import incremental

    incremental.clear()
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_runtime(args)
    trace_path = getattr(args, "trace", None)
    monitor_port = getattr(args, "monitor", None)
    metrics_path = getattr(args, "metrics", None)
    if not trace_path and monitor_port is None and not metrics_path:
        return args.func(args)

    from contextlib import ExitStack

    from repro import telemetry
    from repro.ioutil import atomic_write
    from repro.telemetry import metrics as metrics_mod
    from repro.telemetry import monitor as monitor_mod

    # --monitor and --metrics imply a tracer even without --trace: the
    # registry is populated from the tracer's counter/gauge mirror, so
    # /metrics (and the --metrics snapshot) would be empty with no
    # tracer armed.  Observation only — results are bit-identical with
    # or without any of these flags.
    name = f"cli.{args.command}"
    tracer = telemetry.Tracer()
    with ExitStack() as stack:
        if monitor_port is not None or metrics_path:
            stack.enter_context(metrics_mod.collecting(fresh=True))
        if monitor_port is not None:
            run_monitor = monitor_mod.RunMonitor(
                label=args.command,
                port=None if monitor_port < 0 else monitor_port,
            )
            stack.enter_context(run_monitor)
            if run_monitor.port is not None:
                print(f"monitor: http://127.0.0.1:{run_monitor.port}/status "
                      f"(and /metrics)", file=sys.stderr)
        try:
            with tracer.activate(), tracer.span(name):
                code = args.func(args)
        finally:
            if trace_path:
                # Partial traces are still replayable; export them even
                # when the command dies mid-run.  A resumed run appends a
                # new trace segment instead of erasing the original legs.
                tracer.write_jsonl(
                    trace_path, name=name,
                    append=bool(getattr(args, "resume", None)),
                )
                print(f"trace written to {trace_path}", file=sys.stderr)
            if metrics_path:
                # Snapshot before collecting() pops the registry; a run
                # that died mid-way still leaves a usable snapshot.
                atomic_write(
                    metrics_path, metrics_mod.registry().to_prometheus()
                )
                print(f"metrics written to {metrics_path}",
                      file=sys.stderr)
    if trace_path:
        print(f"trace: {trace_path}")
    if metrics_path:
        print(f"metrics: {metrics_path}")
    return code


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pipe (e.g. `| head`) closed early: not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
