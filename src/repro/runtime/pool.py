"""Process-wide persistent executor and the shared dispatch engine.

Every parallel entry point in the stack (``table1 --jobs``, ``flows
--jobs``, Monte-Carlo shards) used to build a fresh
``ProcessPoolExecutor`` per run — and per retry round — so dispatch cost
was dominated by process spawn plus the numpy/repro import in every
worker.  This module hoists all of that into one place:

- :func:`acquire` hands out a lease on a process-wide executor that is
  created once and reused across runs (``runtime.pool.reuse`` counts the
  wins).  A lease over a pool that saw a timeout or a worker death is
  discarded — a broken pool must never be reused — and the next round
  acquires a fresh one, which is exactly the old per-round behavior.
  Disable with ``--no-persistent-pool`` / ``REPRO_NO_PERSISTENT_POOL``
  (or scoped, with :func:`persistent`) to get a dedicated pool per
  round again; results are bit-identical either way because worker
  count and pool lifetime never feed back into the computation.

- :func:`run_dispatch` is the one dispatch loop both
  :mod:`repro.core.batch` and :mod:`repro.analysis.montecarlo` are thin
  clients of.  It preserves the shard-recovery contract those modules
  grew independently: pickle pre-validation stays client-side (before
  any worker spawns), a unit whose worker dies or times out is
  resubmitted a bounded number of times and then run in-process, the
  journal drain harvests completed futures on SIGINT/SIGTERM before
  :class:`~repro.errors.RunInterrupted` propagates, and budget checks
  run at round and fallback boundaries.

- :func:`resident_object` is the worker-side content-keyed cache:
  instead of re-shipping and recompiling a testbench per shard, tasks
  carry a content hash plus an optional payload.  A worker that already
  holds the compiled state under that key skips the rebuild; a worker
  asked to work without a payload it does not hold answers with a
  :class:`CacheMiss` sentinel and the dispatcher resubmits with the
  payload attached (an uncounted round: cache misses are not failures).
"""

from __future__ import annotations

import atexit
import os
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro import telemetry
from repro.resilience import faults
from repro.resilience.budget import Budget
from repro.resilience.journal import RunJournal, ignore_sigint
from repro.telemetry import metrics

#: Environment kill-switch: any non-empty value disables pool reuse.
NO_PERSISTENT_POOL_ENV = "REPRO_NO_PERSISTENT_POOL"


# --------------------------------------------------------------------------
# Persistent executor


class _PoolState:
    """The process-wide executor plus its payload-shipping ledger."""

    __slots__ = ("executor", "max_workers", "generation", "shipped")

    def __init__(self, executor: Any, max_workers: int, generation: int):
        self.executor = executor
        self.max_workers = max_workers
        self.generation = generation
        #: Content keys whose payload at least one worker of this pool
        #: generation has acknowledged (see :meth:`PoolLease.mark_shipped`).
        self.shipped: Set[str] = set()


_STATE: Optional[_PoolState] = None
_GENERATION = 0
_DEFAULT: Optional[bool] = None
_OVERRIDE: List[bool] = []


def persistent_enabled() -> bool:
    """Whether :func:`acquire` reuses the process-wide executor."""
    if _OVERRIDE:
        return _OVERRIDE[-1]
    if _DEFAULT is not None:
        return _DEFAULT
    return not os.environ.get(NO_PERSISTENT_POOL_ENV)


def set_persistent(flag: Optional[bool]) -> None:
    """Set the process-wide default (``None`` restores the env check)."""
    global _DEFAULT
    _DEFAULT = flag


@contextmanager
def persistent(flag: bool) -> Iterator[None]:
    """Scoped override of :func:`persistent_enabled` (tests, benchmarks)."""
    _OVERRIDE.append(bool(flag))
    try:
        yield
    finally:
        _OVERRIDE.pop()


@dataclass
class PoolLease:
    """One dispatch round's claim on an executor.

    A lease over the persistent pool leaves it warm on :meth:`release`;
    a dedicated lease (persistence disabled) shuts its pool down, which
    is the old per-round lifecycle.  :meth:`discard` tears the pool down
    in either mode — mandatory after a timeout or worker death.
    """

    executor: Any
    persistent: bool
    state: Optional[_PoolState] = None
    _local_shipped: Set[str] = field(default_factory=set)

    @property
    def generation(self) -> int:
        return self.state.generation if self.state is not None else -1

    def _shipped(self) -> Set[str]:
        return (
            self.state.shipped if self.state is not None
            else self._local_shipped
        )

    def key_shipped(self, key: str) -> bool:
        """Whether this pool's workers have seen ``key``'s payload."""
        return key in self._shipped()

    def mark_shipped(self, key: str) -> None:
        self._shipped().add(key)

    def unship(self, key: str) -> None:
        """Forget ``key`` (a worker reported a :class:`CacheMiss`)."""
        self._shipped().discard(key)

    def release(self, wait: bool = True) -> None:
        """Return the lease after a clean round."""
        if self.persistent:
            return
        self.executor.shutdown(wait=wait, cancel_futures=True)

    def discard(self, wait: bool) -> None:
        """Tear the pool down (timeout, worker death, or propagating
        error); the next :func:`acquire` starts a fresh generation."""
        global _STATE
        try:
            self.executor.shutdown(wait=wait, cancel_futures=True)
        finally:
            if self.state is not None and _STATE is self.state:
                _STATE = None


def acquire(max_workers: int) -> PoolLease:
    """Lease an executor with at least ``max_workers`` workers.

    Reuses the process-wide pool when persistence is enabled and the
    live pool is big enough; otherwise (first call, pool too small, or
    persistence disabled) creates one.  Workers always ignore SIGINT so
    Ctrl-C — delivered to the whole process group — leaves the pool
    intact for the parent's journal drain.
    """
    global _STATE, _GENERATION
    from concurrent.futures import ProcessPoolExecutor

    if not persistent_enabled():
        return PoolLease(
            executor=ProcessPoolExecutor(
                max_workers=max_workers, initializer=ignore_sigint
            ),
            persistent=False,
        )
    state = _STATE
    if (
        state is not None
        and not getattr(state.executor, "_broken", False)
        and state.max_workers >= max_workers
    ):
        telemetry.count("runtime.pool.reuse")
        return PoolLease(
            executor=state.executor, persistent=True, state=state
        )
    if state is not None:
        _STATE = None
        state.executor.shutdown(wait=True, cancel_futures=True)
    _GENERATION += 1
    executor = ProcessPoolExecutor(
        max_workers=max_workers, initializer=ignore_sigint
    )
    _STATE = _PoolState(executor, max_workers, _GENERATION)
    telemetry.count("runtime.pool.create")
    return PoolLease(executor=executor, persistent=True, state=_STATE)


def shutdown(wait: bool = True) -> None:
    """Shut down the persistent executor (atexit, tests, benchmarks)."""
    global _STATE
    state = _STATE
    _STATE = None
    if state is not None:
        state.executor.shutdown(wait=wait, cancel_futures=True)


def pool_generation() -> int:
    """Generation of the live persistent pool (0 when none exists)."""
    return _STATE.generation if _STATE is not None else 0


atexit.register(shutdown)


# --------------------------------------------------------------------------
# Worker-resident content-keyed object cache


class CacheMiss:
    """Picklable worker answer: "I don't hold ``key``, resend the payload".

    Crossing the pool boundary as a *result* (never an exception) keeps
    the miss distinct from every failure path the dispatcher recovers
    from.
    """

    __slots__ = ("key",)

    def __init__(self, key: str):
        self.key = key

    def __reduce__(self):
        return (CacheMiss, (self.key,))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CacheMiss({self.key!r})"


class NeedPayload(Exception):
    """Raised worker-side by :func:`resident_object` on a cold cache.

    Worker entry points convert it into a returned :class:`CacheMiss`;
    it never crosses the process boundary itself.
    """

    def __init__(self, key: str):
        super().__init__(key)
        self.key = key


#: Compiled state cached per worker process, keyed on content hashes.
#: Bounded: entries are distinct testbench/measure payloads, a handful
#: per realistic session, but a runaway caller must not grow worker RSS.
_RESIDENT: "OrderedDict[str, Any]" = OrderedDict()
_RESIDENT_CAP = 8


def resident_object(
    key: str, payload: Optional[bytes], build: Callable[[bytes], Any]
) -> Any:
    """The worker-resident object under ``key``, building it on demand.

    ``payload`` is the serialized construction recipe (or ``None`` when
    the parent believes this pool already holds the object); ``build``
    turns the raw bytes into the resident state.  Raises
    :class:`NeedPayload` when asked to build without a payload.
    """
    entry = _RESIDENT.get(key)
    if entry is not None:
        _RESIDENT.move_to_end(key)
        telemetry.count("runtime.resident.hit")
        return entry
    if payload is None:
        raise NeedPayload(key)
    telemetry.count("runtime.resident.miss")
    entry = build(payload)
    _RESIDENT[key] = entry
    while len(_RESIDENT) > _RESIDENT_CAP:
        _RESIDENT.popitem(last=False)
    return entry


def resident_cache_size() -> int:
    return len(_RESIDENT)


def clear_resident() -> None:
    _RESIDENT.clear()


# --------------------------------------------------------------------------
# The shared dispatch engine


@dataclass(frozen=True)
class DispatchSites:
    """Per-caller names for the dispatch engine's instrumentation and
    checkpoint sites, so batch and Monte-Carlo keep their established
    budget/journal/fault vocabularies through the shared loop."""

    fault_site: str
    """Fault-injection site fired per submission (``faults.fire``)."""
    budget_round: str
    """Budget checkpoint at the top of every dispatch round."""
    drain_site: str
    """Journal interrupt site after draining in-flight futures."""
    fallback_check: str
    """Journal interrupt site before each in-process fallback unit."""
    budget_fallback: str
    """Budget checkpoint before each in-process fallback unit."""
    unit_kw: str
    """Keyword naming the unit index in fallback budget checks."""
    transport_shutdown_wait: bool = False
    """Drain the pool before raising a transport (result-pickling)
    error — Monte-Carlo's historical behavior; batch fails immediately."""


def run_dispatch(
    client: Any,
    pending: List[int],
    jobs: int,
    unit_timeout: Optional[float],
    max_retries: int,
    budget: Optional[Budget],
    journal: Optional[RunJournal],
    sites: DispatchSites,
) -> None:
    """Run ``pending`` unit indices through the pool with bounded recovery.

    The client owns unit semantics; the engine owns the lifecycle.  A
    client provides::

        submit(executor, lease, i, crash, resend) -> Future
        accept(i, outcome, submit_time)   # harvest one result
        has_result(i) -> bool             # for the journal drain
        begin_attempt(i)                  # attempts ledger
        note_timeout(i, timeout)          # status + telemetry
        note_death(i, error)              # status + telemetry
        transport_exceptions              # tuple caught as fail-fast
        transport_error(i, error) -> Exception
        fallback(i)                       # in-process recovery

    A unit whose worker dies or times out is resubmitted on a fresh pool
    up to ``max_retries`` times and then handed to ``fallback``.  A
    worker answering :class:`CacheMiss` gets its unit resubmitted with
    the payload forced — on the same attempt, without consuming a retry
    round, because a cold cache is not a failure.  Whole-dispatch wall
    time lands in the ``runtime.dispatch.seconds`` histogram.
    """
    from concurrent.futures import BrokenExecutor
    from concurrent.futures import TimeoutError as FuturesTimeoutError

    tracer = telemetry.current()
    t_start = time.perf_counter()
    rounds_used = 0
    resend: Set[int] = set()
    try:
        while pending and rounds_used <= max_retries:
            if any(i not in resend for i in pending):
                rounds_used += 1
            if budget is not None:
                budget.check(sites.budget_round, pending=len(pending))
            retry: List[int] = []
            next_resend: Set[int] = set()
            lease = acquire(min(jobs, len(pending)))
            pool = lease.executor
            had_timeout = False
            had_death = False
            futures: Dict[int, Any] = {}
            submit_times: Dict[int, float] = {}
            try:
                broken_at_submit = False
                for i in pending:
                    if broken_at_submit:
                        # The pool broke mid-submission; this unit was
                        # never attempted — carry it to the next round.
                        retry.append(i)
                        if i in resend:
                            next_resend.add(i)
                        continue
                    crash = (
                        faults.fire(sites.fault_site, index=i) is not None
                    )
                    if i not in resend:
                        client.begin_attempt(i)
                    if tracer is not None:
                        submit_times[i] = tracer.now()
                    try:
                        futures[i] = client.submit(
                            pool, lease, i, crash, i in resend
                        )
                    except (BrokenExecutor, OSError) as error:
                        # Only a *warm* pool can break while we are
                        # still submitting: an earlier unit's worker is
                        # already executing and died.  The old per-round
                        # cold pools could never hit this — recover the
                        # same way a harvest-time death does.
                        broken_at_submit = True
                        had_death = True
                        client.note_death(i, error)
                        retry.append(i)
                for i, future in futures.items():
                    if journal is not None and journal.interrupted:
                        # Shutdown signal: drain in-flight workers,
                        # journal every result that made it home, then
                        # stop cleanly.
                        pool.shutdown(wait=True, cancel_futures=True)
                        for j, done in futures.items():
                            if (
                                not client.has_result(j)
                                and done.done()
                                and not done.cancelled()
                                and done.exception() is None
                            ):
                                outcome = done.result()
                                if not isinstance(outcome, CacheMiss):
                                    client.accept(
                                        j, outcome, submit_times.get(j)
                                    )
                        journal.check_interrupt(sites.drain_site)
                    try:
                        outcome = future.result(timeout=unit_timeout)
                        if isinstance(outcome, CacheMiss):
                            lease.unship(outcome.key)
                            telemetry.count("runtime.resident.resend")
                            next_resend.add(i)
                            retry.append(i)
                            continue
                        client.accept(i, outcome, submit_times.get(i))
                    except client.transport_exceptions as error:
                        # A result that cannot cross back can never
                        # succeed on a retry: fail fast with context.
                        if sites.transport_shutdown_wait:
                            pool.shutdown(wait=True, cancel_futures=True)
                        raise client.transport_error(i, error) from error
                    except FuturesTimeoutError:
                        had_timeout = True
                        client.note_timeout(i, unit_timeout)
                        retry.append(i)
                    except (BrokenExecutor, OSError, EOFError) as error:
                        had_death = True
                        client.note_death(i, error)
                        retry.append(i)
            except BaseException:
                # A unit-level error propagates to the caller like a
                # serial run's would; don't leave workers running behind
                # it, and never hand a possibly-wedged pool to the next
                # dispatch.
                lease.discard(wait=False)
                raise
            if had_timeout:
                # A timed-out worker may still be running; don't block
                # on it, and don't reuse a pool with a stale unit.
                lease.discard(wait=False)
            elif had_death:
                lease.discard(wait=True)
            else:
                lease.release()
            pending = sorted(retry)
            resend = next_resend
    finally:
        metrics.observe(
            "runtime.dispatch.seconds", time.perf_counter() - t_start
        )

    # Bounded retries exhausted: bring the stragglers home in-process.
    for i in pending:
        if journal is not None:
            journal.check_interrupt(sites.fallback_check)
        if budget is not None:
            budget.check(sites.budget_fallback, **{sites.unit_kw: i})
        client.begin_attempt(i)
        client.fallback(i)
