"""Persistent executor runtime (DESIGN.md §10).

Three layers that amortize dispatch cost across runs in one process and
across processes on one machine:

- :mod:`repro.runtime.pool` — a process-wide persistent
  ``ProcessPoolExecutor`` plus the shared dispatch engine (pickle
  pre-validation, bounded resubmission, in-process fallback, journal
  drain) that ``core/batch.py`` and ``analysis/montecarlo.py`` are thin
  clients of, and the worker-resident content-keyed object cache.
- :mod:`repro.runtime.shm` — shared-memory transport for pre-drawn
  Monte-Carlo sample matrices with guaranteed unlink on success,
  failure, and signal-driven shutdown.
- :mod:`repro.runtime.artifacts` — a content-addressed on-disk cache
  for layout parasitic estimates and case results, so a repeated
  ``table1`` run is served warm.

Every layer degrades cleanly to the previous per-run behavior when
disabled (``--no-persistent-pool``, ``REPRO_NO_SHM``, no
``--cache-dir``), and results are bit-identical either way.
"""

from repro.runtime import artifacts, pool, shm

__all__ = ["artifacts", "pool", "shm"]
