"""Shared-memory transport for pre-drawn Monte-Carlo sample matrices.

``run_monte_carlo`` draws every vth/beta mismatch row before any work is
scheduled (that is what makes results independent of worker count).
Without this module each shard's rows are pickled into the pool's call
queue — ``runs x devices x 16`` bytes copied per dispatch, again on
every retry round.  Here the parent publishes both matrices **once**
into a single ``multiprocessing.shared_memory`` segment and shards
receive tiny :class:`ShmRef` descriptors; a worker attaches, copies its
``[lo, hi)`` row slice out, and detaches.

Ownership is strictly parent-side: the process that called
:func:`publish` closes *and unlinks* the segment, in a ``finally``, so
clean runs, failing runs and journal-guarded SIGINT/SIGTERM shutdowns
(``RunInterrupted`` unwinds through the ``finally``) all release it.
Two backstops cover abnormal exits: an ``atexit`` sweep, and a
:func:`repro.resilience.faults.register_kill_hook` callback so a
``REPRO_FAULTS`` ``process.kill`` crash (``os._exit`` — no ``finally``,
no ``atexit``) still unlinks before the process dies.  A SIGKILL the
process never sees is mopped up by the stdlib ``resource_tracker``,
which outlives the parent precisely for this case.

Disable with ``REPRO_NO_SHM`` (or scoped, with :func:`use`); transport
choice never changes results because workers compute on value-identical
row copies either way.
"""

from __future__ import annotations

import atexit
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry

#: Environment kill-switch: any non-empty value disables the transport.
NO_SHM_ENV = "REPRO_NO_SHM"


class ShmError(RuntimeError):
    """Shared-memory publication failed (caller falls back to pickling)."""


@dataclass(frozen=True)
class ShmRef:
    """Picklable descriptor of one matrix inside a published segment."""

    name: str
    shape: Tuple[int, ...]
    dtype: str
    offset: int


#: Segments this process created and has not yet unlinked.
_LIVE: Dict[str, Any] = {}
_HOOKS_INSTALLED = False
_AVAILABLE: Optional[bool] = None
_OVERRIDE: List[bool] = []


def _emergency_cleanup() -> None:
    """Unlink every live segment; safe to call multiple times."""
    for name in list(_LIVE):
        segment = _LIVE.pop(name, None)
        if segment is None:
            continue
        try:
            segment.close()
        except Exception:  # noqa: BLE001 - emergency path, best effort
            pass
        try:
            segment.unlink()
        except Exception:  # noqa: BLE001
            pass


def _install_hooks() -> None:
    global _HOOKS_INSTALLED
    if _HOOKS_INSTALLED:
        return
    _HOOKS_INSTALLED = True
    atexit.register(_emergency_cleanup)
    from repro.resilience import faults

    faults.register_kill_hook(_emergency_cleanup)


def available() -> bool:
    """Whether this platform can create shared-memory segments (probed
    once with a 1-byte segment; /dev/shm may be absent or read-only in
    minimal containers)."""
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(create=True, size=1)
            probe.close()
            probe.unlink()
            _AVAILABLE = True
        except Exception:  # noqa: BLE001 - any failure means "no"
            _AVAILABLE = False
    return _AVAILABLE


def enabled() -> bool:
    """Whether Monte-Carlo dispatch should publish samples over shm."""
    if _OVERRIDE:
        return _OVERRIDE[-1] and available()
    if os.environ.get(NO_SHM_ENV):
        return False
    return available()


@contextmanager
def use(flag: bool) -> Iterator[None]:
    """Scoped override of :func:`enabled` (tests, benchmarks)."""
    _OVERRIDE.append(bool(flag))
    try:
        yield
    finally:
        _OVERRIDE.pop()


class SharedSamples:
    """One parent-owned segment holding a set of published matrices."""

    def __init__(self, arrays: Sequence[np.ndarray]):
        from multiprocessing import shared_memory

        arrays = [np.ascontiguousarray(a) for a in arrays]
        total = sum(int(a.nbytes) for a in arrays)
        try:
            self._segment = shared_memory.SharedMemory(
                create=True, size=max(1, total)
            )
        except Exception as error:  # noqa: BLE001 - map to one fallback
            raise ShmError(f"could not create segment: {error!r}") from error
        _install_hooks()
        _LIVE[self._segment.name] = self._segment
        self._refs: List[ShmRef] = []
        offset = 0
        for a in arrays:
            view = np.ndarray(
                a.shape, dtype=a.dtype, buffer=self._segment.buf,
                offset=offset,
            )
            view[...] = a
            del view
            self._refs.append(
                ShmRef(self._segment.name, tuple(a.shape), a.dtype.str,
                       offset)
            )
            offset += int(a.nbytes)
        telemetry.count("runtime.shm.bytes", total)
        telemetry.count("runtime.shm.segments")

    def refs(self) -> List[ShmRef]:
        return list(self._refs)

    def close(self) -> None:
        """Close and unlink the segment (idempotent)."""
        segment = getattr(self, "_segment", None)
        if segment is None:
            return
        self._segment = None
        _LIVE.pop(segment.name, None)
        try:
            segment.close()
        finally:
            try:
                segment.unlink()
            except FileNotFoundError:  # already swept
                pass

    def __enter__(self) -> "SharedSamples":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def publish(*arrays: np.ndarray) -> SharedSamples:
    """Publish ``arrays`` into one segment owned by the caller.

    Raises :class:`ShmError` when the platform refuses; callers treat
    that as "use the pickled-rows transport".
    """
    return SharedSamples(arrays)


def read(
    ref: ShmRef, lo: Optional[int] = None, hi: Optional[int] = None
) -> np.ndarray:
    """Copy ``ref``'s matrix (or its ``[lo, hi)`` row slice) out of shm.

    Worker-side helper: attaches, copies, detaches — the returned array
    owns its memory, so the parent may unlink the segment the moment the
    run completes without invalidating anything a worker returned.
    """
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=ref.name)
    try:
        view = np.ndarray(
            ref.shape, dtype=np.dtype(ref.dtype), buffer=segment.buf,
            offset=ref.offset,
        )
        rows = view if lo is None else view[lo:hi]
        out = np.array(rows, copy=True)
        del rows, view
    finally:
        segment.close()
    return out


def live_segments() -> List[str]:
    """Names of segments this process currently owns (tests)."""
    return sorted(_LIVE)
