"""Speculative candidate evaluation on the persistent pool.

The synthesis loop is serial by construction — round *r+1*'s sizing
needs round *r*'s parasitic report — but every round's work is a pure
function of content-keyed inputs.  That makes the next round's likely
layout estimate safe to compute *ahead of need* on the persistent
executor (:mod:`repro.runtime.pool`): a worker replays the sizing from
the same specs, feedback and warm-start snapshot the main thread is
about to use (bit-identical, as the shared-memory Monte-Carlo dispatch
already relies on) and returns the finished estimate under the same
content key the main thread will derive.

Determinism rules:

* a speculative result is only ever consumed through its content key —
  if the worker's predicted inputs diverged from the main thread's
  actual inputs (a degraded round, a budget clamp), the key misses and
  the main thread computes locally, so speculation can change
  wall-clock but never a bit of output, for any worker count;
* mis-speculation is never wasted: every result that lands is also
  written through to the cross-run artifact cache
  (:mod:`repro.runtime.artifacts`) when one is active, so a resumed or
  re-run flow gets it for free;
* a failed or dead speculative task is dropped silently — the main
  thread's local computation is always the fallback.

Counters: ``runtime.speculate.hit`` (a consumed speculative result),
``runtime.speculate.waste`` (landed or in-flight results never
consumed, counted when the session closes).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro import telemetry
from repro.runtime import pool

#: Stack of open sessions (innermost last), mirroring warmstart.
_sessions: List["SpeculationSession"] = []


class SpeculationSession:
    """One synthesis run's claim on speculative workers.

    ``submit(fn, payload)`` dispatches ``fn(payload)`` — a picklable
    module-level function returning ``(key, value)`` — to the leased
    executor.  ``collect(key, wait_s)`` returns the value for ``key``
    if a speculative task produced it (optionally waiting for in-flight
    tasks), else ``None``.
    """

    def __init__(self, workers: int, wait_s: float = 30.0):
        self.workers = workers
        self.wait_s = wait_s
        self._lease: Optional[pool.PoolLease] = None
        self._futures: List[Any] = []
        self._landed: Dict[Any, Any] = {}
        self._consumed: set = set()
        self._lander: Optional[Callable[[Any, Any], None]] = None
        self.hits = 0
        self.wastes = 0

    def set_lander(self, fn: Callable[[Any, Any], None]) -> None:
        """Install the write-through callback for landed results."""
        self._lander = fn

    def submit(self, fn: Callable[[Any], Tuple[Any, Any]], payload: Any) -> bool:
        """Dispatch one speculative task; False when the pool is broken."""
        if self._lease is None:
            try:
                self._lease = pool.acquire(self.workers)
            except Exception:
                return False
        try:
            future = self._lease.executor.submit(fn, payload)
        except Exception:
            return False
        self._futures.append(future)
        telemetry.count("runtime.speculate.submit")
        return True

    def _absorb(self, future: Any) -> None:
        """Land one finished future's (key, value) pair."""
        try:
            key, value = future.result()
        except Exception:
            return
        self._landed[key] = value
        if self._lander is not None:
            try:
                self._lander(key, value)
            except Exception:
                pass

    def _poll(self, wait_s: float) -> None:
        """Absorb finished futures, waiting up to ``wait_s`` in total."""
        import concurrent.futures

        pending = [f for f in self._futures if not f.cancelled()]
        if not pending:
            return
        done, not_done = concurrent.futures.wait(pending, timeout=wait_s)
        for future in done:
            self._absorb(future)
        self._futures = list(not_done)

    def collect(self, key: Any, wait_s: Optional[float] = None) -> Optional[Any]:
        """The speculative result for ``key``, or None.

        ``wait_s=None`` polls without blocking; a positive value waits
        for in-flight tasks up to that long (useful when the caller
        knows a matching task was just submitted).  The wait absorbs
        futures one at a time and stops as soon as ``key`` lands, so an
        unrelated slow task never holds up a hit.
        """
        import concurrent.futures
        import time

        self._poll(0.0)
        if key not in self._landed and wait_s:
            deadline = time.monotonic() + wait_s
            while key not in self._landed and self._futures:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                done, not_done = concurrent.futures.wait(
                    self._futures,
                    timeout=remaining,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                if not done:
                    break
                for future in done:
                    self._absorb(future)
                self._futures = list(not_done)
        if key in self._landed:
            value = self._landed[key]
            if key not in self._consumed:
                self._consumed.add(key)
                self.hits += 1
                telemetry.count("runtime.speculate.hit")
            return value
        return None

    def close(self) -> None:
        """Drain outstanding work, account waste, return the lease."""
        try:
            self._poll(self.wait_s)
        finally:
            for future in self._futures:
                future.cancel()
            wasted = len(self._futures) + sum(
                1 for key in self._landed if key not in self._consumed
            )
            self._futures = []
            self.wastes += wasted
            if wasted:
                telemetry.count("runtime.speculate.waste", wasted)
            if self._lease is not None:
                self._lease.release()
                self._lease = None


def active() -> Optional[SpeculationSession]:
    """The innermost open session, or None."""
    return _sessions[-1] if _sessions else None


@contextmanager
def session(workers: int, wait_s: float = 30.0) -> Iterator[SpeculationSession]:
    """Open a speculation scope (no-op consumer API outside of one)."""
    scope = SpeculationSession(workers, wait_s=wait_s)
    _sessions.append(scope)
    try:
        yield scope
    finally:
        _sessions.pop()
        scope.close()
