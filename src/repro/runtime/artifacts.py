"""Content-addressed cross-run artifact cache.

The synthesis loop's dominant repeated cost is layout work whose inputs
recur exactly: a converged sizing re-estimated in a later run, a Table-1
case re-run with identical specs/technology/engines.  The in-memory
``_estimate_cache`` in :class:`~repro.core.synthesis
.LayoutOrientedSynthesizer` dies with the instance; this module persists
those artifacts on disk, content-addressed, so a second ``table1``
invocation in a fresh process is served warm.

Keys are sha256 digests over the same canonical token stream
:meth:`~repro.core.cases.CaseResult.fingerprint` uses (enums by name,
dataclasses by field, mappings repr-sorted, floats by ``repr`` — full
bit-exact precision), prefixed with :data:`CACHE_SCHEMA` so any change
to the token discipline or stored shapes invalidates every old entry at
once.  Values are pickles written with
:func:`~repro.ioutil.atomic_write`: concurrent writers (pool workers
share the parent's cache handle across the fork) race benignly — last
rename wins, every rename is a complete entry — and a torn or
unreadable entry self-heals by deletion on the next read.

The cache is **off by default**.  Enable it per-invocation with
``--cache-dir`` (defaulting to ``~/.cache/repro``) or process-wide with
``REPRO_CACHE_DIR``; a cached result is the pickled equal of the value
it replaced, so warm and cold runs are bit-identical by construction.
Hits and misses land on the ``runtime.artifact.hit`` /
``runtime.artifact.miss`` counters.
"""

from __future__ import annotations

import enum
import hashlib
import os
import pickle
from contextlib import contextmanager
from dataclasses import fields, is_dataclass
from pathlib import Path
from typing import Any, Iterator, List, Optional, Union

from repro import telemetry
from repro.ioutil import atomic_write

#: Version prefix folded into every key; bump to invalidate all entries.
CACHE_SCHEMA = "repro-artifacts-v1"

#: Environment variable enabling the cache process-wide.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_root() -> Path:
    """The conventional cache location (``--cache-dir`` with no value)."""
    return Path(os.path.expanduser("~/.cache/repro"))


def canonical_tokens(value: object) -> Iterator[str]:
    """Deterministic token stream over result payloads (for hashing).

    Handles the value shapes a :class:`~repro.core.cases.CaseResult` is
    built from: enums hash by name, dataclasses by field name + content,
    mappings by repr-sorted key, sequences in order, everything else by
    ``repr`` (floats therefore contribute full bit-exact precision).
    Shared with :meth:`CaseResult.fingerprint` so one discipline covers
    result fingerprints and cache keys alike.
    """
    if isinstance(value, enum.Enum):
        yield value.name
    elif is_dataclass(value) and not isinstance(value, type):
        for field_info in fields(value):
            yield field_info.name
            yield from canonical_tokens(getattr(value, field_info.name))
    elif isinstance(value, dict):
        for key, item in sorted(value.items(), key=lambda kv: repr(kv[0])):
            yield repr(key)
            yield from canonical_tokens(item)
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from canonical_tokens(item)
    else:
        yield repr(value)


def content_key(*parts: object) -> str:
    """sha256 content address of ``parts`` under :data:`CACHE_SCHEMA`."""
    digest = hashlib.sha256(CACHE_SCHEMA.encode())
    for part in parts:
        for token in canonical_tokens(part):
            digest.update(b"\x1f")
            digest.update(token.encode())
    return digest.hexdigest()


class ArtifactCache:
    """One on-disk cache root; handles are cheap, stateless values."""

    def __init__(self, root: Union[str, os.PathLike]):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, kind: str, key: str) -> Path:
        return self.root / kind / key[:2] / f"{key}.pkl"

    def get(self, kind: str, key: str) -> Optional[Any]:
        """The stored value, or ``None`` (missing or unreadable).

        An entry that exists but cannot be unpickled — torn write from a
        killed process on a filesystem without atomic rename, version
        skew inside a pickle — is deleted so it cannot shadow the slot
        forever, and reported as a miss.
        """
        path = self._path(kind, key)
        try:
            data = path.read_bytes()
            value = pickle.loads(data)
        except FileNotFoundError:
            self._miss()
            return None
        except Exception:  # noqa: BLE001 - corrupt entry: self-heal
            try:
                path.unlink()
            except OSError:
                pass
            self._miss()
            return None
        self._hit()
        return value

    def put(self, kind: str, key: str, value: Any) -> bool:
        """Store ``value`` durably; ``False`` if it cannot be pickled or
        written (the cache is an accelerator, never a failure source)."""
        try:
            data = pickle.dumps(value)
        except Exception:  # noqa: BLE001 - unpicklable: skip silently
            return False
        path = self._path(kind, key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write(path, data)
        except OSError:
            return False
        return True

    def _hit(self) -> None:
        self.hits += 1
        telemetry.count("runtime.artifact.hit")

    def _miss(self) -> None:
        self.misses += 1
        telemetry.count("runtime.artifact.miss")


_UNSET = object()
_ACTIVE: Any = _UNSET


def active() -> Optional[ArtifactCache]:
    """The process-wide cache, or ``None`` when disabled.

    Resolved lazily from :data:`CACHE_DIR_ENV` on first use unless
    :func:`configure` (the CLI) or :func:`using` (tests) decided first.
    """
    global _ACTIVE
    if _ACTIVE is _UNSET:
        root = os.environ.get(CACHE_DIR_ENV)
        _ACTIVE = ArtifactCache(root) if root else None
    return _ACTIVE


def configure(
    root: Optional[Union[str, os.PathLike]]
) -> Optional[ArtifactCache]:
    """Set the process-wide cache root (``None`` disables)."""
    global _ACTIVE
    _ACTIVE = ArtifactCache(root) if root else None
    return _ACTIVE


@contextmanager
def using(
    root: Optional[Union[str, os.PathLike]]
) -> Iterator[Optional[ArtifactCache]]:
    """Scoped cache activation (tests, benchmarks)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = ArtifactCache(root) if root else None
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous
