"""Live run monitor for long synthesis / Monte-Carlo / batch workloads.

A running ``table1 --jobs 8`` or multi-hour Monte-Carlo sweep should not
be a black box until it finishes or dies.  :class:`RunMonitor` gives the
long-running drivers (:mod:`repro.core.batch`, Monte-Carlo shards,
synthesis rounds) a heartbeat:

* a **daemon thread** prints one progress line per interval to stderr —
  ``monitor: 5/16 units (31%, 2 restored) · last case.full 12.3 s ·
  ETA 138 s`` — computed from unit-completion reports the drivers push;
* optionally a **localhost stdlib HTTP server** (``--monitor PORT``)
  serves ``GET /metrics`` (Prometheus text exposition of the
  :mod:`repro.telemetry.metrics` registry) and ``GET /status`` (the
  progress snapshot as JSON), so a dashboard or ``curl`` can watch a run
  that is still going.

The monitor is strictly **read-only over the run**: drivers report
progress through the module-level hooks (:func:`declare`,
:func:`unit_complete`), which cost one global int test while no monitor
is active and never touch solver or layout state — results are
bit-identical with the monitor on or off (pinned by test).

Journal awareness: units restored from a run journal (``--resume``) are
reported with ``restored=True``; they count toward ``done`` immediately
but are excluded from the rate used for the ETA, so resuming a
90%-complete run shows an honest estimate for the remaining 10%.

Unit kinds: each driver declares its own unit kind (``task`` for batch
tasks, ``mc.shard`` for Monte-Carlo shards, ``round`` for synthesis
rounds).  The first kind declared on a monitor becomes the *headline*
kind — the one the progress line and ETA track — so a batch of synthesis
tasks reports task-level progress while nested per-round completions
still show up in the ``units`` section of ``/status``.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Any, Callable, Dict, Optional, TextIO

from repro.telemetry import metrics

#: Count of started monitors.  Read without a lock — the GIL makes the
#: int access atomic, and it is only a gate (same idiom as
#: ``telemetry.core._active_tracers``).
_monitors = 0
_current: Optional["RunMonitor"] = None


def active() -> bool:
    """True when a monitor is running (cheap: one global int test)."""
    return _monitors > 0


def current() -> Optional["RunMonitor"]:
    """The process's active monitor, or ``None``."""
    if _monitors == 0:
        return None
    return _current


def declare(kind: str, total: int) -> None:
    """Driver hook: announce ``total`` upcoming units of ``kind``."""
    if _monitors:
        monitor = _current
        if monitor is not None:
            monitor.declare(kind, total)


def unit_complete(
    kind: str,
    label: Optional[str] = None,
    seconds: Optional[float] = None,
    restored: bool = False,
) -> None:
    """Driver hook: report one completed unit of ``kind``.

    ``seconds`` is the unit's own wall time when the driver knows it;
    ``restored=True`` marks a unit replayed from a run journal rather
    than computed now.
    """
    if _monitors:
        monitor = _current
        if monitor is not None:
            monitor.unit_complete(
                kind, label=label, seconds=seconds, restored=restored
            )


class _KindProgress:
    __slots__ = ("total", "done", "restored")

    def __init__(self) -> None:
        self.total = 0
        self.done = 0
        self.restored = 0


class RunMonitor:
    """Heartbeat + optional HTTP status server for one long run.

    ``interval`` seconds between progress lines (written to ``stream``,
    default stderr; pass ``stream=None`` *and* ``interval=0`` for a
    silent monitor that only serves HTTP).  ``port`` enables the HTTP
    server on ``127.0.0.1`` (0 picks an ephemeral port; read it back
    from :attr:`port` after :meth:`start`).  ``clock`` is injectable for
    deterministic tests.
    """

    def __init__(
        self,
        label: str = "run",
        interval: float = 5.0,
        port: Optional[int] = None,
        stream: Optional[TextIO] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.label = label
        self.interval = interval
        self._stream = stream
        self._clock = clock
        self._requested_port = port
        self.port: Optional[int] = None
        self._lock = threading.Lock()
        self._kinds: Dict[str, _KindProgress] = {}
        self._headline: Optional[str] = None
        self._t0 = clock()
        self._live_done = 0
        self._last_label: Optional[str] = None
        self._last_seconds: Optional[float] = None
        self._stop = threading.Event()
        self._heartbeat: Optional[threading.Thread] = None
        self._server = None
        self._server_thread: Optional[threading.Thread] = None
        self._previous: Optional["RunMonitor"] = None

    # -- Progress intake ---------------------------------------------------

    def declare(self, kind: str, total: int) -> None:
        with self._lock:
            progress = self._kinds.setdefault(kind, _KindProgress())
            progress.total += int(total)
            if self._headline is None:
                self._headline = kind

    def unit_complete(
        self,
        kind: str,
        label: Optional[str] = None,
        seconds: Optional[float] = None,
        restored: bool = False,
    ) -> None:
        with self._lock:
            progress = self._kinds.setdefault(kind, _KindProgress())
            progress.done += 1
            if restored:
                progress.restored += 1
            if kind == self._headline:
                if not restored:
                    self._live_done += 1
                self._last_label = label
                self._last_seconds = seconds

    # -- Progress readout --------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """JSON-ready progress snapshot (the ``/status`` body)."""
        with self._lock:
            elapsed = self._clock() - self._t0
            headline = self._headline
            progress = self._kinds.get(headline) if headline else None
            eta = None
            if progress is not None and self._live_done > 0:
                remaining = max(0, progress.total - progress.done)
                rate = self._live_done / elapsed if elapsed > 0 else 0.0
                if rate > 0:
                    eta = remaining / rate
            return {
                "label": self.label,
                "kind": headline,
                "done": progress.done if progress else 0,
                "total": progress.total if progress else 0,
                "restored": progress.restored if progress else 0,
                "elapsed_s": elapsed,
                "eta_s": eta,
                "last_unit": self._last_label,
                "last_unit_s": self._last_seconds,
                "units": {
                    kind: {
                        "done": p.done,
                        "total": p.total,
                        "restored": p.restored,
                    }
                    for kind, p in sorted(self._kinds.items())
                },
            }

    def format_line(self) -> str:
        """One human-readable heartbeat line."""
        status = self.status()
        total = status["total"]
        done = status["done"]
        parts = []
        if total:
            percent = 100.0 * done / total
            headline = f"{done}/{total} {status['kind']} ({percent:.0f}%"
            if status["restored"]:
                headline += f", {status['restored']} restored"
            headline += ")"
            parts.append(headline)
        else:
            parts.append(f"{done} unit(s) done")
        if status["last_unit"] is not None:
            last = f"last {status['last_unit']}"
            if status["last_unit_s"] is not None:
                last += f" {status['last_unit_s']:.1f} s"
            parts.append(last)
        if status["eta_s"] is not None:
            parts.append(f"ETA {status['eta_s']:.0f} s")
        parts.append(f"elapsed {status['elapsed_s']:.0f} s")
        return f"monitor[{self.label}]: " + " · ".join(parts)

    # -- Lifecycle ---------------------------------------------------------

    def start(self) -> "RunMonitor":
        """Install as the process monitor; start heartbeat/HTTP threads."""
        global _monitors, _current
        self._previous = _current
        _current = self
        _monitors += 1
        if self._requested_port is not None:
            self._start_server(self._requested_port)
        if self.interval and self.interval > 0:
            self._heartbeat = threading.Thread(
                target=self._heartbeat_loop,
                name="repro-monitor-heartbeat",
                daemon=True,
            )
            self._heartbeat.start()
        return self

    def stop(self, final_line: bool = True) -> None:
        """Stop threads and uninstall (prints one final progress line)."""
        global _monitors, _current
        if _current is self:
            _current = self._previous
        _monitors = max(0, _monitors - 1)
        self._stop.set()
        if self._heartbeat is not None:
            self._heartbeat.join(timeout=2.0)
            self._heartbeat = None
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            if self._server_thread is not None:
                self._server_thread.join(timeout=2.0)
            self._server = None
            self._server_thread = None
        if final_line:
            self._emit(self.format_line())

    def __enter__(self) -> "RunMonitor":
        return self.start()

    def __exit__(self, *exc: object) -> bool:
        self.stop()
        return False

    # -- Internals ---------------------------------------------------------

    def _emit(self, line: str) -> None:
        stream = self._stream if self._stream is not None else sys.stderr
        try:
            print(line, file=stream, flush=True)
        except (ValueError, OSError):
            pass  # stream closed mid-shutdown; progress lines are best-effort

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.interval):
            self._emit(self.format_line())

    def _start_server(self, port: int) -> None:
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        monitor = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - stdlib naming
                if self.path == "/metrics":
                    body = metrics.registry().to_prometheus()
                    ctype = "text/plain; version=0.0.4; charset=utf-8"
                elif self.path in ("/", "/status"):
                    body = json.dumps(monitor.status(), sort_keys=True)
                    ctype = "application/json; charset=utf-8"
                else:
                    self.send_error(404, "unknown path (try /status)")
                    return
                encoded = body.encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(encoded)))
                self.end_headers()
                self.wfile.write(encoded)

            def log_message(self, *args: Any) -> None:
                pass  # scrapes are not run diagnostics; keep stderr clean

        self._server = ThreadingHTTPServer(("127.0.0.1", port), Handler)
        self.port = self._server.server_address[1]
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-monitor-http",
            daemon=True,
        )
        self._server_thread.start()
