"""Trace-driven profiler: self-time attribution over recorded span trees.

:mod:`repro.telemetry.replay` answers "what happened" (the span tree);
this module answers "where did the time go".  :func:`profile_records`
folds a trace into per-name aggregate rows — call count, total
(inclusive) seconds, **self** (exclusive) seconds, and p50/p95 of the
per-call durations — and :func:`collapsed_stacks` emits the
``stack;path count`` lines standard flamegraph tooling consumes
(Brendan Gregg's ``flamegraph.pl``, speedscope, inferno).

Self-time is defined the usual way: a span's duration minus the summed
durations of its *direct* children.  Attribution is exact on a serial
trace — the self-times of every span partition the root's wall clock, so
``sum(self) == root.dur`` — and intentionally *not* clamped for absorbed
process-pool subtrees, where children overlap in wall time and a
parent's self-time can legitimately go negative (the pool span waited
while K workers burned K times the wall clock; a negative self reads as
"this span's children overlapped").  Collapsed-stack output clamps at
zero because flamegraph counts must be non-negative.

CLI: ``python -m repro profile TRACE [--top N] [--collapsed FILE]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.replay import SpanNode, summarize


@dataclass
class SpanProfile:
    """Aggregate profile row for one span name."""

    name: str
    count: int
    total_s: float
    """Inclusive seconds summed over every occurrence."""
    self_s: float
    """Exclusive seconds: total minus time inside direct children."""
    p50_s: float
    p95_s: float
    """Percentiles of the per-call *inclusive* durations."""

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "count": self.count,
            "total_s": self.total_s,
            "self_s": self.self_s,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
        }


def _percentile(ordered: List[float], q: float) -> float:
    """Linear-interpolation percentile of an already-sorted sample list."""
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    lo = int(position)
    hi = min(lo + 1, len(ordered) - 1)
    fraction = position - lo
    return ordered[lo] * (1.0 - fraction) + ordered[hi] * fraction


def node_self_seconds(node: SpanNode) -> float:
    """Exclusive time of one span: duration minus direct children."""
    return node.dur - sum(child.dur for child in node.children)


def profile_spans(roots: List[SpanNode]) -> List[SpanProfile]:
    """Per-name profile rows over the given span trees, ranked by
    self-time (descending) with total time as the tiebreaker."""
    durations: Dict[str, List[float]] = {}
    self_times: Dict[str, float] = {}
    for root in roots:
        for node in root.walk():
            durations.setdefault(node.name, []).append(node.dur)
            self_times[node.name] = (
                self_times.get(node.name, 0.0) + node_self_seconds(node)
            )
    rows = []
    for name, samples in durations.items():
        ordered = sorted(samples)
        rows.append(
            SpanProfile(
                name=name,
                count=len(samples),
                total_s=sum(samples),
                self_s=self_times[name],
                p50_s=_percentile(ordered, 0.50),
                p95_s=_percentile(ordered, 0.95),
            )
        )
    rows.sort(key=lambda row: (-row.self_s, -row.total_s, row.name))
    return rows


def profile_records(records: List[Dict[str, Any]]) -> List[SpanProfile]:
    """Profile a flat record list (live tracer or ``read_jsonl`` output)."""
    return profile_spans(summarize(records).roots)


def collapsed_stacks(
    roots: List[SpanNode], scale: float = 1e6
) -> Dict[str, int]:
    """Flamegraph-collapsed mapping ``"a;b;c" -> self-time units``.

    Each key is the ``;``-joined span-name path from a root down; each
    value is that path's summed self-time in integer units (microseconds
    by default — flamegraph tooling wants integer counts).  Identical
    paths from repeated calls merge; zero/negative self-times (absorbed
    parallel subtrees) are dropped, as a flamegraph cannot draw them.
    """
    stacks: Dict[str, float] = {}

    def walk(node: SpanNode, prefix: str) -> None:
        path = f"{prefix};{node.name}" if prefix else node.name
        stacks[path] = stacks.get(path, 0.0) + node_self_seconds(node)
        for child in node.children:
            walk(child, path)

    for root in roots:
        walk(root, "")
    collapsed = {}
    for path in sorted(stacks):
        units = int(round(stacks[path] * scale))
        if units > 0:
            collapsed[path] = units
    return collapsed


def format_collapsed(stacks: Dict[str, int]) -> str:
    """One ``stack;path count`` line per entry (flamegraph.pl input)."""
    return "\n".join(f"{path} {count}" for path, count in stacks.items())


def format_profile_table(
    rows: List[SpanProfile],
    top: Optional[int] = None,
    wall_s: Optional[float] = None,
) -> str:
    """Human-readable profile table (ranked by self-time).

    ``wall_s`` (typically the root span's duration) adds a ``self%``
    column attributing wall clock per name.
    """
    if top is not None:
        rows = rows[:top]
    header: Tuple[str, ...] = (
        "span", "calls", "total (s)", "self (s)",
        "self%", "p50 (ms)", "p95 (ms)",
    )
    table: List[Tuple[str, ...]] = [header]
    for row in rows:
        share = (
            f"{100.0 * row.self_s / wall_s:.1f}%"
            if wall_s else "-"
        )
        table.append(
            (
                row.name,
                str(row.count),
                f"{row.total_s:.3f}",
                f"{row.self_s:.3f}",
                share,
                f"{row.p50_s * 1e3:.1f}",
                f"{row.p95_s * 1e3:.1f}",
            )
        )
    widths = [
        max(len(line[col]) for line in table) for col in range(len(header))
    ]
    lines = []
    for i, line in enumerate(table):
        cells = [line[0].ljust(widths[0])]
        cells += [
            cell.rjust(widths[col])
            for col, cell in enumerate(line[1:], start=1)
        ]
        lines.append("  ".join(cells).rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
