"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

Where :mod:`repro.telemetry.core` records a *trace* (every span and
counter increment, in order, for replay), this module keeps *aggregates*:
monotonic counters, last-write-wins gauges and fixed-bucket histograms
(``newton.iterations``, ``layout.call.seconds``, ``mc.shard.seconds``)
cheap enough to stay live for a multi-hour batch and small enough to
serve over HTTP while the run is still going.

Activation mirrors the tracer's cheap-gate idiom: nothing is recorded
unless :func:`enable` (or the :func:`collecting` context manager) armed
the registry, and instrumented hot sites test :func:`enabled` — one
module-global int comparison — before touching a clock.  The registry is
**process-wide** (not thread-local): aggregates are what a monitor
scrapes, so every thread folds into the same totals under a lock.

Population has three feeds:

* **tracer counters** — an active :class:`~repro.telemetry.core.Tracer`
  mirrors every ``count()``/``gauge()`` into the registry while metrics
  are enabled, so the whole existing counter vocabulary
  (``solver.solves``, ``layout.calls.estimate``, ...) shows up in
  ``/metrics`` without touching those sites;
* **histogram hooks** — the solver/layout/shard hot sites call
  :func:`observe` directly (latency and iteration distributions have no
  tracer-counter equivalent);
* **cross-process merge** — pool workers ship a :meth:`snapshot` /
  :meth:`MetricsRegistry.delta_since` payload home inside the existing
  traced-worker payload, and :meth:`Tracer.absorb
  <repro.telemetry.core.Tracer.absorb>` merges it here — including
  payloads from dead-shard resubmissions and the in-process recovery
  fallback, so aggregate totals match a clean serial run.

Exposition is Prometheus text format 0.0.4 (:func:`to_prometheus`),
served by :mod:`repro.telemetry.monitor` at ``/metrics``.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

#: Schema tag of snapshot payloads (crosses process boundaries pickled).
METRICS_SCHEMA = "repro-metrics-v1"

#: Default histogram buckets for second-valued observations (upper
#: bounds, ``le`` semantics): sub-millisecond solver calls through
#: multi-minute synthesis tasks.
SECONDS_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0,
    60.0, 120.0, 300.0, 600.0,
)

#: Default buckets for small-count observations (Newton iterations,
#: rounds, retries).
COUNT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0, 55.0, 89.0, 144.0,
)

#: Known histogram names -> their bucket boundaries.  ``observe`` on an
#: unknown name falls back to :data:`SECONDS_BUCKETS` for ``*.seconds``
#: metrics and :data:`COUNT_BUCKETS` otherwise.
DEFAULT_BUCKETS: Dict[str, Tuple[float, ...]] = {
    "newton.iterations": COUNT_BUCKETS,
    "layout.call.seconds": SECONDS_BUCKETS,
    "mc.shard.seconds": SECONDS_BUCKETS,
    "batch.task.seconds": SECONDS_BUCKETS,
    "synthesis.round.seconds": SECONDS_BUCKETS,
    "runtime.dispatch.seconds": SECONDS_BUCKETS,
}


def default_buckets(name: str) -> Tuple[float, ...]:
    """The bucket boundaries a histogram named ``name`` defaults to."""
    known = DEFAULT_BUCKETS.get(name)
    if known is not None:
        return known
    return SECONDS_BUCKETS if name.endswith(".seconds") else COUNT_BUCKETS


class Histogram:
    """Fixed-bucket histogram (Prometheus ``le`` upper-bound semantics).

    ``bounds`` are strictly increasing finite upper bounds; an implicit
    ``+Inf`` bucket catches everything above the last bound.  A value
    exactly on a boundary lands in that boundary's bucket (``v <= le``),
    matching Prometheus' cumulative-bucket convention.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Sequence[float]):
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram bounds must be strictly increasing: {bounds!r}"
            )
        self.bounds = bounds
        #: Per-bucket (non-cumulative) counts; index ``len(bounds)`` is
        #: the overflow (+Inf) bucket.
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[int]:
        """Cumulative counts per bound (Prometheus ``_bucket`` values),
        excluding the trailing ``+Inf`` entry (== :attr:`count`)."""
        total = 0
        out = []
        for n in self.counts[:-1]:
            total += n
            out.append(total)
        return out

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile by linear interpolation inside the
        owning bucket (the standard Prometheus ``histogram_quantile``
        estimate; exact only up to bucket resolution)."""
        if self.count == 0:
            return float("nan")
        rank = q * self.count
        total = 0
        lower = 0.0
        for bound, n in zip(self.bounds, self.counts):
            if total + n >= rank and n > 0:
                fraction = (rank - total) / n
                return lower + (bound - lower) * fraction
            total += n
            lower = bound
        return self.bounds[-1]

    def to_payload(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    def merge_payload(self, payload: Dict[str, Any]) -> None:
        if tuple(payload["bounds"]) != self.bounds:
            raise ValueError(
                f"cannot merge histogram with bounds "
                f"{tuple(payload['bounds'])!r} into one with {self.bounds!r}"
            )
        for i, n in enumerate(payload["counts"]):
            self.counts[i] += n
        self.sum += payload["sum"]
        self.count += payload["count"]


class MetricsRegistry:
    """Thread-safe aggregate store: counters, gauges and histograms.

    The process singleton lives behind :func:`registry`; constructing
    private instances is fine for tests and for delta arithmetic.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- Recording ---------------------------------------------------------

    def inc(self, name: str, n: float = 1.0) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + n

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def observe(
        self, name: str, value: float,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = Histogram(
                    buckets if buckets is not None else default_buckets(name)
                )
                self._histograms[name] = histogram
            histogram.observe(value)

    # -- Reading -----------------------------------------------------------

    def counter(self, name: str, default: float = 0.0) -> float:
        with self._lock:
            return self._counters.get(name, default)

    def gauge(self, name: str, default: float = float("nan")) -> float:
        with self._lock:
            return self._gauges.get(name, default)

    def histogram(self, name: str) -> Optional[Histogram]:
        with self._lock:
            return self._histograms.get(name)

    def __len__(self) -> int:
        with self._lock:
            return (
                len(self._counters) + len(self._gauges)
                + len(self._histograms)
            )

    # -- Snapshot / delta / merge -----------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Picklable, JSON-safe copy of every aggregate right now."""
        with self._lock:
            return {
                "schema": METRICS_SCHEMA,
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: histogram.to_payload()
                    for name, histogram in self._histograms.items()
                },
            }

    def delta_since(self, base: Dict[str, Any]) -> Dict[str, Any]:
        """What happened between ``base`` (an earlier :meth:`snapshot`)
        and now, as a mergeable payload.

        Counters and histogram bucket counts subtract; gauges keep their
        latest value (a gauge has no meaningful difference).  This is
        how a reused pool worker ships *per-unit* metrics home without
        re-counting work from units it ran earlier.
        """
        now = self.snapshot()
        counters = {
            name: value - base.get("counters", {}).get(name, 0.0)
            for name, value in now["counters"].items()
        }
        histograms: Dict[str, Any] = {}
        base_histograms = base.get("histograms", {})
        for name, payload in now["histograms"].items():
            before = base_histograms.get(name)
            if before is not None and (
                tuple(before["bounds"]) == tuple(payload["bounds"])
            ):
                payload = {
                    "bounds": payload["bounds"],
                    "counts": [
                        n - m
                        for n, m in zip(payload["counts"], before["counts"])
                    ],
                    "sum": payload["sum"] - before["sum"],
                    "count": payload["count"] - before["count"],
                }
            histograms[name] = payload
        return {
            "schema": METRICS_SCHEMA,
            "counters": {k: v for k, v in counters.items() if v != 0.0},
            "gauges": now["gauges"],
            "histograms": {
                k: v for k, v in histograms.items() if v["count"] != 0
            },
        }

    def merge(self, payload: Optional[Dict[str, Any]]) -> None:
        """Fold a :meth:`snapshot`/:meth:`delta_since` payload in.

        Counters add, gauges last-write-win, histograms add bucketwise
        (mismatched bucket boundaries raise — both sides run this code,
        so a mismatch means genuinely different configurations).
        """
        if not payload:
            return
        with self._lock:
            for name, value in payload.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0.0) + value
            for name, value in payload.get("gauges", {}).items():
                self._gauges[name] = float(value)
            for name, data in payload.get("histograms", {}).items():
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = Histogram(data["bounds"])
                    self._histograms[name] = histogram
                histogram.merge_payload(data)

    def absorb_counters(self, counters: Dict[str, float]) -> None:
        """Fold a plain tracer counter mapping in (the compatibility feed
        for worker payloads predating the ``metrics`` key)."""
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0.0) + value

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- Exposition --------------------------------------------------------

    def to_prometheus(self, prefix: str = "repro_") -> str:
        """Prometheus text exposition format 0.0.4 of every aggregate.

        Metric names are sanitised (``.`` and other non-identifier
        characters become ``_``) and prefixed; counters get the
        conventional ``_total`` suffix.  Output is sorted by name so the
        format is golden-testable.
        """
        snapshot = self.snapshot()
        lines: List[str] = []
        for name in sorted(snapshot["counters"]):
            metric = prefix + _sanitize(name) + "_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_number(snapshot['counters'][name])}")
        for name in sorted(snapshot["gauges"]):
            metric = prefix + _sanitize(name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_number(snapshot['gauges'][name])}")
        for name in sorted(snapshot["histograms"]):
            data = snapshot["histograms"][name]
            metric = prefix + _sanitize(name)
            lines.append(f"# TYPE {metric} histogram")
            total = 0
            for bound, n in zip(data["bounds"], data["counts"]):
                total += n
                lines.append(
                    f'{metric}_bucket{{le="{_number(bound)}"}} {total}'
                )
            lines.append(f'{metric}_bucket{{le="+Inf"}} {data["count"]}')
            lines.append(f"{metric}_sum {_number(data['sum'])}")
            lines.append(f"{metric}_count {data['count']}")
        return "\n".join(lines) + "\n"


def _sanitize(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    text = "".join(out)
    if text and text[0].isdigit():
        text = "_" + text
    return text


def _number(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


# -- Process-wide gate and hooks --------------------------------------------

_REGISTRY = MetricsRegistry()
#: Enable nesting depth.  Read without a lock — the GIL makes the int
#: access atomic and it is only a gate, exactly like
#: ``telemetry.core._active_tracers``.
_enabled = 0


def registry() -> MetricsRegistry:
    """The process-wide registry (always usable; hooks only feed it
    while :func:`enabled`)."""
    return _REGISTRY


def enabled() -> bool:
    """True when metrics collection is armed (cheap: one global int)."""
    return _enabled > 0


def enable() -> None:
    """Arm the registry (re-entrant; pair with :func:`disable`)."""
    global _enabled
    _enabled += 1


def disable() -> None:
    global _enabled
    _enabled = max(0, _enabled - 1)


@contextmanager
def collecting(fresh: bool = False) -> Iterator[MetricsRegistry]:
    """Arm the process registry for a block (``fresh=True`` resets it
    first — test and single-run convenience)."""
    if fresh:
        _REGISTRY.reset()
    enable()
    try:
        yield _REGISTRY
    finally:
        disable()


def inc(name: str, n: float = 1.0) -> None:
    if _enabled:
        _REGISTRY.inc(name, n)


def set_gauge(name: str, value: float) -> None:
    if _enabled:
        _REGISTRY.set_gauge(name, value)


def observe(
    name: str, value: float, buckets: Optional[Sequence[float]] = None
) -> None:
    """Record one histogram observation (no-op while disabled)."""
    if _enabled:
        _REGISTRY.observe(name, value, buckets)
