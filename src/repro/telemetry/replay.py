"""Trace replay: rebuild the span tree and aggregate its signals.

:func:`summarize` turns a flat record list (live from a
:class:`~repro.telemetry.core.Tracer` or read back from JSONL) into a
:class:`TraceSummary`: the span tree with per-subtree counter
aggregates, global counter/gauge totals, and per-name span statistics.
``TraceSummary.format_tree`` renders the human-readable per-phase
timing/counter tree the ``python -m repro trace`` subcommand prints;
``TraceSummary.to_json`` is the machine-readable form.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: Schema tag of the machine-readable summary (``repro trace --json``).
SUMMARY_SCHEMA = "repro-trace-summary-v1"


@dataclass
class SpanNode:
    """One span in the rebuilt tree."""

    id: int
    name: str
    t0: float
    dur: float
    status: str
    error: Optional[str]
    attrs: Dict[str, Any]
    children: List["SpanNode"] = field(default_factory=list)
    counts: Dict[str, float] = field(default_factory=dict)
    """Counter increments recorded directly under this span."""
    events: List[Dict[str, Any]] = field(default_factory=list)

    def subtree_counts(self) -> Dict[str, float]:
        """Counter totals over this span and all its descendants."""
        totals = dict(self.counts)
        for child in self.children:
            for name, value in child.subtree_counts().items():
                totals[name] = totals.get(name, 0.0) + value
        return totals

    def walk(self) -> Iterator["SpanNode"]:
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class TraceSummary:
    """Aggregated view of one trace."""

    counters: Dict[str, float]
    gauges: Dict[str, float]
    span_stats: Dict[str, Tuple[int, float]]
    """Span name -> (occurrences, total seconds)."""
    roots: List[SpanNode]
    orphan_counts: Dict[str, float] = field(default_factory=dict)
    """Counter increments recorded outside any span."""

    def counter(self, name: str, default: float = 0.0) -> float:
        return self.counters.get(name, default)

    def span_count(self, name: str) -> int:
        return self.span_stats.get(name, (0, 0.0))[0]

    def span_seconds(self, name: str) -> float:
        return self.span_stats.get(name, (0, 0.0))[1]

    def spans(self, name: str) -> List[SpanNode]:
        """Every span named ``name``, in tree order."""
        found: List[SpanNode] = []
        for root in self.roots:
            for node in root.walk():
                if node.name == name:
                    found.append(node)
        return found

    # -- Rendering ---------------------------------------------------------

    def format_tree(self, counters_per_span: bool = True) -> str:
        """Human-readable per-phase timing/counter tree."""
        lines: List[str] = []
        for root in self.roots:
            self._format_node(root, "", "", lines, counters_per_span)
        if self.counters:
            lines.append("counters:")
            width = max(len(name) for name in self.counters)
            for name in sorted(self.counters):
                lines.append(
                    f"  {name:<{width}}  {_format_number(self.counters[name])}"
                )
        if self.gauges:
            lines.append("gauges:")
            width = max(len(name) for name in self.gauges)
            for name in sorted(self.gauges):
                lines.append(
                    f"  {name:<{width}}  {self.gauges[name]:g}"
                )
        return "\n".join(lines)

    def _format_node(
        self,
        node: SpanNode,
        prefix: str,
        child_prefix: str,
        lines: List[str],
        counters_per_span: bool,
    ) -> None:
        label = node.name
        if node.attrs:
            inner = ", ".join(
                f"{key}={node.attrs[key]}" for key in sorted(node.attrs)
            )
            label += f" ({inner})"
        label += f"  {node.dur:.3f} s"
        if node.status != "ok":
            label += f"  [ERROR: {node.error}]"
        if counters_per_span:
            totals = node.subtree_counts()
            if totals:
                inner = ", ".join(
                    f"{name}={_format_number(totals[name])}"
                    for name in sorted(totals)
                )
                label += f"  [{inner}]"
        lines.append(prefix + label)
        for i, child in enumerate(node.children):
            last = i == len(node.children) - 1
            branch = "└─ " if last else "├─ "
            extend = "   " if last else "│  "
            self._format_node(
                child,
                child_prefix + branch,
                child_prefix + extend,
                lines,
                counters_per_span,
            )

    def to_json(self) -> Dict[str, Any]:
        """Machine-readable summary (stable keys, JSON-serialisable)."""

        def node_json(node: SpanNode) -> Dict[str, Any]:
            return {
                "name": node.name,
                "t0": node.t0,
                "dur": node.dur,
                "status": node.status,
                "error": node.error,
                "attrs": node.attrs,
                "counts": node.subtree_counts(),
                "events": node.events,
                "children": [node_json(child) for child in node.children],
            }

        return {
            "schema": SUMMARY_SCHEMA,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "spans": {
                name: {"count": count, "total_s": total}
                for name, (count, total) in self.span_stats.items()
            },
            "tree": [node_json(root) for root in self.roots],
        }

    def format_json(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)


def _format_number(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:g}"


def summarize(records: List[Dict[str, Any]]) -> TraceSummary:
    """Rebuild the span tree and aggregates from a flat record list.

    Tolerant of partial traces: counters/events whose parent span never
    closed (crash mid-span) are kept as orphans rather than dropped.
    """
    nodes: Dict[int, SpanNode] = {}
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    span_stats: Dict[str, Tuple[int, float]] = {}
    # parent id -> deferred children/counters/events (children close
    # before their parent exists as a node).
    pending_children: Dict[int, List[SpanNode]] = {}
    pending_counts: Dict[int, Dict[str, float]] = {}
    pending_events: Dict[int, List[Dict[str, Any]]] = {}
    orphan_counts: Dict[str, float] = {}
    roots: List[SpanNode] = []

    def attach_count(parent: Optional[int], name: str, n: float) -> None:
        if parent is None:
            orphan_counts[name] = orphan_counts.get(name, 0.0) + n
            return
        node = nodes.get(parent)
        bucket = node.counts if node is not None else pending_counts.setdefault(
            parent, {}
        )
        bucket[name] = bucket.get(name, 0.0) + n

    for record in records:
        kind = record.get("type")
        if kind == "span":
            node = SpanNode(
                id=record["id"],
                name=record["name"],
                t0=record.get("t0", 0.0),
                dur=record.get("dur", 0.0),
                status=record.get("status", "ok"),
                error=record.get("error"),
                attrs=record.get("attrs", {}) or {},
            )
            nodes[node.id] = node
            count, total = span_stats.get(node.name, (0, 0.0))
            span_stats[node.name] = (count + 1, total + node.dur)
            # Adopt anything recorded under this span before it closed.
            node.children.extend(pending_children.pop(node.id, []))
            node.counts.update(pending_counts.pop(node.id, {}))
            node.events.extend(pending_events.pop(node.id, []))
            parent = record.get("parent")
            if parent is None:
                roots.append(node)
            elif parent in nodes:
                nodes[parent].children.append(node)
            else:
                pending_children.setdefault(parent, []).append(node)
        elif kind == "count":
            name = record["name"]
            n = record.get("n", 1)
            counters[name] = counters.get(name, 0.0) + n
            attach_count(record.get("parent"), name, n)
        elif kind == "gauge":
            gauges[record["name"]] = record.get("value", 0.0)
        elif kind == "event":
            parent = record.get("parent")
            payload = {
                "name": record.get("name"),
                "t": record.get("t"),
                "attrs": record.get("attrs", {}) or {},
            }
            if parent is not None:
                node = nodes.get(parent)
                if node is not None:
                    node.events.append(payload)
                else:
                    pending_events.setdefault(parent, []).append(payload)
        # Unknown record types are skipped (forward compatibility).

    # Spans that never closed: surface their orphaned children as roots.
    for children in pending_children.values():
        roots.extend(children)
    for bucket in pending_counts.values():
        for name, n in bucket.items():
            orphan_counts[name] = orphan_counts.get(name, 0.0) + n

    # Children close before parents, so adopted child lists are in
    # completion order; re-sort every sibling list by start time.
    def sort_tree(node: SpanNode) -> None:
        node.children.sort(key=lambda child: child.t0)
        for child in node.children:
            sort_tree(child)

    roots.sort(key=lambda node: node.t0)
    for root in roots:
        sort_tree(root)

    return TraceSummary(
        counters=counters,
        gauges=gauges,
        span_stats=span_stats,
        roots=roots,
        orphan_counts=orphan_counts,
    )
