"""JSONL trace container: one JSON object per line.

Line 1 is a header ``{"type": "header", "schema": "repro-trace-v1",
"name": ...}``; every following line is one record as produced by
:class:`~repro.telemetry.core.Tracer` (``span`` / ``event`` / ``count`` /
``gauge``).  The format is append-friendly and greppable; the reader
tolerates (skips) blank lines so concatenated traces replay too.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.telemetry.core import TRACE_SCHEMA


def write_jsonl(
    records: List[Dict[str, Any]], path: str, name: str = "trace"
) -> None:
    """Write ``records`` (with a schema header) to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            json.dumps(
                {"type": "header", "schema": TRACE_SCHEMA, "name": name},
                sort_keys=True,
            )
        )
        handle.write("\n")
        for record in records:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read a trace file back into its record list.

    Raises :class:`ValueError` on a missing or mismatched schema header
    or a malformed line (the line number is included for forensics).
    """
    records: List[Dict[str, Any]] = []
    header_seen = False
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: malformed trace line: {error}"
                ) from error
            if not header_seen:
                if (
                    record.get("type") != "header"
                    or record.get("schema") != TRACE_SCHEMA
                ):
                    raise ValueError(
                        f"{path}: not a {TRACE_SCHEMA} trace file "
                        f"(first line: {record!r})"
                    )
                header_seen = True
                continue
            records.append(record)
    if not header_seen:
        raise ValueError(f"{path}: empty trace file (no header line)")
    return records
