"""JSONL trace container: one JSON object per line.

Line 1 is a header ``{"type": "header", "schema": "repro-trace-v1",
"name": ...}``; every following line is one record as produced by
:class:`~repro.telemetry.core.Tracer` (``span`` / ``event`` / ``count`` /
``gauge``).  The format is append-friendly and greppable; the reader
tolerates (skips) blank lines so concatenated traces replay too.

A resumed run (``--resume``) appends a *segment* — a fresh header line
followed by its own records — instead of rewriting history.  The reader
stitches segments together, remapping each segment's record ids past the
previous segment's so the replayed tree stays collision-free; fresh
writes go through :func:`~repro.ioutil.atomic_write`, so a crash while
finalizing a trace can never leave a truncated file.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.ioutil import atomic_write
from repro.telemetry.core import TRACE_SCHEMA


def write_jsonl(
    records: List[Dict[str, Any]],
    path: str,
    name: str = "trace",
    append: bool = False,
) -> None:
    """Write ``records`` (with a schema header) to ``path``.

    ``append=True`` adds a new header-plus-records segment after any
    existing content (the resumed-run mode) instead of replacing the
    file; the default atomically replaces ``path``.
    """
    lines = [
        json.dumps(
            {"type": "header", "schema": TRACE_SCHEMA, "name": name},
            sort_keys=True,
        )
    ]
    for record in records:
        lines.append(json.dumps(record, sort_keys=True))
    payload = "\n".join(lines) + "\n"
    if append:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(payload)
        return
    atomic_write(path, payload)


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read a trace file back into its record list.

    A multi-segment trace (one header per ``--resume`` leg) is stitched
    into a single record list: each segment's ``id``/``parent`` fields
    are shifted past the ids already seen, so spans from different legs
    can never collide in the replayed tree.

    Raises :class:`ValueError` on a missing or mismatched schema header
    or a malformed line (the line number is included for forensics).
    """
    records: List[Dict[str, Any]] = []
    header_seen = False
    base = 0
    segment_max = -1
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: malformed trace line: {error}"
                ) from error
            if record.get("type") == "header":
                if record.get("schema") != TRACE_SCHEMA:
                    raise ValueError(
                        f"{path}:{line_number}: not a {TRACE_SCHEMA} "
                        f"trace header: {record!r}"
                    )
                header_seen = True
                base += segment_max + 1
                segment_max = -1
                continue
            if not header_seen:
                raise ValueError(
                    f"{path}: not a {TRACE_SCHEMA} trace file "
                    f"(first line: {record!r})"
                )
            record_id = record.get("id")
            if record_id is not None:
                segment_max = max(segment_max, record_id)
                record["id"] = record_id + base
            if record.get("parent") is not None:
                record["parent"] = record["parent"] + base
            records.append(record)
    if not header_seen:
        raise ValueError(f"{path}: empty trace file (no header line)")
    return records
