"""Hierarchical tracing core: spans, events, counters and gauges.

A :class:`Tracer` records one run's telemetry as a flat list of plain-dict
records (spans close child-before-parent; the tree is rebuilt from parent
ids by :mod:`repro.telemetry.replay`).  Tracers are *thread-local*: a
tracer is activated on the current thread with :meth:`Tracer.activate`
(or the :func:`trace_run` convenience) and the module-level helpers
:func:`span` / :func:`event` / :func:`count` / :func:`gauge` route to it.

The disabled fast path is a single module-global integer comparison
(``_active_tracers``), mirroring :func:`repro.resilience.faults.active`:
instrumented hot sites (Newton solves, model-cache lookups, router
placement loops) call :func:`enabled` first and pay near-zero when no
tracer is armed anywhere in the process.  ``tests/test_telemetry.py``
guards this with an overhead benchmark and the dc_solve record in
``BENCH_analysis.json`` pins the end-to-end cost.

Process-pool workers (Monte-Carlo shards) cannot share the parent's
tracer; they run their own, then ship its picklable payload back
(:meth:`Tracer.trace_payload`) for the parent to graft under the current
span with :meth:`Tracer.absorb` — ids are remapped and worker-relative
timestamps shifted to the parent timeline.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.telemetry import metrics as _metrics

#: Schema tag of the JSONL trace container (header line of every file).
TRACE_SCHEMA = "repro-trace-v1"

_state = threading.local()
#: Count of activated tracers across all threads.  Read without a lock —
#: the GIL makes the int access atomic, and the value is only a gate: the
#: authoritative test is the thread-local lookup in :func:`current`.
_active_tracers = 0


def enabled() -> bool:
    """True when a tracer is active on the *current* thread (cheap)."""
    return _active_tracers > 0 and getattr(_state, "tracer", None) is not None


def current() -> Optional["Tracer"]:
    """The current thread's active tracer, or ``None``."""
    if _active_tracers == 0:
        return None
    return getattr(_state, "tracer", None)


class _NullSpan:
    """Reusable no-op context manager returned when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """One live span; records itself on exit (exception-safe)."""

    __slots__ = ("_tracer", "_name", "_attrs", "_id", "_parent", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._id: Optional[int] = None
        self._parent: Optional[int] = None
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        self._id = tracer._allocate_id()
        self._parent = tracer._stack[-1] if tracer._stack else None
        tracer._stack.append(self._id)
        self._t0 = tracer._now()
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        tracer = self._tracer
        duration = tracer._now() - self._t0
        tracer._stack.pop()
        tracer.records.append(
            {
                "type": "span",
                "id": self._id,
                "parent": self._parent,
                "name": self._name,
                "t0": self._t0,
                "dur": duration,
                "status": "ok" if exc_type is None else "error",
                "error": None if exc is None else repr(exc),
                "attrs": self._attrs,
            }
        )
        return False


class Tracer:
    """Collects one run's spans, events, counters and gauges.

    ``clock`` is injectable for deterministic tests; timestamps are
    seconds relative to the tracer's construction.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self.records: List[Dict[str, Any]] = []
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self._clock = clock
        self._origin = clock()
        self._stack: List[int] = []
        self._next_id = 0
        #: Metrics delta captured by :func:`traced_worker`, shipped home
        #: inside :meth:`trace_payload` when present.
        self._metrics_delta: Optional[Dict[str, Any]] = None

    # -- Internals ---------------------------------------------------------

    def _now(self) -> float:
        return self._clock() - self._origin

    def now(self) -> float:
        """Current tracer-relative timestamp (the unit of all records)."""
        return self._now()

    def _allocate_id(self) -> int:
        span_id = self._next_id
        self._next_id = span_id + 1
        return span_id

    def _parent_id(self) -> Optional[int]:
        return self._stack[-1] if self._stack else None

    # -- Recording surface -------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _Span:
        """Context manager recording a hierarchical timed span."""
        return _Span(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """A point-in-time typed event under the current span."""
        self.records.append(
            {
                "type": "event",
                "name": name,
                "t": self._now(),
                "parent": self._parent_id(),
                "attrs": attrs,
            }
        )

    def count(self, name: str, n: float = 1) -> None:
        """Add ``n`` to the monotonic counter ``name`` (under the current
        span, so replay can aggregate counters per subtree).

        While the metrics registry is armed
        (:func:`repro.telemetry.metrics.enabled`), every increment also
        mirrors into the process-wide aggregates — that is how the whole
        tracer counter vocabulary shows up in ``/metrics`` without a
        second hook at each site.
        """
        if _metrics._enabled:
            _metrics._REGISTRY.inc(name, n)
        self.counters[name] = self.counters.get(name, 0.0) + n
        self.records.append(
            {
                "type": "count",
                "name": name,
                "n": n,
                "t": self._now(),
                "parent": self._parent_id(),
            }
        )

    def gauge(self, name: str, value: float) -> None:
        """Record the latest value of ``name`` (last write wins)."""
        value = float(value)
        if _metrics._enabled:
            _metrics._REGISTRY.set_gauge(name, value)
        self.gauges[name] = value
        self.records.append(
            {
                "type": "gauge",
                "name": name,
                "value": value,
                "t": self._now(),
                "parent": self._parent_id(),
            }
        )

    # -- Activation --------------------------------------------------------

    @contextmanager
    def activate(self) -> Iterator["Tracer"]:
        """Make this tracer the current thread's active tracer."""
        global _active_tracers
        previous = getattr(_state, "tracer", None)
        _state.tracer = self
        _active_tracers += 1
        try:
            yield self
        finally:
            _state.tracer = previous
            _active_tracers -= 1

    # -- Cross-process protocol -------------------------------------------

    def trace_payload(self) -> Dict[str, Any]:
        """Picklable snapshot for shipping across a process boundary."""
        payload: Dict[str, Any] = {
            "records": self.records,
            "counters": self.counters,
            "gauges": self.gauges,
        }
        if self._metrics_delta is not None:
            payload["metrics"] = self._metrics_delta
        return payload

    def absorb(
        self,
        payload: Dict[str, Any],
        t_offset: float = 0.0,
        parent: Optional[int] = None,
        merge_metrics: bool = True,
    ) -> None:
        """Graft another tracer's payload under the current span.

        Record ids are remapped past this tracer's id space, orphan
        records are re-parented to ``parent`` (default: the current
        span), and timestamps are shifted by ``t_offset`` seconds so the
        child's records sit on this tracer's timeline.  Counter totals
        and gauges merge into this tracer's aggregates.

        While the metrics registry is armed, the payload's aggregates
        also merge into it: a payload carrying a ``metrics`` key (a
        worker-side :meth:`~repro.telemetry.metrics.MetricsRegistry.delta_since`)
        merges histograms and all, an older payload without one falls
        back to folding its counter totals in.  Pass
        ``merge_metrics=False`` when the payload was produced *in this
        process* (the shard-recovery in-process fallback): its hooks
        already fed the registry live, so merging again would double
        every aggregate.
        """
        if merge_metrics and _metrics._enabled:
            worker_metrics = payload.get("metrics")
            if worker_metrics is not None:
                _metrics._REGISTRY.merge(worker_metrics)
            else:
                _metrics._REGISTRY.absorb_counters(
                    payload.get("counters", {})
                )
        base = self._next_id
        if parent is None:
            parent = self._parent_id()
        max_id = -1
        for record in payload["records"]:
            record = dict(record)
            record_id = record.get("id")
            if record_id is not None:
                max_id = max(max_id, record_id)
                record["id"] = record_id + base
            old_parent = record.get("parent")
            record["parent"] = (
                parent if old_parent is None else old_parent + base
            )
            if "t0" in record:
                record["t0"] += t_offset
            if "t" in record:
                record["t"] += t_offset
            self.records.append(record)
        self._next_id = base + max_id + 1
        for name, total in payload.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0.0) + total
        for name, value in payload.get("gauges", {}).items():
            self.gauges[name] = value

    # -- Export ------------------------------------------------------------

    def write_jsonl(
        self, path: str, name: str = "trace", append: bool = False
    ) -> None:
        """Write this tracer's records as a JSONL trace file.

        ``append=True`` adds a new trace segment instead of replacing the
        file — how a resumed run extends the original run's trace.
        """
        from repro.telemetry.export import write_jsonl

        write_jsonl(self.records, path, name=name, append=append)

    def summary(self):
        """The :class:`~repro.telemetry.replay.TraceSummary` of this
        tracer's records so far."""
        from repro.telemetry.replay import summarize

        return summarize(self.records)


# -- Module-level helpers (route to the current thread's tracer) -----------


def span(name: str, **attrs: Any):
    """A span on the current tracer, or a shared no-op when disabled."""
    tracer = current()
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)


def event(name: str, **attrs: Any) -> None:
    tracer = current()
    if tracer is not None:
        tracer.event(name, **attrs)


def count(name: str, n: float = 1) -> None:
    tracer = current()
    if tracer is not None:
        tracer.count(name, n)


def gauge(name: str, value: float) -> None:
    tracer = current()
    if tracer is not None:
        tracer.gauge(name, value)


@contextmanager
def trace_run(name: str = "run", **attrs: Any) -> Iterator[Tracer]:
    """Activate a fresh tracer with one root span for the block."""
    tracer = Tracer()
    with tracer.activate():
        with tracer.span(name, **attrs):
            yield tracer


@contextmanager
def traced_worker(name: str, **attrs: Any) -> Iterator[Tracer]:
    """Pool-worker scope: a fresh tracer plus scoped metrics collection.

    Activates a new :class:`Tracer` with ``name`` as its root span and
    arms the metrics registry for the block; on exit the registry delta
    observed during the block is attached to the tracer, so
    :meth:`Tracer.trace_payload` ships spans, counters *and* histogram
    aggregates home in one picklable payload.  The delta (not the whole
    registry) is what crosses: a pool worker reused across units never
    re-ships work it already reported.

    Also the recovery path's collection scope: running the same function
    *in-process* (dead-worker fallback) produces an identical payload,
    which the parent grafts with ``merge_metrics=False`` because the
    in-process hooks already fed the shared registry live.
    """
    tracer = Tracer()
    base = _metrics._REGISTRY.snapshot()
    _metrics.enable()
    try:
        with tracer.activate(), tracer.span(name, **attrs):
            yield tracer
    finally:
        _metrics.disable()
        tracer._metrics_delta = _metrics._REGISTRY.delta_since(base)
