"""Dependency-free synthesis telemetry.

The observability substrate of the stack (DESIGN.md §8): a thread-local
:class:`Tracer` with hierarchical spans, typed events and monotonic
counters/gauges, a JSONL trace container, and a replay pass that folds a
trace into a per-phase timing/counter tree
(:class:`~repro.telemetry.replay.TraceSummary`).

Instrumentation sites use the module-level helpers, which no-op at the
cost of one global integer test when no tracer is active::

    from repro import telemetry

    with telemetry.span("synthesis.round", round=i):
        telemetry.count("solver.newton_iterations", n)

Enable tracing for a block with :func:`trace_run` (tests, library use)
or the ``--trace FILE`` CLI flag; replay a written file with
``python -m repro trace FILE``.
"""

from repro.telemetry import metrics, monitor, profile
from repro.telemetry.core import (
    TRACE_SCHEMA,
    Tracer,
    count,
    current,
    enabled,
    event,
    gauge,
    span,
    trace_run,
    traced_worker,
)
from repro.telemetry.export import read_jsonl, write_jsonl
from repro.telemetry.replay import (
    SUMMARY_SCHEMA,
    SpanNode,
    TraceSummary,
    summarize,
)

__all__ = [
    "TRACE_SCHEMA",
    "SUMMARY_SCHEMA",
    "Tracer",
    "TraceSummary",
    "SpanNode",
    "count",
    "current",
    "enabled",
    "event",
    "gauge",
    "metrics",
    "monitor",
    "profile",
    "read_jsonl",
    "span",
    "summarize",
    "trace_run",
    "traced_worker",
    "write_jsonl",
]
