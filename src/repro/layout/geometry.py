"""Planar geometry primitives and spatial indexing.

All coordinates are metres (SI), consistent with the rest of the library;
exporters scale to database units.  Rectangles are axis-aligned and stored
as ``(x0, y0, x1, y1)`` with ``x0 <= x1`` and ``y0 <= y1``.

Beyond the primitives, this module hosts the two geometric-query
accelerators shared by the layout path:

* :class:`GridIndex` — a uniform-bin spatial index over rectangles,
  used by the DRC pair checks and the router's clearance queries in
  place of all-pairs scans;
* :func:`interval_pairs` — a vectorized sorted-sweep candidate-pair
  generator over x-intervals, used by the array-based extraction's
  coupling search.

Both return candidate *supersets*; callers re-test candidates with the
exact predicate, so swapping an all-pairs scan for an index never changes
results — only how many pairs are examined.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import LayoutError


@dataclass(frozen=True, slots=True)
class Point:
    """A 2-D point."""

    x: float
    y: float

    def translated(self, dx: float, dy: float) -> "Point":
        return Point(self.x + dx, self.y + dy)


class Orientation(Enum):
    """Instance orientation (subset of GDS transforms)."""

    R0 = "R0"
    R90 = "R90"
    R180 = "R180"
    R270 = "R270"
    MX = "MX"
    """Mirror across the x axis (flip vertically)."""
    MY = "MY"
    """Mirror across the y axis (flip horizontally)."""


@dataclass(frozen=True, slots=True)
class Rect:
    """Axis-aligned rectangle."""

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise LayoutError(
                f"malformed rectangle ({self.x0}, {self.y0}, {self.x1}, {self.y1})"
            )

    @staticmethod
    def from_size(x: float, y: float, width: float, height: float) -> "Rect":
        """Rectangle from lower-left corner plus size."""
        if width < 0.0 or height < 0.0:
            raise LayoutError("rectangle size must be non-negative")
        return Rect(x, y, x + width, y + height)

    @staticmethod
    def centered(cx: float, cy: float, width: float, height: float) -> "Rect":
        """Rectangle from centre plus size."""
        return Rect.from_size(cx - width / 2.0, cy - height / 2.0, width, height)

    # -- Measures -------------------------------------------------------------

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    @property
    def center(self) -> Point:
        return Point((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)

    # -- Transformations ------------------------------------------------------------

    def translated(self, dx: float, dy: float) -> "Rect":
        return Rect(self.x0 + dx, self.y0 + dy, self.x1 + dx, self.y1 + dy)

    def transformed(self, orientation: Orientation) -> "Rect":
        """Rectangle after an orientation about the origin.

        Each branch emits the normalized corner order directly (axis
        transforms keep rectangles axis-aligned), avoiding the corner
        list + min/max dance — this sits on the flattening hot path.
        """
        if orientation is Orientation.R0:
            return self
        if orientation is Orientation.R90:
            return Rect(-self.y1, self.x0, -self.y0, self.x1)
        if orientation is Orientation.R180:
            return Rect(-self.x1, -self.y1, -self.x0, -self.y0)
        if orientation is Orientation.R270:
            return Rect(self.y0, -self.x1, self.y1, -self.x0)
        if orientation is Orientation.MX:
            return Rect(self.x0, -self.y1, self.x1, -self.y0)
        if orientation is Orientation.MY:
            return Rect(-self.x1, self.y0, -self.x0, self.y1)
        raise LayoutError(  # pragma: no cover
            f"unsupported orientation {orientation}"
        )

    def expanded(self, margin: float) -> "Rect":
        """Rectangle grown by ``margin`` on every side."""
        return Rect(
            self.x0 - margin, self.y0 - margin, self.x1 + margin, self.y1 + margin
        )

    # -- Predicates --------------------------------------------------------------------

    def intersects(self, other: "Rect") -> bool:
        """True when interiors overlap (touching edges do not count)."""
        return (
            self.x0 < other.x1
            and other.x0 < self.x1
            and self.y0 < other.y1
            and other.y0 < self.y1
        )

    def contains(self, other: "Rect") -> bool:
        return (
            self.x0 <= other.x0
            and self.y0 <= other.y0
            and self.x1 >= other.x1
            and self.y1 >= other.y1
        )

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """Overlap rectangle, or None when disjoint."""
        # Disjointness fast path: bail before any max/min arithmetic —
        # extraction probes far more disjoint pairs than overlapping ones.
        if (
            self.x1 <= other.x0
            or other.x1 <= self.x0
            or self.y1 <= other.y0
            or other.y1 <= self.y0
        ):
            return None
        return Rect(
            max(self.x0, other.x0),
            max(self.y0, other.y0),
            min(self.x1, other.x1),
            min(self.y1, other.y1),
        )

    def distance_to(self, other: "Rect") -> float:
        """Minimum edge-to-edge distance (0 when overlapping/touching)."""
        dx = max(0.0, max(self.x0, other.x0) - min(self.x1, other.x1))
        dy = max(0.0, max(self.y0, other.y0) - min(self.y1, other.y1))
        return math.hypot(dx, dy)

    def parallel_run_x(self, other: "Rect") -> float:
        """Horizontal overlap length with another rectangle."""
        return max(0.0, min(self.x1, other.x1) - max(self.x0, other.x0))

    def parallel_run_y(self, other: "Rect") -> float:
        """Vertical overlap length with another rectangle."""
        return max(0.0, min(self.y1, other.y1) - max(self.y0, other.y0))


def bounding_box(rects: Iterable[Rect]) -> Rect:
    """Tight bounding box of a non-empty rectangle collection."""
    rects = list(rects)
    if not rects:
        raise LayoutError("bounding_box of an empty collection")
    return Rect(
        min(r.x0 for r in rects),
        min(r.y0 for r in rects),
        max(r.x1 for r in rects),
        max(r.y1 for r in rects),
    )


# -- Spatial indexing ---------------------------------------------------------


class GridIndex:
    """Uniform-grid spatial index over axis-aligned rectangles.

    Rectangles register in every square bin their bounds touch;
    :meth:`query` returns the indices of every rectangle sharing a bin
    with the (optionally expanded) probe window.  The result is a
    *superset* of the true overlaps — callers re-test candidates with
    their exact predicate — and is returned sorted ascending so callers
    that iterate candidates preserve insertion-order determinism.

    The index is incremental: :meth:`insert` accepts new rectangles at
    any time (the router grows its planned-shape index as stubs are
    placed).  ``queries`` counts probes so hot-path callers can flush a
    single ``grid.queries`` telemetry counter instead of paying a
    per-probe tracer call.
    """

    __slots__ = ("cell_size", "_bins", "_rects", "queries")

    def __init__(self, cell_size: float):
        if not cell_size > 0.0:
            raise LayoutError(
                f"grid cell size must be positive, got {cell_size!r}"
            )
        self.cell_size = cell_size
        self._bins: dict = {}
        self._rects: List[Tuple[float, float, float, float]] = []
        self.queries = 0

    @staticmethod
    def for_rects(
        rects: Sequence[Rect], margin: float = 0.0
    ) -> "GridIndex":
        """Build an index sized from the population's typical extent.

        The bin edge is twice the median larger-side length plus the
        query margin: small enough that long wires don't collapse into
        one bin, large enough that a typical probe touches O(1) bins.
        The median is robust against the odd huge rectangle (an n-well
        ring spanning the whole cell must not dictate the bin size).
        """
        if rects:
            sides = sorted(max(r.x1 - r.x0, r.y1 - r.y0) for r in rects)
            median = sides[len(sides) // 2]
        else:
            median = 0.0
        cell = 2.0 * median + 2.0 * abs(margin)
        index = GridIndex(cell if cell > 0.0 else 1e-6)
        for rect in rects:
            index.insert(rect)
        return index

    def __len__(self) -> int:
        return len(self._rects)

    def _bin_span(
        self, x0: float, y0: float, x1: float, y1: float
    ) -> Tuple[int, int, int, int]:
        cell = self.cell_size
        return (
            math.floor(x0 / cell),
            math.floor(y0 / cell),
            math.floor(x1 / cell),
            math.floor(y1 / cell),
        )

    def insert(self, rect: Rect) -> int:
        """Add a rectangle; returns its index (insertion order)."""
        index = len(self._rects)
        bounds = (rect.x0, rect.y0, rect.x1, rect.y1)
        self._rects.append(bounds)
        ix0, iy0, ix1, iy1 = self._bin_span(*bounds)
        bins = self._bins
        for ix in range(ix0, ix1 + 1):
            for iy in range(iy0, iy1 + 1):
                key = (ix, iy)
                members = bins.get(key)
                if members is None:
                    bins[key] = [index]
                else:
                    members.append(index)
        return index

    def query(self, rect: Rect, margin: float = 0.0) -> List[int]:
        """Sorted indices of rectangles that *may* overlap the window.

        The window is ``rect`` expanded by ``margin`` on every side.
        Candidates are pre-filtered with an open-interval bounds test
        against the window, so the superset is tight: a candidate is
        returned only when its bounds genuinely overlap the window
        (touching edges included via the margin the caller chose).
        """
        self.queries += 1
        wx0 = rect.x0 - margin
        wy0 = rect.y0 - margin
        wx1 = rect.x1 + margin
        wy1 = rect.y1 + margin
        ix0, iy0, ix1, iy1 = self._bin_span(wx0, wy0, wx1, wy1)
        bins = self._bins
        rects = self._rects
        if ix0 == ix1 and iy0 == iy1:
            # Single-bin probe (the common case for compact windows):
            # members are in insertion order already, no dedup needed.
            out = []
            members = bins.get((ix0, iy0))
            if members:
                for index in members:
                    rx0, ry0, rx1, ry1 = rects[index]
                    if wx0 < rx1 and rx0 < wx1 and wy0 < ry1 and ry0 < wy1:
                        out.append(index)
            return out
        seen: set = set()
        out: List[int] = []
        for ix in range(ix0, ix1 + 1):
            for iy in range(iy0, iy1 + 1):
                members = bins.get((ix, iy))
                if not members:
                    continue
                for index in members:
                    if index in seen:
                        continue
                    seen.add(index)
                    rx0, ry0, rx1, ry1 = rects[index]
                    if (
                        wx0 < rx1
                        and rx0 < wx1
                        and wy0 < ry1
                        and ry0 < wy1
                    ):
                        out.append(index)
        out.sort()
        return out


def interval_pairs(
    starts: "object", ends: "object", window: float
) -> Tuple["object", "object"]:
    """Candidate index pairs ``(i, j)`` with ``starts[j] <= ends[i] + window``.

    Vectorized sorted-sweep over x-intervals: inputs must already be
    sorted by ``starts`` ascending.  Returns two equal-length int arrays
    ``(ii, jj)`` with ``i < j`` in sorted order — exactly the pairs a
    scalar sweep with an early ``break`` on ``starts[j] > ends[i] +
    window`` would visit, in the same order.
    """
    import numpy as np

    starts = np.asarray(starts, dtype=float)
    ends = np.asarray(ends, dtype=float)
    n = starts.size
    if n < 2:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty
    first = np.arange(n, dtype=np.intp) + 1
    last = np.searchsorted(starts, ends + window, side="right")
    counts = np.maximum(last - first, 0)
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty
    ii = np.repeat(np.arange(n, dtype=np.intp), counts)
    offsets = np.cumsum(counts) - counts
    jj = (
        np.arange(total, dtype=np.intp)
        - np.repeat(offsets, counts)
        + np.repeat(first, counts)
    )
    return ii, jj
