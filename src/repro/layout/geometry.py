"""Planar geometry primitives.

All coordinates are metres (SI), consistent with the rest of the library;
exporters scale to database units.  Rectangles are axis-aligned and stored
as ``(x0, y0, x1, y1)`` with ``x0 <= x1`` and ``y0 <= y1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Optional

from repro.errors import LayoutError


@dataclass(frozen=True)
class Point:
    """A 2-D point."""

    x: float
    y: float

    def translated(self, dx: float, dy: float) -> "Point":
        return Point(self.x + dx, self.y + dy)


class Orientation(Enum):
    """Instance orientation (subset of GDS transforms)."""

    R0 = "R0"
    R90 = "R90"
    R180 = "R180"
    R270 = "R270"
    MX = "MX"
    """Mirror across the x axis (flip vertically)."""
    MY = "MY"
    """Mirror across the y axis (flip horizontally)."""


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle."""

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise LayoutError(
                f"malformed rectangle ({self.x0}, {self.y0}, {self.x1}, {self.y1})"
            )

    @staticmethod
    def from_size(x: float, y: float, width: float, height: float) -> "Rect":
        """Rectangle from lower-left corner plus size."""
        if width < 0.0 or height < 0.0:
            raise LayoutError("rectangle size must be non-negative")
        return Rect(x, y, x + width, y + height)

    @staticmethod
    def centered(cx: float, cy: float, width: float, height: float) -> "Rect":
        """Rectangle from centre plus size."""
        return Rect.from_size(cx - width / 2.0, cy - height / 2.0, width, height)

    # -- Measures -------------------------------------------------------------

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    @property
    def center(self) -> Point:
        return Point((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)

    # -- Transformations ------------------------------------------------------------

    def translated(self, dx: float, dy: float) -> "Rect":
        return Rect(self.x0 + dx, self.y0 + dy, self.x1 + dx, self.y1 + dy)

    def transformed(self, orientation: Orientation) -> "Rect":
        """Rectangle after an orientation about the origin."""
        corners = [(self.x0, self.y0), (self.x1, self.y1)]
        if orientation is Orientation.R0:
            mapped = corners
        elif orientation is Orientation.R90:
            mapped = [(-y, x) for x, y in corners]
        elif orientation is Orientation.R180:
            mapped = [(-x, -y) for x, y in corners]
        elif orientation is Orientation.R270:
            mapped = [(y, -x) for x, y in corners]
        elif orientation is Orientation.MX:
            mapped = [(x, -y) for x, y in corners]
        elif orientation is Orientation.MY:
            mapped = [(-x, y) for x, y in corners]
        else:  # pragma: no cover
            raise LayoutError(f"unsupported orientation {orientation}")
        xs = [p[0] for p in mapped]
        ys = [p[1] for p in mapped]
        return Rect(min(xs), min(ys), max(xs), max(ys))

    def expanded(self, margin: float) -> "Rect":
        """Rectangle grown by ``margin`` on every side."""
        return Rect(
            self.x0 - margin, self.y0 - margin, self.x1 + margin, self.y1 + margin
        )

    # -- Predicates --------------------------------------------------------------------

    def intersects(self, other: "Rect") -> bool:
        """True when interiors overlap (touching edges do not count)."""
        return (
            self.x0 < other.x1
            and other.x0 < self.x1
            and self.y0 < other.y1
            and other.y0 < self.y1
        )

    def contains(self, other: "Rect") -> bool:
        return (
            self.x0 <= other.x0
            and self.y0 <= other.y0
            and self.x1 >= other.x1
            and self.y1 >= other.y1
        )

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """Overlap rectangle, or None when disjoint."""
        x0 = max(self.x0, other.x0)
        y0 = max(self.y0, other.y0)
        x1 = min(self.x1, other.x1)
        y1 = min(self.y1, other.y1)
        if x1 <= x0 or y1 <= y0:
            return None
        return Rect(x0, y0, x1, y1)

    def distance_to(self, other: "Rect") -> float:
        """Minimum edge-to-edge distance (0 when overlapping/touching)."""
        dx = max(0.0, max(self.x0, other.x0) - min(self.x1, other.x1))
        dy = max(0.0, max(self.y0, other.y0) - min(self.y1, other.y1))
        return math.hypot(dx, dy)

    def parallel_run_x(self, other: "Rect") -> float:
        """Horizontal overlap length with another rectangle."""
        return max(0.0, min(self.x1, other.x1) - max(self.x0, other.x0))

    def parallel_run_y(self, other: "Rect") -> float:
        """Vertical overlap length with another rectangle."""
        return max(0.0, min(self.y1, other.y1) - max(self.y0, other.y0))


def bounding_box(rects: Iterable[Rect]) -> Rect:
    """Tight bounding box of a non-empty rectangle collection."""
    rects = list(rects)
    if not rects:
        raise LayoutError("bounding_box of an empty collection")
    return Rect(
        min(r.x0 for r in rects),
        min(r.y0 for r in rects),
        max(r.x1 for r in rects),
        max(r.y1 for r in rects),
    )
