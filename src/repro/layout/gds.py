"""Minimal GDSII stream writer.

Implements the subset of the GDSII binary format needed to export flat
rectangle layouts: HEADER/BGNLIB/LIBNAME/UNITS, one structure with BOUNDARY
elements per rectangle, and the closing records.  Output opens in standard
tools (KLayout etc.).

Record framing: 2-byte big-endian length (including the 4-byte header),
1-byte record type, 1-byte data type.
"""

from __future__ import annotations

import struct
from datetime import datetime
from typing import List

from repro.layout.cell import Cell
from repro.layout.geometry import Rect
from repro.layout.layers import GDS_LAYER_NUMBERS

# Record types.
_HEADER = 0x00
_BGNLIB = 0x01
_LIBNAME = 0x02
_UNITS = 0x03
_ENDLIB = 0x04
_BGNSTR = 0x05
_STRNAME = 0x06
_ENDSTR = 0x07
_BOUNDARY = 0x08
_LAYER = 0x0D
_DATATYPE = 0x0E
_XY = 0x10
_ENDEL = 0x11

# Data types.
_NO_DATA = 0x00
_INT2 = 0x02
_INT4 = 0x03
_REAL8 = 0x05
_ASCII = 0x06

DB_UNIT = 1e-9
"""Database unit: 1 nm."""


def _record(record_type: int, data_type: int, payload: bytes = b"") -> bytes:
    length = 4 + len(payload)
    return struct.pack(">HBB", length, record_type, data_type) + payload


def _ascii(text: str) -> bytes:
    data = text.encode("ascii")
    if len(data) % 2:
        data += b"\0"
    return data


def _real8(value: float) -> bytes:
    """GDSII 8-byte excess-64 base-16 real."""
    if value == 0.0:
        return b"\0" * 8
    sign = 0
    if value < 0.0:
        sign = 0x80
        value = -value
    exponent = 64
    # Normalise mantissa into [1/16, 1).
    while value >= 1.0:
        value /= 16.0
        exponent += 1
    while value < 1.0 / 16.0:
        value *= 16.0
        exponent -= 1
    mantissa = int(value * (1 << 56))
    return struct.pack(">BB", sign | exponent, (mantissa >> 48) & 0xFF) + struct.pack(
        ">HI", (mantissa >> 32) & 0xFFFF, mantissa & 0xFFFFFFFF
    )


def _timestamp() -> bytes:
    now = datetime(2000, 1, 1)  # deterministic output
    fields = (now.year, now.month, now.day, now.hour, now.minute, now.second)
    return struct.pack(">6H", *fields) * 2


def cell_to_gds(cell: Cell, library: str = "REPRO") -> bytes:
    """Serialise a cell (flattened) into a GDSII byte stream."""
    chunks: List[bytes] = [
        _record(_HEADER, _INT2, struct.pack(">h", 600)),
        _record(_BGNLIB, _INT2, _timestamp()),
        _record(_LIBNAME, _ASCII, _ascii(library)),
        _record(_UNITS, _REAL8, _real8(DB_UNIT / 1e-6) + _real8(DB_UNIT)),
        _record(_BGNSTR, _INT2, _timestamp()),
        _record(_STRNAME, _ASCII, _ascii(cell.name.upper()[:32] or "TOP")),
    ]
    for shape in cell.flattened():
        layer_number, data_type = GDS_LAYER_NUMBERS[shape.layer]
        rect = shape.rect
        x0 = round(rect.x0 / DB_UNIT)
        y0 = round(rect.y0 / DB_UNIT)
        x1 = round(rect.x1 / DB_UNIT)
        y1 = round(rect.y1 / DB_UNIT)
        coordinates = struct.pack(
            ">10i", x0, y0, x1, y0, x1, y1, x0, y1, x0, y0
        )
        chunks.extend(
            (
                _record(_BOUNDARY, _NO_DATA),
                _record(_LAYER, _INT2, struct.pack(">h", layer_number)),
                _record(_DATATYPE, _INT2, struct.pack(">h", data_type)),
                _record(_XY, _INT4, coordinates),
                _record(_ENDEL, _NO_DATA),
            )
        )
    chunks.append(_record(_ENDSTR, _NO_DATA))
    chunks.append(_record(_ENDLIB, _NO_DATA))
    return b"".join(chunks)


def write_gds(cell: Cell, path: str, library: str = "REPRO") -> None:
    """Serialise ``cell`` and write the stream to ``path`` (atomically —
    a killed export leaves either the old stream or the new one, never a
    truncated GDSII file that downstream tools would choke on)."""
    from repro.ioutil import atomic_write

    atomic_write(path, cell_to_gds(cell, library=library))


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------

_NUMBER_TO_LAYER = {
    numbers[0]: layer for layer, numbers in GDS_LAYER_NUMBERS.items()
}


def _iter_records(stream: bytes):
    """Yield ``(record_type, payload)`` pairs from a GDSII stream."""
    offset = 0
    total = len(stream)
    while offset < total:
        if offset + 4 > total:
            raise ValueError("truncated GDSII record header")
        length, record_type, _data_type = struct.unpack(
            ">HBB", stream[offset:offset + 4]
        )
        if length < 4 or offset + length > total:
            raise ValueError("malformed GDSII record length")
        yield record_type, stream[offset + 4:offset + length]
        offset += length


def gds_to_cell(stream: bytes, name: str = "imported") -> Cell:
    """Parse a (flat, rectangle-only) GDSII stream back into a cell.

    Only BOUNDARY elements whose five-point outline is axis-aligned are
    accepted — exactly what :func:`cell_to_gds` emits.  Unknown layer
    numbers are skipped.
    """
    cell = Cell(name)
    layer_number = None
    coordinates = None
    structure_name = None
    for record_type, payload in _iter_records(stream):
        if record_type == _STRNAME:
            structure_name = payload.rstrip(b"\0").decode("ascii")
        elif record_type == _LAYER:
            layer_number = struct.unpack(">h", payload)[0]
        elif record_type == _XY:
            count = len(payload) // 4
            coordinates = struct.unpack(f">{count}i", payload)
        elif record_type == _ENDEL:
            if layer_number is not None and coordinates is not None:
                layer = _NUMBER_TO_LAYER.get(layer_number)
                if layer is not None:
                    xs = coordinates[0::2]
                    ys = coordinates[1::2]
                    rect = Rect(
                        min(xs) * DB_UNIT,
                        min(ys) * DB_UNIT,
                        max(xs) * DB_UNIT,
                        max(ys) * DB_UNIT,
                    )
                    cell.add_shape(layer, rect)
            layer_number = None
            coordinates = None
        elif record_type == _ENDLIB:
            break
    if structure_name:
        cell.name = structure_name.lower()
    return cell


def read_gds(path: str, name: str = "imported") -> Cell:
    """Read a GDSII file written by :func:`write_gds`."""
    with open(path, "rb") as handle:
        return gds_to_cell(handle.read(), name=name)
