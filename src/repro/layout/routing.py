"""Channel routing between module rows.

The assembly style matches classic analog row-based layout: module rows are
stacked vertically with *routing channels* between them.  Every inter-module
net receives

* one horizontal metal-2 **track** per channel it crosses,
* vertical metal-1 **stubs** from each module pin (the module's metal-2
  rail) into the nearest allocated track, and
* a vertical metal-1 **side column** tying its tracks together when the net
  spans more than one channel.

Because horizontal routing is metal 2 and vertical routing is metal 1,
crossings between different nets never short.  Track widths follow the
electromigration rules; track-to-track coupling within a channel is exactly
what the parasitic estimator reports as coupling capacitance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro import telemetry
from repro.errors import LayoutError
from repro.layout.cell import Cell
from repro.layout.devices import ModuleLayout
from repro.layout.geometry import GridIndex, Rect
from repro.layout.layers import Layer
from repro.layout.reliability import wire_width_for_current
from repro.technology.process import Technology


@dataclass
class PlacedModule:
    """A module instance at an absolute position."""

    name: str
    layout: ModuleLayout
    dx: float = 0.0
    dy: float = 0.0

    def pin_rect(self, net: str) -> Optional[Rect]:
        """Translated pin rectangle for ``net``, or None."""
        if net not in self.layout.cell.pins:
            return None
        rect = self.layout.cell.pin_rect(net)
        return rect.translated(self.dx, self.dy)

    def pin_shapes(self, net: str) -> List[Tuple[Rect, Layer]]:
        """All translated pin rectangles of ``net`` with their layers."""
        shapes = self.layout.cell.pins.get(net, [])
        return [
            (shape.rect.translated(self.dx, self.dy), shape.layer)
            for shape in shapes
        ]

    def bbox(self) -> Rect:
        return self.layout.cell.bbox().translated(self.dx, self.dy)


@dataclass
class RoutedWire:
    """One drawn routing shape."""

    layer: Layer
    rect: Rect
    net: str


@dataclass
class RoutedNet:
    """All routing geometry of one net plus derived parasitics."""

    name: str
    wires: List[RoutedWire] = field(default_factory=list)
    via_count: int = 0

    def total_length(self) -> float:
        """Summed centre-line length of all segments, m."""
        return sum(max(w.rect.width, w.rect.height) for w in self.wires)

    def ground_capacitance(self, tech: Technology) -> float:
        """Area + fringe capacitance of the routing to substrate, F."""
        total = 0.0
        for wire in self.wires:
            if wire.layer is Layer.METAL1:
                metal = tech.metal("metal1")
            elif wire.layer is Layer.METAL2:
                metal = tech.metal("metal2")
            else:
                continue
            rect = wire.rect
            total += metal.area_cap * rect.area + metal.fringe_cap * rect.perimeter
        return total


@dataclass
class RoutingResult:
    """Complete routing of an assembly."""

    nets: Dict[str, RoutedNet]
    channel_tracks: Dict[int, List[Tuple[str, Rect]]]
    """Per channel index: ordered (net, track rect) pairs."""

    def coupling_capacitances(self, tech: Technology) -> Dict[Tuple[str, str], float]:
        """Track-to-track coupling between adjacent tracks per channel, F."""
        metal2 = tech.metal("metal2")
        coupling: Dict[Tuple[str, str], float] = {}
        for tracks in self.channel_tracks.values():
            for (net_a, rect_a), (net_b, rect_b) in zip(tracks, tracks[1:]):
                if net_a == net_b:
                    continue
                run = rect_a.parallel_run_x(rect_b)
                if run <= 0.0:
                    continue
                spacing = max(rect_b.y0 - rect_a.y1, rect_a.y0 - rect_b.y1)
                if spacing <= 0.0:
                    continue
                key = tuple(sorted((net_a, net_b)))
                coupling[key] = coupling.get(key, 0.0) + metal2.coupling_capacitance(
                    run, spacing
                )
        return coupling


@dataclass
class ChannelPlan:
    """Pre-computed channel structure (usable without drawing).

    ``net_tracks`` maps net name to the list of channel indices where it
    owns a track; ``heights`` is the physical height of each channel.
    """

    net_tracks: Dict[str, List[int]]
    track_order: Dict[int, List[str]]
    heights: List[float]
    track_widths: Dict[str, float]


class ChannelRouter:
    """Routes nets across stacked module rows."""

    def __init__(
        self,
        tech: Technology,
        net_currents: Optional[Mapping[str, float]] = None,
    ):
        self.tech = tech
        self.net_currents = dict(net_currents or {})
        self.rules = tech.rules

    # -- Planning --------------------------------------------------------------

    def track_width(self, net: str) -> float:
        width = wire_width_for_current(
            self.tech, Layer.METAL2, abs(self.net_currents.get(net, 0.0))
        )
        # Tracks land via cuts: never narrower than a via plus enclosure.
        floor = self.rules.via_size + 2.0 * self.rules.via_metal_enclosure
        return max(width, self.rules.snap_up(floor))

    def stub_width(self, net: str) -> float:
        return wire_width_for_current(
            self.tech, Layer.METAL1, abs(self.net_currents.get(net, 0.0))
        )

    def plan_channels(
        self, row_count: int, net_pins: Mapping[str, List[int]]
    ) -> ChannelPlan:
        """Allocate tracks given each net's pin *channel* indices.

        With ``row_count`` rows there are ``row_count + 1`` channels:
        channel 0 below the bottom row, channel ``i`` between rows
        ``i-1`` and ``i``, and channel ``row_count`` above the top row.
        A pin on a module's bottom edge belongs to its row's channel, a
        pin on the top edge to the channel above — so a stub never has to
        cross its own module.  A net with pins in channels ``[lo..hi]``
        receives one track in every channel of that range (side columns
        tie them together).
        """
        channel_count = row_count + 1
        net_tracks: Dict[str, List[int]] = {}
        track_order: Dict[int, List[str]] = {i: [] for i in range(channel_count)}
        for net in sorted(net_pins):
            pin_channels = sorted(set(net_pins[net]))
            if not pin_channels:
                continue
            if pin_channels[0] < 0 or pin_channels[-1] >= channel_count:
                raise LayoutError(
                    f"net {net!r} uses channel outside 0..{channel_count - 1}"
                )
            channels = list(range(pin_channels[0], pin_channels[-1] + 1))
            net_tracks[net] = channels
            for channel in channels:
                track_order[channel].append(net)

        widths = {net: self.track_width(net) for net in net_tracks}
        heights = []
        for channel in range(channel_count):
            total = self.rules.metal2_spacing
            for net in track_order[channel]:
                total += widths[net] + self.rules.metal2_spacing
            heights.append(total)
        return ChannelPlan(
            net_tracks=net_tracks,
            track_order=track_order,
            heights=heights,
            track_widths=widths,
        )

    # -- Drawing -----------------------------------------------------------------

    def route(
        self,
        cell: Cell,
        modules: Sequence[PlacedModule],
        row_of_module: Mapping[str, int],
        plan: ChannelPlan,
        channel_y: Sequence[float],
        x_extent: Tuple[float, float],
    ) -> RoutingResult:
        """Draw tracks, stubs and side columns into ``cell``.

        ``channel_y`` gives the bottom y of each channel; ``x_extent`` is
        the horizontal span of the assembly used for track extents and the
        side-column x allocation.
        """
        rules = self.rules
        x_left, x_right = x_extent
        nets: Dict[str, RoutedNet] = {}
        channel_tracks: Dict[int, List[Tuple[str, Rect]]] = {}

        # Net pin rectangles by net (all pins, with their layers).
        pins_by_net: Dict[str, List[Tuple[PlacedModule, Rect, Layer]]] = {}
        for module in modules:
            for net in module.layout.cell.pins:
                for rect, layer in module.pin_shapes(net):
                    pins_by_net.setdefault(net, []).append(
                        (module, rect, layer)
                    )

        # Side-column x per multi-channel net, allocated left to right just
        # past the assembly's right edge.  The effective width of a column
        # includes its via landing pads, which may be wider than the wire.
        via_pad_width = rules.via_size + 2.0 * rules.via_metal_enclosure
        side_column_x: Dict[str, float] = {}
        next_edge = x_right + rules.metal1_spacing
        for net in sorted(plan.net_tracks):
            if len(plan.net_tracks[net]) > 1:
                width = self.stub_width(net)
                effective = max(width, via_pad_width)
                side_column_x[net] = next_edge + (effective - width) / 2.0
                next_edge += effective + rules.metal1_spacing

        via = rules.via_size
        via_pad = via + 2.0 * rules.via_metal_enclosure

        # -- Pass 1: stub placement --------------------------------------
        # Every pin is assigned to the channel on its own side of its
        # module (a bottom-edge pin uses the channel below the row, a
        # top-edge pin the channel above — the vertical run never crosses
        # the module).  Placement is collision-checked geometrically
        # against all module metal and all previously planned routing;
        # a stub may slide off its pin rail into a module gap, paying a
        # same-net rail *extension* at the pin's level.
        spacing = rules.metal1_spacing
        # Accumulated locally and flushed as one counter update at the end
        # of the call: the candidate scan is the router's hot loop.
        clearance_rejections = 0

        # Track y-centres are fixed by the channel plan (the x extents
        # come later), so stub rectangles are known at placement time.
        track_y_center: Dict[Tuple[str, int], float] = {}
        for channel, order in plan.track_order.items():
            y = channel_y[channel] + rules.metal2_spacing
            for track_net in order:
                width = plan.track_widths[track_net]
                track_y_center[(track_net, channel)] = y + width / 2.0
                y += width + rules.metal2_spacing

        module_obstacles: Dict[Layer, List[Tuple[Optional[str], Rect]]] = {
            Layer.METAL1: [],
            Layer.METAL2: [],
        }
        for module in modules:
            for shape in module.layout.cell.flattened():
                if shape.layer in module_obstacles:
                    module_obstacles[shape.layer].append(
                        (shape.net,
                         shape.rect.translated(module.dx, module.dy))
                    )

        # Clearance queries resolve through per-layer grid indexes: a
        # static one over the module metal (built once) and an
        # incremental one that grows as routing shapes are planned.  The
        # index pre-filters candidates with the same window-overlap test
        # the old linear scan applied, so clearance answers are
        # unchanged — only the number of shapes examined shrinks.
        obstacle_index: Dict[Layer, GridIndex] = {}
        obstacle_nets: Dict[Layer, List[Optional[str]]] = {}
        planned_index: Dict[Layer, GridIndex] = {}
        planned_nets: Dict[Layer, List[str]] = {}
        for layer, entries in module_obstacles.items():
            obstacle_index[layer] = GridIndex.for_rects(
                [rect for _net, rect in entries], margin=spacing
            )
            obstacle_nets[layer] = [net for net, _rect in entries]
            planned_index[layer] = GridIndex(obstacle_index[layer].cell_size)
            planned_nets[layer] = []

        def plan_shape(layer: Layer, net: str, rect: Rect) -> None:
            planned_index[layer].insert(rect)
            planned_nets[layer].append(net)

        # Side columns are known obstacles from the start.
        if channel_y:
            column_y_lo = min(channel_y) - 2.0 * via_pad
            column_y_hi = max(channel_y) + 10.0 * via_pad
            for column_net, column_x in side_column_x.items():
                width = self.stub_width(column_net)
                plan_shape(
                    Layer.METAL1,
                    column_net,
                    Rect(column_x, column_y_lo,
                         column_x + width, column_y_hi),
                )

        # Stubs may roam past the nominal module span (gate pads and
        # escape rails sit in the left margin) but not into the side
        # columns' alley.
        roam_left = min(
            [x_left] + [m.bbox().x0 for m in modules]
        ) - 10.0 * rules.metal1_spacing
        roam_right = x_right

        clearance_margin = spacing - 1e-12

        def is_clear(layer: Layer, rect: Rect, net: str) -> bool:
            nets_list = planned_nets[layer]
            for i in planned_index[layer].query(rect, clearance_margin):
                if nets_list[i] != net:
                    return False
            nets_list = obstacle_nets[layer]
            for i in obstacle_index[layer].query(rect, clearance_margin):
                if nets_list[i] != net:
                    return False
            return True

        # net -> [(pin, pin_layer, channel, stub x, extension rect|None)]
        stub_plan: Dict[
            str, List[Tuple[Rect, Layer, int, float, Optional[Rect]]]
        ] = {}
        for net, channels in plan.net_tracks.items():
            stub_w = self.stub_width(net)
            effective = max(stub_w, via_pad)
            half = effective / 2.0
            for module, pin, pin_layer in pins_by_net.get(net, []):
                row = row_of_module[module.name]
                box = module.bbox()
                natural = row if pin.center.y < box.center.y else row + 1
                if natural in channels:
                    channel = natural
                else:
                    channel = min(channels, key=lambda c: abs(c - natural))
                track_y = track_y_center[(net, channel)]
                desired = min(
                    max(pin.center.x, pin.x0 + stub_w / 2.0),
                    pin.x1 - stub_w / 2.0,
                )

                def placement(x_center: float):
                    """([metal-1 rects], extension) or None.

                    The vertical run is modelled at its true width; via
                    landing pads (wider) only at the track end and — for
                    metal-2 pins — at the pin end.
                    """
                    y_lo = min(pin.center.y, track_y)
                    y_hi = max(pin.center.y, track_y)
                    pieces = [
                        Rect(
                            x_center - stub_w / 2.0, y_lo,
                            x_center + stub_w / 2.0, y_hi,
                        ),
                        Rect.centered(x_center, track_y, via_pad, via_pad),
                    ]
                    if pin_layer is Layer.METAL2:
                        pieces.append(
                            Rect.centered(
                                x_center, pin.center.y, via_pad, via_pad
                            )
                        )
                    extension: Optional[Rect] = None
                    # The extension must reach past the pin-end via pad.
                    # Metal-2 pins carry a via pad wider than the stub, so
                    # the pad (not the stub) leaving the pin is what
                    # demands the extension — otherwise the pad overhangs
                    # the pin with no metal-2 enclosure for the cut.
                    reach = max(stub_w, via_pad) / 2.0
                    pin_half = (
                        via_pad / 2.0
                        if pin_layer is Layer.METAL2
                        else stub_w / 2.0
                    )
                    if x_center < pin.x0 + pin_half - 1e-12:
                        extension = Rect(
                            x_center - reach, pin.y0,
                            pin.x0 + spacing, pin.y1,
                        )
                    elif x_center > pin.x1 - pin_half + 1e-12:
                        extension = Rect(
                            pin.x1 - spacing, pin.y0,
                            x_center + reach, pin.y1,
                        )
                    for piece in pieces:
                        if not is_clear(Layer.METAL1, piece, net):
                            return None
                    if extension is not None and not is_clear(
                        pin_layer, extension, net
                    ):
                        return None
                    return pieces, extension

                chosen = None
                step = 2.0 * rules.grid
                for k in range(0, 200):
                    candidates = (
                        (desired,) if k == 0
                        else (desired + k * step, desired - k * step)
                    )
                    for candidate in candidates:
                        if candidate - half < roam_left:
                            continue
                        if candidate + half > roam_right:
                            continue
                        result = placement(candidate)
                        if result is not None:
                            chosen = (candidate, result)
                            break
                        clearance_rejections += 1
                    if chosen is not None:
                        break
                if chosen is None:
                    if telemetry.enabled() and clearance_rejections:
                        telemetry.count(
                            "router.clearance_rejections", clearance_rejections
                        )
                        telemetry.event(
                            "router.congestion", net=net, channel=channel
                        )
                    # Drawing an overlap would be a silent short; real
                    # routers fail on congestion and so do we.
                    raise LayoutError(
                        f"routing congestion: net {net!r} cannot place a "
                        f"stub in channel {channel}; widen the module "
                        "gaps or rearrange the rows"
                    )
                x_center, (pieces, extension) = chosen
                for piece in pieces:
                    plan_shape(Layer.METAL1, net, piece)
                if extension is not None:
                    plan_shape(pin_layer, net, extension)
                stub_plan.setdefault(net, []).append(
                    (pin, pin_layer, channel, x_center, extension)
                )

        # -- Pass 2: track extents from the placed stubs ------------------
        net_extent: Dict[str, Tuple[float, float]] = {}
        for net, channels in plan.net_tracks.items():
            xs = [
                x for _pin, _layer, _channel, x, _ext in stub_plan.get(net, [])
            ]
            if not xs:
                xs = [(x_left + x_right) / 2.0]
            margin = max(plan.track_widths[net], via_pad)
            lo = min(xs) - margin
            hi = max(xs) + margin
            if net in side_column_x:
                # Reach past the side column's via pad.
                hi = (
                    side_column_x[net]
                    + self.stub_width(net) / 2.0
                    + via_pad_width / 2.0
                )
            net_extent[net] = (lo, hi)

        # Track y positions per channel.
        track_rect: Dict[Tuple[str, int], Rect] = {}
        for channel, order in plan.track_order.items():
            y = channel_y[channel] + rules.metal2_spacing
            tracks_here: List[Tuple[str, Rect]] = []
            for net in order:
                width = plan.track_widths[net]
                lo, hi = net_extent[net]
                rect = Rect(lo, y, hi, y + width)
                track_rect[(net, channel)] = rect
                tracks_here.append((net, rect))
                y += width + rules.metal2_spacing
            channel_tracks[channel] = tracks_here

        # -- Pass 3: draw ---------------------------------------------------
        for net, channels in plan.net_tracks.items():
            routed = RoutedNet(name=net)
            nets[net] = routed

            def draw(layer: Layer, rect: Rect) -> None:
                cell.add_shape(layer, rect, net=net)
                routed.wires.append(RoutedWire(layer=layer, rect=rect, net=net))

            def draw_via(x_center: float, y_center: float) -> None:
                cell.add_shape(
                    Layer.VIA1,
                    Rect.centered(x_center, y_center, via, via),
                    net=net,
                )
                cell.add_shape(
                    Layer.METAL1,
                    Rect.centered(x_center, y_center, via_pad, via_pad),
                    net=net,
                )
                routed.via_count += 1

            for channel in channels:
                draw(Layer.METAL2, track_rect[(net, channel)])

            stub_w = self.stub_width(net)
            for pin, pin_layer, channel, x_center, extension in stub_plan.get(
                net, []
            ):
                track = track_rect[(net, channel)]
                y_lo = min(pin.center.y, track.center.y)
                y_hi = max(pin.center.y, track.center.y)
                draw(
                    Layer.METAL1,
                    Rect(
                        x_center - stub_w / 2.0,
                        y_lo,
                        x_center + stub_w / 2.0,
                        y_hi,
                    ),
                )
                if extension is not None:
                    # Same-net rail extension carrying the pin out to the
                    # slid stub position.
                    draw(pin_layer, extension)
                # Metal-2 pins need a via down to the metal-1 stub.
                if pin_layer is Layer.METAL2:
                    draw_via(x_center, pin.center.y)
                draw_via(x_center, track.center.y)

            # Side column joining multiple channels.
            if len(channels) > 1:
                column_w = self.stub_width(net)
                column_x = side_column_x[net]
                rect_lo = track_rect[(net, channels[0])]
                rect_hi = track_rect[(net, channels[-1])]
                draw(
                    Layer.METAL1,
                    Rect(
                        column_x,
                        rect_lo.center.y,
                        column_x + column_w,
                        rect_hi.center.y,
                    ),
                )
                for channel in channels:
                    track = track_rect[(net, channel)]
                    draw_via(column_x + column_w / 2.0, track.center.y)

        if telemetry.enabled():
            if clearance_rejections:
                telemetry.count(
                    "router.clearance_rejections", clearance_rejections
                )
            probes = sum(
                index.queries for index in planned_index.values()
            ) + sum(index.queries for index in obstacle_index.values())
            if probes:
                telemetry.count("grid.queries", probes)
        return RoutingResult(nets=nets, channel_tracks=channel_tracks)
