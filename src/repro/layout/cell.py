"""Layout cells.

A :class:`Cell` holds net-annotated shapes, named pins and sub-cell
instances.  Net annotation is what makes the geometric extractor possible:
every interconnect shape knows which electrical net it implements, so
extraction reduces to geometry arithmetic instead of connectivity tracing.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import LayoutError
from repro.layout.geometry import Orientation, Rect, bounding_box
from repro.layout.layers import Layer


@dataclass(frozen=True, slots=True)
class Shape:
    """One rectangle on one layer, optionally bound to a net."""

    layer: Layer
    rect: Rect
    net: Optional[str] = None


@dataclass
class Instance:
    """Placement of a sub-cell."""

    cell: "Cell"
    dx: float = 0.0
    dy: float = 0.0
    orientation: Orientation = Orientation.R0
    name: str = ""
    net_map: Dict[str, str] = field(default_factory=dict)
    """Renames the sub-cell's local nets to parent nets on flattening."""


class Cell:
    """A layout cell: shapes, pins and instances."""

    def __init__(self, name: str):
        if not name:
            raise LayoutError("cell needs a name")
        self.name = name
        self.shapes: List[Shape] = []
        self.pins: Dict[str, List[Shape]] = {}
        self.instances: List[Instance] = []
        self._version = 0
        self._bbox_cache: Optional[Tuple[object, Rect]] = None
        self._flat_cache: Optional[Tuple[object, List[Shape]]] = None
        self._content_cache: Optional[Tuple[object, str]] = None

    # -- Construction -----------------------------------------------------------

    def add_shape(
        self, layer: Layer, rect: Rect, net: Optional[str] = None
    ) -> Shape:
        shape = Shape(layer=layer, rect=rect, net=net)
        self.shapes.append(shape)
        self._version += 1
        return shape

    def add_pin(self, net: str, layer: Layer, rect: Rect) -> Shape:
        """Declare a pin: a shape that external routing may connect to."""
        shape = self.add_shape(layer, rect, net=net)
        self.pins.setdefault(net, []).append(shape)
        return shape

    def add_instance(
        self,
        cell: "Cell",
        dx: float = 0.0,
        dy: float = 0.0,
        orientation: Orientation = Orientation.R0,
        name: str = "",
        net_map: Optional[Dict[str, str]] = None,
    ) -> Instance:
        instance = Instance(
            cell=cell,
            dx=dx,
            dy=dy,
            orientation=orientation,
            name=name or f"{cell.name}_{len(self.instances)}",
            net_map=net_map or {},
        )
        self.instances.append(instance)
        self._version += 1
        return instance

    # -- Queries ------------------------------------------------------------------

    def _stamp(self) -> Tuple[int, Tuple[object, ...]]:
        """Version stamp of this cell's subtree (for bbox memoization)."""
        return (
            self._version,
            tuple(i.cell._stamp() for i in self.instances),
        )

    def content_key(self) -> str:
        """Structural sha256 of the flattened geometry (hex digest).

        Two cells with the same key carry bit-identical flattened shapes
        — same layers, same rectangle coordinates (full float precision
        via ``repr``), same net names in the same order — so any pure
        function of the flattened geometry (extraction, DRC, area) is
        interchangeable between them.  This is what lets the incremental
        layout path (:mod:`repro.layout.incremental`) reuse a clean
        module's extraction contribution across synthesis rounds while a
        dirty module (any geometry change) gets a new key and a fresh
        run.  Memoized under the same subtree version stamp as
        :meth:`bbox`.
        """
        stamp = self._stamp()
        if self._content_cache is not None and self._content_cache[0] == stamp:
            return self._content_cache[1]
        digest = hashlib.sha256(b"repro-cell-v1")
        for shape in self._flattened_list():
            rect = shape.rect
            digest.update(
                f"{shape.layer.name}\x1f{rect.x0!r}\x1f{rect.y0!r}\x1f"
                f"{rect.x1!r}\x1f{rect.y1!r}\x1f{shape.net!r}\x1e".encode()
            )
        key = digest.hexdigest()
        self._content_cache = (stamp, key)
        return key

    def bbox(self) -> Rect:
        """Bounding box over shapes and (transformed) instances.

        Memoized: shapes and instances are append-only (all additions go
        through :meth:`add_shape` / :meth:`add_instance`), so a version
        stamp over this cell's whole subtree detects every change.
        """
        stamp = self._stamp()
        if self._bbox_cache is not None and self._bbox_cache[0] == stamp:
            return self._bbox_cache[1]
        rects = [shape.rect for shape in self.shapes]
        for instance in self.instances:
            child = instance.cell.bbox()
            rects.append(
                child.transformed(instance.orientation).translated(
                    instance.dx, instance.dy
                )
            )
        box = bounding_box(rects)
        self._bbox_cache = (stamp, box)
        return box

    @property
    def width(self) -> float:
        return self.bbox().width

    @property
    def height(self) -> float:
        return self.bbox().height

    @property
    def area(self) -> float:
        box = self.bbox()
        return box.width * box.height

    def shapes_on(self, layer: Layer) -> List[Shape]:
        """Local shapes on one layer (not flattened)."""
        return [shape for shape in self.shapes if shape.layer is layer]

    def pin_rect(self, net: str, layer: Optional[Layer] = None) -> Rect:
        """First pin rectangle for ``net`` (optionally on a given layer)."""
        try:
            candidates = self.pins[net]
        except KeyError:
            raise LayoutError(f"cell {self.name!r} has no pin {net!r}") from None
        for shape in candidates:
            if layer is None or shape.layer is layer:
                return shape.rect
        raise LayoutError(f"cell {self.name!r}: pin {net!r} not on layer {layer}")

    # -- Flattening --------------------------------------------------------------------

    def flattened(self) -> Iterator[Shape]:
        """Yield every shape with transforms applied and nets remapped.

        Memoized per subtree with the same version stamp that guards
        :meth:`bbox` — extraction and DRC both re-flatten the same cell
        several times per layout call, and shapes are immutable, so the
        resolved list can be shared.
        """
        return iter(self._flattened_list())

    def _flattened_list(self) -> List[Shape]:
        stamp = self._stamp()
        if self._flat_cache is not None and self._flat_cache[0] == stamp:
            return self._flat_cache[1]
        out: List[Shape] = list(self.shapes)
        for instance in self.instances:
            net_map = instance.net_map
            orientation = instance.orientation
            dx, dy = instance.dx, instance.dy
            for shape in instance.cell._flattened_list():
                rect = shape.rect.transformed(orientation).translated(dx, dy)
                net = shape.net
                if net is not None:
                    net = net_map.get(net, net)
                out.append(Shape(layer=shape.layer, rect=rect, net=net))
        self._flat_cache = (stamp, out)
        return out

    def flatten_into(self) -> "Cell":
        """A new single-level cell with all hierarchy resolved."""
        flat = Cell(self.name + "_flat")
        for shape in self.flattened():
            flat.shapes.append(shape)
        # Keep the version stamp in step with the direct appends so the
        # bbox/flatten memoization sees a fresh state.
        flat._version = len(flat.shapes)
        for net, shapes in self.pins.items():
            flat.pins[net] = [s for s in shapes]
        return flat

    def nets(self) -> List[str]:
        """All nets referenced by (flattened) shapes."""
        found = {}
        for shape in self.flattened():
            if shape.net is not None:
                found[shape.net] = True
        return sorted(found)

    def layer_area(self, layer: Layer, net: Optional[str] = None) -> float:
        """Total drawn area on a layer (ignoring same-net overlap), m^2."""
        return sum(
            shape.rect.area
            for shape in self.flattened()
            if shape.layer is layer and (net is None or shape.net == net)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Cell({self.name!r}, {len(self.shapes)} shapes, "
            f"{len(self.instances)} instances)"
        )
