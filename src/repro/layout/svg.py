"""SVG rendering of layout cells.

Produces a standalone SVG with one group per layer, for visual inspection
of generated layouts (the Figure 5 deliverable).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.layout.cell import Cell
from repro.layout.layers import SVG_STYLE, Layer
from repro.units import UM


def cell_to_svg(
    cell: Cell,
    scale: float = 10.0,
    layers: Optional[Iterable[Layer]] = None,
    margin: float = 2.0 * UM,
) -> str:
    """Render a cell as an SVG string.

    ``scale`` is pixels per micrometre.  Y is flipped so the layout's
    origin sits bottom-left, as in layout editors.
    """
    box = cell.bbox().expanded(margin)
    width_px = box.width / UM * scale
    height_px = box.height / UM * scale
    wanted = set(layers) if layers is not None else None

    def x_of(value: float) -> float:
        return (value - box.x0) / UM * scale

    def y_of(value: float) -> float:
        return (box.y1 - value) / UM * scale

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{width_px:.1f}" height="{height_px:.1f}" '
        f'viewBox="0 0 {width_px:.1f} {height_px:.1f}">',
        '<rect width="100%" height="100%" fill="#f8f8f4"/>',
    ]
    # Draw in a fixed painters order: wells under actives under metals.
    order = [
        Layer.NWELL,
        Layer.NIMPLANT,
        Layer.PIMPLANT,
        Layer.ACTIVE,
        Layer.POLY,
        Layer.CONTACT,
        Layer.METAL1,
        Layer.VIA1,
        Layer.METAL2,
    ]
    shapes = list(cell.flattened())
    for layer in order:
        if wanted is not None and layer not in wanted:
            continue
        color, opacity = SVG_STYLE[layer]
        parts.append(f'<g fill="{color}" fill-opacity="{opacity}">')
        for shape in shapes:
            if shape.layer is not layer:
                continue
            rect = shape.rect
            parts.append(
                f'<rect x="{x_of(rect.x0):.2f}" y="{y_of(rect.y1):.2f}" '
                f'width="{rect.width / UM * scale:.2f}" '
                f'height="{rect.height / UM * scale:.2f}">'
                f"<title>{layer.value}"
                + (f" net={shape.net}" if shape.net else "")
                + "</title></rect>"
            )
        parts.append("</g>")
    parts.append("</svg>")
    return "\n".join(parts)


def write_svg(cell: Cell, path: str, scale: float = 10.0) -> None:
    """Render ``cell`` and write it to ``path`` (atomically, so a killed
    export never leaves a half-written document)."""
    from repro.ioutil import atomic_write

    atomic_write(path, cell_to_svg(cell, scale=scale))
