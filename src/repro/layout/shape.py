"""Shape functions for slicing-structure area optimisation.

"Area optimization is done using a simple and fast algorithm based on shape
functions and slicing structures" (paper section 3).  A shape function is
the Pareto frontier of realisable (width, height) implementations of a
module; slicing composition (Stockmeyer's algorithm) combines children's
frontiers in linear time, and a shape constraint (target aspect ratio or
fixed height) picks one point per module on the way back down the tree.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro import telemetry
from repro.errors import LayoutError


@dataclass(frozen=True)
class ShapePoint:
    """One realisable implementation of a module."""

    width: float
    height: float
    tag: Any = None
    """Implementation handle (e.g. a fold-count assignment)."""

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def aspect(self) -> float:
        """Height / width."""
        return self.height / self.width


class ShapeFunction:
    """A Pareto frontier of (width, height) points, width-increasing.

    On the frontier, increasing width strictly decreases height; dominated
    points are pruned on construction.
    """

    def __init__(self, points: Iterable[ShapePoint]):
        candidates = sorted(points, key=lambda p: (p.width, p.height))
        if not candidates:
            raise LayoutError("shape function needs at least one point")
        for point in candidates:
            if point.width <= 0.0 or point.height <= 0.0:
                raise LayoutError("shape points must have positive size")
        frontier: List[ShapePoint] = []
        best_height = float("inf")
        for point in candidates:
            if point.height < best_height - 1e-15:
                frontier.append(point)
                best_height = point.height
        self.points: Tuple[ShapePoint, ...] = tuple(frontier)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    # -- Composition (Stockmeyer) ----------------------------------------------

    @staticmethod
    def horizontal(
        left: "ShapeFunction", right: "ShapeFunction", spacing: float = 0.0
    ) -> "ShapeFunction":
        """Side-by-side composition: widths add, heights take the max.

        Every pairing of frontier points is considered; pruning keeps the
        result linear in practice (the classic merge is an optimisation we
        trade for clarity at these module counts).
        """
        combined = [
            ShapePoint(
                width=a.width + b.width + spacing,
                height=max(a.height, b.height),
                tag=(a, b),
            )
            for a in left
            for b in right
        ]
        return ShapeFunction(combined)

    @staticmethod
    def vertical(
        bottom: "ShapeFunction", top: "ShapeFunction", spacing: float = 0.0
    ) -> "ShapeFunction":
        """Stacked composition: heights add, widths take the max."""
        combined = [
            ShapePoint(
                width=max(a.width, b.width),
                height=a.height + b.height + spacing,
                tag=(a, b),
            )
            for a in bottom
            for b in top
        ]
        return ShapeFunction(combined)

    # -- Selection ---------------------------------------------------------------

    def best_for_aspect(self, aspect: float) -> ShapePoint:
        """Minimum-area point whose aspect is nearest the target H/W."""
        if aspect <= 0.0:
            raise LayoutError("aspect ratio must be positive")
        return min(
            self.points,
            key=lambda p: (abs(p.aspect - aspect) / aspect, p.area),
        )

    def best_for_height(self, height: float) -> ShapePoint:
        """Narrowest point fitting under ``height``; tallest if none fit."""
        fitting = [p for p in self.points if p.height <= height]
        if fitting:
            return min(fitting, key=lambda p: p.width)
        return min(self.points, key=lambda p: p.height)

    def best_for_width(self, width: float) -> ShapePoint:
        """Shortest point fitting under ``width``; narrowest if none fit."""
        fitting = [p for p in self.points if p.width <= width]
        if fitting:
            return min(fitting, key=lambda p: p.height)
        return min(self.points, key=lambda p: p.width)

    def minimum_area(self) -> ShapePoint:
        return min(self.points, key=lambda p: p.area)


# -- Composition memoization ---------------------------------------------------
#
# The synthesis loop rebuilds the slicing tree every layout call, and the
# module variants (hence the children's frontiers) repeat across rounds
# and parasitic modes.  The expensive part of an n-ary composition is the
# cross product over child frontier points; which combinations survive
# pruning depends only on the children's (width, height) frontiers, the
# slice kind and the summed spacing — not on tags or node identity.  So
# the *index combos* of the surviving frontier are cached content-keyed,
# and a hit rebuilds exact ShapePoints from the live child points (same
# arithmetic, same floats) without enumerating the product.

_COMPOSE_CACHE: Dict[tuple, Tuple[Tuple[int, ...], ...]] = {}
_COMPOSE_CACHE_MAX = 4096


def clear_compose_cache() -> None:
    """Drop all memoized compositions (tests, memory pressure)."""
    _COMPOSE_CACHE.clear()


def compose_frontier(
    kind: str,
    child_points: Sequence[Sequence[ShapePoint]],
    total_spacing: float,
) -> Tuple[Tuple[int, ...], ...]:
    """Index combos (one index per child) forming the composed frontier.

    Replicates :class:`ShapeFunction`'s sort-and-prune exactly (stable
    sort by (width, height), 1e-15 height threshold) over the full cross
    product, so rebuilding points from the returned combos yields the
    identical frontier the direct enumeration produces.
    """
    key = (
        kind,
        total_spacing,
        tuple(
            tuple((p.width, p.height) for p in points)
            for points in child_points
        ),
    )
    cached = _COMPOSE_CACHE.get(key)
    if cached is not None:
        telemetry.count("layout.shape_cache.hit")
        return cached
    telemetry.count("layout.shape_cache.miss")
    candidates: List[Tuple[float, float, Tuple[int, ...]]] = []
    for indices in itertools.product(
        *(range(len(points)) for points in child_points)
    ):
        combo = [child_points[c][i] for c, i in enumerate(indices)]
        if kind == "h":
            width = sum(p.width for p in combo) + total_spacing
            height = max(p.height for p in combo)
        else:
            width = max(p.width for p in combo)
            height = sum(p.height for p in combo) + total_spacing
        candidates.append((width, height, indices))
    candidates.sort(key=lambda entry: (entry[0], entry[1]))
    frontier: List[Tuple[int, ...]] = []
    best_height = float("inf")
    for width, height, indices in candidates:
        if height < best_height - 1e-15:
            frontier.append(indices)
            best_height = height
    result = tuple(frontier)
    if len(_COMPOSE_CACHE) >= _COMPOSE_CACHE_MAX:
        _COMPOSE_CACHE.clear()
    _COMPOSE_CACHE[key] = result
    return result
