"""Double-poly plate capacitor generator.

Analog-grade capacitors (Miller compensation, switched-capacitor arrays)
drawn as a poly-1 bottom plate with a poly-2 top plate.  The top plate
connects through a contact pad at the module's top edge, the bottom plate
at the bottom edge — the channel router reaches both without crossing the
plates.

The drawn capacitance is ``cap_density * top-plate area``; the geometric
extractor reports the bottom plate's parasitic to substrate (poly area +
fringe), the reason real designs connect the bottom plate to the less
sensitive node.
"""

from __future__ import annotations

import math
from repro.errors import LayoutError
from repro.layout.cell import Cell
from repro.layout.devices import ModuleLayout
from repro.layout.geometry import Rect
from repro.layout.layers import Layer
from repro.technology.process import Technology


def plate_capacitor(
    tech: Technology,
    value: float,
    net_top: str,
    net_bottom: str,
    name: str = "cap",
    aspect: float = 1.0,
) -> ModuleLayout:
    """Draw a plate capacitor of ``value`` farads.

    ``aspect`` is the top plate's height/width ratio.  Returns a
    :class:`ModuleLayout` whose ``actual_widths[name]`` records the drawn
    capacitance (post grid snapping) for the parasitic report.
    """
    if value <= 0.0:
        raise LayoutError("capacitor value must be positive")
    if tech.cap_density <= 0.0:
        raise LayoutError(
            f"technology {tech.name!r} has no poly-poly capacitor"
        )
    rules = tech.rules

    area = value / tech.cap_density
    width = rules.snap(math.sqrt(area / aspect))
    height = rules.snap(area / width)
    if width < rules.poly_min_width or height < rules.poly_min_width:
        raise LayoutError("capacitor too small to draw; increase the value")

    cell = Cell(name)
    margin = rules.contact_active_enclosure
    # Bottom plate (poly 1) overlaps the top plate all around and extends
    # further at the bottom for its contact row.
    tap = rules.contact_size + 2.0 * rules.contact_metal_enclosure
    bottom_rect = Rect(
        -margin, -(margin + tap + rules.contact_poly_spacing),
        width + margin, height + margin,
    )
    cell.add_shape(Layer.POLY, bottom_rect, net=net_bottom)
    top_rect = Rect(0.0, 0.0, width, height)
    cell.add_shape(Layer.POLY2, top_rect, net=net_top)

    rail_height = max(
        rules.metal2_min_width, rules.via_size + 2.0 * rules.via_metal_enclosure
    )
    via = rules.via_size
    via_pad = via + 2.0 * rules.via_metal_enclosure

    def tap_row(y_center: float, net: str, rail_y0: float) -> None:
        """Contact pad + metal-1 riser + metal-2 rail pin."""
        x_center = width / 2.0
        cell.add_shape(
            Layer.CONTACT,
            Rect.centered(x_center, y_center,
                          rules.contact_size, rules.contact_size),
            net=net,
        )
        cell.add_shape(
            Layer.METAL1,
            Rect.centered(x_center, y_center, tap, tap),
            net=net,
        )
        riser_lo = min(y_center, rail_y0 + rail_height / 2.0)
        riser_hi = max(y_center, rail_y0 + rail_height / 2.0)
        cell.add_shape(
            Layer.METAL1,
            Rect(
                x_center - rules.metal1_min_width / 2.0, riser_lo,
                x_center + rules.metal1_min_width / 2.0, riser_hi,
            ),
            net=net,
        )
        cell.add_shape(
            Layer.VIA1,
            Rect.centered(x_center, rail_y0 + rail_height / 2.0, via, via),
            net=net,
        )
        cell.add_shape(
            Layer.METAL1,
            Rect.centered(x_center, rail_y0 + rail_height / 2.0,
                          via_pad, via_pad),
            net=net,
        )
        rail = Rect(
            x_center - 2.0 * via_pad, rail_y0,
            x_center + 2.0 * via_pad, rail_y0 + rail_height,
        )
        cell.add_pin(net, Layer.METAL2, rail)

    # Top-plate tap at the top edge.
    top_tap_y = height - tap / 2.0 - rules.contact_poly_spacing
    top_rail_y0 = height + margin + rules.metal2_spacing
    tap_row(top_tap_y, net_top, top_rail_y0)
    # Bottom-plate tap below the top plate.
    bottom_tap_y = -(margin + tap / 2.0)
    bottom_rail_y0 = (
        bottom_rect.y0 - rules.metal2_spacing - rail_height
    )
    tap_row(bottom_tap_y, net_bottom, bottom_rail_y0)

    drawn_value = tech.cap_density * top_rect.area
    return ModuleLayout(
        cell=cell,
        device_geometry={},
        device_nf={},
        finger_width=width,
        length=height,
        plan=None,
        well_rect=None,
        actual_widths={name: drawn_value},
    )
