"""Procedural analog layout generation (the CAIRO substrate).

The package mirrors the structure the paper describes in section 3:

* :mod:`repro.layout.motif` — the single transistor *motif generator* every
  device is built from, with full control of terminals and wires;
* :mod:`repro.layout.folding` — the capacitance reduction factor ``F``
  (paper Figure 2) and fold-count selection with drain-internal control;
* :mod:`repro.layout.stack` — analog stacks with dummy transistors,
  symmetric (common-centroid) placement and current-direction control
  (paper Figure 3);
* :mod:`repro.layout.devices` — device generators (differential pairs,
  current mirrors) built on the motif;
* :mod:`repro.layout.shape` / :mod:`repro.layout.placement` — shape
  functions and slicing-tree area optimisation under a shape constraint;
* :mod:`repro.layout.routing` — net routing with electromigration-aware
  wire widths and contact counts (reliability constraints);
* :mod:`repro.layout.parasitics` — the *parasitic calculation mode*: fold
  counts, diffusion geometry, routing/coupling/well capacitances, with no
  geometry emitted;
* :mod:`repro.layout.extraction` — independent geometric extraction of a
  *generated* layout (the role Cadence plays in the paper);
* :mod:`repro.layout.svg` / :mod:`repro.layout.gds` — SVG and GDSII export.
"""

from repro.layout.geometry import Orientation, Point, Rect
from repro.layout.layers import Layer
from repro.layout.cell import Cell, Shape
from repro.layout.folding import (
    DiffusionPosition,
    capacitance_reduction_factor,
    choose_fold_count,
    effective_widths,
    folded_diffusion_geometry,
)
from repro.layout.motif import MosMotif, generate_mos_motif
from repro.layout.stack import StackPlan, generate_stack
from repro.layout.shape import ShapePoint, ShapeFunction
from repro.layout.drc import DrcChecker, DrcViolation
from repro.layout.capacitor import plate_capacitor
from repro.layout.resistor import poly_resistor
from repro.layout.tap import tap_column
from repro.layout.cairo import CairoProgram
from repro.layout.matching import (
    compare_pair_styles,
    pair_offset_voltage,
    stack_gradient_impact,
)

__all__ = [
    "CairoProgram",
    "Cell",
    "DiffusionPosition",
    "DrcChecker",
    "DrcViolation",
    "Layer",
    "MosMotif",
    "Orientation",
    "Point",
    "Rect",
    "Shape",
    "ShapeFunction",
    "ShapePoint",
    "StackPlan",
    "capacitance_reduction_factor",
    "choose_fold_count",
    "compare_pair_styles",
    "effective_widths",
    "folded_diffusion_geometry",
    "generate_mos_motif",
    "generate_stack",
    "pair_offset_voltage",
    "plate_capacitor",
    "poly_resistor",
    "stack_gradient_impact",
    "tap_column",
]
