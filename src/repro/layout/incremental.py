"""Differential reuse caches for the incremental synthesis path.

The synthesis loop (paper Figure 1b) re-runs three pure computations
with largely repeated inputs:

* **per-module extraction** — every layout call extracts each placed
  module cell; across rounds (and across the final ``generate`` pass,
  which rebuilds the converged round's geometry) most module cells are
  content-identical;
* **whole layout calls** — a converged round's ``generate`` pass and
  every warm re-run of the same case rebuild a layout for a sizing that
  was already built;
* **sizing rounds** — a re-run (benchmark repeat, journal resume, warm
  artifact cache) re-derives the same sizing from the same specs,
  feedback and warm-start state.

All three are memoized here in process-wide LRU stores keyed on full
content (geometry digests, technology fingerprints, canonicalized
request fields, engine-switch settings).  A hit returns the stored
result of a computation with bit-identical inputs, so the incremental
path is *exact*: flipping :data:`repro.layout.engine.incremental_engine`
changes wall-clock, never output bits.  Fault-injection runs
(:mod:`repro.resilience.faults`) bypass every store — injected failures
must reach the real computation.

Counters (:mod:`repro.telemetry`):

* ``layout.incremental.reuse`` / ``layout.incremental.dirty`` — one per
  module-cell extraction served from / inserted into the store;
* ``layout.incremental.call_reuse`` / ``layout.incremental.call_build``
  — same, at whole-layout-call granularity;
* ``sizing.cache.hit`` / ``sizing.cache.miss`` — sizing-round memo.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro import telemetry
from repro.layout.engine import FROM_SCRATCH, incremental_engine
from repro.resilience import faults


class LruStore:
    """A bounded mapping with least-recently-used eviction.

    Plain ``OrderedDict`` discipline: ``get`` refreshes recency, ``put``
    evicts the oldest entry past ``capacity``.  Iteration order is
    therefore deterministic for a deterministic call sequence, which
    keeps cache *behaviour* (not just cache contents) reproducible.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Any) -> Optional[Any]:
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Any, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop entries and reset counters (a fresh-store baseline)."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0


#: Per-module extraction contributions:
#: (cell content key, technology fingerprint, extraction engine)
#: -> ExtractedParasitics.  Module cells are a few hundred shapes, so
#: the value footprint is tiny; the capacity covers every module of
#: several concurrent topologies across many rounds.
_extraction_store = LruStore(capacity=512)

#: Whole layout calls: request digest -> result object (report, fold
#: config, placements and the drawn top cell).  Entries hold full cell
#: geometry, so the capacity stays small.
_layout_store = LruStore(capacity=32)

#: Sizing rounds: (plan config, specs, mode, feedback, warm-state
#: digest, engine settings) -> (SizingResult, warm snapshot after).
_sizing_store = LruStore(capacity=128)


def enabled() -> bool:
    """True when incremental reuse is on and no fault plan is armed.

    Fault-injection runs must reach the real computations — a cache hit
    would swallow the very failure the test armed — so an active fault
    plan disables every store regardless of the engine switch.
    """
    if incremental_engine.default() == FROM_SCRATCH:
        return False
    return not faults.active()


def clear() -> None:
    """Drop every process-wide store (tests, benchmarks)."""
    _extraction_store.clear()
    _layout_store.clear()
    _sizing_store.clear()


def stats() -> Dict[str, Dict[str, int]]:
    """Hit/miss/eviction counters per store (observability, tests)."""
    out = {}
    for name, store in (
        ("extraction", _extraction_store),
        ("layout", _layout_store),
        ("sizing", _sizing_store),
    ):
        out[name] = {
            "entries": len(store),
            "hits": store.hits,
            "misses": store.misses,
            "evictions": store.evictions,
        }
    return out


# -- Per-module extraction ---------------------------------------------------


def extraction_key(cell, tech, engine: str) -> Optional[Tuple]:
    """Store key for one module cell's extraction, or None to bypass."""
    if not enabled():
        return None
    return (cell.content_key(), tech.fingerprint(), engine)


def lookup_extraction(key: Optional[Tuple]) -> Optional[Any]:
    if key is None:
        return None
    found = _extraction_store.get(key)
    if found is not None:
        telemetry.count("layout.incremental.reuse")
    return found


def store_extraction(key: Optional[Tuple], extracted: Any) -> None:
    if key is None:
        return
    telemetry.count("layout.incremental.dirty")
    _extraction_store.put(key, extracted)


# -- Whole layout calls ------------------------------------------------------


def layout_key(*parts: Any) -> Optional[str]:
    """Content digest over a layout request's canonicalized fields.

    Callers pass every field the generator reads (sorted size/current
    items, technology fingerprint, shape knobs) plus the active
    extraction engine — extraction results ride inside the report, so a
    different engine must key differently.  Returns None when reuse is
    off.
    """
    if not enabled():
        return None
    from repro.layout.engine import extraction_engine
    from repro.runtime.artifacts import content_key

    return content_key(
        "layout-call", extraction_engine.default(), *parts
    )


def lookup_layout(key: Optional[str]) -> Optional[Any]:
    if key is None:
        return None
    found = _layout_store.get(key)
    if found is not None:
        telemetry.count("layout.incremental.call_reuse")
    return found


def store_layout(key: Optional[str], result: Any) -> None:
    if key is None:
        return
    telemetry.count("layout.incremental.call_build")
    _layout_store.put(key, result)


# -- Sizing rounds -----------------------------------------------------------


def lookup_sizing(key: Optional[str]) -> Optional[Any]:
    if key is None:
        return None
    found = _sizing_store.get(key)
    if found is not None:
        telemetry.count("sizing.cache.hit")
    else:
        telemetry.count("sizing.cache.miss")
    return found


def store_sizing(key: Optional[str], value: Any) -> None:
    if key is not None:
        _sizing_store.put(key, value)
