"""Design-rule checking.

A geometric checker over flattened cells, covering the rule classes the
generators must honour:

* **minimum width** per drawn layer;
* **minimum spacing** between same-layer shapes of *different* nets
  (same-net shapes may abut or overlap freely — the generators compose
  terminals from several rectangles);
* **shorts**: overlapping same-layer conducting shapes on different nets;
* **cut geometry**: contacts and vias must be drawn at the exact cut size
  and be enclosed by their landing metal.

The checker is used by the test-suite to keep every generator (motif,
stacks, mirrors, the full OTA assembly) clean, standing in for the
"technology design rules" the paper's procedural language guarantees by
construction.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro import telemetry
from repro.layout.cell import Cell, Shape
from repro.layout.engine import GRID, drc_engine
from repro.layout.geometry import GridIndex, Rect, interval_pairs
from repro.layout.layers import Layer
from repro.technology.process import Technology

_EPSILON = 1e-12


def _subtract(outer: Rect, hole: Rect) -> List[Rect]:
    """Up to four rectangles covering ``outer`` minus ``hole``.

    ``hole`` must lie within ``outer``.
    """
    remainders: List[Rect] = []
    if hole.y1 < outer.y1:
        remainders.append(Rect(outer.x0, hole.y1, outer.x1, outer.y1))
    if hole.y0 > outer.y0:
        remainders.append(Rect(outer.x0, outer.y0, outer.x1, hole.y0))
    if hole.x0 > outer.x0:
        remainders.append(Rect(outer.x0, hole.y0, hole.x0, hole.y1))
    if hole.x1 < outer.x1:
        remainders.append(Rect(hole.x1, hole.y0, outer.x1, hole.y1))
    return remainders


def _union_covers(needed: Rect, rects: List[Rect], depth: int = 32) -> bool:
    """True when the union of ``rects`` covers ``needed``."""
    if needed.width < _EPSILON or needed.height < _EPSILON:
        return True
    if depth <= 0:
        return False
    for rect in rects:
        if rect.contains(needed):
            return True
    for rect in rects:
        overlap = needed.intersection(rect)
        if overlap is None:
            continue
        return all(
            _union_covers(piece, rects, depth - 1)
            for piece in _subtract(needed, overlap)
        )
    return False


@dataclass
class DrcViolation:
    """One design-rule violation."""

    kind: str
    layer: Layer
    rect: Rect
    message: str
    other: Optional[Rect] = None

    def __str__(self) -> str:
        return f"{self.kind} on {self.layer.value}: {self.message}"


class DrcChecker:
    """Checks flattened cells against a technology's design rules."""

    #: Layers whose shapes conduct (participate in spacing/short checks).
    CONDUCTING = (Layer.POLY, Layer.METAL1, Layer.METAL2)

    def __init__(self, technology: Technology):
        technology.validate()
        self.technology = technology
        rules = technology.rules
        self.min_width: Dict[Layer, float] = {
            Layer.ACTIVE: rules.active_min_width,
            Layer.POLY: rules.poly_min_width,
            Layer.METAL1: rules.metal1_min_width,
            Layer.METAL2: rules.metal2_min_width,
        }
        self.min_spacing: Dict[Layer, float] = {
            Layer.ACTIVE: rules.active_spacing,
            Layer.POLY: rules.poly_spacing,
            Layer.METAL1: rules.metal1_spacing,
            Layer.METAL2: rules.metal2_spacing,
            Layer.CONTACT: rules.contact_spacing,
            Layer.VIA1: rules.via_spacing,
        }
        self.cut_size: Dict[Layer, float] = {
            Layer.CONTACT: rules.contact_size,
            Layer.VIA1: rules.via_size,
        }

    # -- Entry point --------------------------------------------------------

    def check(
        self, cell: Cell, engine: Optional[str] = None
    ) -> List[DrcViolation]:
        """Run all checks; returns the (possibly empty) violation list.

        ``engine`` selects ``"grid"`` (default; pair candidates through
        a :class:`GridIndex`) or ``"allpairs"`` (the reference sorted
        sweep); ``None`` resolves through
        :data:`repro.layout.engine.drc_engine`.  Both produce the
        identical violation list in the identical order — the grid only
        narrows which pairs are examined.
        """
        engine = drc_engine.resolve(engine)
        shapes = list(cell.flattened())
        with telemetry.span(
            "layout.drc", cell=cell.name, engine=engine, shapes=len(shapes)
        ):
            telemetry.count("layout.drc")
            violations: List[DrcViolation] = []
            violations.extend(self._check_widths(shapes))
            violations.extend(self._check_cuts(shapes, engine))
            violations.extend(self._check_spacing_and_shorts(shapes, engine))
            return violations

    def assert_clean(self, cell: Cell, limit: int = 5) -> None:
        """Raise ``AssertionError`` listing violations, if any."""
        violations = self.check(cell)
        if violations:
            summary = "; ".join(str(v) for v in violations[:limit])
            raise AssertionError(
                f"{len(violations)} DRC violation(s) in {cell.name!r}: "
                f"{summary}"
            )

    # -- Width -----------------------------------------------------------------

    def _check_widths(self, shapes: List[Shape]) -> List[DrcViolation]:
        violations = []
        for shape in shapes:
            minimum = self.min_width.get(shape.layer)
            if minimum is None:
                continue
            narrow = min(shape.rect.width, shape.rect.height)
            if narrow < minimum - _EPSILON:
                violations.append(
                    DrcViolation(
                        kind="min_width",
                        layer=shape.layer,
                        rect=shape.rect,
                        message=(
                            f"width {narrow:.3e} m below minimum "
                            f"{minimum:.3e} m (net {shape.net})"
                        ),
                    )
                )
        return violations

    # -- Cuts ------------------------------------------------------------------------

    def _check_cuts(
        self, shapes: List[Shape], engine: Optional[str] = None
    ) -> List[DrcViolation]:
        engine = drc_engine.resolve(engine)
        violations = []
        landing = {
            Layer.CONTACT: (Layer.METAL1,),
            Layer.VIA1: (Layer.METAL1, Layer.METAL2),
        }
        enclosure = {
            Layer.CONTACT: self.technology.rules.contact_metal_enclosure,
            Layer.VIA1: self.technology.rules.via_metal_enclosure,
        }
        by_layer: Dict[Layer, List[Shape]] = defaultdict(list)
        for shape in shapes:
            by_layer[shape.layer].append(shape)

        # One lazily built index per landing layer; query results come
        # back in insertion (list) order, so the candidate list seen by
        # the order-sensitive ``_union_covers`` is unchanged.
        metal_index: Dict[Layer, GridIndex] = {}
        grid_queries = 0

        def landing_candidates(cut: Shape, metal_layer: Layer, needed: Rect):
            nonlocal grid_queries
            members = by_layer.get(metal_layer, [])
            if engine != GRID:
                return [
                    shape.rect
                    for shape in members
                    if (cut.net is None or shape.net == cut.net)
                    and shape.rect.intersects(needed)
                ]
            index = metal_index.get(metal_layer)
            if index is None:
                index = GridIndex.for_rects([s.rect for s in members])
                metal_index[metal_layer] = index
            grid_queries += 1
            candidates = []
            for i in index.query(needed):
                shape = members[i]
                if cut.net is None or shape.net == cut.net:
                    candidates.append(shape.rect)
            return candidates

        for cut_layer, size in self.cut_size.items():
            for cut in by_layer.get(cut_layer, []):
                if (
                    abs(cut.rect.width - size) > _EPSILON
                    or abs(cut.rect.height - size) > _EPSILON
                ):
                    violations.append(
                        DrcViolation(
                            kind="cut_size",
                            layer=cut_layer,
                            rect=cut.rect,
                            message=(
                                f"cut must be {size:.3e} m square, drawn "
                                f"{cut.rect.width:.3e} x {cut.rect.height:.3e}"
                            ),
                        )
                    )
                    continue
                margin = enclosure[cut_layer]
                # Back the required window off by a femto-margin so exact
                # float arithmetic (enclosure == margin) passes.
                needed = cut.rect.expanded(margin - _EPSILON)
                for metal_layer in landing[cut_layer]:
                    candidates = landing_candidates(cut, metal_layer, needed)
                    covered = _union_covers(needed, candidates)
                    if not covered:
                        violations.append(
                            DrcViolation(
                                kind="enclosure",
                                layer=cut_layer,
                                rect=cut.rect,
                                message=(
                                    f"cut on net {cut.net} lacks "
                                    f"{margin:.3e} m of "
                                    f"{metal_layer.value} enclosure"
                                ),
                            )
                        )
        if grid_queries:
            telemetry.count("grid.queries", grid_queries)
        return violations

    # -- Spacing / shorts --------------------------------------------------------------

    def _pair_violation(
        self, layer: Layer, spacing: float, conducting: bool,
        a: Shape, b: Shape,
    ) -> Optional[DrcViolation]:
        """The exact spacing/short predicate for one candidate pair."""
        same_net = (
            a.net is not None and b.net is not None
            and a.net == b.net
        )
        if same_net:
            return None
        if conducting and (a.net is None or b.net is None):
            # Un-netted conducting shapes are device-internal
            # bodies (resistor serpentines, dummy fill): they
            # deliberately bridge or abut terminals.
            return None
        if a.net is None and b.net is None and not conducting:
            # Merged drawing layers (active, implant): only a
            # genuine gap below spacing is reportable; abutting
            # or overlapping shapes merge.
            if a.rect.intersects(b.rect):
                return None
            if a.rect.distance_to(b.rect) < _EPSILON:
                return None
        if conducting and a.rect.intersects(b.rect):
            return DrcViolation(
                kind="short",
                layer=layer,
                rect=a.rect,
                other=b.rect,
                message=f"nets {a.net!r} and {b.net!r} overlap",
            )
        distance = a.rect.distance_to(b.rect)
        if distance < spacing - _EPSILON:
            return DrcViolation(
                kind="spacing",
                layer=layer,
                rect=a.rect,
                other=b.rect,
                message=(
                    f"nets {a.net!r}/{b.net!r} spaced "
                    f"{distance:.3e} m < {spacing:.3e} m"
                ),
            )
        return None

    def _check_spacing_and_shorts(
        self, shapes: List[Shape], engine: Optional[str] = None
    ) -> List[DrcViolation]:
        engine = drc_engine.resolve(engine)
        violations: List[DrcViolation] = []
        by_layer: Dict[Layer, List[Shape]] = defaultdict(list)
        for shape in shapes:
            if shape.layer in self.min_spacing:
                by_layer[shape.layer].append(shape)

        grid_queries = 0
        for layer, members in by_layer.items():
            spacing = self.min_spacing[layer]
            conducting = layer in self.CONDUCTING
            members = sorted(members, key=lambda s: s.rect.x0)
            if engine == GRID:
                # Vectorized candidate generation through the shared
                # interval sweep: the x-window matches the reference
                # sweep's break bound, then a y-window cut drops pairs
                # that cannot violate (any reportable pair sits within
                # ``spacing`` on both axes).  Pairs come out in the
                # sweep's (i, j) order, so violations match the
                # reference list exactly.
                if len(members) < 2:
                    continue
                coords = np.array(
                    [
                        (s.rect.x0, s.rect.y0, s.rect.x1, s.rect.y1)
                        for s in members
                    ]
                )
                ii, jj = interval_pairs(
                    coords[:, 0], coords[:, 2], spacing + _EPSILON
                )
                if ii.size:
                    gap_y = (
                        np.maximum(coords[ii, 1], coords[jj, 1])
                        - np.minimum(coords[ii, 3], coords[jj, 3])
                    )
                    near = gap_y < spacing - _EPSILON
                    ii = ii[near]
                    jj = jj[near]
                grid_queries += int(ii.size)
                for i, j in zip(ii.tolist(), jj.tolist()):
                    found = self._pair_violation(
                        layer, spacing, conducting, members[i], members[j]
                    )
                    if found is not None:
                        violations.append(found)
            else:
                for i, a in enumerate(members):
                    for b in members[i + 1:]:
                        if b.rect.x0 > a.rect.x1 + spacing + _EPSILON:
                            break
                        found = self._pair_violation(
                            layer, spacing, conducting, a, b
                        )
                        if found is not None:
                            violations.append(found)
        if grid_queries:
            telemetry.count("grid.queries", grid_queries)
        return violations
