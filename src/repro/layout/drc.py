"""Design-rule checking.

A geometric checker over flattened cells, covering the rule classes the
generators must honour:

* **minimum width** per drawn layer;
* **minimum spacing** between same-layer shapes of *different* nets
  (same-net shapes may abut or overlap freely — the generators compose
  terminals from several rectangles);
* **shorts**: overlapping same-layer conducting shapes on different nets;
* **cut geometry**: contacts and vias must be drawn at the exact cut size
  and be enclosed by their landing metal.

The checker is used by the test-suite to keep every generator (motif,
stacks, mirrors, the full OTA assembly) clean, standing in for the
"technology design rules" the paper's procedural language guarantees by
construction.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.layout.cell import Cell, Shape
from repro.layout.geometry import Rect
from repro.layout.layers import Layer
from repro.technology.process import Technology

_EPSILON = 1e-12


def _subtract(outer: Rect, hole: Rect) -> List[Rect]:
    """Up to four rectangles covering ``outer`` minus ``hole``.

    ``hole`` must lie within ``outer``.
    """
    remainders: List[Rect] = []
    if hole.y1 < outer.y1:
        remainders.append(Rect(outer.x0, hole.y1, outer.x1, outer.y1))
    if hole.y0 > outer.y0:
        remainders.append(Rect(outer.x0, outer.y0, outer.x1, hole.y0))
    if hole.x0 > outer.x0:
        remainders.append(Rect(outer.x0, hole.y0, hole.x0, hole.y1))
    if hole.x1 < outer.x1:
        remainders.append(Rect(hole.x1, hole.y0, outer.x1, hole.y1))
    return remainders


def _union_covers(needed: Rect, rects: List[Rect], depth: int = 32) -> bool:
    """True when the union of ``rects`` covers ``needed``."""
    if needed.width < _EPSILON or needed.height < _EPSILON:
        return True
    if depth <= 0:
        return False
    for rect in rects:
        if rect.contains(needed):
            return True
    for rect in rects:
        overlap = needed.intersection(rect)
        if overlap is None:
            continue
        return all(
            _union_covers(piece, rects, depth - 1)
            for piece in _subtract(needed, overlap)
        )
    return False


@dataclass
class DrcViolation:
    """One design-rule violation."""

    kind: str
    layer: Layer
    rect: Rect
    message: str
    other: Optional[Rect] = None

    def __str__(self) -> str:
        return f"{self.kind} on {self.layer.value}: {self.message}"


class DrcChecker:
    """Checks flattened cells against a technology's design rules."""

    #: Layers whose shapes conduct (participate in spacing/short checks).
    CONDUCTING = (Layer.POLY, Layer.METAL1, Layer.METAL2)

    def __init__(self, technology: Technology):
        technology.validate()
        self.technology = technology
        rules = technology.rules
        self.min_width: Dict[Layer, float] = {
            Layer.ACTIVE: rules.active_min_width,
            Layer.POLY: rules.poly_min_width,
            Layer.METAL1: rules.metal1_min_width,
            Layer.METAL2: rules.metal2_min_width,
        }
        self.min_spacing: Dict[Layer, float] = {
            Layer.ACTIVE: rules.active_spacing,
            Layer.POLY: rules.poly_spacing,
            Layer.METAL1: rules.metal1_spacing,
            Layer.METAL2: rules.metal2_spacing,
            Layer.CONTACT: rules.contact_spacing,
            Layer.VIA1: rules.via_spacing,
        }
        self.cut_size: Dict[Layer, float] = {
            Layer.CONTACT: rules.contact_size,
            Layer.VIA1: rules.via_size,
        }

    # -- Entry point --------------------------------------------------------

    def check(self, cell: Cell) -> List[DrcViolation]:
        """Run all checks; returns the (possibly empty) violation list."""
        shapes = list(cell.flattened())
        violations: List[DrcViolation] = []
        violations.extend(self._check_widths(shapes))
        violations.extend(self._check_cuts(shapes))
        violations.extend(self._check_spacing_and_shorts(shapes))
        return violations

    def assert_clean(self, cell: Cell, limit: int = 5) -> None:
        """Raise ``AssertionError`` listing violations, if any."""
        violations = self.check(cell)
        if violations:
            summary = "; ".join(str(v) for v in violations[:limit])
            raise AssertionError(
                f"{len(violations)} DRC violation(s) in {cell.name!r}: "
                f"{summary}"
            )

    # -- Width -----------------------------------------------------------------

    def _check_widths(self, shapes: List[Shape]) -> List[DrcViolation]:
        violations = []
        for shape in shapes:
            minimum = self.min_width.get(shape.layer)
            if minimum is None:
                continue
            narrow = min(shape.rect.width, shape.rect.height)
            if narrow < minimum - _EPSILON:
                violations.append(
                    DrcViolation(
                        kind="min_width",
                        layer=shape.layer,
                        rect=shape.rect,
                        message=(
                            f"width {narrow:.3e} m below minimum "
                            f"{minimum:.3e} m (net {shape.net})"
                        ),
                    )
                )
        return violations

    # -- Cuts ------------------------------------------------------------------------

    def _check_cuts(self, shapes: List[Shape]) -> List[DrcViolation]:
        violations = []
        landing = {
            Layer.CONTACT: (Layer.METAL1,),
            Layer.VIA1: (Layer.METAL1, Layer.METAL2),
        }
        enclosure = {
            Layer.CONTACT: self.technology.rules.contact_metal_enclosure,
            Layer.VIA1: self.technology.rules.via_metal_enclosure,
        }
        by_layer: Dict[Layer, List[Shape]] = defaultdict(list)
        for shape in shapes:
            by_layer[shape.layer].append(shape)

        for cut_layer, size in self.cut_size.items():
            for cut in by_layer.get(cut_layer, []):
                if (
                    abs(cut.rect.width - size) > _EPSILON
                    or abs(cut.rect.height - size) > _EPSILON
                ):
                    violations.append(
                        DrcViolation(
                            kind="cut_size",
                            layer=cut_layer,
                            rect=cut.rect,
                            message=(
                                f"cut must be {size:.3e} m square, drawn "
                                f"{cut.rect.width:.3e} x {cut.rect.height:.3e}"
                            ),
                        )
                    )
                    continue
                margin = enclosure[cut_layer]
                # Back the required window off by a femto-margin so exact
                # float arithmetic (enclosure == margin) passes.
                needed = cut.rect.expanded(margin - _EPSILON)
                for metal_layer in landing[cut_layer]:
                    candidates = [
                        shape.rect
                        for shape in by_layer.get(metal_layer, [])
                        if (cut.net is None or shape.net == cut.net)
                        and shape.rect.intersects(needed)
                    ]
                    covered = _union_covers(needed, candidates)
                    if not covered:
                        violations.append(
                            DrcViolation(
                                kind="enclosure",
                                layer=cut_layer,
                                rect=cut.rect,
                                message=(
                                    f"cut on net {cut.net} lacks "
                                    f"{margin:.3e} m of "
                                    f"{metal_layer.value} enclosure"
                                ),
                            )
                        )
        return violations

    # -- Spacing / shorts --------------------------------------------------------------

    def _check_spacing_and_shorts(
        self, shapes: List[Shape]
    ) -> List[DrcViolation]:
        violations = []
        by_layer: Dict[Layer, List[Shape]] = defaultdict(list)
        for shape in shapes:
            if shape.layer in self.min_spacing:
                by_layer[shape.layer].append(shape)

        for layer, members in by_layer.items():
            spacing = self.min_spacing[layer]
            conducting = layer in self.CONDUCTING
            members = sorted(members, key=lambda s: s.rect.x0)
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    if b.rect.x0 > a.rect.x1 + spacing + _EPSILON:
                        break
                    same_net = (
                        a.net is not None and b.net is not None
                        and a.net == b.net
                    )
                    if same_net:
                        continue
                    if conducting and (a.net is None or b.net is None):
                        # Un-netted conducting shapes are device-internal
                        # bodies (resistor serpentines, dummy fill): they
                        # deliberately bridge or abut terminals.
                        continue
                    if a.net is None and b.net is None and not conducting:
                        # Merged drawing layers (active, implant): only a
                        # genuine gap below spacing is reportable; abutting
                        # or overlapping shapes merge.
                        if a.rect.intersects(b.rect):
                            continue
                        if a.rect.distance_to(b.rect) < _EPSILON:
                            continue
                    if conducting and a.rect.intersects(b.rect):
                        violations.append(
                            DrcViolation(
                                kind="short",
                                layer=layer,
                                rect=a.rect,
                                other=b.rect,
                                message=(
                                    f"nets {a.net!r} and {b.net!r} overlap"
                                ),
                            )
                        )
                        continue
                    distance = a.rect.distance_to(b.rect)
                    if distance < spacing - _EPSILON:
                        violations.append(
                            DrcViolation(
                                kind="spacing",
                                layer=layer,
                                rect=a.rect,
                                other=b.rect,
                                message=(
                                    f"nets {a.net!r}/{b.net!r} spaced "
                                    f"{distance:.3e} m < {spacing:.3e} m"
                                ),
                            )
                        )
        return violations
