"""Analog transistor stack generation (paper Figure 3).

Devices sharing their source net (current mirrors, differential pairs) are
merged into one diffusion row.  Following the paper's reference [6]
(Malavasi & Pandini, *Optimum CMOS Stack Generation with Analog
Constraints*), generation is posed as a small combinatorial optimisation:

* **sequence** — which device owns each gate finger, enumerated exhaustively
  over multiset permutations for realistic stack sizes (a symmetric
  constructive heuristic covers larger stacks);
* **orientation** — each finger's current direction (which side its drain
  faces), assigned greedily to maximise diffusion sharing;
* **score** — diffusion breaks, per-device centroid offsets, current-
  direction imbalance (the arrows of Figure 3) and drains exposed at stack
  ends (the paper prefers internal drains, Figure 2 case *a*).

Dummy transistors guard both stack ends (paper: "a special algorithm that
controls transistor placement in stacks ... based on the insertion of dummy
transistors").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import factorial
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import LayoutError

DUMMY = "_dummy"
"""Device name used for dummy fingers."""

SHARED_SOURCE = "__source__"
"""Symbolic net standing for the common source during planning."""


@dataclass
class StackFinger:
    """One gate finger in the stack."""

    device: str
    drain_left: bool
    """Orientation: True when the drain strip is on the finger's left."""

    @property
    def is_dummy(self) -> bool:
        return self.device == DUMMY

    @property
    def arrow(self) -> str:
        """Current-direction glyph used in pattern strings."""
        if self.is_dummy:
            return "."
        return "<" if self.drain_left else ">"


@dataclass
class StackPlan:
    """A planned stack: ordered fingers plus diffusion-break positions."""

    fingers: List[StackFinger]
    units: Dict[str, int]
    breaks: List[int] = field(default_factory=list)
    """Indices i such that a diffusion break sits between fingers i, i+1."""
    score: float = 0.0

    @property
    def total_fingers(self) -> int:
        return len(self.fingers)

    def positions(self, device: str) -> List[int]:
        return [i for i, f in enumerate(self.fingers) if f.device == device]

    def centroid_offset(self, device: str) -> float:
        """Device centroid minus stack centre, in finger pitches."""
        positions = self.positions(device)
        if not positions:
            raise LayoutError(f"device {device!r} not in stack")
        center = (len(self.fingers) - 1) / 2.0
        return sum(positions) / len(positions) - center

    def orientation_balance(self, device: str) -> int:
        """Sum of finger current directions (+1 right, -1 left).

        Zero means orientation-induced mismatch cancels exactly (the goal
        of the Figure 3 arrows for even-unit devices).
        """
        balance = 0
        for finger in self.fingers:
            if finger.device == device:
                balance += -1 if finger.drain_left else 1
        return balance

    def pattern(self) -> str:
        """Human-readable stack pattern, e.g. ``.D >m3 <m3 | <m2 ...``"""
        parts = []
        for i, finger in enumerate(self.fingers):
            label = "D" if finger.is_dummy else finger.device
            parts.append(f"{finger.arrow}{label}")
            if i in self.breaks:
                parts.append("|")
        return " ".join(parts)

    def strip_nets(
        self, terminals: Mapping[str, Tuple[str, str]], dummy_net: str = "0"
    ) -> List[str]:
        """Net of each diffusion strip, left to right.

        ``terminals`` maps device name to ``(drain_net, source_net)``.  A
        break inserts an extra strip boundary (both neighbouring strips are
        emitted).  Dummies adopt the open strip on their inner side and
        ``dummy_net`` outside.
        """
        nets: List[str] = []

        def finger_nets(finger: StackFinger) -> Tuple[str, str]:
            if finger.is_dummy:
                return dummy_net, dummy_net
            drain, source = terminals[finger.device]
            return (drain, source) if finger.drain_left else (source, drain)

        for i, finger in enumerate(self.fingers):
            left, right = finger_nets(finger)
            if not nets:
                nets.append(left)
            elif (i - 1) in self.breaks:
                nets.append(left)
            elif finger.is_dummy:
                pass  # dummy adopts the open strip
            elif self.fingers[i - 1].is_dummy and nets[-1] == dummy_net:
                nets[-1] = left  # leading dummy adopts this device's strip
            elif nets[-1] != left:
                raise LayoutError(
                    f"incompatible diffusion sharing at finger {i}: "
                    f"{nets[-1]!r} vs {left!r} (missing break?)"
                )
            nets.append(right)
        return nets


# ---------------------------------------------------------------------------
# Sequence enumeration
# ---------------------------------------------------------------------------


def _multiset_permutations(items: Sequence[str]) -> Iterator[Tuple[str, ...]]:
    """Unique permutations of a multiset, lexicographic order."""
    pool = sorted(items)
    n = len(pool)
    if n == 0:
        return
    current = list(pool)
    while True:
        yield tuple(current)
        # Next lexicographic permutation (classic algorithm).
        i = n - 2
        while i >= 0 and current[i] >= current[i + 1]:
            i -= 1
        if i < 0:
            return
        j = n - 1
        while current[j] <= current[i]:
            j -= 1
        current[i], current[j] = current[j], current[i]
        current[i + 1 :] = reversed(current[i + 1 :])


def _permutation_count(units: Mapping[str, int]) -> int:
    total = sum(units.values())
    count = factorial(total)
    for value in units.values():
        count //= factorial(value)
    return count


def _symmetric_sequence(
    units: Mapping[str, int], center_device: Optional[str]
) -> List[str]:
    """Constructive fallback for large stacks.

    Works at *pair-block* granularity: two adjacent fingers of the same
    device form a block (internal shared drain, opposed current
    directions), and blocks are assigned to symmetric slot pairs from the
    outside in — zero centroid offset and zero diffusion breaks for
    even-unit devices.  Odd leftovers cluster at the centre with the
    smallest device dead-centre.
    """
    blocks = {d: u // 2 for d, u in units.items() if u // 2 > 0}
    odd_devices = [d for d, u in units.items() if u % 2 == 1]
    if center_device is None and odd_devices:
        center_device = min(odd_devices, key=lambda d: units[d])

    slot_count = sum(blocks.values())
    slots: List[Optional[str]] = [None] * slot_count
    remaining = dict(blocks)
    order = sorted(remaining, key=lambda d: -remaining[d])
    pair_index = 0
    while pair_index < slot_count // 2:
        progressed = False
        for device in order:
            if remaining[device] >= 2 and pair_index < slot_count // 2:
                slots[pair_index] = device
                slots[slot_count - 1 - pair_index] = device
                remaining[device] -= 2
                pair_index += 1
                progressed = True
        if not progressed:
            break

    # Leftover blocks (odd block counts) take the most central free slots.
    center = (slot_count - 1) / 2.0
    holes = sorted(
        (i for i in range(slot_count) if slots[i] is None),
        key=lambda p: abs(p - center),
    )
    leftovers = [d for d in order for _ in range(remaining[d])]
    for hole, device in zip(holes, leftovers):
        slots[hole] = device

    sequence: List[str] = []
    for device in slots:
        assert device is not None
        sequence.extend((device, device))

    # Odd single fingers at the centre of the finger sequence.
    others = sorted(
        (d for d in odd_devices if d != center_device), key=lambda d: -units[d]
    )
    middle = len(sequence) // 2
    inserts = (
        others[: len(others) // 2]
        + ([center_device] if center_device else [])
        + others[len(others) // 2 :]
    )
    for offset, device in enumerate(inserts):
        sequence.insert(middle + offset, device)
    return sequence


# ---------------------------------------------------------------------------
# Orientation assignment and scoring
# ---------------------------------------------------------------------------


def _assign_orientations(
    sequence: Sequence[str],
) -> Tuple[List[StackFinger], List[int]]:
    """Greedy sharing-maximising orientations; returns fingers and breaks.

    Walks left to right keeping the net of the currently open strip; a
    finger is oriented so its left edge matches when possible, otherwise a
    diffusion break is recorded and the orientation is chosen to help the
    *next* finger share.
    """
    fingers: List[StackFinger] = []
    breaks: List[int] = []
    open_net: Optional[str] = None
    for i, device in enumerate(sequence):
        drain_net = f"__drain_{device}__"
        # (drain_left, left_net, right_net)
        options = (
            (False, SHARED_SOURCE, drain_net),
            (True, drain_net, SHARED_SOURCE),
        )
        pick = None
        if open_net is not None:
            for option in options:
                if option[1] == open_net:
                    pick = option
                    break
        if pick is None:
            if open_net is not None:
                breaks.append(i - 1)
            following = sequence[i + 1] if i + 1 < len(sequence) else None
            if following == device:
                # Start a drain-sharing pair: source out, drain right.
                pick = options[0]
            else:
                # Expose the source rightward so the next finger can share.
                pick = options[1]
        fingers.append(StackFinger(device=device, drain_left=pick[0]))
        open_net = pick[2]
    return fingers, breaks


def _score_plan(plan: StackPlan) -> float:
    """Lower is better: breaks, centroid offsets, imbalance, edge drains."""
    score = 1.0 * len(plan.breaks)
    for device, count in plan.units.items():
        score += 2.0 * abs(plan.centroid_offset(device)) / count
        score += 0.5 * abs(plan.orientation_balance(device)) / count
    active = [f for f in plan.fingers if not f.is_dummy]
    if active:
        if active[0].drain_left:
            score += 0.3
        if not active[-1].drain_left:
            score += 0.3
    return score


_PLAN_CACHE: Dict[tuple, "StackPlan"] = {}


def generate_stack(
    units: Mapping[str, int],
    with_dummies: bool = True,
    center_device: Optional[str] = None,
    exhaustive_limit: int = 4000,
) -> StackPlan:
    """Plan a merged stack for devices sharing their source net.

    ``units`` maps device names to unit-finger counts (the Figure 3 mirror
    is ``{"m1": 1, "m2": 3, "m3": 6}``).  All sequences are enumerated when
    the multiset permutation count is below ``exhaustive_limit``; larger
    stacks fall back to a symmetric constructive heuristic.
    ``center_device`` forces which odd-unit device sits at the centre in
    the heuristic path.

    Results are cached (the search is deterministic); treat the returned
    plan as immutable.
    """
    cache_key = (
        tuple(sorted(units.items())), with_dummies, center_device,
        exhaustive_limit,
    )
    cached = _PLAN_CACHE.get(cache_key)
    if cached is not None:
        return cached
    if not units:
        raise LayoutError("stack needs at least one device")
    for device, count in units.items():
        if count < 1:
            raise LayoutError(f"device {device!r} has non-positive units")
        if device == DUMMY:
            raise LayoutError(f"{DUMMY!r} is reserved for dummy fingers")
    if center_device is not None:
        if center_device not in units:
            raise LayoutError(f"unknown center device {center_device!r}")
        if units[center_device] % 2 == 0:
            raise LayoutError(
                f"center device {center_device!r} must have an odd unit count"
            )

    def build(sequence: Sequence[str]) -> StackPlan:
        fingers, breaks = _assign_orientations(sequence)
        if with_dummies:
            fingers = (
                [StackFinger(device=DUMMY, drain_left=False)]
                + fingers
                + [StackFinger(device=DUMMY, drain_left=True)]
            )
            breaks = [b + 1 for b in breaks]
        plan = StackPlan(fingers=fingers, units=dict(units), breaks=breaks)
        plan.score = _score_plan(plan)
        return plan

    base: List[str] = []
    for device, count in sorted(units.items()):
        base.extend([device] * count)

    if _permutation_count(units) <= exhaustive_limit:
        best: Optional[StackPlan] = None
        for sequence in _multiset_permutations(base):
            plan = build(sequence)
            if best is None or plan.score < best.score - 1e-12:
                best = plan
        assert best is not None
        _PLAN_CACHE[cache_key] = best
        return best
    plan = build(_symmetric_sequence(units, center_device))
    _PLAN_CACHE[cache_key] = plan
    return plan
