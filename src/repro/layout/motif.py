"""Transistor motif generator.

"All transistors are built using a single motif generator which allows
total control over terminals and wires" (paper section 3).  The motif draws
a folded MOS device: alternating source/drain diffusion strips between
vertical poly gates, contacts sized for the DC current (reliability rules),
metal-1 straps collecting each terminal and a poly gate strap with a
metal-1 tap for routing.

The generator returns both the drawn :class:`~repro.layout.cell.Cell` and
the *exact* junction geometry of the drawn diffusions — the quantity the
sizing tool needs back during layout-aware synthesis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import DesignRuleError, LayoutError
from repro.layout.cell import Cell
from repro.layout.folding import folded_diffusion_geometry, strip_counts
from repro.layout.geometry import Rect
from repro.layout.layers import Layer
from repro.mos.junction import DiffusionGeometry
from repro.technology.process import Technology


@dataclass
class StripInfo:
    """One source/drain diffusion strip of the motif."""

    rect: Rect
    net: str
    is_drain: bool
    is_end: bool
    contacts: int


@dataclass
class MosMotif:
    """A generated transistor motif.

    ``actual_w`` is the drawn total width after snapping the finger width
    to the manufacturing grid — generally *not* equal to the requested
    width, which is the mechanism behind the paper's post-folding offset
    observation (Table 1, case 2).
    """

    cell: Cell
    nf: int
    finger_width: float
    actual_w: float
    requested_w: float
    length: float
    drain_internal: bool
    geometry: DiffusionGeometry
    strips: List[StripInfo]
    well_rect: Optional[Rect]
    net_d: str
    net_g: str
    net_s: str
    net_b: str

    @property
    def width_error(self) -> float:
        """Relative drawn-vs-requested width error (grid snapping)."""
        return (self.actual_w - self.requested_w) / self.requested_w


def _contact_column(
    cell: Cell,
    tech: Technology,
    strip: Rect,
    net: str,
    required_cuts: int,
) -> int:
    """Fill a diffusion strip with a vertical column of contact cuts.

    Returns the number of cuts placed; raises
    :class:`DesignRuleError` when the strip cannot hold the cuts the DC
    current requires.
    """
    rules = tech.rules
    size = rules.contact_size
    pitch = size + rules.contact_spacing
    usable = strip.height - 2.0 * rules.contact_active_enclosure
    fit = max(1, int(math.floor((usable - size) / pitch)) + 1) if usable >= size else 0
    if fit == 0:
        raise DesignRuleError(
            f"diffusion strip of height {strip.height:.3e} m cannot hold a contact"
        )
    if fit < required_cuts:
        raise DesignRuleError(
            f"strip needs {required_cuts} contact cuts for its current but "
            f"only {fit} fit; widen the device or add folds"
        )
    # Reliability rule: fill the column (more cuts = lower resistance).
    count = fit
    x_center = (strip.x0 + strip.x1) / 2.0
    total_height = count * size + (count - 1) * rules.contact_spacing
    y = strip.center.y - total_height / 2.0
    for _ in range(count):
        cell.add_shape(
            Layer.CONTACT,
            Rect.centered(x_center, y + size / 2.0, size, size),
            net=net,
        )
        y += pitch
    return count


def generate_mos_motif(
    tech: Technology,
    polarity: str,
    w: float,
    l: float,
    nf: int = 1,
    drain_internal: bool = True,
    net_d: str = "d",
    net_g: str = "g",
    net_s: str = "s",
    net_b: str = "b",
    drain_current: float = 0.0,
    name: Optional[str] = None,
) -> MosMotif:
    """Draw one (possibly folded) transistor.

    ``drain_current`` drives the reliability rules: per-strip contact
    counts and the metal-1 terminal rail widths are sized so the maximum
    current density of the technology is respected.
    """
    if polarity not in ("n", "p"):
        raise LayoutError(f"polarity must be 'n' or 'p', got {polarity!r}")
    if w <= 0.0 or l <= 0.0:
        raise LayoutError("device dimensions must be positive")
    if nf < 1:
        raise LayoutError("fold count must be >= 1")
    rules = tech.rules
    metal1 = tech.metal("metal1")

    if l < rules.poly_min_width - 1e-15:
        raise DesignRuleError(
            f"gate length {l:.3e} m below the minimum {rules.poly_min_width:.3e} m"
        )
    length = rules.snap(l)

    finger = rules.snap(w / nf)
    if finger < rules.active_min_width:
        raise DesignRuleError(
            f"finger width {finger:.3e} m below the active minimum "
            f"{rules.active_min_width:.3e} m; reduce the fold count"
        )
    actual_w = finger * nf

    cell = Cell(name or f"m{polarity}_{nf}f")

    end_strip = rules.end_diffusion_width
    internal_strip = rules.contacted_diffusion_width

    # -- Horizontal walk: end strip, then nf x (gate + strip) ----------------
    drain_strips, _source_strips = strip_counts(nf, drain_internal)
    # Strip type sequence: with drain internal (even nf) the ends are
    # sources: S G D G S ...; otherwise start with drain.
    first_is_drain = not drain_internal if nf % 2 == 0 else True
    if nf % 2 == 1:
        # Odd: start with drain by convention (alternating anyway).
        first_is_drain = True

    x = 0.0
    strips: List[StripInfo] = []
    gate_rects: List[Rect] = []
    is_drain = first_is_drain
    for position in range(nf + 1):
        is_end = position in (0, nf)
        strip_width = end_strip if is_end else internal_strip
        rect = Rect.from_size(x, 0.0, strip_width, finger)
        net = net_d if is_drain else net_s
        strips.append(
            StripInfo(
                rect=rect, net=net, is_drain=is_drain, is_end=is_end, contacts=0
            )
        )
        x += strip_width
        if position < nf:
            gate_rects.append(
                Rect.from_size(
                    x, -rules.poly_endcap, length, finger + 2.0 * rules.poly_endcap
                )
            )
            x += length
        is_drain = not is_drain
    total_width = x

    # Active region spans all strips and channels.
    cell.add_shape(Layer.ACTIVE, Rect.from_size(0.0, 0.0, total_width, finger))
    implant = Layer.NIMPLANT if polarity == "n" else Layer.PIMPLANT
    implant_margin = rules.contact_active_enclosure
    cell.add_shape(
        implant,
        Rect.from_size(
            -implant_margin,
            -implant_margin,
            total_width + 2.0 * implant_margin,
            finger + 2.0 * implant_margin,
        ),
    )

    for rect in gate_rects:
        cell.add_shape(Layer.POLY, rect, net=net_g)

    # -- Contacts and vertical metal-1 strip straps ---------------------------
    source_strips_count = (nf + 1) - drain_strips
    cuts_needed = {
        True: tech.contact.cuts_for_current(
            abs(drain_current) / max(drain_strips, 1)
        ),
        False: tech.contact.cuts_for_current(
            abs(drain_current) / max(source_strips_count, 1)
        ),
    }
    strap_width = metal1.min_width_for_current(
        abs(drain_current), rules.metal1_min_width
    )
    strap_width = rules.snap_up(strap_width)

    gate_top = finger + rules.poly_endcap
    gate_strap_height = rules.poly_min_width
    source_rail_y0 = gate_top + gate_strap_height + rules.metal1_spacing
    drain_rail_y1 = -rules.poly_endcap - rules.metal1_spacing

    for strip in strips:
        strip.contacts = _contact_column(
            cell, tech, strip.rect, strip.net, cuts_needed[strip.is_drain]
        )
        column_width = max(
            rules.contact_size + 2.0 * rules.contact_metal_enclosure,
            rules.metal1_min_width,
        )
        if strip.is_drain:
            # Vertical metal-1 from the strip down to the drain rail.
            rect = Rect(
                strip.rect.center.x - column_width / 2.0,
                drain_rail_y1 - strap_width,
                strip.rect.center.x + column_width / 2.0,
                strip.rect.y1,
            )
        else:
            rect = Rect(
                strip.rect.center.x - column_width / 2.0,
                strip.rect.y0,
                strip.rect.center.x + column_width / 2.0,
                source_rail_y0 + strap_width,
            )
        cell.add_shape(Layer.METAL1, rect, net=strip.net)

    # -- Terminal rails ----------------------------------------------------------
    drain_rail = Rect(0.0, drain_rail_y1 - strap_width, total_width, drain_rail_y1)
    source_rail = Rect(
        0.0, source_rail_y0, total_width, source_rail_y0 + strap_width
    )
    cell.add_pin(net_d, Layer.METAL1, drain_rail)
    cell.add_pin(net_s, Layer.METAL1, source_rail)

    # -- Gate strap with a metal-1 tap beyond the left edge ---------------------
    # The tap pad sits outside the strip region so its metal never clashes
    # with the source/drain metal-1 columns rising between the gates.
    tap_size = rules.contact_size + 2.0 * rules.contact_metal_enclosure
    tap_center_x = -(rules.metal1_spacing + tap_size / 2.0)
    tap_center_y = gate_top + gate_strap_height / 2.0
    gate_strap = Rect(
        tap_center_x, gate_top, total_width, gate_top + gate_strap_height
    )
    cell.add_shape(Layer.POLY, gate_strap, net=net_g)
    # Square poly pad under the tap (the strap itself may be narrower than
    # the cut plus enclosure needs).
    cell.add_shape(
        Layer.POLY,
        Rect.centered(tap_center_x, tap_center_y, tap_size, tap_size),
        net=net_g,
    )
    cell.add_shape(
        Layer.CONTACT,
        Rect.centered(
            tap_center_x, tap_center_y, rules.contact_size, rules.contact_size
        ),
        net=net_g,
    )
    gate_pin = Rect.centered(tap_center_x, tap_center_y, tap_size, tap_size)
    cell.add_pin(net_g, Layer.METAL1, gate_pin)

    # -- Well (PMOS) ------------------------------------------------------------------
    well_rect: Optional[Rect] = None
    if polarity == "p":
        margin = rules.active_well_enclosure
        well_rect = Rect(
            -margin,
            -margin,
            total_width + margin,
            finger + margin,
        )
        cell.add_shape(Layer.NWELL, well_rect, net=net_b)

    geometry = folded_diffusion_geometry(
        actual_w,
        nf,
        ldif_internal=internal_strip,
        ldif_end=end_strip,
        drain_internal=drain_internal,
    )

    return MosMotif(
        cell=cell,
        nf=nf,
        finger_width=finger,
        actual_w=actual_w,
        requested_w=w,
        length=length,
        drain_internal=drain_internal,
        geometry=geometry,
        strips=strips,
        well_rect=well_rect,
        net_d=net_d,
        net_g=net_g,
        net_s=net_s,
        net_b=net_b,
    )
