"""Substrate and well tap generator.

Every analog block needs its bulk tied: substrate taps (p+ active to the
ground net) next to NMOS rows and well taps (n+ active inside the n-well,
to the supply) next to PMOS rows.  The generator draws a vertical column
of tapped active sized so neighbouring devices stay within the
technology's ``well_contact_pitch``.
"""

from __future__ import annotations

import math

from repro.errors import LayoutError
from repro.layout.cell import Cell
from repro.layout.devices import ModuleLayout
from repro.layout.geometry import Rect
from repro.layout.layers import Layer
from repro.technology.process import Technology


def tap_column(
    tech: Technology,
    kind: str,
    net: str,
    height: float,
    name: str = "tap",
) -> ModuleLayout:
    """A vertical tap column of the given active ``height``.

    ``kind`` is ``'substrate'`` (p+ to ground next to NMOS) or ``'well'``
    (n+ inside an n-well, to the supply).  The tap exposes one metal-2
    rail pin at the top edge.
    """
    if kind not in ("substrate", "well"):
        raise LayoutError(f"tap kind must be 'substrate' or 'well', got {kind!r}")
    rules = tech.rules
    if height < rules.active_min_width:
        raise LayoutError("tap height below the minimum active width")
    height = rules.snap(height)

    cell = Cell(name)
    width = rules.contacted_diffusion_width
    active = Rect(0.0, 0.0, width, height)
    cell.add_shape(Layer.ACTIVE, active)
    # Tap implant is the opposite flavour of the devices it serves:
    # p+ (PIMPLANT) ties the p-substrate, n+ ties the n-well.
    implant = Layer.PIMPLANT if kind == "substrate" else Layer.NIMPLANT
    margin = rules.contact_active_enclosure
    cell.add_shape(implant, active.expanded(margin))
    if kind == "well":
        cell.add_shape(
            Layer.NWELL, active.expanded(rules.active_well_enclosure), net=net
        )

    # Contact column.
    size = rules.contact_size
    pitch = size + rules.contact_spacing
    usable = height - 2.0 * rules.contact_active_enclosure
    count = max(1, int(math.floor((usable - size) / pitch)) + 1)
    total = count * size + (count - 1) * rules.contact_spacing
    y = height / 2.0 - total / 2.0 + size / 2.0
    x_center = width / 2.0
    for _ in range(count):
        cell.add_shape(
            Layer.CONTACT, Rect.centered(x_center, y, size, size), net=net
        )
        y += pitch

    # Metal-1 column over the contacts, metal-2 rail pin at the top.
    column_width = max(
        size + 2.0 * rules.contact_metal_enclosure, rules.metal1_min_width
    )
    rail_height = max(
        rules.metal2_min_width, rules.via_size + 2.0 * rules.via_metal_enclosure
    )
    rail_y0 = height + rules.metal2_spacing
    cell.add_shape(
        Layer.METAL1,
        Rect(
            x_center - column_width / 2.0, 0.0,
            x_center + column_width / 2.0, rail_y0 + rail_height / 2.0,
        ),
        net=net,
    )
    via = rules.via_size
    via_pad = via + 2.0 * rules.via_metal_enclosure
    cell.add_shape(
        Layer.VIA1,
        Rect.centered(x_center, rail_y0 + rail_height / 2.0, via, via),
        net=net,
    )
    cell.add_shape(
        Layer.METAL1,
        Rect.centered(
            x_center, rail_y0 + rail_height / 2.0, via_pad, via_pad
        ),
        net=net,
    )
    cell.add_pin(
        net, Layer.METAL2,
        Rect.centered(
            x_center, rail_y0 + rail_height / 2.0, 2.0 * via_pad, rail_height
        ),
    )

    return ModuleLayout(
        cell=cell,
        device_geometry={},
        device_nf={},
        finger_width=width,
        length=height,
        plan=None,
        well_rect=None if kind == "substrate" else active.expanded(
            rules.active_well_enclosure
        ),
        actual_widths={name: height},
    )


def taps_needed(row_width: float, tech: Technology) -> int:
    """Tap columns a row of the given width needs (pitch rule)."""
    return max(1, int(math.ceil(row_width / tech.rules.well_contact_pitch)))
