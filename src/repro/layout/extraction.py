"""Geometric extraction of a generated layout.

Plays the role the commercial extractor (Cadence) plays in the paper: an
*independent* measurement of the drawn geometry used to produce the
"values between brackets" of Table 1.  It never consults the estimator's
bookkeeping — everything is recomputed from the flattened shapes:

* **interconnect capacitance** per net from every poly/metal shape (area +
  perimeter fringe), with gate poly over active excluded (that is channel
  capacitance, owned by the device model);
* **coupling capacitance** between same-layer shapes of different nets
  within a proximity window;
* **diffusion junctions** re-derived from active/poly crossings: strips
  between gates, nets resolved from the contacts above them, then
  distributed to the circuit's devices in proportion to their widths;
* **well junctions** from n-well shapes.

The resulting annotated circuit is what the simulator measures for the
bracketed columns.

Two engines implement the geometric passes (see
:mod:`repro.layout.engine`): the default ``"vector"`` engine flattens
each layer into one ``(N, 4)`` coordinate array with nets encoded as int
codes and runs the wire-cap, poly-over-active, coupling-window and
junction-strip passes as array arithmetic; the original per-shape
``"scalar"`` code is kept verbatim below as the golden reference.  Both
produce canonically ordered reports (coupling keyed by sorted net pairs,
all dicts in sorted key order) so downstream annotation is deterministic
regardless of shape iteration order.
"""

from __future__ import annotations

import weakref
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.circuit.elements import Mos
from repro.circuit.net import canonical
from repro.circuit.netlist import Circuit
from repro.layout.cell import Cell, Shape
from repro.layout.engine import SCALAR, extraction_engine
from repro.layout.geometry import Rect, interval_pairs
from repro.layout.layers import Layer, metal_name
from repro.mos.junction import DiffusionGeometry
from repro.technology.process import Technology


@dataclass
class ExtractedParasitics:
    """Raw geometric extraction results."""

    net_wire_cap: Dict[str, float] = field(default_factory=dict)
    coupling: Dict[Tuple[str, str], float] = field(default_factory=dict)
    diffusion: Dict[Tuple[str, str], Tuple[float, float]] = field(
        default_factory=dict
    )
    """(net, polarity) -> (area, perimeter) of source/drain diffusion."""
    well: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    """net -> (area, perimeter) of n-well."""

    def total_wire_cap(self) -> float:
        return sum(self.net_wire_cap.values())


def _wire_capacitance(
    tech: Technology, shapes: List[Shape], actives: List[Rect]
) -> Dict[str, float]:
    """Ground capacitance per net over all interconnect shapes."""
    result: Dict[str, float] = defaultdict(float)
    for shape in shapes:
        if shape.net is None:
            continue
        metal = tech.metal(metal_name(shape.layer))
        area = shape.rect.area
        if shape.layer is Layer.POLY:
            # Gate poly over active is channel, not wire.
            for active in actives:
                overlap = shape.rect.intersection(active)
                if overlap is not None:
                    area -= overlap.area
            if area <= 0.0:
                continue
        result[shape.net] += (
            metal.area_cap * area + metal.fringe_cap * shape.rect.perimeter
        )
    return dict(result)


def _coupling(
    tech: Technology, shapes: List[Shape], window_factor: float = 3.0
) -> Dict[Tuple[str, str], float]:
    """Same-layer lateral coupling between different nets."""
    result: Dict[Tuple[str, str], float] = defaultdict(float)
    by_layer: Dict[Layer, List[Shape]] = defaultdict(list)
    for shape in shapes:
        if shape.net is not None:
            by_layer[shape.layer].append(shape)
    for layer, members in by_layer.items():
        metal = tech.metal(metal_name(layer))
        window = window_factor * metal.min_spacing
        members = sorted(members, key=lambda s: s.rect.x0)
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                if b.rect.x0 > a.rect.x1 + window:
                    break
                if a.net == b.net:
                    continue
                run_x = a.rect.parallel_run_x(b.rect)
                run_y = a.rect.parallel_run_y(b.rect)
                if run_x > 0.0 and run_y > 0.0:
                    continue  # overlapping different nets: not lateral
                if run_x > 0.0:
                    spacing = max(b.rect.y0 - a.rect.y1, a.rect.y0 - b.rect.y1)
                    run = run_x
                elif run_y > 0.0:
                    spacing = max(b.rect.x0 - a.rect.x1, a.rect.x0 - b.rect.x1)
                    run = run_y
                else:
                    continue
                if spacing <= 0.0 or spacing > window:
                    continue
                key = tuple(sorted((a.net, b.net)))
                result[key] += metal.coupling_capacitance(run, spacing)
    return dict(result)


def _diffusion_strips(
    tech: Technology, shapes: List[Shape]
) -> Dict[Tuple[str, str], Tuple[float, float]]:
    """Re-derive diffusion strips from active/poly/contact geometry."""
    actives = [s.rect for s in shapes if s.layer is Layer.ACTIVE]
    polys = [s for s in shapes if s.layer is Layer.POLY]
    contacts = [s for s in shapes if s.layer is Layer.CONTACT and s.net]
    nimplants = [s.rect for s in shapes if s.layer is Layer.NIMPLANT]

    result: Dict[Tuple[str, str], Tuple[float, float]] = defaultdict(
        lambda: (0.0, 0.0)
    )
    for active in actives:
        polarity = "n" if any(r.contains(active) for r in nimplants) else "p"
        # Gates: poly fully crossing the active vertically.
        gates = []
        for poly in polys:
            overlap = poly.rect.intersection(active)
            if overlap is None:
                continue
            if poly.rect.y0 <= active.y0 and poly.rect.y1 >= active.y1:
                gates.append((overlap.x0, overlap.x1))
        gates.sort()
        # Strips between consecutive gates (and the two ends).
        boundaries = [active.x0]
        for x0, x1 in gates:
            boundaries.extend((x0, x1))
        boundaries.append(active.x1)
        for i in range(0, len(boundaries), 2):
            x0, x1 = boundaries[i], boundaries[i + 1]
            if x1 - x0 <= 0.0:
                continue
            strip = Rect(x0, active.y0, x1, active.y1)
            net = _strip_net(strip, contacts)
            if net is None:
                continue
            area = strip.area
            perimeter = 2.0 * strip.width
            if abs(strip.x0 - active.x0) < 1e-12:
                perimeter += strip.height
            if abs(strip.x1 - active.x1) < 1e-12:
                perimeter += strip.height
            key = (net, polarity)
            total_area, total_perimeter = result[key]
            result[key] = (total_area + area, total_perimeter + perimeter)
    return dict(result)


def _strip_net(strip: Rect, contacts: List[Shape]) -> Optional[str]:
    for contact in contacts:
        if strip.intersects(contact.rect):
            return contact.net
    return None


def _wells(shapes: List[Shape]) -> Dict[str, Tuple[float, float]]:
    result: Dict[str, Tuple[float, float]] = defaultdict(lambda: (0.0, 0.0))
    for shape in shapes:
        if shape.layer is Layer.NWELL and shape.net is not None:
            area, perimeter = result[shape.net]
            result[shape.net] = (
                area + shape.rect.area,
                perimeter + shape.rect.perimeter,
            )
    return dict(result)


# -- Vectorized engine --------------------------------------------------------
#
# Same passes as the scalar reference above, restated as array arithmetic:
# one (N, 4) float array of (x0, y0, x1, y1) rows per layer, nets encoded
# as int codes in sorted-name order (so min/max of a code pair *is* the
# sorted net-name pair).  Candidate coupling pairs come from the shared
# sorted-sweep in :func:`repro.layout.geometry.interval_pairs`; every
# candidate is re-tested with the exact scalar predicate, so the two
# engines agree on the pair/strip *sets* exactly and on the accumulated
# float totals to within summation-order noise (rtol 1e-12 in the golden
# tests).


def _net_codes(shapes: List[Shape]) -> Tuple[List[str], Dict[str, int]]:
    """Net names in sorted order plus the name -> int code table."""
    names = sorted({s.net for s in shapes})
    return names, {net: index for index, net in enumerate(names)}


def _group_by_layer(shapes: List[Shape]) -> Dict[Layer, List[Shape]]:
    by_layer: Dict[Layer, List[Shape]] = defaultdict(list)
    for shape in shapes:
        by_layer[shape.layer].append(shape)
    return by_layer


def _layer_arrays(
    members: List[Shape], codes: Dict[str, int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten one layer's shapes into coordinate rows + net codes."""
    coords = np.empty((len(members), 4))
    net_codes = np.empty(len(members), dtype=np.intp)
    for i, shape in enumerate(members):
        rect = shape.rect
        coords[i, 0] = rect.x0
        coords[i, 1] = rect.y0
        coords[i, 2] = rect.x1
        coords[i, 3] = rect.y1
        net_codes[i] = codes[shape.net]
    return coords, net_codes


def _rect_array(rects: List[Rect]) -> Optional[np.ndarray]:
    if not rects:
        return None
    return np.array([(r.x0, r.y0, r.x1, r.y1) for r in rects])


class ExtractionWorkspace:
    """Shared numpy buffers for one cell's extraction passes.

    The wire-cap and coupling passes used to rebuild identical
    ``(N, 4)`` coordinate arrays for every layer on every call, and the
    diffusion pass its own rect arrays — per synthesis round, for clean
    and dirty layers alike.  The workspace builds each array once and
    hands the *same* buffers to every pass; it is keyed by the cell's
    subtree version stamp (the layer-content version the flatten/bbox
    memos already use), so an unchanged cell re-extracted under a
    different engine or window also reuses its buffers, while any
    geometry change invalidates them.

    The buffers are read-only by convention: every consumer indexes or
    reduces them, none writes.
    """

    def __init__(self, shapes: List[Shape], interconnect: List[Shape]):
        self.shapes = shapes
        self.interconnect = interconnect
        self.names, self.codes = _net_codes(interconnect)
        self.by_layer = _group_by_layer(interconnect)
        self._layer_cache: Dict[Layer, Tuple[np.ndarray, np.ndarray]] = {}
        self._sorted_cache: Dict[Layer, Tuple[np.ndarray, np.ndarray]] = {}
        self.actives = [s.rect for s in shapes if s.layer is Layer.ACTIVE]
        self._rects: Dict[str, Optional[np.ndarray]] = {}
        self.contacts = [
            s for s in shapes if s.layer is Layer.CONTACT and s.net
        ]

    def layer_arrays(self, layer: Layer) -> Tuple[np.ndarray, np.ndarray]:
        """Coordinate rows + net codes for one interconnect layer."""
        found = self._layer_cache.get(layer)
        if found is None:
            found = _layer_arrays(self.by_layer[layer], self.codes)
            self._layer_cache[layer] = found
        return found

    def sorted_layer_arrays(
        self, layer: Layer
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The same arrays stably ordered by x0 (the coupling sweep)."""
        found = self._sorted_cache.get(layer)
        if found is None:
            coords, net_codes = self.layer_arrays(layer)
            order = np.argsort(coords[:, 0], kind="stable")
            found = (coords[order], net_codes[order])
            self._sorted_cache[layer] = found
        return found

    def rect_arrays(self, kind: str) -> Optional[np.ndarray]:
        """Rect array of one geometry class used by the diffusion pass."""
        if kind not in self._rects:
            if kind == "active":
                rects = self.actives
            elif kind == "poly":
                rects = [
                    s.rect for s in self.shapes if s.layer is Layer.POLY
                ]
            elif kind == "contact":
                rects = [s.rect for s in self.contacts]
            elif kind == "nimplant":
                rects = [
                    s.rect for s in self.shapes if s.layer is Layer.NIMPLANT
                ]
            else:  # pragma: no cover - internal misuse
                raise KeyError(kind)
            self._rects[kind] = _rect_array(rects)
        return self._rects[kind]


#: cell -> (subtree stamp, workspace); weak keys so dropped cells free
#: their buffers with them.
_workspaces: "weakref.WeakKeyDictionary[Cell, Tuple[object, ExtractionWorkspace]]" = (
    weakref.WeakKeyDictionary()
)


def _workspace_for(
    cell: Cell, shapes: List[Shape], interconnect: List[Shape]
) -> ExtractionWorkspace:
    stamp = cell._stamp()
    cached = _workspaces.get(cell)
    if cached is not None and cached[0] == stamp:
        return cached[1]
    workspace = ExtractionWorkspace(shapes, interconnect)
    _workspaces[cell] = (stamp, workspace)
    return workspace


def _wire_capacitance_vec(
    tech: Technology,
    shapes: List[Shape],
    actives: List[Rect],
    ws: Optional[ExtractionWorkspace] = None,
) -> Dict[str, float]:
    """Array form of :func:`_wire_capacitance` (inputs pre-filtered to
    netted interconnect shapes)."""
    if not shapes:
        return {}
    if ws is not None:
        names, codes = ws.names, ws.codes
        active_arr = ws.rect_arrays("active")
        groups = ws.by_layer
    else:
        names, codes = _net_codes(shapes)
        active_arr = _rect_array(actives)
        groups = _group_by_layer(shapes)
    totals = np.zeros(len(names))
    touched = np.zeros(len(names), dtype=bool)
    for layer, members in groups.items():
        metal = tech.metal(metal_name(layer))
        if ws is not None:
            coords, net_codes = ws.layer_arrays(layer)
        else:
            coords, net_codes = _layer_arrays(members, codes)
        width = coords[:, 2] - coords[:, 0]
        height = coords[:, 3] - coords[:, 1]
        area = width * height
        if layer is Layer.POLY and active_arr is not None:
            # Gate poly over active is channel, not wire: subtract every
            # strict overlap, and drop shapes left with no wire area
            # (their fringe term goes with them, as in the scalar code).
            ox = np.minimum(coords[:, 2, None], active_arr[None, :, 2]) - np.maximum(
                coords[:, 0, None], active_arr[None, :, 0]
            )
            oy = np.minimum(coords[:, 3, None], active_arr[None, :, 3]) - np.maximum(
                coords[:, 1, None], active_arr[None, :, 1]
            )
            covered = np.where((ox > 0.0) & (oy > 0.0), ox * oy, 0.0)
            area = area - covered.sum(axis=1)
            keep = area > 0.0
            if not keep.all():
                area = area[keep]
                width = width[keep]
                height = height[keep]
                net_codes = net_codes[keep]
        values = metal.area_cap * area + metal.fringe_cap * (
            2.0 * (width + height)
        )
        np.add.at(totals, net_codes, values)
        touched[net_codes] = True
    return {names[i]: float(totals[i]) for i in np.flatnonzero(touched)}


def _coupling_vec(
    tech: Technology,
    shapes: List[Shape],
    window_factor: float = 3.0,
    ws: Optional[ExtractionWorkspace] = None,
) -> Dict[Tuple[str, str], float]:
    """Array form of :func:`_coupling` via the shared interval sweep."""
    result: Dict[Tuple[str, str], float] = {}
    if not shapes:
        return result
    if ws is not None:
        names = ws.names
        groups = ws.by_layer
    else:
        names, codes = _net_codes(shapes)
        groups = _group_by_layer(shapes)
    n_names = len(names)
    for layer, members in groups.items():
        metal = tech.metal(metal_name(layer))
        window = window_factor * metal.min_spacing
        if ws is not None:
            coords, net_codes = ws.sorted_layer_arrays(layer)
        else:
            coords, net_codes = _layer_arrays(members, codes)
            order = np.argsort(coords[:, 0], kind="stable")
            coords = coords[order]
            net_codes = net_codes[order]
        ii, jj = interval_pairs(coords[:, 0], coords[:, 2], window)
        if ii.size == 0:
            continue
        a = coords[ii]
        b = coords[jj]
        run_x = np.minimum(a[:, 2], b[:, 2]) - np.maximum(a[:, 0], b[:, 0])
        run_y = np.minimum(a[:, 3], b[:, 3]) - np.maximum(a[:, 1], b[:, 1])
        # Lateral only: overlapping different nets (both runs positive)
        # are excluded, exactly as in the scalar predicate.
        lateral_x = (run_x > 0.0) & ~(run_y > 0.0)
        lateral_y = (run_y > 0.0) & ~(run_x > 0.0)
        spacing = np.where(
            lateral_x,
            np.maximum(b[:, 1] - a[:, 3], a[:, 1] - b[:, 3]),
            np.maximum(b[:, 0] - a[:, 2], a[:, 0] - b[:, 2]),
        )
        run = np.where(lateral_x, run_x, run_y)
        ca = net_codes[ii]
        cb = net_codes[jj]
        mask = (
            (ca != cb)
            & (lateral_x | lateral_y)
            & (spacing > 0.0)
            & (spacing <= window)
        )
        if not mask.any():
            continue
        values = metal.coupling_cap * run[mask] * (
            metal.min_spacing / spacing[mask]
        )
        lo = np.minimum(ca[mask], cb[mask])
        hi = np.maximum(ca[mask], cb[mask])
        pair_ids = lo * n_names + hi
        unique_ids, inverse = np.unique(pair_ids, return_inverse=True)
        sums = np.bincount(inverse, weights=values)
        for pair_id, value in zip(unique_ids.tolist(), sums.tolist()):
            # Codes are in sorted-name order, so (lo, hi) is the sorted pair.
            key = (names[pair_id // n_names], names[pair_id % n_names])
            result[key] = result.get(key, 0.0) + value
    return result


def _diffusion_strips_vec(
    tech: Technology,
    shapes: List[Shape],
    ws: Optional[ExtractionWorkspace] = None,
) -> Dict[Tuple[str, str], Tuple[float, float]]:
    """Array form of :func:`_diffusion_strips`.

    The per-active strip walk stays a Python loop (actives are few); the
    hot inner scans — gate finding over all polys and net resolution over
    all contacts — run as array tests.
    """
    if ws is not None:
        actives = ws.actives
        poly_arr = ws.rect_arrays("poly")
        contact_arr = ws.rect_arrays("contact")
        contact_nets = [s.net for s in ws.contacts]
        nimp_arr = ws.rect_arrays("nimplant")
    else:
        actives = [s.rect for s in shapes if s.layer is Layer.ACTIVE]
        polys = [s.rect for s in shapes if s.layer is Layer.POLY]
        contacts = [s for s in shapes if s.layer is Layer.CONTACT and s.net]
        nimplants = [s.rect for s in shapes if s.layer is Layer.NIMPLANT]

        poly_arr = _rect_array(polys)
        contact_arr = _rect_array([s.rect for s in contacts])
        contact_nets = [s.net for s in contacts]
        nimp_arr = _rect_array(nimplants)

    result: Dict[Tuple[str, str], Tuple[float, float]] = defaultdict(
        lambda: (0.0, 0.0)
    )
    for active in actives:
        if nimp_arr is not None and bool(
            np.any(
                (nimp_arr[:, 0] <= active.x0)
                & (nimp_arr[:, 1] <= active.y0)
                & (nimp_arr[:, 2] >= active.x1)
                & (nimp_arr[:, 3] >= active.y1)
            )
        ):
            polarity = "n"
        else:
            polarity = "p"
        gates: List[Tuple[float, float]] = []
        if poly_arr is not None:
            gx0 = np.maximum(poly_arr[:, 0], active.x0)
            gx1 = np.minimum(poly_arr[:, 2], active.x1)
            crossing = (
                (gx1 > gx0)
                & (np.minimum(poly_arr[:, 3], active.y1)
                   > np.maximum(poly_arr[:, 1], active.y0))
                & (poly_arr[:, 1] <= active.y0)
                & (poly_arr[:, 3] >= active.y1)
            )
            for index in np.flatnonzero(crossing):
                gates.append((float(gx0[index]), float(gx1[index])))
        gates.sort()
        boundaries = [active.x0]
        for x0, x1 in gates:
            boundaries.extend((x0, x1))
        boundaries.append(active.x1)
        for i in range(0, len(boundaries), 2):
            x0, x1 = boundaries[i], boundaries[i + 1]
            if x1 - x0 <= 0.0:
                continue
            net = None
            if contact_arr is not None:
                hits = (
                    (contact_arr[:, 0] < x1)
                    & (x0 < contact_arr[:, 2])
                    & (contact_arr[:, 1] < active.y1)
                    & (active.y0 < contact_arr[:, 3])
                )
                first = int(np.argmax(hits))
                if hits[first]:
                    net = contact_nets[first]
            if net is None:
                continue
            width = x1 - x0
            height = active.y1 - active.y0
            area = width * height
            perimeter = 2.0 * width
            if abs(x0 - active.x0) < 1e-12:
                perimeter += height
            if abs(x1 - active.x1) < 1e-12:
                perimeter += height
            key = (net, polarity)
            total_area, total_perimeter = result[key]
            result[key] = (total_area + area, total_perimeter + perimeter)
    return dict(result)


def extract_cell(
    cell: Cell, tech: Technology, engine: Optional[str] = None
) -> ExtractedParasitics:
    """Full geometric extraction of a (hierarchical) cell.

    ``engine`` selects ``"vector"`` (default) or ``"scalar"``; ``None``
    resolves through :data:`repro.layout.engine.extraction_engine`.  Both
    engines return canonically ordered reports: coupling keys are sorted
    net tuples and every result dict is in sorted key order, so the
    annotation (and everything solved from it) is independent of shape
    iteration order.
    """
    from repro.layout import incremental

    engine = extraction_engine.resolve(engine)
    reuse_key = incremental.extraction_key(cell, tech, engine)
    cached = incremental.lookup_extraction(reuse_key)
    if cached is not None:
        # The differential fast path: this cell's content (motif, folds,
        # technology) already went through these exact passes.  Still a
        # logical extraction, so traces keep one span per call.
        with telemetry.span(
            "layout.extract", cell=cell.name, engine=engine, cached=True
        ):
            telemetry.count("layout.extract")
        return cached
    shapes = list(cell.flattened())
    actives = [s.rect for s in shapes if s.layer is Layer.ACTIVE]
    interconnect = [
        s
        for s in shapes
        if s.layer in (Layer.POLY, Layer.METAL1, Layer.METAL2) and s.net
    ]
    with telemetry.span(
        "layout.extract", cell=cell.name, engine=engine, shapes=len(shapes)
    ):
        telemetry.count("layout.extract")
        if engine == SCALAR:
            wire = _wire_capacitance(tech, interconnect, actives)
            coupling = _coupling(tech, interconnect)
            diffusion = _diffusion_strips(tech, shapes)
        else:
            ws = _workspace_for(cell, shapes, interconnect)
            wire = _wire_capacitance_vec(tech, interconnect, actives, ws)
            coupling = _coupling_vec(tech, interconnect, ws=ws)
            diffusion = _diffusion_strips_vec(tech, shapes, ws)
        result = ExtractedParasitics(
            net_wire_cap=dict(sorted(wire.items())),
            coupling=dict(sorted(coupling.items())),
            diffusion=dict(sorted(diffusion.items())),
            well=dict(sorted(_wells(shapes).items())),
        )
        incremental.store_extraction(reuse_key, result)
        return result


def annotate_circuit(
    circuit: Circuit,
    extracted: ExtractedParasitics,
    tech: Technology,
    supply_nets: Tuple[str, ...] = ("vdd!", "0"),
    net_alias: Optional[Dict[str, str]] = None,
) -> Circuit:
    """Back-annotate extraction onto a schematic.

    Returns a clone of ``circuit`` with

    * parasitic capacitors for wire, coupling and well capacitance
      (supply-to-supply capacitors are dropped — they do not affect the
      small-signal behaviour and only slow the solver);
    * per-device junction geometry distributed from the per-net diffusion
      totals in proportion to device widths.

    ``net_alias`` maps layout net names to schematic net names when they
    differ.
    """
    alias = net_alias or {}

    def to_circuit_net(net: str) -> str:
        return alias.get(net, net)

    annotated = circuit.clone(circuit.name + "_extracted")
    annotated.strip_parasitics()

    for net, value in extracted.net_wire_cap.items():
        circuit_net = to_circuit_net(net)
        if canonical(circuit_net) == "0":
            continue
        annotated.attach_parasitic_cap(circuit_net, "0", value)

    for (net_a, net_b), value in extracted.coupling.items():
        a, b = to_circuit_net(net_a), to_circuit_net(net_b)
        if canonical(a) == canonical(b):
            continue
        annotated.attach_parasitic_cap(a, b, value)

    for net, (area, perimeter) in extracted.well.items():
        circuit_net = to_circuit_net(net)
        if circuit_net in supply_nets or canonical(circuit_net) == "0":
            continue
        annotated.attach_parasitic_cap(
            circuit_net, "0", tech.well.capacitance(area, perimeter)
        )

    _distribute_diffusion(annotated, extracted, alias)
    return annotated


def _distribute_diffusion(
    circuit: Circuit,
    extracted: ExtractedParasitics,
    alias: Dict[str, str],
) -> None:
    """Assign per-net diffusion totals to device terminals by width."""

    def to_circuit_net(net: str) -> str:
        return alias.get(net, net)

    # (net, polarity) -> [(device, terminal, width)]
    claims: Dict[Tuple[str, str], List[Tuple[Mos, str]]] = defaultdict(list)
    for mos in circuit.mos_devices:
        assert mos.params is not None
        claims[(canonical(mos.d), mos.polarity)].append((mos, "d"))
        claims[(canonical(mos.s), mos.polarity)].append((mos, "s"))

    assignments: Dict[str, Dict[str, Tuple[float, float]]] = defaultdict(dict)
    for (net, polarity), (area, perimeter) in extracted.diffusion.items():
        key = (canonical(to_circuit_net(net)), polarity)
        claimants = claims.get(key, [])
        total_width = sum(mos.w for mos, _terminal in claimants)
        if not claimants or total_width <= 0.0:
            continue
        for mos, terminal in claimants:
            weight = mos.w / total_width
            assignments[mos.name][terminal] = (area * weight, perimeter * weight)

    for mos in circuit.mos_devices:
        terminals = assignments.get(mos.name)
        if not terminals:
            continue
        ad, pd = terminals.get("d", (0.0, 0.0))
        as_, ps = terminals.get("s", (0.0, 0.0))
        mos.geometry = DiffusionGeometry(ad=ad, pd=pd, as_=as_, ps=ps)
