"""Geometric extraction of a generated layout.

Plays the role the commercial extractor (Cadence) plays in the paper: an
*independent* measurement of the drawn geometry used to produce the
"values between brackets" of Table 1.  It never consults the estimator's
bookkeeping — everything is recomputed from the flattened shapes:

* **interconnect capacitance** per net from every poly/metal shape (area +
  perimeter fringe), with gate poly over active excluded (that is channel
  capacitance, owned by the device model);
* **coupling capacitance** between same-layer shapes of different nets
  within a proximity window;
* **diffusion junctions** re-derived from active/poly crossings: strips
  between gates, nets resolved from the contacts above them, then
  distributed to the circuit's devices in proportion to their widths;
* **well junctions** from n-well shapes.

The resulting annotated circuit is what the simulator measures for the
bracketed columns.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.circuit.elements import Mos
from repro.circuit.net import canonical
from repro.circuit.netlist import Circuit
from repro.layout.cell import Cell, Shape
from repro.layout.geometry import Rect
from repro.layout.layers import Layer, metal_name
from repro.mos.junction import DiffusionGeometry
from repro.technology.process import Technology


@dataclass
class ExtractedParasitics:
    """Raw geometric extraction results."""

    net_wire_cap: Dict[str, float] = field(default_factory=dict)
    coupling: Dict[Tuple[str, str], float] = field(default_factory=dict)
    diffusion: Dict[Tuple[str, str], Tuple[float, float]] = field(
        default_factory=dict
    )
    """(net, polarity) -> (area, perimeter) of source/drain diffusion."""
    well: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    """net -> (area, perimeter) of n-well."""

    def total_wire_cap(self) -> float:
        return sum(self.net_wire_cap.values())


def _wire_capacitance(
    tech: Technology, shapes: List[Shape], actives: List[Rect]
) -> Dict[str, float]:
    """Ground capacitance per net over all interconnect shapes."""
    result: Dict[str, float] = defaultdict(float)
    for shape in shapes:
        if shape.net is None:
            continue
        metal = tech.metal(metal_name(shape.layer))
        area = shape.rect.area
        if shape.layer is Layer.POLY:
            # Gate poly over active is channel, not wire.
            for active in actives:
                overlap = shape.rect.intersection(active)
                if overlap is not None:
                    area -= overlap.area
            if area <= 0.0:
                continue
        result[shape.net] += (
            metal.area_cap * area + metal.fringe_cap * shape.rect.perimeter
        )
    return dict(result)


def _coupling(
    tech: Technology, shapes: List[Shape], window_factor: float = 3.0
) -> Dict[Tuple[str, str], float]:
    """Same-layer lateral coupling between different nets."""
    result: Dict[Tuple[str, str], float] = defaultdict(float)
    by_layer: Dict[Layer, List[Shape]] = defaultdict(list)
    for shape in shapes:
        if shape.net is not None:
            by_layer[shape.layer].append(shape)
    for layer, members in by_layer.items():
        metal = tech.metal(metal_name(layer))
        window = window_factor * metal.min_spacing
        members = sorted(members, key=lambda s: s.rect.x0)
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                if b.rect.x0 > a.rect.x1 + window:
                    break
                if a.net == b.net:
                    continue
                run_x = a.rect.parallel_run_x(b.rect)
                run_y = a.rect.parallel_run_y(b.rect)
                if run_x > 0.0 and run_y > 0.0:
                    continue  # overlapping different nets: not lateral
                if run_x > 0.0:
                    spacing = max(b.rect.y0 - a.rect.y1, a.rect.y0 - b.rect.y1)
                    run = run_x
                elif run_y > 0.0:
                    spacing = max(b.rect.x0 - a.rect.x1, a.rect.x0 - b.rect.x1)
                    run = run_y
                else:
                    continue
                if spacing <= 0.0 or spacing > window:
                    continue
                key = tuple(sorted((a.net, b.net)))
                result[key] += metal.coupling_capacitance(run, spacing)
    return dict(result)


def _diffusion_strips(
    tech: Technology, shapes: List[Shape]
) -> Dict[Tuple[str, str], Tuple[float, float]]:
    """Re-derive diffusion strips from active/poly/contact geometry."""
    actives = [s.rect for s in shapes if s.layer is Layer.ACTIVE]
    polys = [s for s in shapes if s.layer is Layer.POLY]
    contacts = [s for s in shapes if s.layer is Layer.CONTACT and s.net]
    nimplants = [s.rect for s in shapes if s.layer is Layer.NIMPLANT]

    result: Dict[Tuple[str, str], Tuple[float, float]] = defaultdict(
        lambda: (0.0, 0.0)
    )
    for active in actives:
        polarity = "n" if any(r.contains(active) for r in nimplants) else "p"
        # Gates: poly fully crossing the active vertically.
        gates = []
        for poly in polys:
            overlap = poly.rect.intersection(active)
            if overlap is None:
                continue
            if poly.rect.y0 <= active.y0 and poly.rect.y1 >= active.y1:
                gates.append((overlap.x0, overlap.x1))
        gates.sort()
        # Strips between consecutive gates (and the two ends).
        boundaries = [active.x0]
        for x0, x1 in gates:
            boundaries.extend((x0, x1))
        boundaries.append(active.x1)
        for i in range(0, len(boundaries), 2):
            x0, x1 = boundaries[i], boundaries[i + 1]
            if x1 - x0 <= 0.0:
                continue
            strip = Rect(x0, active.y0, x1, active.y1)
            net = _strip_net(strip, contacts)
            if net is None:
                continue
            area = strip.area
            perimeter = 2.0 * strip.width
            if abs(strip.x0 - active.x0) < 1e-12:
                perimeter += strip.height
            if abs(strip.x1 - active.x1) < 1e-12:
                perimeter += strip.height
            key = (net, polarity)
            total_area, total_perimeter = result[key]
            result[key] = (total_area + area, total_perimeter + perimeter)
    return dict(result)


def _strip_net(strip: Rect, contacts: List[Shape]) -> Optional[str]:
    for contact in contacts:
        if strip.intersects(contact.rect):
            return contact.net
    return None


def _wells(shapes: List[Shape]) -> Dict[str, Tuple[float, float]]:
    result: Dict[str, Tuple[float, float]] = defaultdict(lambda: (0.0, 0.0))
    for shape in shapes:
        if shape.layer is Layer.NWELL and shape.net is not None:
            area, perimeter = result[shape.net]
            result[shape.net] = (
                area + shape.rect.area,
                perimeter + shape.rect.perimeter,
            )
    return dict(result)


def extract_cell(cell: Cell, tech: Technology) -> ExtractedParasitics:
    """Full geometric extraction of a (hierarchical) cell."""
    shapes = list(cell.flattened())
    actives = [s.rect for s in shapes if s.layer is Layer.ACTIVE]
    interconnect = [
        s
        for s in shapes
        if s.layer in (Layer.POLY, Layer.METAL1, Layer.METAL2) and s.net
    ]
    return ExtractedParasitics(
        net_wire_cap=_wire_capacitance(tech, interconnect, actives),
        coupling=_coupling(tech, interconnect),
        diffusion=_diffusion_strips(tech, shapes),
        well=_wells(shapes),
    )


def annotate_circuit(
    circuit: Circuit,
    extracted: ExtractedParasitics,
    tech: Technology,
    supply_nets: Tuple[str, ...] = ("vdd!", "0"),
    net_alias: Optional[Dict[str, str]] = None,
) -> Circuit:
    """Back-annotate extraction onto a schematic.

    Returns a clone of ``circuit`` with

    * parasitic capacitors for wire, coupling and well capacitance
      (supply-to-supply capacitors are dropped — they do not affect the
      small-signal behaviour and only slow the solver);
    * per-device junction geometry distributed from the per-net diffusion
      totals in proportion to device widths.

    ``net_alias`` maps layout net names to schematic net names when they
    differ.
    """
    alias = net_alias or {}

    def to_circuit_net(net: str) -> str:
        return alias.get(net, net)

    annotated = circuit.clone(circuit.name + "_extracted")
    annotated.strip_parasitics()

    for net, value in extracted.net_wire_cap.items():
        circuit_net = to_circuit_net(net)
        if canonical(circuit_net) == "0":
            continue
        annotated.attach_parasitic_cap(circuit_net, "0", value)

    for (net_a, net_b), value in extracted.coupling.items():
        a, b = to_circuit_net(net_a), to_circuit_net(net_b)
        if canonical(a) == canonical(b):
            continue
        annotated.attach_parasitic_cap(a, b, value)

    for net, (area, perimeter) in extracted.well.items():
        circuit_net = to_circuit_net(net)
        if circuit_net in supply_nets or canonical(circuit_net) == "0":
            continue
        annotated.attach_parasitic_cap(
            circuit_net, "0", tech.well.capacitance(area, perimeter)
        )

    _distribute_diffusion(annotated, extracted, alias)
    return annotated


def _distribute_diffusion(
    circuit: Circuit,
    extracted: ExtractedParasitics,
    alias: Dict[str, str],
) -> None:
    """Assign per-net diffusion totals to device terminals by width."""

    def to_circuit_net(net: str) -> str:
        return alias.get(net, net)

    # (net, polarity) -> [(device, terminal, width)]
    claims: Dict[Tuple[str, str], List[Tuple[Mos, str]]] = defaultdict(list)
    for mos in circuit.mos_devices:
        assert mos.params is not None
        claims[(canonical(mos.d), mos.polarity)].append((mos, "d"))
        claims[(canonical(mos.s), mos.polarity)].append((mos, "s"))

    assignments: Dict[str, Dict[str, Tuple[float, float]]] = defaultdict(dict)
    for (net, polarity), (area, perimeter) in extracted.diffusion.items():
        key = (canonical(to_circuit_net(net)), polarity)
        claimants = claims.get(key, [])
        total_width = sum(mos.w for mos, _terminal in claimants)
        if not claimants or total_width <= 0.0:
            continue
        for mos, terminal in claimants:
            weight = mos.w / total_width
            assignments[mos.name][terminal] = (area * weight, perimeter * weight)

    for mos in circuit.mos_devices:
        terminals = assignments.get(mos.name)
        if not terminals:
            continue
        ad, pd = terminals.get("d", (0.0, 0.0))
        as_, ps = terminals.get("s", (0.0, 0.0))
        mos.geometry = DiffusionGeometry(ad=ad, pd=pd, as_=as_, ps=ps)
