"""Reliability design rules (electromigration, contact redundancy).

"DC current information is used to adjust wire widths inside each module as
well as routing wires in order to respect the maximum current density
allowed by the technology.  The number of contacts are also increased for
wide wires" (paper section 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import DesignRuleError
from repro.layout.layers import Layer, metal_name
from repro.technology.process import Technology


def wire_width_for_current(
    tech: Technology, layer: Layer, current: float
) -> float:
    """Minimum reliable wire width on ``layer`` for a DC ``current``, m."""
    metal = tech.metal(metal_name(layer))
    if layer is Layer.METAL1:
        minimum = tech.rules.metal1_min_width
    elif layer is Layer.METAL2:
        minimum = tech.rules.metal2_min_width
    else:
        minimum = tech.rules.poly_min_width
    return tech.rules.snap_up(metal.min_width_for_current(current, minimum))


def contact_cuts_for_current(tech: Technology, current: float, via: bool = False) -> int:
    """Contact (or via) cuts required to carry ``current`` reliably."""
    rule = tech.via if via else tech.contact
    return rule.cuts_for_current(current)


@dataclass
class ReliabilityViolation:
    """One electromigration violation found by the checker."""

    net: str
    layer: Layer
    width: float
    required: float
    current: float

    def __str__(self) -> str:
        return (
            f"net {self.net!r} on {self.layer.value}: width {self.width:.3e} m "
            f"< required {self.required:.3e} m for {self.current:.3e} A"
        )


def check_wire_currents(
    tech: Technology,
    wires: List[Tuple[str, Layer, float]],
    net_currents: Dict[str, float],
) -> List[ReliabilityViolation]:
    """Check (net, layer, width) wire records against net DC currents.

    Used by tests and the OTA generator's self-check; conservative in that
    it assumes the full net current flows through every wire of the net.
    """
    violations: List[ReliabilityViolation] = []
    for net, layer, width in wires:
        current = abs(net_currents.get(net, 0.0))
        if current == 0.0:
            continue
        metal = tech.metal(metal_name(layer))
        required = metal.min_width_for_current(current, 0.0)
        if width < required - 1e-12:
            violations.append(
                ReliabilityViolation(
                    net=net,
                    layer=layer,
                    width=width,
                    required=required,
                    current=current,
                )
            )
    return violations


def assert_reliable(
    tech: Technology,
    wires: List[Tuple[str, Layer, float]],
    net_currents: Dict[str, float],
) -> None:
    """Raise :class:`DesignRuleError` when any wire violates EM limits."""
    violations = check_wire_currents(tech, wires, net_currents)
    if violations:
        summary = "; ".join(str(v) for v in violations[:5])
        raise DesignRuleError(
            f"{len(violations)} electromigration violation(s): {summary}"
        )
