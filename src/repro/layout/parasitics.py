"""Parasitic calculation mode: the data the layout tool sends back.

In the layout-oriented flow (paper section 2) the layout tool runs first in
a *parasitic calculation mode*: area optimisation fixes each transistor's
fold count, wire positions and widths, and the tool returns — without
emitting geometry —

* the layout style of every transistor (fold count, finger widths,
  internal/external/shared diffusions) as an exact junction geometry,
* routing capacitance per net including wire-to-wire coupling,
* exact well sizes for floating-well capacitance.

:class:`ParasiticReport` is that data structure; the OTA generator fills it
in both estimate and generate modes, and the sizing tool consumes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.mos.junction import DiffusionGeometry
from repro.technology.process import Technology


@dataclass
class DeviceParasitics:
    """Layout style of one transistor, as decided by area optimisation."""

    nf: int
    finger_width: float
    actual_width: float
    """Drawn width after grid snapping (may differ from the requested)."""
    requested_width: float
    geometry: DiffusionGeometry
    drain_internal: bool = True

    @property
    def width_error(self) -> float:
        """Relative drawn-vs-requested width error."""
        if self.requested_width == 0.0:
            return 0.0
        return (self.actual_width - self.requested_width) / self.requested_width


@dataclass
class ParasiticReport:
    """Everything the layout tool reports back to the sizing tool."""

    devices: Dict[str, DeviceParasitics] = field(default_factory=dict)
    net_capacitance: Dict[str, float] = field(default_factory=dict)
    """Routing capacitance to substrate per net, F."""
    coupling: Dict[Tuple[str, str], float] = field(default_factory=dict)
    """Wire-to-wire coupling capacitance per (sorted) net pair, F."""
    well_capacitance: Dict[str, float] = field(default_factory=dict)
    """Well junction capacitance per well (bulk) net, F."""
    width: float = 0.0
    height: float = 0.0

    @property
    def area(self) -> float:
        return self.width * self.height

    def net_total(self, net: str) -> float:
        """Ground + all coupling capacitance touching ``net``, F.

        A conservative single-number summary used for convergence checks.
        """
        total = self.net_capacitance.get(net, 0.0)
        for (net_a, net_b), value in self.coupling.items():
            if net in (net_a, net_b):
                total += value
        total += self.well_capacitance.get(net, 0.0)
        return total

    def distance(self, other: "ParasiticReport") -> float:
        """Largest absolute per-net capacitance change vs ``other``, F.

        The synthesis loop repeats "till the calculated parasitics remain
        unchanged"; this is the convergence metric.
        """
        nets = set(self.net_capacitance) | set(other.net_capacitance)
        nets |= set(self.well_capacitance) | set(other.well_capacitance)
        worst = 0.0
        for net in nets:
            worst = max(worst, abs(self.net_total(net) - other.net_total(net)))
        for name, device in self.devices.items():
            if name in other.devices:
                other_geometry = other.devices[name].geometry
                worst = max(worst, abs(device.geometry.ad - other_geometry.ad) * 1e-3)
        return worst

    def summary(self, technology: Optional[Technology] = None) -> str:
        """Multi-line human-readable report."""
        lines = [f"layout {self.width * 1e6:.1f} x {self.height * 1e6:.1f} um"]
        for name in sorted(self.devices):
            device = self.devices[name]
            lines.append(
                f"  {name}: nf={device.nf} wf={device.finger_width * 1e6:.2f}um "
                f"ad={device.geometry.ad * 1e12:.2f}pm2 "
                f"pd={device.geometry.pd * 1e6:.1f}um"
            )
        for net in sorted(self.net_capacitance):
            lines.append(
                f"  net {net}: {self.net_capacitance[net] * 1e15:.1f} fF routing"
            )
        for pair in sorted(self.coupling):
            lines.append(
                f"  coupling {pair[0]}-{pair[1]}: {self.coupling[pair] * 1e15:.2f} fF"
            )
        return "\n".join(lines)
