"""Slicing-tree placement with shape-function area optimisation.

"The language constructs allow to build up the appropriate slicing
structure for the circuit" (paper section 3).  Leaves are modules with
discrete implementation *variants* (different fold configurations); the
tree composes their shape functions, a shape constraint (aspect ratio,
height or width) selects one frontier point, and realisation walks back
down assigning each module its variant and position.

Selecting a frontier point is what "results in a given number of folds for
each transistor" — the fold counts fall out of area optimisation, exactly
as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple, Union

from repro.errors import LayoutError
from repro.layout.devices import ModuleLayout
from repro.layout.shape import ShapeFunction, ShapePoint, compose_frontier


@dataclass
class ModuleVariant:
    """One realisable implementation of a module."""

    tag: Any
    """Implementation handle, e.g. a fold-count assignment."""
    layout: ModuleLayout


@dataclass
class Placement:
    """A chosen variant at an absolute position."""

    name: str
    variant: ModuleVariant
    dx: float
    dy: float


class LeafNode:
    """A module with its variants."""

    def __init__(self, name: str, variants: Sequence[ModuleVariant]):
        if not variants:
            raise LayoutError(f"module {name!r} has no variants")
        self.name = name
        self.variants = list(variants)

    def shape_function(self) -> ShapeFunction:
        return ShapeFunction(
            ShapePoint(
                width=v.layout.width, height=v.layout.height, tag=("leaf", self, v)
            )
            for v in self.variants
        )


class SliceNode:
    """Internal slicing node: horizontal or vertical composition."""

    def __init__(
        self,
        kind: str,
        children: Sequence[Union["SliceNode", LeafNode]],
        spacings: Optional[Sequence[float]] = None,
        align: str = "center",
    ):
        if kind not in ("h", "v"):
            raise LayoutError(f"slice kind must be 'h' or 'v', got {kind!r}")
        if not children:
            raise LayoutError("slice node needs children")
        if spacings is None:
            spacings = [0.0] * (len(children) - 1)
        if len(spacings) != len(children) - 1:
            raise LayoutError("need exactly len(children)-1 spacings")
        if align not in ("min", "center"):
            raise LayoutError(f"align must be 'min' or 'center', got {align!r}")
        self.kind = kind
        self.children = list(children)
        self.spacings = list(spacings)
        self.align = align

    def shape_function(self) -> ShapeFunction:
        """Stockmeyer composition via the memoized frontier.

        :func:`compose_frontier` resolves which child-point index combos
        survive pruning (cached across rebuilds of identical subtrees);
        the ShapePoints and their realization tags are reconstructed
        here from this tree's live child points, so a cache hit carries
        the exact floats and variant handles of a direct enumeration.
        """
        child_functions = [child.shape_function() for child in self.children]
        total_spacing = sum(self.spacings)
        frontier = compose_frontier(
            self.kind, [f.points for f in child_functions], total_spacing
        )
        points = []
        for indices in frontier:
            combo = tuple(
                child_functions[c].points[i] for c, i in enumerate(indices)
            )
            if self.kind == "h":
                width = sum(p.width for p in combo) + total_spacing
                height = max(p.height for p in combo)
            else:
                width = max(p.width for p in combo)
                height = sum(p.height for p in combo) + total_spacing
            points.append(
                ShapePoint(width=width, height=height, tag=("slice", self, combo))
            )
        return ShapeFunction(points)


def realize(point: ShapePoint, dx: float = 0.0, dy: float = 0.0) -> List[Placement]:
    """Assign positions and variants for a chosen frontier point."""
    kind = point.tag[0] if isinstance(point.tag, tuple) else None
    if kind == "leaf":
        _, leaf, variant = point.tag
        return [Placement(name=leaf.name, variant=variant, dx=dx, dy=dy)]
    if kind == "slice":
        _, node, combo = point.tag
        placements: List[Placement] = []
        offset = 0.0
        for i, child_point in enumerate(combo):
            if node.kind == "h":
                child_dy = dy
                if node.align == "center":
                    child_dy += (point.height - child_point.height) / 2.0
                placements.extend(realize(child_point, dx + offset, child_dy))
                offset += child_point.width
            else:
                child_dx = dx
                if node.align == "center":
                    child_dx += (point.width - child_point.width) / 2.0
                placements.extend(realize(child_point, child_dx, dy + offset))
                offset += child_point.height
            if i < len(node.spacings):
                offset += node.spacings[i]
        return placements
    raise LayoutError("shape point does not carry slicing tags; cannot realize")


def optimize(
    root: Union[SliceNode, LeafNode],
    aspect: Optional[float] = None,
    height: Optional[float] = None,
    width: Optional[float] = None,
) -> Tuple[ShapePoint, List[Placement]]:
    """Pick the best frontier point under a shape constraint and realize it.

    Exactly one of ``aspect`` (H/W), ``height`` or ``width`` may be given;
    with none, the minimum-area point wins.
    """
    constraints = [c for c in (aspect, height, width) if c is not None]
    if len(constraints) > 1:
        raise LayoutError("give at most one shape constraint")
    function = root.shape_function()
    if aspect is not None:
        point = function.best_for_aspect(aspect)
    elif height is not None:
        point = function.best_for_height(height)
    elif width is not None:
        point = function.best_for_width(width)
    else:
        point = function.minimum_area()
    return point, realize(point)
