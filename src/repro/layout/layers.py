"""Mask layers.

A deliberately small but complete CMOS layer set, with GDSII layer numbers
for export and display colours for the SVG renderer.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Tuple


class Layer(Enum):
    """Drawn mask layers."""

    NWELL = "nwell"
    ACTIVE = "active"
    NIMPLANT = "nimplant"
    PIMPLANT = "pimplant"
    POLY = "poly"
    POLY2 = "poly2"
    """Second poly: capacitor top plates."""
    CONTACT = "contact"
    METAL1 = "metal1"
    VIA1 = "via1"
    METAL2 = "metal2"
    TEXT = "text"


GDS_LAYER_NUMBERS: Dict[Layer, Tuple[int, int]] = {
    Layer.NWELL: (1, 0),
    Layer.ACTIVE: (2, 0),
    Layer.NIMPLANT: (3, 0),
    Layer.PIMPLANT: (4, 0),
    Layer.POLY: (5, 0),
    Layer.POLY2: (10, 0),
    Layer.CONTACT: (6, 0),
    Layer.METAL1: (7, 0),
    Layer.VIA1: (8, 0),
    Layer.METAL2: (9, 0),
    Layer.TEXT: (63, 0),
}
"""(layer, datatype) pairs used by the GDSII writer."""

SVG_STYLE: Dict[Layer, Tuple[str, float]] = {
    Layer.NWELL: ("#ffe9a8", 0.45),
    Layer.ACTIVE: ("#3cb44b", 0.55),
    Layer.NIMPLANT: ("#9ae29a", 0.25),
    Layer.PIMPLANT: ("#e2b09a", 0.25),
    Layer.POLY: ("#e6194b", 0.65),
    Layer.POLY2: ("#f58231", 0.6),
    Layer.CONTACT: ("#222222", 0.9),
    Layer.METAL1: ("#4363d8", 0.55),
    Layer.VIA1: ("#111111", 0.9),
    Layer.METAL2: ("#b86bd8", 0.5),
    Layer.TEXT: ("#000000", 1.0),
}
"""Fill colour and opacity per layer for the SVG renderer."""

ROUTING_LAYERS = (Layer.POLY, Layer.METAL1, Layer.METAL2)
"""Layers the extractor treats as interconnect."""


def metal_name(layer: Layer) -> str:
    """Technology metal-stack key for a routing layer."""
    if layer is Layer.METAL1:
        return "metal1"
    if layer is Layer.METAL2:
        return "metal2"
    if layer is Layer.POLY:
        return "poly"
    raise ValueError(f"{layer} is not a routing layer")
