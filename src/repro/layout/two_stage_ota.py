"""Two-stage Miller OTA layout generator.

Demonstrates the paper's extensibility claim on the layout side: the
second topology's generator is written *in* the CAIRO-style DSL
(:mod:`repro.layout.cairo`) rather than hand-assembled like the
folded-cascode one — declaring modules, rows and net currents is all it
takes to give a new topology both of the paper's modes (parasitic
calculation and generation).

Floorplan (bottom to top): NMOS tail/sink row, input pair, PMOS mirror and
output device, Miller capacitor.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import LayoutError
from repro.layout.cairo import CairoProgram
from repro.layout.cell import Cell
from repro.layout.folding import choose_fold_count
from repro.layout.parasitics import ParasiticReport
from repro.technology.process import Technology
from repro.units import UM

TWO_STAGE_DEVICES = ("m1", "m2", "m3", "m4", "m5", "m6", "m7")


@dataclass
class TwoStageLayoutRequest:
    """Inputs to the two-stage layout generator."""

    technology: Technology
    sizes: Mapping[str, Tuple[float, float]]
    currents: Mapping[str, float]
    cc: float
    """Miller capacitance to draw, F."""
    aspect: Optional[float] = 1.0
    prefer_even_folds: bool = True


@dataclass
class TwoStageLayoutResult:
    """Output of one layout call (same shape as the OTA generator's)."""

    report: ParasiticReport
    fold_config: Dict[str, int]
    cell: Optional[Cell] = None
    mode: str = "estimate"


def _program(request: TwoStageLayoutRequest) -> Tuple[CairoProgram, Dict[str, int]]:
    tech = request.technology
    sizes = request.sizes
    currents = dict(request.currents)
    missing = [d for d in TWO_STAGE_DEVICES if d not in sizes]
    if missing:
        raise LayoutError(f"missing sizes for devices: {missing}")

    target_finger = 12.0 * UM

    def folds(device: str) -> int:
        width = sizes[device][0]
        nf = choose_fold_count(
            width, target_finger, prefer_even=request.prefer_even_folds
        )
        return max(nf, 1)

    fold_config = {device: folds(device) for device in TWO_STAGE_DEVICES}
    # Matched groups share a fold count.
    fold_config["m2"] = fold_config["m1"]
    fold_config["m4"] = fold_config["m3"]

    program = CairoProgram(tech, "two_stage_ota")
    program.device(
        "m5", "n", sizes["m5"][0], sizes["m5"][1],
        nets=("tail", "vbn", "0", "0"),
        nf=fold_config["m5"], current=currents.get("m5", 0.0),
    )
    program.device(
        "m7", "n", sizes["m7"][0], sizes["m7"][1],
        nets=("vout", "vbn", "0", "0"),
        nf=fold_config["m7"], current=currents.get("m7", 0.0),
    )
    program.pair(
        "pair", "n", sizes["m1"][0], sizes["m1"][1],
        nf=max(fold_config["m1"], 2),
        names=("m1", "m2"), drains=("d1", "d2"), gates=("inn", "inp"),
        source="tail", bulk="0",
        current_per_side=currents.get("m1", 0.0),
    )
    program.mirror(
        "mirror", "p",
        ratios={"m3": max(fold_config["m3"], 2), "m4": max(fold_config["m4"], 2)},
        unit_width=sizes["m3"][0] / max(fold_config["m3"], 2),
        l=sizes["m3"][1],
        drains={"m3": "d1", "m4": "d2"}, gate="d1", source="vdd!",
        bulk="vdd!",
        currents={"m3": currents.get("m3", 0.0), "m4": currents.get("m4", 0.0)},
    )
    program.device(
        "m6", "p", sizes["m6"][0], sizes["m6"][1],
        nets=("vout", "d2", "vdd!", "vdd!"),
        nf=fold_config["m6"], current=currents.get("m6", 0.0),
    )
    # Miller capacitor: top plate on the quiet first-stage node, bottom
    # plate (with its substrate parasitic) on the driven output.
    program.capacitor("cc", request.cc, net_top="d2", net_bottom="vout")

    program.row("m5", "m7")
    program.row("pair")
    program.row("mirror", "m6")
    program.row("cc")

    i_out = abs(currents.get("m6", 0.0))
    i_tail = abs(currents.get("m5", 0.0))
    program.net_current("vdd!", i_out + i_tail)
    program.net_current("0", i_out + i_tail)
    program.net_current("vout", i_out)
    program.net_current("tail", i_tail)
    program.net_current("d1", abs(currents.get("m3", 0.0)))
    program.net_current("d2", abs(currents.get("m4", 0.0)))
    program.shape(aspect=request.aspect)

    # Adjust matched fold bookkeeping for the pair/mirror minimums.
    fold_config["m1"] = fold_config["m2"] = max(fold_config["m1"], 2)
    fold_config["m3"] = fold_config["m4"] = max(fold_config["m3"], 2)
    return program, fold_config


def _finalise(
    request: TwoStageLayoutRequest,
    report: ParasiticReport,
    fold_config: Dict[str, int],
) -> TwoStageLayoutResult:
    # Requested widths for the width-error bookkeeping.
    for device, info in report.devices.items():
        if device in request.sizes:
            info.requested_width = request.sizes[device][0]
    return TwoStageLayoutResult(report=report, fold_config=fold_config)


def _request_key(request: TwoStageLayoutRequest) -> Optional[str]:
    """Content digest of every field the generator reads, or None."""
    from repro.layout.incremental import layout_key

    return layout_key(
        "two_stage",
        request.technology.fingerprint(),
        tuple(sorted(dict(request.sizes).items())),
        tuple(sorted(dict(request.currents).items())),
        request.cc,
        request.aspect,
        request.prefer_even_folds,
    )


def generate_two_stage_layout(
    request: TwoStageLayoutRequest, mode: str = "estimate"
) -> TwoStageLayoutResult:
    """Run the two-stage generator in either of the paper's modes.

    Like the folded-cascode generator, both modes assemble the same
    geometry internally, so with the incremental engine on the fully
    drawn result is stored once per request content and later calls
    (the converged round's ``generate`` pass, warm re-runs) are served
    without a rebuild.
    """
    from repro.layout import incremental

    if mode not in ("estimate", "generate"):
        raise LayoutError(f"mode must be 'estimate' or 'generate', got {mode!r}")
    key = _request_key(request)
    cached = incremental.lookup_layout(key)
    if cached is None:
        program, fold_config = _program(request)
        cell, report = program.generate()
        cached = _finalise(request, report, fold_config)
        cached.cell = cell
        cached.mode = "generate"
        incremental.store_layout(key, cached)
    return replace(
        cached,
        cell=cached.cell if mode == "generate" else None,
        mode=mode,
    )
