"""Transistor folding and the capacitance reduction factor ``F``.

The centrepiece equation of the paper's parasitic-constraint handling
(section 3, Figure 2).  Folding a transistor into ``Nf`` parallel gate
fingers lets neighbouring fingers share source/drain diffusion strips; the
total *effective* diffusion width of a terminal becomes ``W_eff = F * W``
with::

    F = 1/2              Nf even, terminal on internal diffusions only (a)
    F = (Nf+2) / (2 Nf)  Nf even, terminal on the external diffusions   (b)
    F = (Nf+1) / (2 Nf)  Nf odd                                         (c)

Case (a) is the minimum: an even fold count with the critical net (usually
the drain) on internal strips halves its junction capacitance — the layout
style the paper exploits "to enhance the frequency characteristics".
"""

from __future__ import annotations

from enum import Enum
from typing import Tuple

from repro.errors import LayoutError
from repro.mos.junction import DiffusionGeometry


class DiffusionPosition(Enum):
    """Where a terminal's diffusion strips sit within the folded stack."""

    INTERNAL = "internal"
    """All strips shared between two gates (even Nf, case a)."""
    EXTERNAL = "external"
    """Strips including the two stack ends (even Nf, case b)."""
    ALTERNATING = "alternating"
    """Odd Nf: both terminals mix internal and one external strip (case c)."""


def capacitance_reduction_factor(nf: int, position: DiffusionPosition) -> float:
    """Paper equation (1): effective diffusion width fraction ``F``.

    ``nf = 1`` returns 1.0 regardless of position (no sharing possible).
    """
    if nf < 1:
        raise LayoutError(f"fold count must be >= 1, got {nf}")
    if nf == 1:
        return 1.0
    if nf % 2 == 0:
        if position is DiffusionPosition.INTERNAL:
            return 0.5
        if position is DiffusionPosition.EXTERNAL:
            return (nf + 2.0) / (2.0 * nf)
        raise LayoutError("even fold counts need INTERNAL or EXTERNAL position")
    if position is not DiffusionPosition.ALTERNATING:
        raise LayoutError("odd fold counts imply ALTERNATING position")
    return (nf + 1.0) / (2.0 * nf)


def strip_counts(nf: int, drain_internal: bool) -> Tuple[int, int]:
    """Number of (drain, source) diffusion strips in a folded stack.

    A stack of ``nf`` gates has ``nf + 1`` alternating strips.  With
    ``drain_internal`` (even ``nf``), the sequence starts and ends with
    source strips: S G D G S ... S.
    """
    if nf < 1:
        raise LayoutError(f"fold count must be >= 1, got {nf}")
    total = nf + 1
    if nf % 2 == 0:
        internal_count = nf // 2
        external_count = nf // 2 + 1
        if drain_internal:
            return internal_count, external_count
        return external_count, internal_count
    # Odd: both terminals get (nf+1)/2 strips, one of them an end strip.
    half = (nf + 1) // 2
    assert 2 * half == total
    return half, half


def effective_widths(
    width: float, nf: int, drain_internal: bool = True
) -> Tuple[float, float]:
    """Effective (drain, source) diffusion widths ``F * W`` after folding."""
    if width <= 0.0:
        raise LayoutError("width must be positive")
    if nf == 1:
        return width, width
    if nf % 2 == 0:
        internal = capacitance_reduction_factor(nf, DiffusionPosition.INTERNAL)
        external = capacitance_reduction_factor(nf, DiffusionPosition.EXTERNAL)
        if drain_internal:
            return internal * width, external * width
        return external * width, internal * width
    factor = capacitance_reduction_factor(nf, DiffusionPosition.ALTERNATING)
    return factor * width, factor * width


def folded_diffusion_geometry(
    width: float,
    nf: int,
    ldif_internal: float,
    ldif_end: float,
    drain_internal: bool = True,
) -> DiffusionGeometry:
    """Exact junction geometry of a folded transistor.

    Strip widths are ``width / nf``; internal (shared) strips are
    ``ldif_internal`` long, end strips ``ldif_end``.  Perimeters count the
    non-gate edges: internal strips expose only their two short ends, end
    strips additionally expose the outer long edge.
    """
    if nf < 1:
        raise LayoutError(f"fold count must be >= 1, got {nf}")
    finger = width / nf
    drain_strips, source_strips = strip_counts(nf, drain_internal)

    def terminal(strips: int, has_ends: int) -> Tuple[float, float]:
        """(area, perimeter) for one terminal given its strip census."""
        internals = strips - has_ends
        area = internals * finger * ldif_internal + has_ends * finger * ldif_end
        # Internal strip: both long edges face gates; expose 2 short ends.
        perimeter = internals * 2.0 * ldif_internal
        # End strip: one long edge faces a gate; expose outer edge + 2 ends.
        perimeter += has_ends * (finger + 2.0 * ldif_end)
        return area, perimeter

    if nf == 1:
        area = finger * ldif_end
        perimeter = finger + 2.0 * ldif_end
        return DiffusionGeometry(ad=area, pd=perimeter, as_=area, ps=perimeter)

    if nf % 2 == 0:
        drain_ends = 0 if drain_internal else 2
        source_ends = 2 if drain_internal else 0
    else:
        drain_ends = 1
        source_ends = 1
    ad, pd = terminal(drain_strips, drain_ends)
    as_, ps = terminal(source_strips, source_ends)
    return DiffusionGeometry(ad=ad, pd=pd, as_=as_, ps=ps)


def choose_fold_count(
    width: float,
    target_finger_width: float,
    prefer_even: bool = True,
    max_folds: int = 64,
) -> int:
    """Fold count bringing the finger width near ``target_finger_width``.

    The paper's parasitic control prefers *even* fold counts so the
    frequency-critical drain can sit on internal diffusions; when
    ``prefer_even`` is set, the nearest even count is chosen unless the
    device is too small to fold at all.
    """
    if width <= 0.0 or target_finger_width <= 0.0:
        raise LayoutError("widths must be positive")
    raw = width / target_finger_width
    if raw <= 1.5:
        return 1
    nf = max(1, round(raw))
    if prefer_even and nf % 2 == 1:
        # Pick the even neighbour with the finger width closest to target.
        lower, upper = nf - 1, nf + 1
        if lower < 2:
            nf = upper
        else:
            error_low = abs(width / lower - target_finger_width)
            error_high = abs(width / upper - target_finger_width)
            nf = lower if error_low <= error_high else upper
    return min(nf, max_folds)
