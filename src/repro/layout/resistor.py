"""Serpentine poly resistor generator.

Analog resistors (nulling resistors, bias dividers, RC filters) drawn as a
poly serpentine: parallel bars of unit width joined by end hooks, with
metal-1 taps at both ends and metal-2 rail pins at the module's top and
bottom edges (router-compatible orientation).

Resistance is computed from the technology's poly sheet resistance with
the standard half-square corner correction.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.errors import LayoutError
from repro.layout.cell import Cell
from repro.layout.devices import ModuleLayout
from repro.layout.geometry import Rect
from repro.layout.layers import Layer
from repro.technology.process import Technology

_CORNER_SQUARES = 0.5
"""Effective squares contributed by one serpentine corner."""


def _serpentine_geometry(
    squares: float, max_bar_squares: float
) -> Tuple[int, float]:
    """(number of bars, squares per bar) for a serpentine of ``squares``.

    Multi-bar serpentines use an odd bar count so the two taps land on
    opposite edges of the module (the router expects one pin per side).
    """
    bars = max(1, int(math.ceil(squares / max_bar_squares)))
    if bars > 1 and bars % 2 == 0:
        bars += 1
    while True:
        corner_squares = 2.0 * _CORNER_SQUARES * (bars - 1)
        bar_squares = (squares - corner_squares) / bars
        if bar_squares > 1.0 or bars == 1:
            return bars, max(bar_squares, 1.0)
        bars -= 2 if bars > 2 else 1


def poly_resistor(
    tech: Technology,
    value: float,
    net_a: str,
    net_b: str,
    name: str = "res",
    width: float = 0.0,
    max_bar_squares: float = 25.0,
) -> ModuleLayout:
    """Draw a poly resistor of ``value`` ohms.

    ``width`` defaults to twice the minimum poly width (matching-friendly);
    ``net_a`` taps at the bottom edge, ``net_b`` at the top.
    ``actual_widths[name]`` records the drawn resistance.
    """
    if value <= 0.0:
        raise LayoutError("resistor value must be positive")
    rules = tech.rules
    sheet = tech.poly.sheet_resistance
    if width <= 0.0:
        width = 2.0 * rules.poly_min_width
    width = rules.snap(width)

    squares = value / sheet
    if squares < 1.0:
        raise LayoutError(
            f"{value:.3g} ohm needs fewer than one square of poly; use a "
            "diffusion or metal resistor instead"
        )
    bars, bar_squares = _serpentine_geometry(squares, max_bar_squares)
    bar_length = rules.snap(bar_squares * width)
    pitch = width + rules.poly_spacing

    tap_span = rules.contact_size + 2.0 * rules.contact_metal_enclosure
    if bars == 1 and bar_length < 2.0 * tap_span + rules.metal1_spacing:
        raise LayoutError(
            f"{value:.3g} ohm of poly is too short to host both end taps; "
            "narrow the width or use a lower-sheet-resistance layer"
        )

    cell = Cell(name)
    hook = width  # square end hooks
    for bar in range(bars):
        x0 = bar * pitch
        cell.add_shape(
            Layer.POLY,
            Rect(x0, 0.0, x0 + width, bar_length),
            net=net_a if bar == 0 else (net_b if bar == bars - 1 else None),
        )
        if bar < bars - 1:
            # Hook joining this bar to the next, alternating top/bottom.
            y0 = bar_length - hook if bar % 2 == 0 else 0.0
            cell.add_shape(
                Layer.POLY,
                Rect(x0, y0, x0 + pitch + width, y0 + hook),
                net=None,
            )

    # Taps: start of bar 0 at the bottom, end of the last bar at the top
    # (or bottom, depending on parity — route the tap to the proper edge).
    tap = rules.contact_size + 2.0 * rules.contact_metal_enclosure
    rail_height = max(
        rules.metal2_min_width, rules.via_size + 2.0 * rules.via_metal_enclosure
    )
    via = rules.via_size
    via_pad = via + 2.0 * rules.via_metal_enclosure
    total_width = (bars - 1) * pitch + width

    def tap_at(x_center: float, y_center: float, net: str, top: bool) -> None:
        cell.add_shape(
            Layer.CONTACT,
            Rect.centered(x_center, y_center,
                          rules.contact_size, rules.contact_size),
            net=net,
        )
        cell.add_shape(
            Layer.METAL1,
            Rect.centered(x_center, y_center, tap, tap),
            net=net,
        )
        if top:
            rail_y0 = bar_length + rules.metal2_spacing
        else:
            rail_y0 = -rules.metal2_spacing - rail_height
        rail_center = rail_y0 + rail_height / 2.0
        lo, hi = sorted((y_center, rail_center))
        cell.add_shape(
            Layer.METAL1,
            Rect(
                x_center - rules.metal1_min_width / 2.0, lo,
                x_center + rules.metal1_min_width / 2.0, hi,
            ),
            net=net,
        )
        cell.add_shape(
            Layer.VIA1,
            Rect.centered(x_center, rail_center, via, via),
            net=net,
        )
        cell.add_shape(
            Layer.METAL1,
            Rect.centered(x_center, rail_center, via_pad, via_pad),
            net=net,
        )
        cell.add_pin(
            net, Layer.METAL2,
            Rect.centered(x_center, rail_center, 2.0 * via_pad, rail_height),
        )

    # Bottom tap on bar 0; top tap on the last bar's free end.
    tap_at(width / 2.0, hook / 2.0, net_a, top=False)
    last_x = (bars - 1) * pitch + width / 2.0
    last_end_is_top = (bars - 1) % 2 == 0
    tap_at(
        last_x,
        bar_length - hook / 2.0 if last_end_is_top else hook / 2.0,
        net_b,
        top=last_end_is_top,
    )

    drawn_squares = bars * (bar_length / width) + 2 * _CORNER_SQUARES * (
        bars - 1
    )
    drawn_value = drawn_squares * sheet
    return ModuleLayout(
        cell=cell,
        device_geometry={},
        device_nf={},
        finger_width=width,
        length=bar_length,
        plan=None,
        well_rect=None,
        actual_widths={name: drawn_value},
    )
