"""Device generators: rendered stacks, differential pairs, current mirrors.

Built on the motif/stack machinery, these produce :class:`ModuleLayout`
objects — a drawn cell plus the *exact* per-device junction geometry the
sizing tool consumes during layout-aware synthesis.

Rendering conventions: gates are vertical poly fingers; diffusion strips
between them carry contact columns and vertical metal-1 straps; horizontal
metal-2 rails collect each net (drains below the row, source/gates/dummy
ties above), with electromigration-derived widths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import LayoutError
from repro.layout.cell import Cell
from repro.layout.geometry import Rect
from repro.layout.layers import Layer
from repro.layout.motif import generate_mos_motif
from repro.layout.stack import DUMMY, StackPlan, generate_stack
from repro.mos.junction import DiffusionGeometry
from repro.technology.process import Technology


@dataclass
class ModuleLayout:
    """A generated module: geometry plus electrical annotations."""

    cell: Cell
    device_geometry: Dict[str, DiffusionGeometry]
    device_nf: Dict[str, int]
    finger_width: float
    length: float
    plan: Optional[StackPlan] = None
    well_rect: Optional[Rect] = None
    actual_widths: Dict[str, float] = field(default_factory=dict)
    """Drawn total width per device (after grid snapping)."""

    @property
    def width(self) -> float:
        return self.cell.width

    @property
    def height(self) -> float:
        return self.cell.height


@dataclass
class _Strip:
    net: str
    x0: float
    width: float
    is_end: bool
    adjacent: List[Tuple[str, bool]] = field(default_factory=list)
    """(device, edge_is_drain) for each neighbouring finger."""


def _layout_strips_and_gates(
    plan: StackPlan,
    strip_nets: List[str],
    length: float,
    end_width: float,
    internal_width: float,
    gap: float,
) -> Tuple[List[_Strip], List[Tuple[int, float]], List[Tuple[float, float]]]:
    """Geometric walk: strip records, gate x positions, active segments."""
    strips: List[_Strip] = []
    gates: List[Tuple[int, float]] = []
    segments: List[Tuple[float, float]] = []
    x = 0.0
    segment_start = x
    net_index = 0

    strips.append(_Strip(net=strip_nets[0], x0=x, width=end_width, is_end=True))
    x += end_width
    net_index = 1

    for i, finger in enumerate(plan.fingers):
        gates.append((i, x))
        x += length
        last = i == len(plan.fingers) - 1
        if last:
            strips.append(
                _Strip(net=strip_nets[net_index], x0=x, width=end_width, is_end=True)
            )
            x += end_width
            net_index += 1
        elif i in plan.breaks:
            strips.append(
                _Strip(net=strip_nets[net_index], x0=x, width=end_width, is_end=True)
            )
            x += end_width
            net_index += 1
            segments.append((segment_start, x))
            x += gap
            segment_start = x
            strips.append(
                _Strip(net=strip_nets[net_index], x0=x, width=end_width, is_end=True)
            )
            x += end_width
            net_index += 1
        else:
            strips.append(
                _Strip(
                    net=strip_nets[net_index],
                    x0=x,
                    width=internal_width,
                    is_end=False,
                )
            )
            x += internal_width
            net_index += 1
    segments.append((segment_start, x))

    # Adjacency by position: a finger's left strip is the one ending at the
    # gate's x0, its right strip starts at gate x0 + length.
    for finger_index, gate_x in gates:
        finger = plan.fingers[finger_index]
        for strip in strips:
            if abs(strip.x0 + strip.width - gate_x) < 1e-12:
                strip.adjacent.append((finger.device, finger.drain_left))
            elif abs(strip.x0 - (gate_x + length)) < 1e-12:
                strip.adjacent.append((finger.device, not finger.drain_left))
    return strips, gates, segments


def render_stack(
    tech: Technology,
    plan: StackPlan,
    polarity: str,
    finger_width: float,
    length: float,
    terminals: Mapping[str, Tuple[str, str, str]],
    bulk_net: str,
    currents: Optional[Mapping[str, float]] = None,
    dummy_net: Optional[str] = None,
    name: str = "stack",
) -> ModuleLayout:
    """Draw a planned stack.

    ``terminals`` maps device name to ``(drain, gate, source)`` nets; all
    devices must share the source net.  ``currents`` (A per device) drives
    the electromigration wire widths and contact counts; ``dummy_net``
    defaults to the shared source net.
    """
    if polarity not in ("n", "p"):
        raise LayoutError(f"polarity must be 'n' or 'p', got {polarity!r}")
    rules = tech.rules
    metal1 = tech.metal("metal1")
    metal2 = tech.metal("metal2")
    currents = dict(currents or {})

    source_nets = {t[2] for t in terminals.values()}
    if len(source_nets) != 1:
        raise LayoutError(f"stack devices must share one source net: {source_nets}")
    source_net = source_nets.pop()
    if dummy_net is None:
        dummy_net = source_net

    finger = rules.snap(finger_width)
    if finger < rules.active_min_width:
        raise LayoutError(
            f"finger width {finger:.3e} m below the active minimum"
        )
    length = rules.snap(length)

    terminal_ds = {d: (t[0], t[2]) for d, t in terminals.items()}
    strip_nets = plan.strip_nets(terminal_ds, dummy_net=dummy_net)
    end_w = rules.end_diffusion_width
    int_w = rules.contacted_diffusion_width
    strips, gates, segments = _layout_strips_and_gates(
        plan, strip_nets, length, end_w, int_w, rules.active_spacing
    )

    cell = Cell(name)

    # Active segments and implant.
    for x0, x1 in segments:
        cell.add_shape(Layer.ACTIVE, Rect(x0, 0.0, x1, finger))
    total_width = segments[-1][1]
    implant = Layer.NIMPLANT if polarity == "n" else Layer.PIMPLANT
    margin = rules.contact_active_enclosure
    cell.add_shape(
        implant,
        Rect(-margin, -margin, total_width + margin, finger + margin),
    )

    # Net bookkeeping for EM rules.
    net_current: Dict[str, float] = {}
    strips_per_net: Dict[str, int] = {}
    for strip in strips:
        strips_per_net[strip.net] = strips_per_net.get(strip.net, 0) + 1
    for device, (drain, _gate, source) in terminals.items():
        current = abs(currents.get(device, 0.0))
        net_current[drain] = net_current.get(drain, 0.0) + current
        net_current[source] = net_current.get(source, 0.0) + current

    # Rails land via cuts, so they must be at least one via plus its
    # enclosure wide, besides the electromigration requirement.
    rail_floor = max(
        rules.metal2_min_width,
        rules.via_size + 2.0 * rules.via_metal_enclosure,
    )

    def rail_width(net: str) -> float:
        return rules.snap_up(
            metal2.min_width_for_current(net_current.get(net, 0.0), rail_floor)
        )

    # Track assignment: drain nets below the row, the shared source track
    # directly above the gates, then the gate pad row, then one
    # gate-level track per distinct gate net.  Keeping the pads *above*
    # the source track guarantees the gate metal-1 stubs never run beside
    # the source/drain metal-1 columns (which stop at their tracks).
    drain_nets: List[str] = []
    for device in sorted(terminals):
        drain = terminals[device][0]
        if drain not in drain_nets:
            drain_nets.append(drain)

    pitch_gap = rules.metal2_spacing
    gate_top = finger + rules.poly_endcap
    tap_size = rules.contact_size + 2.0 * rules.contact_metal_enclosure
    column_width = max(
        rules.contact_size + 2.0 * rules.contact_metal_enclosure,
        rules.metal1_min_width,
    )

    # Below-row drain tracks.
    track_y: Dict[str, Tuple[float, float]] = {}
    y = -rules.poly_endcap - pitch_gap
    for net in drain_nets:
        width = rail_width(net)
        track_y[net] = (y - width, y)
        y -= width + pitch_gap

    # Source track.
    source_width = rail_width(source_net)
    source_y0 = gate_top + pitch_gap
    track_y[source_net] = (source_y0, source_y0 + source_width)

    # Pad row and gate-level tracks.  A gate net may coincide with the
    # source net (dummy ties) or a drain net (diode-connected devices);
    # it still gets its own gate-level rail, tied back by a metal-1
    # connector column past the module's left edge.
    pad_row_y = (
        source_y0 + source_width + rules.metal1_spacing + tap_size / 2.0
    )
    gate_rail_nets: List[str] = []
    for finger_index, _gate_x in gates:
        finger_spec = plan.fingers[finger_index]
        net = (
            dummy_net if finger_spec.is_dummy
            else terminals[finger_spec.device][1]
        )
        if net not in gate_rail_nets:
            gate_rail_nets.append(net)
    gate_track_y: Dict[str, Tuple[float, float]] = {}
    y = pad_row_y + tap_size / 2.0 + rules.metal1_spacing
    for net in gate_rail_nets:
        width = rail_width(net) if net in track_y else rail_floor
        gate_track_y[net] = (y, y + width)
        y += width + pitch_gap

    via = rules.via_size
    via_pad = via + 2.0 * rules.via_metal_enclosure

    # Left-margin column allocator (connectors and escapes).  Columns are
    # spaced so their via landing pads keep metal-1 spacing.
    column_effective = max(column_width, via_pad)
    next_column_left = -(rules.metal1_spacing + column_effective)

    def allocate_column() -> float:
        """Left edge of a fresh left-margin metal-1 column."""
        nonlocal next_column_left
        x = next_column_left + (column_effective - column_width) / 2.0
        next_column_left -= column_effective + rules.metal1_spacing
        return x

    # Connector columns for gate rails that duplicate a source/drain net.
    connectors: List[Tuple[str, float, float, float]] = []
    for net in gate_rail_nets:
        if net in track_y:
            main_y = sum(track_y[net]) / 2.0
            gate_y = sum(gate_track_y[net]) / 2.0
            connectors.append((net, allocate_column(), main_y, gate_y))

    # Only the outermost rails are directly reachable from the channels:
    # the bottom-most drain track (a stub below crosses nothing) and the
    # top-most gate track.  Every other rail *escapes* through a
    # left-margin column ending in a small pad at the module's top or
    # bottom edge, which becomes that net's pin.
    bottom_net = drain_nets[-1] if drain_nets else None
    top_net = gate_rail_nets[-1] if gate_rail_nets else None
    escape_top_y = (
        max(y1 for _y0, y1 in gate_track_y.values()) + pitch_gap
        if gate_track_y
        else track_y[source_net][1] + pitch_gap
    )
    escape_bottom_y = (
        min(y0 for net in drain_nets for y0 in (track_y[net][0],))
        - pitch_gap
        if drain_nets
        else -rules.poly_endcap - pitch_gap
    )

    escapes: List[Tuple[str, float, float, float]] = []
    pinned_nets = set()
    if bottom_net is not None:
        pinned_nets.add(bottom_net)
    if top_net is not None:
        pinned_nets.add(top_net)
    escape_rails: Dict[str, Rect] = {}
    all_nets = list(dict.fromkeys(drain_nets + [source_net] + gate_rail_nets))
    for net in all_nets:
        if net in pinned_nets:
            continue
        if net in gate_track_y:
            # Escape upward from the gate rail.
            from_y = sum(gate_track_y[net]) / 2.0
            to_y = escape_top_y + rail_floor / 2.0
        elif net == source_net:
            from_y = sum(track_y[net]) / 2.0
            to_y = escape_top_y + rail_floor / 2.0
        else:
            from_y = sum(track_y[net]) / 2.0
            to_y = escape_bottom_y - rail_floor / 2.0
        x = allocate_column()
        escapes.append((net, x, from_y, to_y))
        center_x = x + column_width / 2.0
        escape_rails[net] = Rect.centered(
            center_x, to_y, via_pad, rail_floor
        )
        pinned_nets.add(net)

    # Rails span only the connection points they collect (plus a via pad
    # of margin), not the whole module.
    rail_extent: Dict[str, Tuple[float, float]] = {}
    gate_rail_extent: Dict[str, Tuple[float, float]] = {}

    def extend(extents: Dict[str, Tuple[float, float]], net: str,
               x_center: float) -> None:
        pad = max(rail_width(net), via_pad)
        lo, hi = extents.get(net, (x_center, x_center))
        extents[net] = (min(lo, x_center - pad), max(hi, x_center + pad))

    for strip in strips:
        extend(rail_extent, strip.net, strip.x0 + strip.width / 2.0)
    for finger_index, gate_x in gates:
        finger_spec = plan.fingers[finger_index]
        net = (
            dummy_net if finger_spec.is_dummy
            else terminals[finger_spec.device][1]
        )
        extend(gate_rail_extent, net, gate_x + length / 2.0)
    for net, x, _main_y, _gate_y in connectors:
        extend(rail_extent, net, x + column_width / 2.0)
        extend(gate_rail_extent, net, x + column_width / 2.0)
    for net, x, _from_y, _to_y in escapes:
        if net in gate_track_y:
            extend(gate_rail_extent, net, x + column_width / 2.0)
        else:
            extend(rail_extent, net, x + column_width / 2.0)

    def emit_rail(net: str, y0: float, y1: float,
                  extents: Dict[str, Tuple[float, float]],
                  is_pin: bool) -> None:
        lo, hi = extents.get(net, (0.0, total_width))
        rail = Rect(lo, y0, min(total_width, hi), y1)
        if is_pin:
            cell.add_pin(net, Layer.METAL2, rail)
        else:
            cell.add_shape(Layer.METAL2, rail, net=net)

    for net, (y0, y1) in track_y.items():
        emit_rail(net, y0, y1, rail_extent, is_pin=(net == bottom_net))
    for net, (y0, y1) in gate_track_y.items():
        emit_rail(net, y0, y1, gate_rail_extent, is_pin=(net == top_net))
    for net, rail in escape_rails.items():
        cell.add_pin(net, Layer.METAL2, rail)

    def add_via(x_center: float, y_center: float, net: str) -> None:
        cell.add_shape(
            Layer.VIA1, Rect.centered(x_center, y_center, via, via), net=net
        )
        cell.add_shape(
            Layer.METAL1,
            Rect.centered(x_center, y_center, via_pad, via_pad),
            net=net,
        )

    for net, x, main_y, gate_y in connectors:
        lo, hi = sorted((main_y, gate_y))
        cell.add_shape(
            Layer.METAL1, Rect(x, lo, x + column_width, hi), net=net
        )
        add_via(x + column_width / 2.0, main_y, net)
        add_via(x + column_width / 2.0, gate_y, net)
    for net, x, from_y, to_y in escapes:
        lo, hi = sorted((from_y, to_y))
        cell.add_shape(
            Layer.METAL1, Rect(x, lo, x + column_width, hi), net=net
        )
        add_via(x + column_width / 2.0, from_y, net)
        add_via(x + column_width / 2.0, to_y, net)

    # Contacts, metal-1 verticals per strip.
    contact_pitch = rules.contact_size + rules.contact_spacing
    for strip in strips:
        per_strip = net_current.get(strip.net, 0.0) / max(
            strips_per_net.get(strip.net, 1), 1
        )
        needed = tech.contact.cuts_for_current(per_strip)
        usable = finger - 2.0 * rules.contact_active_enclosure
        fit = (
            max(1, int(math.floor((usable - rules.contact_size) / contact_pitch)) + 1)
            if usable >= rules.contact_size
            else 0
        )
        if fit == 0:
            raise LayoutError("finger too narrow for a contact")
        count = fit
        if count < needed:
            raise LayoutError(
                f"strip on net {strip.net!r} needs {needed} contact cuts, "
                f"only {count} fit"
            )
        x_center = strip.x0 + strip.width / 2.0
        total_h = count * rules.contact_size + (count - 1) * rules.contact_spacing
        cy = finger / 2.0 - total_h / 2.0 + rules.contact_size / 2.0
        for _ in range(count):
            cell.add_shape(
                Layer.CONTACT,
                Rect.centered(x_center, cy, rules.contact_size, rules.contact_size),
                net=strip.net,
            )
            cy += contact_pitch

        y0, y1 = track_y[strip.net]
        track_center = (y0 + y1) / 2.0
        if y0 < 0.0:  # below-row track
            rect = Rect(
                x_center - column_width / 2.0,
                track_center,
                x_center + column_width / 2.0,
                finger,
            )
        else:
            rect = Rect(
                x_center - column_width / 2.0,
                0.0,
                x_center + column_width / 2.0,
                track_center,
            )
        cell.add_shape(Layer.METAL1, rect, net=strip.net)
        add_via(x_center, track_center, strip.net)

    # Gate fingers, pads and stubs to gate tracks.
    for finger_index, gate_x in gates:
        finger_spec = plan.fingers[finger_index]
        if finger_spec.is_dummy:
            gate_net = dummy_net
        else:
            gate_net = terminals[finger_spec.device][1]
        cell.add_shape(
            Layer.POLY,
            Rect(gate_x, -rules.poly_endcap, gate_x + length, gate_top),
            net=gate_net,
        )
        x_center = gate_x + length / 2.0
        cell.add_shape(
            Layer.POLY,
            Rect.centered(x_center, pad_row_y, tap_size, tap_size),
            net=gate_net,
        )
        # Poly neck from the gate finger up to the pad.
        cell.add_shape(
            Layer.POLY,
            Rect(
                gate_x,
                gate_top,
                gate_x + length,
                pad_row_y,
            ),
            net=gate_net,
        )
        cell.add_shape(
            Layer.CONTACT,
            Rect.centered(
                x_center, pad_row_y, rules.contact_size, rules.contact_size
            ),
            net=gate_net,
        )
        # Metal-1 landing pad over the gate contact.
        cell.add_shape(
            Layer.METAL1,
            Rect.centered(x_center, pad_row_y, tap_size, tap_size),
            net=gate_net,
        )
        y0, y1 = gate_track_y[gate_net]
        track_center = (y0 + y1) / 2.0
        cell.add_shape(
            Layer.METAL1,
            Rect(
                x_center - rules.metal1_min_width / 2.0,
                pad_row_y - tap_size / 2.0,
                x_center + rules.metal1_min_width / 2.0,
                track_center,
            ),
            net=gate_net,
        )
        add_via(x_center, track_center, gate_net)

    # Well for PMOS rows.
    well_rect: Optional[Rect] = None
    if polarity == "p":
        well_margin = rules.active_well_enclosure
        well_rect = Rect(
            -well_margin,
            -well_margin,
            total_width + well_margin,
            finger + well_margin,
        )
        cell.add_shape(Layer.NWELL, well_rect, net=bulk_net)

    # Per-device junction geometry from the drawn strips.
    device_geometry = _accumulate_geometry(strips, terminals, finger)

    return ModuleLayout(
        cell=cell,
        device_geometry=device_geometry,
        device_nf={d: plan.units[d] for d in terminals},
        finger_width=finger,
        length=length,
        plan=plan,
        well_rect=well_rect,
        actual_widths={d: finger * plan.units[d] for d in terminals},
    )


def _accumulate_geometry(
    strips: List[_Strip],
    terminals: Mapping[str, Tuple[str, str, str]],
    finger: float,
) -> Dict[str, DiffusionGeometry]:
    """Split each strip's area/perimeter among the adjacent device edges."""
    accum: Dict[str, Dict[str, float]] = {
        device: {"ad": 0.0, "pd": 0.0, "as": 0.0, "ps": 0.0} for device in terminals
    }
    for strip in strips:
        owners: List[Tuple[str, bool]] = []
        for device, edge_is_drain in strip.adjacent:
            if device == DUMMY or device not in terminals:
                continue
            drain, _gate, source = terminals[device]
            terminal_net = drain if edge_is_drain else source
            if terminal_net == strip.net:
                owners.append((device, edge_is_drain))
        if not owners:
            continue
        area = strip.width * finger
        # Exposed perimeter: top+bottom edges always; outer vertical edge
        # for end strips not facing a gate on that side.
        perimeter = 2.0 * strip.width
        if strip.is_end and len(strip.adjacent) < 2:
            perimeter += finger
        share = 1.0 / len(owners)
        for device, edge_is_drain in owners:
            keys = ("ad", "pd") if edge_is_drain else ("as", "ps")
            accum[device][keys[0]] += area * share
            accum[device][keys[1]] += perimeter * share
    return {
        device: DiffusionGeometry(
            ad=values["ad"], pd=values["pd"], as_=values["as"], ps=values["ps"]
        )
        for device, values in accum.items()
    }


# ---------------------------------------------------------------------------
# High-level generators
# ---------------------------------------------------------------------------


def single_device_layout(
    tech: Technology,
    polarity: str,
    w: float,
    l: float,
    nf: int,
    nets: Tuple[str, str, str, str],
    drain_current: float = 0.0,
    drain_internal: bool = True,
    name: str = "device",
) -> ModuleLayout:
    """One transistor as a module (motif wrapper).

    ``nets`` is ``(drain, gate, source, bulk)``.
    """
    drain, gate, source, bulk = nets
    motif = generate_mos_motif(
        tech,
        polarity,
        w,
        l,
        nf=nf,
        drain_internal=drain_internal,
        net_d=drain,
        net_g=gate,
        net_s=source,
        net_b=bulk,
        drain_current=drain_current,
        name=name,
    )
    device_name = name
    return ModuleLayout(
        cell=motif.cell,
        device_geometry={device_name: motif.geometry},
        device_nf={device_name: motif.nf},
        finger_width=motif.finger_width,
        length=motif.length,
        plan=None,
        well_rect=motif.well_rect,
        actual_widths={device_name: motif.actual_w},
    )


def differential_pair_layout(
    tech: Technology,
    polarity: str,
    w: float,
    l: float,
    nf: int,
    names: Tuple[str, str],
    drains: Tuple[str, str],
    gates: Tuple[str, str],
    source: str,
    bulk: str,
    current_per_side: float = 0.0,
    style: str = "common_centroid",
    with_dummies: bool = True,
    name: str = "diffpair",
) -> ModuleLayout:
    """Matched pair in common-centroid or interdigitated style.

    ``w`` is the width of *each* device, implemented as ``nf`` fingers.
    """
    if style not in ("common_centroid", "interdigitated"):
        raise LayoutError(f"unknown differential pair style {style!r}")
    a, b = names
    if style == "common_centroid":
        plan = generate_stack({a: nf, b: nf}, with_dummies=with_dummies)
    else:
        # Explicit ABAB sequence with sharing-greedy orientations.
        from repro.layout.stack import _assign_orientations, StackFinger

        sequence = [a if i % 2 == 0 else b for i in range(2 * nf)]
        fingers, breaks = _assign_orientations(sequence)
        if with_dummies:
            fingers = (
                [StackFinger(device=DUMMY, drain_left=False)]
                + fingers
                + [StackFinger(device=DUMMY, drain_left=True)]
            )
            breaks = [i + 1 for i in breaks]
        plan = StackPlan(fingers=fingers, units={a: nf, b: nf}, breaks=breaks)

    terminals = {
        a: (drains[0], gates[0], source),
        b: (drains[1], gates[1], source),
    }
    currents = {a: current_per_side, b: current_per_side}
    return render_stack(
        tech,
        plan,
        polarity,
        finger_width=w / nf,
        length=l,
        terminals=terminals,
        bulk_net=bulk,
        currents=currents,
        dummy_net=source,
        name=name,
    )


def current_mirror_layout(
    tech: Technology,
    polarity: str,
    ratios: Mapping[str, int],
    unit_width: float,
    l: float,
    drains: Mapping[str, str],
    gate: str,
    source: str,
    bulk: str,
    currents: Optional[Mapping[str, float]] = None,
    with_dummies: bool = True,
    name: str = "mirror",
) -> ModuleLayout:
    """Stacked current mirror (paper Figure 3).

    ``ratios`` maps device names to integer unit counts; every device has
    width ``ratio * unit_width`` drawn as ``ratio`` fingers of
    ``unit_width``.
    """
    plan = generate_stack(dict(ratios), with_dummies=with_dummies)
    terminals = {d: (drains[d], gate, source) for d in ratios}
    return render_stack(
        tech,
        plan,
        polarity,
        finger_width=unit_width,
        length=l,
        terminals=terminals,
        bulk_net=bulk,
        currents=currents,
        dummy_net=source,
        name=name,
    )
