"""Layout fast-path engine selection.

Mirror of :mod:`repro.analysis.engine` for the geometric side of the
flow.  The layout path has two independently selectable accelerators:

* **extraction** — ``"vector"`` runs the array-based extractor
  (flat numpy coordinate arrays per layer, net ids as int codes);
  ``"scalar"`` runs the original per-shape reference implementation,
  kept as the golden oracle for equivalence tests and benchmarks.
* **drc** — ``"grid"`` resolves pair checks through the shared
  :class:`~repro.layout.geometry.GridIndex`; ``"allpairs"`` keeps the
  original sorted-sweep scan as the reference.
* **incremental** — ``"on"`` serves layout work (per-module extraction
  contributions, whole layout calls, sizing rounds) from process-wide
  content-keyed caches (:mod:`repro.layout.incremental`); ``"off"``
  recomputes everything from scratch.  Unlike the other switches this
  one is bit-exact by construction — a cache hit returns the stored
  result of an identical earlier computation — so flipping it changes
  wall-clock only, never a single output bit.

``None`` (the default everywhere) resolves to the process-wide default,
so a single ``use(...)`` context flips a whole flow — this is how
``python -m repro bench`` measures before/after on identical code paths.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

VECTOR = "vector"
SCALAR = "scalar"
GRID = "grid"
ALLPAIRS = "allpairs"
INCREMENTAL = "on"
FROM_SCRATCH = "off"


class EngineSwitch:
    """One process-wide engine knob with scoped override support."""

    __slots__ = ("label", "options", "_current")

    def __init__(self, label: str, default: str, options: Tuple[str, ...]):
        self.label = label
        self.options = options
        self._current = self._validated(default)

    def _validated(self, name: str) -> str:
        if name not in self.options:
            raise ValueError(
                f"unknown {self.label} engine {name!r}; "
                f"expected one of {self.options}"
            )
        return name

    def default(self) -> str:
        """The engine used when callers pass ``engine=None``."""
        return self._current

    def set_default(self, name: str) -> None:
        self._current = self._validated(name)

    def resolve(self, engine: Optional[str]) -> str:
        """Resolve an ``engine`` argument to a concrete engine name."""
        if engine is None:
            return self._current
        return self._validated(engine)

    @contextmanager
    def use(self, name: str) -> Iterator[str]:
        """Temporarily switch the default (benchmarks, golden tests)."""
        previous = self._current
        self._current = self._validated(name)
        try:
            yield self._current
        finally:
            self._current = previous


extraction_engine = EngineSwitch("extraction", VECTOR, (VECTOR, SCALAR))
drc_engine = EngineSwitch("drc", GRID, (GRID, ALLPAIRS))
incremental_engine = EngineSwitch(
    "incremental", INCREMENTAL, (INCREMENTAL, FROM_SCRATCH)
)
