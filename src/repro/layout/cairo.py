"""CAIRO-style procedural layout language.

"This is achieved through a dedicated layout language (CAIRO) that allows
to easily describe relatively both module placement and routing" (paper
section 3).  :class:`CairoProgram` is that language's Python embodiment: a
program declares devices, pairs and mirrors, groups them into rows and
stacks rows into a column, states a shape constraint, and then runs in
either of the paper's two modes:

* :meth:`CairoProgram.calculate_parasitics` — parasitic calculation mode;
* :meth:`CairoProgram.generate` — generation mode (returns the cell).

The OTA generator (:mod:`repro.layout.ota`) is the hand-tuned equivalent
for the paper's specific circuit; the DSL covers the general case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import LayoutError
from repro.layout.cell import Cell
from repro.layout.devices import (
    ModuleLayout,
    current_mirror_layout,
    differential_pair_layout,
    single_device_layout,
)
from repro.layout.parasitics import DeviceParasitics, ParasiticReport
from repro.layout.placement import LeafNode, ModuleVariant, SliceNode, optimize
from repro.layout.routing import ChannelRouter, PlacedModule
from repro.layout.extraction import extract_cell
from repro.technology.process import Technology


@dataclass
class _ModuleDecl:
    """A declared module awaiting generation."""

    name: str
    builder: object
    requested_widths: Dict[str, float] = field(default_factory=dict)


class CairoProgram:
    """A procedural layout program."""

    def __init__(self, technology: Technology, name: str = "cairo"):
        technology.validate()
        self.technology = technology
        self.name = name
        self._modules: Dict[str, _ModuleDecl] = {}
        self._rows: List[List[str]] = []
        self._net_currents: Dict[str, float] = {}
        self._aspect: Optional[float] = 1.0
        self._height: Optional[float] = None
        self._width: Optional[float] = None

    # -- Declarations -----------------------------------------------------------

    def _declare(self, declaration: _ModuleDecl) -> None:
        if declaration.name in self._modules:
            raise LayoutError(f"module {declaration.name!r} already declared")
        self._modules[declaration.name] = declaration

    def device(
        self,
        name: str,
        polarity: str,
        w: float,
        l: float,
        nets: Tuple[str, str, str, str],
        nf: int = 1,
        current: float = 0.0,
        drain_internal: bool = True,
    ) -> None:
        """Declare a single transistor module (drain, gate, source, bulk)."""

        def build() -> ModuleLayout:
            return single_device_layout(
                self.technology,
                polarity,
                w,
                l,
                nf,
                nets,
                drain_current=current,
                drain_internal=drain_internal,
                name=name,
            )

        self._declare(_ModuleDecl(name=name, builder=build,
                                  requested_widths={name: w}))

    def pair(
        self,
        name: str,
        polarity: str,
        w: float,
        l: float,
        nf: int,
        names: Tuple[str, str],
        drains: Tuple[str, str],
        gates: Tuple[str, str],
        source: str,
        bulk: str,
        current_per_side: float = 0.0,
        style: str = "common_centroid",
    ) -> None:
        """Declare a matched differential pair module."""

        def build() -> ModuleLayout:
            return differential_pair_layout(
                self.technology,
                polarity,
                w,
                l,
                nf,
                names=names,
                drains=drains,
                gates=gates,
                source=source,
                bulk=bulk,
                current_per_side=current_per_side,
                style=style,
                name=name,
            )

        self._declare(
            _ModuleDecl(
                name=name,
                builder=build,
                requested_widths={names[0]: w, names[1]: w},
            )
        )

    def mirror(
        self,
        name: str,
        polarity: str,
        ratios: Mapping[str, int],
        unit_width: float,
        l: float,
        drains: Mapping[str, str],
        gate: str,
        source: str,
        bulk: str,
        currents: Optional[Mapping[str, float]] = None,
    ) -> None:
        """Declare a stacked current mirror module (paper Figure 3)."""

        def build() -> ModuleLayout:
            return current_mirror_layout(
                self.technology,
                polarity,
                ratios,
                unit_width,
                l,
                drains=drains,
                gate=gate,
                source=source,
                bulk=bulk,
                currents=currents,
                name=name,
            )

        widths = {d: ratios[d] * unit_width for d in ratios}
        self._declare(_ModuleDecl(name=name, builder=build,
                                  requested_widths=widths))

    def capacitor(
        self,
        name: str,
        value: float,
        net_top: str,
        net_bottom: str,
        aspect: float = 1.0,
    ) -> None:
        """Declare a double-poly plate capacitor module."""
        from repro.layout.capacitor import plate_capacitor

        def build() -> ModuleLayout:
            return plate_capacitor(
                self.technology, value, net_top, net_bottom,
                name=name, aspect=aspect,
            )

        self._declare(_ModuleDecl(name=name, builder=build))

    def resistor(
        self,
        name: str,
        value: float,
        net_a: str,
        net_b: str,
        width: float = 0.0,
    ) -> None:
        """Declare a serpentine poly resistor module."""
        from repro.layout.resistor import poly_resistor

        def build() -> ModuleLayout:
            return poly_resistor(
                self.technology, value, net_a, net_b,
                name=name, width=width,
            )

        self._declare(_ModuleDecl(name=name, builder=build))

    def tap(
        self,
        name: str,
        kind: str,
        net: str,
        height: float,
    ) -> None:
        """Declare a substrate or well tap column."""
        from repro.layout.tap import tap_column

        def build() -> ModuleLayout:
            return tap_column(self.technology, kind, net, height, name=name)

        self._declare(_ModuleDecl(name=name, builder=build))

    # -- Structure ------------------------------------------------------------------

    def row(self, *module_names: str) -> None:
        """Append a placement row (bottom-up order of calls)."""
        for module in module_names:
            if module not in self._modules:
                raise LayoutError(f"unknown module {module!r} in row")
        self._rows.append(list(module_names))

    def net_current(self, net: str, current: float) -> None:
        """Declare a net's DC current for the reliability rules."""
        self._net_currents[net] = current

    def shape(
        self,
        aspect: Optional[float] = None,
        height: Optional[float] = None,
        width: Optional[float] = None,
    ) -> None:
        """Set the shape constraint driving area optimisation."""
        self._aspect, self._height, self._width = aspect, height, width

    # -- Execution ----------------------------------------------------------------------

    def _assemble(self) -> Tuple[Cell, Dict[str, PlacedModule], ParasiticReport]:
        if not self._rows:
            raise LayoutError("program has no rows; call row() first")
        rules = self.technology.rules

        layouts = {
            name: declaration.builder()
            for name, declaration in self._modules.items()
        }

        # Net pin channels for planning: a pin on a module's bottom edge
        # reaches its row's channel, a top-edge pin the channel above.
        net_pins: Dict[str, List[int]] = {}
        for row_index, row in enumerate(self._rows):
            for module in row:
                cell = layouts[module].cell
                box = cell.bbox()
                for net, shapes in cell.pins.items():
                    for shape in shapes:
                        channel = (
                            row_index
                            if shape.rect.center.y < box.center.y
                            else row_index + 1
                        )
                        net_pins.setdefault(net, []).append(channel)

        router = ChannelRouter(self.technology, self._net_currents)
        channel_plan = router.plan_channels(len(self._rows), net_pins)

        module_gap = 4.0 * rules.metal1_spacing
        row_nodes = []
        for row in self._rows:
            leaves = [
                LeafNode(m, [ModuleVariant(tag=m, layout=layouts[m])])
                for m in row
            ]
            row_nodes.append(
                SliceNode(
                    "h", leaves, [module_gap] * (len(leaves) - 1), align="center"
                )
            )
        if len(row_nodes) > 1:
            root = SliceNode(
                "v", row_nodes,
                spacings=channel_plan.heights[1:len(row_nodes)],
                align="center",
            )
        else:
            root = row_nodes[0]

        point, placements_list = optimize(
            root, aspect=self._aspect, height=self._height, width=self._width
        )

        placements: Dict[str, PlacedModule] = {}
        row_of_module: Dict[str, int] = {}
        for placement in placements_list:
            box = placement.variant.layout.cell.bbox()
            placements[placement.name] = PlacedModule(
                name=placement.name,
                layout=placement.variant.layout,
                dx=placement.dx - box.x0,
                dy=placement.dy - box.y0,
            )
        for row_index, row in enumerate(self._rows):
            for module in row:
                row_of_module[module] = row_index

        # Channel 0 hangs below the bottom row; channel i starts at the top
        # of row i-1; the last channel sits above the top row.
        def row_members(row_index: int):
            return [placements[m] for m in self._rows[row_index]]

        bottom = min(m.bbox().y0 for m in row_members(0))
        channel_y = [bottom - channel_plan.heights[0]]
        for row_index in range(len(self._rows)):
            channel_y.append(max(m.bbox().y1 for m in row_members(row_index)))

        top = Cell(self.name)
        for module in placements.values():
            top.add_instance(module.layout.cell, dx=module.dx, dy=module.dy)
        routing = router.route(
            top,
            list(placements.values()),
            row_of_module,
            channel_plan,
            channel_y,
            (0.0, point.width),
        )

        report = ParasiticReport(width=point.width, height=point.height)
        for name, module in placements.items():
            layout = module.layout
            declaration = self._modules[name]
            for device, geometry in layout.device_geometry.items():
                report.devices[device] = DeviceParasitics(
                    nf=layout.device_nf[device],
                    finger_width=layout.finger_width,
                    actual_width=layout.actual_widths[device],
                    requested_width=declaration.requested_widths.get(
                        device, layout.actual_widths[device]
                    ),
                    geometry=geometry,
                )
            module_parasitics = extract_cell(layout.cell, self.technology)
            for net, value in module_parasitics.net_wire_cap.items():
                report.net_capacitance[net] = (
                    report.net_capacitance.get(net, 0.0) + value
                )
            for pair, value in module_parasitics.coupling.items():
                report.coupling[pair] = report.coupling.get(pair, 0.0) + value
            for net, (area, perimeter) in module_parasitics.well.items():
                report.well_capacitance[net] = report.well_capacitance.get(
                    net, 0.0
                ) + self.technology.well.capacitance(area, perimeter)
        for net, routed in routing.nets.items():
            report.net_capacitance[net] = report.net_capacitance.get(
                net, 0.0
            ) + routed.ground_capacitance(self.technology)
        for pair, value in routing.coupling_capacitances(self.technology).items():
            report.coupling[pair] = report.coupling.get(pair, 0.0) + value

        return top, placements, report

    def calculate_parasitics(self) -> ParasiticReport:
        """Parasitic calculation mode: report only, no geometry kept."""
        _cell, _placements, report = self._assemble()
        return report

    def generate(self) -> Tuple[Cell, ParasiticReport]:
        """Generation mode: the drawn cell plus its parasitic report."""
        cell, _placements, report = self._assemble()
        return cell, report
