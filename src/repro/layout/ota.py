"""Folded-cascode OTA layout generator (paper Figure 5).

Assembles the OTA from generated modules in four rows, mirroring the
paper's layout:

====  =========================================  =======================
row   modules                                    paper devices
====  =========================================  =======================
3     PMOS mirror stack + tail                   MP3/MP4, MP5
2     PMOS cascodes                              MP3C, MP4C
1     input pair (common centroid + dummies)     MP1/MP2 + dummies
0     NMOS cascodes + sink stack                 MN1C, MN5-MN6, MN2C
====  =========================================  =======================

Fold counts per device are *not* inputs: each module exposes several fold
variants and the slicing-tree area optimisation under the caller's shape
constraint picks one — "layout area optimization, based on the given shape
constraint, results in a given number of folds for each transistor".

Two modes, as in the paper:

* ``estimate`` — parasitic calculation mode; returns only the
  :class:`~repro.layout.parasitics.ParasiticReport`;
* ``generate`` — additionally returns the drawn top-level cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Tuple

import time

from repro import telemetry
from repro.errors import LayoutError
from repro.telemetry import metrics
from repro.layout.cell import Cell
from repro.layout.devices import (
    ModuleLayout,
    current_mirror_layout,
    differential_pair_layout,
    single_device_layout,
)
from repro.layout.parasitics import DeviceParasitics, ParasiticReport
from repro.layout.placement import LeafNode, ModuleVariant, SliceNode, optimize
from repro.layout.routing import ChannelRouter, PlacedModule
from repro.technology.process import Technology
from repro.units import UM

#: Module name -> (row index, device names).  Row 0 is the bottom row.
#: Each NMOS/PMOS region carries its bulk tap column (substrate tap to
#: ground beside the sinks, well tap to the supply beside the mirror).
MODULE_ROWS: Dict[str, Tuple[int, Tuple[str, ...]]] = {
    "ncas1": (0, ("mn1c",)),
    "sink": (0, ("mn5", "mn6")),
    "ncas2": (0, ("mn2c",)),
    "ntap": (0, ()),
    "pair": (1, ("mp1", "mp2")),
    "pcas3": (2, ("mp3c",)),
    "pcas4": (2, ("mp4c",)),
    "mirror": (3, ("mp3", "mp4")),
    "tail": (3, ("mp5",)),
    "welltap": (3, ()),
}

ROW_COUNT = 4

#: Inter-module nets the channel router must connect, with the *channels*
#: their pins reach (channel 0 below row 0, channel i between rows i-1/i,
#: channel 4 above row 3).  A bottom-edge pin (stack/motif drain rails)
#: reaches its row's channel; a top-edge pin (source and gate rails) the
#: channel above — so no stub ever crosses a module.  Derived from the
#: Figure 4 connectivity and the generators' rail sides.
NET_PIN_CHANNELS: Dict[str, List[int]] = {
    "fold1": [0, 1],   # sink drain (c0), ncas source (c1), pair drain (c1)
    "fold2": [0, 1],
    "mir": [0, 2, 4],  # ncas1 drain (c0), pcas3 drain (c2), mirror gate (c4)
    "vout": [0, 2],    # ncas2 drain (c0), pcas4 drain (c2)
    "tail": [2, 3],    # pair source (c2), tail drain (c3)
    "x3": [3],         # mirror drain (c3), pcas source (c3)
    "x4": [3],
    "vdd!": [4],       # mirror + tail source rails (top of row 3)
    "0": [1],          # sink source rail (top of row 0)
    "inp": [2],
    "inn": [2],
    "vc1": [1],
    "vbn": [1],
    "vc3": [3],
    "vp1": [4],
}


@dataclass
class OtaLayoutRequest:
    """Inputs to the OTA layout generator.

    ``sizes`` maps the 11 canonical device names to requested (W, L);
    ``currents`` carries the DC drain currents the reliability rules need.
    """

    technology: Technology
    sizes: Mapping[str, Tuple[float, float]]
    currents: Mapping[str, float]
    aspect: Optional[float] = 1.0
    height: Optional[float] = None
    width: Optional[float] = None
    pair_style: str = "common_centroid"
    prefer_even_folds: bool = True
    """Paper's parasitic control: even folds with internal drains on the
    frequency-critical nets.  Disabled by the folding ablation bench."""
    max_variants: int = 4
    input_pair_well_to_source: bool = False
    """Tie the input pair's well to the tail node (floating well loads the
    tail with the well junction capacitance the layout tool reports)."""


@dataclass
class OtaLayoutResult:
    """Output of one layout call."""

    report: ParasiticReport
    fold_config: Dict[str, int]
    cell: Optional[Cell] = None
    placements: Dict[str, PlacedModule] = field(default_factory=dict)
    mode: str = "estimate"


def _fold_candidates(
    tech: Technology, width: float, prefer_even: bool, max_variants: int
) -> List[int]:
    """Plausible fold counts for a device of the given width."""
    rules = tech.rules
    max_nf = max(1, int(width / rules.active_min_width))
    if prefer_even:
        pool = [1, 2, 4, 6, 8, 12, 16]
    else:
        pool = [1, 3, 5, 7, 9, 11, 13]
    # Prefer finger widths in a comfortable band around 8-15 um.
    target = 12.0 * UM
    candidates = [nf for nf in pool if nf <= max_nf]
    if not candidates:
        candidates = [1]
    candidates.sort(key=lambda nf: abs(width / nf - target))
    return candidates[:max_variants]


def _net_currents(currents: Mapping[str, float]) -> Dict[str, float]:
    """DC current per routed net, derived from device drain currents."""
    i_tail = abs(currents.get("mp5", 0.0))
    i_sink = abs(currents.get("mn5", 0.0))
    i_casc = abs(currents.get("mn1c", 0.0))
    return {
        "vdd!": i_tail + 2.0 * i_casc,
        "0": 2.0 * i_sink,
        "tail": i_tail,
        "fold1": i_sink,
        "fold2": i_sink,
        "mir": i_casc,
        "vout": i_casc,
        "x3": i_casc,
        "x4": i_casc,
    }


def _build_variants(
    request: OtaLayoutRequest,
) -> Dict[str, List[ModuleVariant]]:
    """Generate fold variants for every module."""
    tech = request.technology
    sizes = request.sizes
    currents = request.currents
    prefer_even = request.prefer_even_folds
    max_variants = request.max_variants
    pair_bulk = "tail" if request.input_pair_well_to_source else "vdd!"

    def try_build(builder, *args, **kwargs) -> Optional[ModuleLayout]:
        try:
            return builder(*args, **kwargs)
        except LayoutError:
            return None

    variants: Dict[str, List[ModuleVariant]] = {}

    def add_single(
        module: str, device: str, polarity: str, nets: Tuple[str, str, str, str]
    ) -> None:
        w, l = sizes[device]
        items = []
        for nf in _fold_candidates(tech, w, prefer_even, max_variants):
            layout = try_build(
                single_device_layout,
                tech,
                polarity,
                w,
                l,
                nf,
                nets,
                drain_current=currents.get(device, 0.0),
                drain_internal=prefer_even,
                name=device,
            )
            if layout is not None:
                items.append(ModuleVariant(tag={device: nf}, layout=layout))
        if not items:
            raise LayoutError(f"no feasible fold variant for {device}")
        variants[module] = items

    add_single("ncas1", "mn1c", "n", ("mir", "vc1", "fold1", "0"))
    add_single("ncas2", "mn2c", "n", ("vout", "vc1", "fold2", "0"))
    add_single("pcas3", "mp3c", "p", ("mir", "vc3", "x3", "vdd!"))
    add_single("pcas4", "mp4c", "p", ("vout", "vc3", "x4", "vdd!"))
    add_single("tail", "mp5", "p", ("tail", "vp1", "vdd!", "vdd!"))

    # Input pair: common centroid (or interdigitated) with dummies.
    w_in, l_in = sizes["mp1"]
    pair_items = []
    for nf in _fold_candidates(tech, w_in, prefer_even, max_variants):
        if nf < 2:
            continue
        layout = try_build(
            differential_pair_layout,
            tech,
            "p",
            w_in,
            l_in,
            nf,
            names=("mp1", "mp2"),
            drains=("fold1", "fold2"),
            gates=("inp", "inn"),
            source="tail",
            bulk=pair_bulk,
            current_per_side=currents.get("mp1", 0.0),
            style=request.pair_style,
            name="pair",
        )
        if layout is not None:
            pair_items.append(
                ModuleVariant(tag={"mp1": nf, "mp2": nf}, layout=layout)
            )
    if not pair_items:
        raise LayoutError("no feasible fold variant for the input pair")
    variants["pair"] = pair_items

    # Mirror stack MP3/MP4 (1:1) and sink stack MN5/MN6 (1:1).
    def add_stack(
        module: str,
        devices: Tuple[str, str],
        polarity: str,
        drains: Tuple[str, str],
        gate: str,
        source: str,
        bulk: str,
    ) -> None:
        w, l = sizes[devices[0]]
        items = []
        for nf in _fold_candidates(tech, w, prefer_even, max_variants):
            layout = try_build(
                current_mirror_layout,
                tech,
                polarity,
                {devices[0]: nf, devices[1]: nf},
                unit_width=w / nf,
                l=l,
                drains={devices[0]: drains[0], devices[1]: drains[1]},
                gate=gate,
                source=source,
                bulk=bulk,
                currents={d: currents.get(d, 0.0) for d in devices},
                name=module,
            )
            if layout is not None:
                items.append(
                    ModuleVariant(
                        tag={devices[0]: nf, devices[1]: nf}, layout=layout
                    )
                )
        if not items:
            raise LayoutError(f"no feasible fold variant for stack {module}")
        variants[module] = items

    add_stack(
        "mirror", ("mp3", "mp4"), "p", ("x3", "x4"), "mir", "vdd!", "vdd!"
    )
    add_stack("sink", ("mn5", "mn6"), "n", ("fold1", "fold2"), "vbn", "0", "0")

    # Bulk taps: one column per MOS region flavour.
    from repro.layout.tap import tap_column

    tap_height = 10.0 * tech.rules.active_min_width
    variants["ntap"] = [
        ModuleVariant(
            tag={}, layout=tap_column(tech, "substrate", "0",
                                      tap_height, name="ntap"),
        )
    ]
    variants["welltap"] = [
        ModuleVariant(
            tag={}, layout=tap_column(tech, "well", "vdd!",
                                      tap_height, name="welltap"),
        )
    ]

    return variants


def _request_key(request: OtaLayoutRequest) -> Optional[str]:
    """Content digest of every field the generator reads, or None."""
    from repro.layout.incremental import layout_key

    return layout_key(
        "ota",
        request.technology.fingerprint(),
        tuple(sorted(dict(request.sizes).items())),
        tuple(sorted(dict(request.currents).items())),
        request.aspect,
        request.height,
        request.width,
        request.pair_style,
        request.prefer_even_folds,
        request.max_variants,
        request.input_pair_well_to_source,
    )


def _project(result: OtaLayoutResult, mode: str) -> OtaLayoutResult:
    """The per-mode view of one fully built layout result."""
    return replace(
        result, cell=result.cell if mode == "generate" else None, mode=mode
    )


def generate_ota_layout(
    request: OtaLayoutRequest, mode: str = "estimate"
) -> OtaLayoutResult:
    """Run the OTA layout generator.

    ``mode='estimate'`` is the parasitic calculation mode (no cell in the
    result); ``mode='generate'`` also returns the drawn layout.

    Both modes run the same build internally (the parasitic pass needs
    the placed-and-routed geometry anyway), so with the incremental
    engine on the full result is stored once in the process-wide layout
    store keyed on request content — a converged synthesis round's
    ``generate`` pass, and any later call with identical inputs, is
    served without a rebuild.
    """
    from repro.layout import incremental

    if mode not in ("estimate", "generate"):
        raise LayoutError(f"mode must be 'estimate' or 'generate', got {mode!r}")
    key = _request_key(request)
    cached = incremental.lookup_layout(key)
    if cached is not None:
        # Still a logical layout call — only the rebuild is skipped.
        with telemetry.span(
            "layout.call", mode=mode, aspect=request.aspect, cached=True
        ):
            telemetry.count(f"layout.calls.{mode}")
        return _project(cached, mode)
    metrics_on = metrics.enabled()
    t0 = time.perf_counter() if metrics_on else 0.0
    with telemetry.span("layout.call", mode=mode, aspect=request.aspect):
        telemetry.count(f"layout.calls.{mode}")
        result = _generate(request, "generate")
        incremental.store_layout(key, result)
    if metrics_on:
        metrics.observe("layout.call.seconds", time.perf_counter() - t0)
    return _project(result, mode)


def _generate(request: OtaLayoutRequest, mode: str) -> OtaLayoutResult:
    tech = request.technology
    rules = tech.rules
    missing = [d for d in _all_devices() if d not in request.sizes]
    if missing:
        raise LayoutError(f"missing sizes for devices: {missing}")

    variants = _build_variants(request)
    net_currents = _net_currents(request.currents)
    router = ChannelRouter(tech, net_currents)
    channel_plan = router.plan_channels(
        row_count=ROW_COUNT, net_pins=NET_PIN_CHANNELS
    )

    # Slicing tree: rows of leaves, stacked with the heights of the
    # channels *between* rows (channels 0 and ROW_COUNT extend the
    # assembly below and above).
    module_gap = 4.0 * rules.metal1_spacing
    leaves = {name: LeafNode(name, items) for name, items in variants.items()}
    rows: List[SliceNode] = []
    for row_index in range(ROW_COUNT):
        members = [
            name for name, (row, _devs) in MODULE_ROWS.items() if row == row_index
        ]
        members.sort()
        children = [leaves[name] for name in members]
        spacings = [module_gap] * (len(children) - 1)
        rows.append(SliceNode("h", children, spacings, align="center"))
    root = SliceNode(
        "v", rows, spacings=channel_plan.heights[1:ROW_COUNT], align="center"
    )

    point, placements_list = optimize(
        root, aspect=request.aspect, height=request.height, width=request.width
    )

    placements: Dict[str, PlacedModule] = {}
    fold_config: Dict[str, int] = {}
    for placement in placements_list:
        module = PlacedModule(
            name=placement.name,
            layout=placement.variant.layout,
            dx=placement.dx - placement.variant.layout.cell.bbox().x0,
            dy=placement.dy - placement.variant.layout.cell.bbox().y0,
        )
        placements[placement.name] = module
        fold_config.update(placement.variant.tag)

    # Channel bottom y per channel: channel 0 hangs below the bottom row,
    # channel i (1..ROW_COUNT-1) starts at the top of row i-1, and the
    # last channel starts at the top of the top row.
    def row_members(row_index: int) -> List[PlacedModule]:
        return [
            m
            for name, m in placements.items()
            if MODULE_ROWS[name][0] == row_index
        ]

    bottom = min(m.bbox().y0 for m in row_members(0))
    channel_y: List[float] = [bottom - channel_plan.heights[0]]
    for row_index in range(ROW_COUNT):
        channel_y.append(max(m.bbox().y1 for m in row_members(row_index)))

    top = Cell("ota")
    for module in placements.values():
        top.add_instance(module.layout.cell, dx=module.dx, dy=module.dy)

    x_extent = (0.0, point.width)
    row_of_module = {name: MODULE_ROWS[name][0] for name in placements}
    routing = router.route(
        top, list(placements.values()), row_of_module, channel_plan, channel_y, x_extent
    )

    report = _build_report(request, placements, routing, point)

    return OtaLayoutResult(
        report=report,
        fold_config=fold_config,
        cell=top if mode == "generate" else None,
        placements=placements,
        mode=mode,
    )


def _all_devices() -> Tuple[str, ...]:
    names: List[str] = []
    for _row, devices in MODULE_ROWS.values():
        names.extend(devices)
    return tuple(names)


def _build_report(
    request: OtaLayoutRequest,
    placements: Dict[str, PlacedModule],
    routing,
    point,
) -> ParasiticReport:
    # Imported here: repro.layout.extraction depends on circuit types, the
    # generator itself does not.
    from repro.layout.extraction import extract_cell

    tech = request.technology
    report = ParasiticReport(width=point.width, height=point.height)

    # Devices: layout style + exact junction geometry.
    for name, module in placements.items():
        layout = module.layout
        for device, geometry in layout.device_geometry.items():
            requested_w = request.sizes[device][0]
            report.devices[device] = DeviceParasitics(
                nf=layout.device_nf[device],
                finger_width=layout.finger_width,
                actual_width=layout.actual_widths[device],
                requested_width=requested_w,
                geometry=geometry,
                drain_internal=request.prefer_even_folds,
            )

    # "Each module calculates the values of parasitic components in a
    # predefined parasitic model" — module wiring and intra-module
    # coupling come from a per-module pass.
    for module in placements.values():
        module_parasitics = extract_cell(module.layout.cell, tech)
        for net, value in module_parasitics.net_wire_cap.items():
            report.net_capacitance[net] = (
                report.net_capacitance.get(net, 0.0) + value
            )
        for pair, value in module_parasitics.coupling.items():
            report.coupling[pair] = report.coupling.get(pair, 0.0) + value
        for net, (area, perimeter) in module_parasitics.well.items():
            report.well_capacitance[net] = report.well_capacitance.get(
                net, 0.0
            ) + tech.well.capacitance(area, perimeter)

    # "Routing parasitics are then calculated": channel tracks, stubs and
    # side columns plus track-to-track coupling.
    for net, routed in routing.nets.items():
        report.net_capacitance[net] = report.net_capacitance.get(
            net, 0.0
        ) + routed.ground_capacitance(tech)
    for pair, value in routing.coupling_capacitances(tech).items():
        report.coupling[pair] = report.coupling.get(pair, 0.0) + value

    return report
