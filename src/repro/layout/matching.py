"""Gradient-induced mismatch analysis.

The random (Pelgrom) mismatch handled by the Monte-Carlo analysis is
position-independent; what the paper's matching constraints (section 3:
interleaving, common centroid, current-direction control, dummies) defeat
is the *systematic* component — process parameters drifting linearly
across the die.  This module evaluates a planned stack against a linear
gradient:

* a threshold gradient (V/m) shifts each finger's VT by its position;
  a device's net shift is the gradient times its *centroid offset* — zero
  for a perfectly common-centroid device;
* an orientation-dependent current-factor error (the Figure 3 arrows)
  contributes per finger with its direction sign; a device with balanced
  orientations cancels it.

:func:`pair_offset_voltage` turns both into the input-referred offset of a
differential pair, making the layout style choice a measurable number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.errors import LayoutError
from repro.layout.stack import StackPlan


@dataclass
class GradientImpact:
    """Systematic mismatch of one device under linear gradients."""

    vth_shift: float
    """Net threshold shift from the VT gradient, V."""
    beta_error: float
    """Net relative current-factor error from orientation asymmetry."""


def stack_gradient_impact(
    plan: StackPlan,
    pitch: float,
    vth_gradient: float = 1.0,
    orientation_beta_error: float = 0.002,
) -> Dict[str, GradientImpact]:
    """Per-device systematic mismatch of a stack.

    ``pitch`` is the finger pitch in metres; ``vth_gradient`` the linear
    VT drift in V/m (1 mV/mm is a typical published figure);
    ``orientation_beta_error`` the relative current difference between the
    two channel orientations (asymmetric source/drain processing).
    """
    if pitch <= 0.0:
        raise LayoutError("finger pitch must be positive")
    impacts: Dict[str, GradientImpact] = {}
    for device in plan.units:
        centroid = plan.centroid_offset(device) * pitch
        balance = plan.orientation_balance(device)
        count = plan.units[device]
        impacts[device] = GradientImpact(
            vth_shift=vth_gradient * centroid,
            beta_error=orientation_beta_error * balance / count,
        )
    return impacts


def pair_offset_voltage(
    plan: StackPlan,
    pair: tuple,
    pitch: float,
    veff: float,
    vth_gradient: float = 1.0,
    orientation_beta_error: float = 0.002,
) -> float:
    """Input-referred offset of a differential pair under gradients, V.

    ``pair`` names the two matched devices in the plan; ``veff`` is their
    overdrive (the beta error refers to the input as ``Veff/2 * dB/B``).
    """
    name_a, name_b = pair
    impacts = stack_gradient_impact(
        plan, pitch, vth_gradient, orientation_beta_error
    )
    if name_a not in impacts or name_b not in impacts:
        raise LayoutError(f"pair {pair!r} not found in the stack plan")
    delta_vth = impacts[name_a].vth_shift - impacts[name_b].vth_shift
    delta_beta = impacts[name_a].beta_error - impacts[name_b].beta_error
    return delta_vth + (veff / 2.0) * delta_beta


def compare_pair_styles(
    technology,
    w: float,
    l: float,
    nf: int,
    veff: float = 0.2,
    vth_gradient: float = 1.0,
) -> Mapping[str, float]:
    """Offset of a pair laid out common-centroid vs interdigitated, V.

    Builds both styles with the real generator and evaluates them under
    the same gradient — the quantitative version of the paper's "special
    layout styles ... to minimize device mismatch".
    """
    from repro.layout.devices import differential_pair_layout

    results: Dict[str, float] = {}
    for style in ("common_centroid", "interdigitated"):
        layout = differential_pair_layout(
            technology, "p", w, l, nf,
            names=("a", "b"), drains=("da", "db"), gates=("ga", "gb"),
            source="s", bulk="w", style=style,
        )
        assert layout.plan is not None
        pitch = technology.rules.gate_pitch
        results[style] = pair_offset_voltage(
            layout.plan, ("a", "b"), pitch, veff,
            vth_gradient=vth_gradient,
        )
    return results
