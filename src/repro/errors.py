"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so a
client can catch one type to handle any library failure.  Sub-types separate
the main failure domains: technology description, device modelling,
simulation, layout generation and sizing/synthesis.
"""

from __future__ import annotations

from typing import Any, Optional


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TechnologyError(ReproError):
    """A technology description is inconsistent or incomplete."""


class ModelError(ReproError):
    """A device model was evaluated outside its validity domain."""


class CircuitError(ReproError):
    """A netlist is malformed (unknown net, duplicate element, ...)."""


class AnalysisError(ReproError):
    """A simulation failed (singular matrix, no DC convergence, ...)."""


class ConvergenceError(AnalysisError):
    """An iterative solver exhausted its escalation ladder.

    ``report`` (when present) is the structured
    :class:`~repro.resilience.policy.ConvergenceReport` of every strategy
    the solver tried before giving up: per-rung residual norms, the
    achieved gmin, and the worst-residual nodes at the final iterate.
    """

    def __init__(self, message: str, report: Optional[Any] = None):
        super().__init__(message)
        self.report = report


class BudgetExceededError(ReproError):
    """A wall-clock deadline or iteration budget ran out.

    Raised at a clean stage boundary so callers can inspect the partial
    progress: ``site`` names the boundary that tripped, ``elapsed`` is the
    wall-clock time consumed, and ``partial`` carries whatever structured
    progress the aborted stage had accumulated (e.g. the synthesis loop's
    completed :class:`~repro.core.synthesis.SynthesisRecord` list).
    """

    def __init__(
        self,
        message: str,
        site: Optional[str] = None,
        elapsed: Optional[float] = None,
        budget: Optional[Any] = None,
        partial: Optional[Any] = None,
    ):
        super().__init__(message)
        self.site = site
        self.elapsed = elapsed
        self.budget = budget
        self.partial = partial


class JournalError(ReproError):
    """A run journal could not be created, read or validated.

    Raised when a ``--resume`` directory holds no journal, the journal's
    schema is unknown, or its recorded run configuration does not match
    the configuration of the resuming invocation (resuming a ``table1``
    journal with different specs would silently mix incompatible
    results — refuse instead).
    """


class RunInterrupted(ReproError):
    """A journaled run stopped cleanly on SIGINT/SIGTERM.

    Raised at a unit boundary after in-flight workers were drained and
    every completed unit was flushed to the journal, so the run can be
    continued with ``--resume``.  ``site`` names the boundary that
    observed the signal, ``signal_name`` the signal received, and
    ``journal`` the :class:`~repro.resilience.journal.RunJournal`
    holding the checkpoint.
    """

    def __init__(
        self,
        message: str,
        site: Optional[str] = None,
        signal_name: Optional[str] = None,
        journal: Optional[Any] = None,
    ):
        super().__init__(message)
        self.site = site
        self.signal_name = signal_name
        self.journal = journal


class LayoutError(ReproError):
    """Layout generation failed (unsatisfiable constraint, bad geometry)."""


class DesignRuleError(LayoutError):
    """Generated geometry violates a design rule."""


class SizingError(ReproError):
    """A design plan could not realise the requested specifications."""


class SynthesisError(ReproError):
    """The layout-oriented synthesis loop failed to converge."""


class ReproWarning(RuntimeWarning):
    """Base class for warnings the library emits on degraded outcomes.

    Derives from :class:`RuntimeWarning` so a generic runtime-warning
    filter still sees them, while callers can filter programmatically::

        warnings.simplefilter("error", ReproWarning)      # make them fatal
        warnings.simplefilter("ignore", SoftAcceptWarning)  # or pick one
    """


class DegradedRunWarning(ReproWarning):
    """A mid-loop synthesis failure fell back to the last good round."""


class SoftAcceptWarning(ReproWarning):
    """Synthesis stopped at ``max_layout_calls`` and accepted a
    non-fixed-point result within 10x the convergence tolerance."""


class LayoutGenerationWarning(ReproWarning):
    """The final layout generation pass failed after a converged sizing;
    the sizing result is returned without geometry."""
