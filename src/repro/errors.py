"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so a
client can catch one type to handle any library failure.  Sub-types separate
the main failure domains: technology description, device modelling,
simulation, layout generation and sizing/synthesis.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TechnologyError(ReproError):
    """A technology description is inconsistent or incomplete."""


class ModelError(ReproError):
    """A device model was evaluated outside its validity domain."""


class CircuitError(ReproError):
    """A netlist is malformed (unknown net, duplicate element, ...)."""


class AnalysisError(ReproError):
    """A simulation failed (singular matrix, no DC convergence, ...)."""


class ConvergenceError(AnalysisError):
    """An iterative solver exhausted its iteration budget."""


class LayoutError(ReproError):
    """Layout generation failed (unsatisfiable constraint, bad geometry)."""


class DesignRuleError(LayoutError):
    """Generated geometry violates a design rule."""


class SizingError(ReproError):
    """A design plan could not realise the requested specifications."""


class SynthesisError(ReproError):
    """The layout-oriented synthesis loop failed to converge."""
