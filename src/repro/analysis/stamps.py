"""Compiled-stamp MNA engine.

The legacy analyses re-stamp the MNA matrices element-by-element in pure
Python on every Newton iteration and factorize ``(G + j omega C)`` one
frequency at a time.  For the coupled synthesis loop — which calls the
simulator thousands of times — that is all interpreter overhead, not linear
algebra.

This module walks a :class:`~repro.circuit.netlist.Circuit` **once** and
compiles it into a *stamp program* of flat numpy index/value arrays:

* :class:`StampProgram` — the nonlinear DC/transient program.  The linear
  part (resistors, voltage-source incidence) is pre-assembled into a dense
  matrix; each Newton iteration then only evaluates the MOS devices
  *batched per model* (:meth:`~repro.mos.model.MosModel.evaluate_batch`)
  and scatter-adds their stamps with ``np.add.at``.
* :class:`LinearSystem` — the linearised small-signal program.  ``G`` and
  ``C`` are built once from scatter triplets; a sweep stacks the complex
  system for *all* frequencies into one ``(F, n, n)`` tensor and calls a
  single broadcasted ``np.linalg.solve`` against any number of right-hand
  sides (signal drives, impedance probes, noise injections).

Ground (and any dangling reference) is mapped to one extra *trash*
row/column which is sliced away after assembly, so no per-stamp index
checks are needed.  The arithmetic mirrors the legacy stamping term for
term; golden-equivalence tests pin both engines together to rtol 1e-9.
"""

from __future__ import annotations

import pickle
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.analysis import lu
from repro.analysis.mna import NodeIndex
from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Mos,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError, ConvergenceError
from repro.resilience import faults
from repro.resilience.policy import (
    COMPILED_POLICY,
    ConvergenceReport,
    ramp_policy,
)


def _padded(index: NodeIndex, net: str) -> int:
    """Matrix row of ``net`` with ground mapped to the trash slot."""
    node = index.node(net)
    return index.size if node < 0 else node


class _VectorParams:
    """Duck-typed :class:`~repro.technology.process.MosParams` view whose
    fields are per-device arrays.

    The base ``evaluate_batch`` formulas are purely elementwise, so a
    single call with this view evaluates devices from *different*
    parameter sets (NMOS and PMOS) at once — halving the per-iteration
    numpy dispatch cost on small circuits.
    """

    def __init__(self, devices: Sequence[Mos]):
        self.name = "+".join(sorted({m.params.name for m in devices}))
        self.sign = np.array([m.params.sign for m in devices])
        self.vto = np.array([m.params.vto for m in devices])
        self.gamma = np.array([m.params.gamma for m in devices])
        self.phi = np.array([m.params.phi for m in devices])
        self.kp = np.array([m.params.kp for m in devices])
        self.lambda_l = np.array([m.params.lambda_l for m in devices])


def _merged_level1(proto, devices: Sequence[Mos]):
    """A level-1 model instance evaluating all ``devices`` in one batch.

    Only valid when every device uses a level-1 model at one temperature:
    the level-1 hooks are parameter-free, so the only per-group state is
    ``params``, replaced here by the array view.
    """
    merged = object.__new__(type(proto))
    merged.params = _VectorParams(devices)
    merged.temperature = proto.temperature
    merged.vt = proto.vt
    return merged


class StampProgram:
    """A circuit compiled for repeated nonlinear (DC/transient) solves.

    The program holds padded ``(size+1, size+1)`` linear stamps plus flat
    per-device index/value arrays for the MOS devices, grouped by shared
    model instance so each Newton iteration evaluates every group with one
    vectorized call.
    """

    def __init__(self, circuit: Circuit, index: Optional[NodeIndex] = None):
        circuit.validate()
        self.circuit = circuit
        self.index = index if index is not None else NodeIndex(circuit)
        self.size = self.index.size
        self.node_count = self.index.node_count
        pad = self.size + 1

        a_pad = np.zeros((pad, pad))
        self._source_vector = np.zeros(pad)
        self._vsource_rows: List[Tuple[VoltageSource, int]] = []
        self._isource_rows: List[Tuple[CurrentSource, int, int]] = []

        mos_elements: List[Mos] = []
        for element in circuit:
            if isinstance(element, Resistor):
                i = _padded(self.index, element.a)
                j = _padded(self.index, element.b)
                conductance = 1.0 / element.value
                a_pad[i, i] += conductance
                a_pad[i, j] -= conductance
                a_pad[j, j] += conductance
                a_pad[j, i] -= conductance
            elif isinstance(element, Capacitor):
                continue  # open at DC; transient adds companion stamps
            elif isinstance(element, VoltageSource):
                pos = _padded(self.index, element.pos)
                neg = _padded(self.index, element.neg)
                branch = self.index.branch(element.name)
                a_pad[pos, branch] += 1.0
                a_pad[neg, branch] -= 1.0
                a_pad[branch, pos] += 1.0
                a_pad[branch, neg] -= 1.0
                self._vsource_rows.append((element, branch))
            elif isinstance(element, CurrentSource):
                pos = _padded(self.index, element.pos)
                neg = _padded(self.index, element.neg)
                self._isource_rows.append((element, pos, neg))
            elif isinstance(element, Mos):
                mos_elements.append(element)
            else:  # pragma: no cover - future element types
                raise NotImplementedError(
                    f"DC stamp for {type(element).__name__}"
                )
        # The trash row/column must not feed back into real unknowns.
        a_pad[pad - 1, :] = 0.0
        a_pad[:, pad - 1] = 0.0
        self._a_pad = a_pad
        self.refresh_sources()

        # -- MOS stamp arrays, grouped by shared model instance --------------
        from repro.analysis.dcop import model_for

        groups: Dict[int, Tuple[object, List[Mos]]] = {}
        for mos in mos_elements:
            model = model_for(mos)
            groups.setdefault(id(model), (model, []))[1].append(mos)
        ordered: List[Mos] = []
        self._groups: List[Tuple[object, slice]] = []
        offset = 0
        for model, members in groups.values():
            self._groups.append((model, slice(offset, offset + len(members))))
            ordered.extend(members)
            offset += len(members)
        from repro.mos.level1 import Level1Model

        models = [model for model, _members in self._groups]
        if (
            len(self._groups) > 1
            and all(type(model) is Level1Model for model in models)
            and len({model.temperature for model in models}) == 1
        ):
            self._groups = [
                (_merged_level1(models[0], ordered), slice(0, len(ordered)))
            ]
        self.mos_names: List[str] = [m.name for m in ordered]
        self._mos = ordered
        n = len(ordered)
        self._mos_d = np.array(
            [_padded(self.index, m.d) for m in ordered], dtype=np.intp
        )
        self._mos_g = np.array(
            [_padded(self.index, m.g) for m in ordered], dtype=np.intp
        )
        self._mos_s = np.array(
            [_padded(self.index, m.s) for m in ordered], dtype=np.intp
        )
        self._mos_b = np.array(
            [_padded(self.index, m.b) for m in ordered], dtype=np.intp
        )
        self._mos_sign = np.array(
            [m.params.sign for m in ordered], dtype=float
        )
        self._mos_w = np.array([m.w for m in ordered], dtype=float)
        self._mos_l = np.array([m.l for m in ordered], dtype=float)
        self._mos_mvth = np.array([m.mismatch_vth for m in ordered], dtype=float)
        self._mos_mbeta = np.array(
            [m.mismatch_beta for m in ordered], dtype=float
        )
        self._n_mos = n
        self._swap_cache: Optional[Tuple[np.ndarray, ...]] = None
        #: Escalation record of the most recent :meth:`solve_voltages`.
        self.last_convergence: Optional[ConvergenceReport] = None
        if telemetry.enabled():
            telemetry.count("stamps.programs_compiled")

    # -- Escalation-policy backend surface -------------------------------------

    @property
    def circuit_name(self) -> str:
        return self.circuit.name

    def fingerprint(self) -> str:
        """16-hex content hash of the compiled source circuit.

        Two programs with equal fingerprints compile to identical stamp
        arrays (compilation is a pure function of the circuit), which is
        what makes this the worker-resident cache key material in
        :mod:`repro.runtime.pool`: a worker holding a program under this
        key can serve any shard whose parent would have compiled an
        equal circuit.  Mutable solve-time state (``set_mismatch``
        deltas, swap caches) is deliberately excluded — it is overwritten
        per call and never changes what the program *is*.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            import hashlib

            cached = hashlib.sha256(
                pickle.dumps(self.circuit)
            ).hexdigest()[:16]
            self._fingerprint = cached
        return cached

    def initial_guess(self) -> np.ndarray:
        from repro.analysis.dcop import _initial_guess

        return _initial_guess(self.circuit, self.index)

    def zeros(self) -> np.ndarray:
        return np.zeros(self.size)

    def worst_residual_nodes(
        self, voltages: np.ndarray, count: int = 5
    ) -> List[Tuple[str, float]]:
        from repro.analysis.dcop import worst_nodes_from_residual

        residual, _jacobian = self.residual_and_jacobian(voltages, gmin=0.0)
        return worst_nodes_from_residual(self.index, residual, count)

    # -- Program state ---------------------------------------------------------

    def refresh_sources(self) -> None:
        """Re-read source DC values from the elements (transient steps
        mutate voltage-source values between solves)."""
        s = self._source_vector
        s[:] = 0.0
        for element, branch in self._vsource_rows:
            s[branch] += element.dc
        for element, pos, neg in self._isource_rows:
            s[pos] -= element.dc
            s[neg] += element.dc
        s[self.size] = 0.0

    def set_mismatch(
        self, vth: Sequence[float], beta: Sequence[float]
    ) -> None:
        """Overwrite the per-device Pelgrom mismatch arrays (Monte-Carlo
        re-biases the compiled program instead of re-cloning the circuit).
        Values follow :attr:`mos_names` order."""
        self._mos_mvth = np.asarray(vth, dtype=float)
        self._mos_mbeta = np.asarray(beta, dtype=float)
        if self._mos_mvth.shape != (self._n_mos,) or self._mos_mbeta.shape != (
            self._n_mos,
        ):
            raise AnalysisError("mismatch arrays must have one entry per MOS")

    # -- Assembly ---------------------------------------------------------------

    def residual_and_jacobian(
        self,
        voltages: np.ndarray,
        gmin: float,
        source_scale: float = 1.0,
        companion: Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Residual f(v) and Jacobian J(v) at the current iterate.

        ``companion`` is the transient backward-Euler capacitor model:
        padded index arrays ``(node_a, node_b, c_over_dt, previous_padded)``.
        """
        size = self.size
        pad = size + 1
        v_pad = np.empty(pad)
        v_pad[:size] = voltages
        v_pad[size] = 0.0

        jacobian = self._a_pad.copy()
        residual = self._a_pad @ v_pad
        residual -= source_scale * self._source_vector

        if self._n_mos:
            vd = v_pad[self._mos_d]
            vg = v_pad[self._mos_g]
            vs = v_pad[self._mos_s]
            vb = v_pad[self._mos_b]
            swapped = self._mos_sign * (vd - vs) < 0.0
            vd_f = np.where(swapped, vs, vd)
            vs_f = np.where(swapped, vd, vs)
            vgs = self._mos_sign * (vg - vs_f) - self._mos_mvth
            vds = self._mos_sign * (vd_f - vs_f)
            vsb = self._mos_sign * (vs_f - vb)

            current = np.empty(self._n_mos)
            gm = np.empty(self._n_mos)
            gds = np.empty(self._n_mos)
            gmb = np.empty(self._n_mos)
            for model, members in self._groups:
                ids, gms, gdss, gmbs, _regions = model.evaluate_batch(
                    self._mos_w[members],
                    self._mos_l[members],
                    vgs[members],
                    vds[members],
                    vsb[members],
                )
                current[members] = ids
                gm[members] = gms
                gds[members] = gdss
                gmb[members] = gmbs
            if faults.active():
                fault = faults.fire("model.eval")
                if fault is not None:
                    if fault.action == "nan":
                        current.fill(np.nan)
                    else:
                        raise fault.exception()
            beta_scale = 1.0 + self._mos_mbeta
            current *= beta_scale
            gm *= beta_scale
            gds *= beta_scale
            gmb *= beta_scale
            i_ds = self._mos_sign * current

            # Which terminal acts as the drain only changes when a device
            # crosses vds = 0, so the scatter index arrays are cached
            # across Newton iterations and rebuilt on a swap-state change.
            cache = self._swap_cache
            if cache is None or not np.array_equal(cache[0], swapped):
                drain = np.where(swapped, self._mos_s, self._mos_d)
                source = np.where(swapped, self._mos_d, self._mos_s)
                rows = np.concatenate(
                    (drain, drain, drain, drain,
                     source, source, source, source)
                )
                cols = np.concatenate(
                    (drain, self._mos_g, source, self._mos_b) * 2
                )
                cache = (swapped.copy(), drain, source, rows, cols)
                self._swap_cache = cache
            _swapped, drain, source, rows, cols = cache
            np.add.at(residual, drain, i_ds)
            np.add.at(residual, source, -i_ds)

            minus_sum = -(gm + gds + gmb)
            vals = np.concatenate(
                (gds, gm, minus_sum, gmb, -gds, -gm, -minus_sum, -gmb)
            )
            np.add.at(jacobian, (rows, cols), vals)

        if companion is not None:
            node_a, node_b, c_over_dt, previous_pad = companion
            dv = (v_pad[node_a] - previous_pad[node_a]) - (
                v_pad[node_b] - previous_pad[node_b]
            )
            cap_current = c_over_dt * dv
            np.add.at(residual, node_a, cap_current)
            np.add.at(residual, node_b, -cap_current)
            np.add.at(jacobian, (node_a, node_a), c_over_dt)
            np.add.at(jacobian, (node_a, node_b), -c_over_dt)
            np.add.at(jacobian, (node_b, node_b), c_over_dt)
            np.add.at(jacobian, (node_b, node_a), -c_over_dt)

        # gmin shunts on every node.
        nodes = self.node_count
        residual[:nodes] += gmin * v_pad[:nodes]
        jacobian[:nodes, :nodes][np.diag_indices(nodes)] += gmin

        return residual[:size], jacobian[:size, :size]

    # -- Newton ----------------------------------------------------------------

    def newton(
        self,
        start: np.ndarray,
        gmin: float,
        source_scale: float = 1.0,
        max_iterations: int = 200,
        abs_tolerance: float = 1e-10,
        step_limit: float = 0.6,
        companion: Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = None,
    ) -> Tuple[np.ndarray, bool, int, float]:
        """Damped Newton from ``start``.

        Returns ``(solution, converged, iterations, residual_norm)``; the
        norm is the last max-abs KCL residual evaluated, recorded by the
        escalation policy.  Control flow mirrors ``dcop._newton`` exactly.
        """
        voltages = start.copy()
        residual_norm = float("inf")
        for iteration in range(1, max_iterations + 1):
            residual, jacobian = self.residual_and_jacobian(
                voltages, gmin, source_scale, companion
            )
            residual_norm = float(np.max(np.abs(residual)))
            try:
                if faults.active():
                    faults.maybe_raise("solve.linear")
                delta = np.linalg.solve(jacobian, -residual)
            except Exception:
                return voltages, False, iteration, residual_norm
            max_step = float(np.max(np.abs(delta))) if delta.size else 0.0
            if max_step > step_limit:
                delta *= step_limit / max_step
            voltages += delta
            if residual_norm < abs_tolerance and max_step < 1e-9:
                return voltages, True, iteration, residual_norm
            if max_step < 1e-12 and residual_norm < 1e-6:
                # Stalled but electrically negligible residual.
                return voltages, True, iteration, residual_norm
        return voltages, False, max_iterations, residual_norm

    def newton_chord(
        self,
        start: np.ndarray,
        gmin: float,
        source_scale: float = 1.0,
        max_iterations: int = 200,
        abs_tolerance: float = 1e-10,
        step_limit: float = 0.6,
        companion: Optional[
            Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = None,
        max_reuse: int = lu.DEFAULT_MAX_REUSE,
        stall_ratio: float = lu.DEFAULT_STALL_RATIO,
    ) -> Tuple[np.ndarray, bool, int, float]:
        """Damped Newton with LU factorization reuse (chord iterations).

        The Jacobian is factored once and the factorization is reused
        for up to ``max_reuse`` trailing iterations; a refactorization
        (counted as ``newton.refactor``) is forced by a residual stall
        (shrinking by less than ``stall_ratio`` per iteration), by reuse
        expiry, or by a damped previous step — inside the damping region
        the system is strongly nonlinear and a stale Jacobian just
        oscillates, so chord reuse only engages in the locally
        convergent regime where it is safe and effective.  Same damping
        and convergence tests as :meth:`newton`, and the converged fixed
        point is the same — but chord steps walk a different iterate
        path, so this runs only under the opt-in ``newton`` engine
        switch (:data:`repro.analysis.engine.newton_engine`).

        ``max_reuse=0`` delegates to :meth:`newton` outright and is
        therefore bitwise-identical to it (the parity escape hatch the
        equivalence tests pin).
        """
        if max_reuse <= 0:
            return self.newton(
                start, gmin, source_scale, max_iterations,
                abs_tolerance, step_limit, companion,
            )
        voltages = start.copy()
        residual_norm = float("inf")
        previous_norm = float("inf")
        factor = None
        age = 0
        damped = True
        for iteration in range(1, max_iterations + 1):
            residual, jacobian = self.residual_and_jacobian(
                voltages, gmin, source_scale, companion
            )
            residual_norm = float(np.max(np.abs(residual)))
            stalled = residual_norm > stall_ratio * previous_norm
            try:
                if faults.active():
                    faults.maybe_raise("solve.linear")
                if factor is None or age >= max_reuse or stalled or damped:
                    if factor is not None:
                        telemetry.count("newton.refactor")
                    factor = lu.lu_factor(jacobian)
                    age = 0
                delta = lu.lu_solve(factor[0], factor[1], -residual)
            except Exception:
                return voltages, False, iteration, residual_norm
            age += 1
            previous_norm = residual_norm
            max_step = float(np.max(np.abs(delta))) if delta.size else 0.0
            damped = max_step > step_limit
            if damped:
                delta *= step_limit / max_step
            voltages += delta
            if residual_norm < abs_tolerance and max_step < 1e-9:
                return voltages, True, iteration, residual_norm
            if max_step < 1e-12 and residual_norm < 1e-6:
                # Stalled but electrically negligible residual.
                return voltages, True, iteration, residual_norm
        return voltages, False, max_iterations, residual_norm

    def solve_voltages(
        self,
        gmin_sequence: Optional[Tuple[float, ...]] = None,
        max_iterations: int = 200,
    ) -> Tuple[np.ndarray, int, float]:
        """Find the DC operating point; returns (voltages, iterations, gmin).

        The solve runs a declarative escalation ladder
        (:data:`~repro.resilience.policy.COMPILED_POLICY`: direct two-stage
        Newton, then the gmin continuation, then source stepping); callers
        that pin ``gmin_sequence`` get a ladder without the direct fast
        path.  The structured per-rung record is left on
        :attr:`last_convergence` and raised inside
        :class:`~repro.errors.ConvergenceError` when every rung fails.
        """
        from repro.analysis import warmstart
        from repro.analysis.dcop import GMIN_SEQUENCE
        from repro.analysis.engine import CHORD, newton_engine

        default_ladder = gmin_sequence is None or gmin_sequence is GMIN_SEQUENCE
        warm_key = None
        chord = newton_engine.default() == CHORD
        if default_ladder:
            policy = COMPILED_POLICY
            if chord:
                # Opt-in factorization-reuse fast path; a failed chord
                # rung escalates into the full standard ladder.
                from repro.resilience.policy import chord_policy

                policy = chord_policy()
            if warmstart.active():
                # An open warm-start session (the synthesis loop) may hold
                # the previous round's converged voltages for this exact
                # node/branch layout; seed Newton from them.  A failed warm
                # rung falls through to the standard ladder, so the solution
                # is unchanged either way.
                warm_key = (
                    tuple(self.index.nets),
                    tuple(s.name for s in self.index.sources),
                )
                seed = warmstart.lookup(warm_key)
                if seed is not None and seed.shape == (self.size,):
                    from repro.resilience.policy import (
                        warm_chord_policy,
                        warm_policy,
                    )

                    policy = (
                        warm_chord_policy(seed) if chord
                        else warm_policy(seed)
                    )
                    telemetry.count("dc.warm_start")
        else:
            policy = ramp_policy(tuple(gmin_sequence))
        try:
            voltages, report = policy.run(self, max_iterations=max_iterations)
        except ConvergenceError as error:
            self.last_convergence = error.report
            raise
        self.last_convergence = report
        if warm_key is not None:
            warmstart.record(warm_key, voltages)
        return voltages, report.iterations, report.achieved_gmin

    def solve_dc(
        self,
        gmin_sequence: Optional[Tuple[float, ...]] = None,
        max_iterations: int = 200,
    ):
        """Full DC solve returning a packaged
        :class:`~repro.analysis.dcop.DcSolution`."""
        from repro.analysis.dcop import _package_solution

        voltages, iterations, gmin = self.solve_voltages(
            gmin_sequence, max_iterations
        )
        return _package_solution(
            self.circuit, self.index, voltages, iterations, gmin,
            report=self.last_convergence,
        )


class LinearSystem:
    """A circuit linearised at a DC solution, compiled for batched solves.

    ``G`` and ``C`` are assembled once from scatter triplets; every small-
    signal question (AC sweep, output impedance, noise transfer) is then a
    right-hand-side choice against the same stacked ``(F, n, n)`` tensor.
    """

    def __init__(
        self,
        circuit: Circuit,
        dc,
        index: Optional[NodeIndex] = None,
    ):
        self.circuit = circuit
        self.dc = dc
        self.index = index if index is not None else NodeIndex(circuit)
        self.size = self.index.size
        pad = self.size + 1

        g_rows: List[int] = []
        g_cols: List[int] = []
        g_vals: List[float] = []
        c_rows: List[int] = []
        c_cols: List[int] = []
        c_vals: List[float] = []
        self._vsource_entries: List[Tuple[str, int, float]] = []
        self._isource_entries: List[Tuple[str, int, int, float]] = []

        def two_terminal(
            rows: List[int], cols: List[int], vals: List[float],
            i: int, j: int, value: float,
        ) -> None:
            rows.extend((i, i, j, j))
            cols.extend((i, j, j, i))
            vals.extend((value, -value, value, -value))

        def vccs(
            out_pos: int, out_neg: int, ctrl_pos: int, ctrl_neg: int,
            gm: float,
        ) -> None:
            g_rows.extend((out_pos, out_pos, out_neg, out_neg))
            g_cols.extend((ctrl_pos, ctrl_neg, ctrl_pos, ctrl_neg))
            g_vals.extend((gm, -gm, -gm, gm))

        for element in circuit:
            if isinstance(element, Resistor):
                two_terminal(
                    g_rows, g_cols, g_vals,
                    _padded(self.index, element.a),
                    _padded(self.index, element.b),
                    1.0 / element.value,
                )
            elif isinstance(element, Capacitor):
                two_terminal(
                    c_rows, c_cols, c_vals,
                    _padded(self.index, element.a),
                    _padded(self.index, element.b),
                    element.value,
                )
            elif isinstance(element, VoltageSource):
                pos = _padded(self.index, element.pos)
                neg = _padded(self.index, element.neg)
                branch = self.index.branch(element.name)
                g_rows.extend((pos, branch, neg, branch))
                g_cols.extend((branch, pos, branch, neg))
                g_vals.extend((1.0, 1.0, -1.0, -1.0))
                self._vsource_entries.append(
                    (element.name, branch, element.ac)
                )
            elif isinstance(element, CurrentSource):
                self._isource_entries.append(
                    (
                        element.name,
                        _padded(self.index, element.pos),
                        _padded(self.index, element.neg),
                        element.ac,
                    )
                )
            elif isinstance(element, Mos):
                try:
                    solution = dc.devices[element.name]
                except KeyError:
                    raise AnalysisError(
                        f"DC solution has no device {element.name!r}; "
                        "AC analysis needs a matching operating point"
                    ) from None
                op = solution.op
                drain = _padded(self.index, solution.eff_drain)
                source = _padded(self.index, solution.eff_source)
                gate = _padded(self.index, element.g)
                bulk = _padded(self.index, element.b)
                two_terminal(g_rows, g_cols, g_vals, drain, source, op.gds)
                vccs(drain, source, gate, source, op.gm)
                vccs(drain, source, bulk, source, op.gmb)
                two_terminal(c_rows, c_cols, c_vals, gate, source, op.cgs)
                two_terminal(c_rows, c_cols, c_vals, gate, drain, op.cgd)
                two_terminal(c_rows, c_cols, c_vals, gate, bulk, op.cgb)
                two_terminal(c_rows, c_cols, c_vals, drain, bulk, op.cdb)
                two_terminal(c_rows, c_cols, c_vals, source, bulk, op.csb)
            else:  # pragma: no cover - future element types
                raise NotImplementedError(
                    f"AC stamp for {type(element).__name__}"
                )

        g_pad = np.zeros((pad, pad))
        np.add.at(
            g_pad,
            (np.asarray(g_rows, dtype=np.intp), np.asarray(g_cols, dtype=np.intp)),
            np.asarray(g_vals),
        )
        c_pad = np.zeros((pad, pad))
        np.add.at(
            c_pad,
            (np.asarray(c_rows, dtype=np.intp), np.asarray(c_cols, dtype=np.intp)),
            np.asarray(c_vals),
        )
        self.conductance = np.ascontiguousarray(g_pad[: self.size, : self.size])
        self.capacitance = np.ascontiguousarray(c_pad[: self.size, : self.size])

    # -- Right-hand sides --------------------------------------------------------

    def rhs(self, overrides: Optional[Dict[str, complex]] = None) -> np.ndarray:
        """AC excitation vector from each source's ``ac`` field, with
        optional per-source amplitude ``overrides``."""
        overrides = overrides or {}
        rhs_pad = np.zeros(self.size + 1, dtype=complex)
        for name, branch, ac in self._vsource_entries:
            rhs_pad[branch] += overrides.get(name, ac)
        for name, pos, neg, ac in self._isource_entries:
            amplitude = overrides.get(name, ac)
            if amplitude:
                rhs_pad[pos] -= amplitude
                rhs_pad[neg] += amplitude
        return rhs_pad[: self.size]

    def injection_columns(
        self, pairs: Sequence[Tuple[int, int]]
    ) -> np.ndarray:
        """Unit-current injection columns, one per ``(node_a, node_b)``
        pair (current flows node_a -> node_b; -1 indexes ground)."""
        columns = np.zeros((self.size + 1, len(pairs)), dtype=complex)
        for k, (node_a, node_b) in enumerate(pairs):
            columns[node_a if node_a >= 0 else self.size, k] -= 1.0
            columns[node_b if node_b >= 0 else self.size, k] += 1.0
        return columns[: self.size]

    # -- Batched solves ----------------------------------------------------------

    def solve_batch(
        self, frequencies: np.ndarray, rhs: np.ndarray
    ) -> np.ndarray:
        """Solve ``(G + j 2 pi f C) X = rhs`` for every frequency at once.

        ``rhs`` is ``(size,)`` or ``(size, k)``; the result is
        ``(F, size, k)`` complex.
        """
        freq = np.asarray(frequencies, dtype=float)
        columns = np.asarray(rhs, dtype=complex)
        if columns.ndim == 1:
            columns = columns[:, None]
        omega = 2.0 * np.pi * freq
        # Assemble G + j*omega*C by writing the real and imaginary planes
        # directly — same values as the complex expression, without three
        # (F, n, n) complex temporaries.
        matrices = np.empty(
            (freq.size, self.size, self.size), dtype=complex
        )
        matrices.real[:] = self.conductance
        matrices.imag[:] = omega[:, None, None] * self.capacitance
        stacked = np.broadcast_to(
            columns[None, :, :], (freq.size,) + columns.shape
        )
        try:
            return np.linalg.solve(matrices, stacked)
        except np.linalg.LinAlgError as error:
            raise AnalysisError(f"singular MNA matrix: {error}") from error


def solve_stacked_systems(
    systems: Sequence["LinearSystem"],
    frequencies: np.ndarray,
    rhs_stack: np.ndarray,
) -> np.ndarray:
    """One ``(K, F, n, n)`` solve over K same-sized linear systems.

    ``rhs_stack`` is ``(K, size, cols)`` complex, one right-hand-side block
    per member; the result is ``(K, F, size, cols)``.  Each member's block
    is assembled exactly like :meth:`LinearSystem.solve_batch` (real and
    imaginary planes written directly, LAPACK invoked per matrix), so the
    stacked result matches K independent ``solve_batch`` calls bit for bit
    — this is what makes the ensemble measurement path equal to the
    per-member golden path.
    """
    freq = np.asarray(frequencies, dtype=float)
    members = len(systems)
    if members == 0:
        raise AnalysisError("stacked solve needs at least one system")
    size = systems[0].size
    rhs_stack = np.asarray(rhs_stack, dtype=complex)
    if rhs_stack.shape[:2] != (members, size):
        raise AnalysisError(
            "rhs_stack must be (members, size, cols) matching the systems"
        )
    omega = 2.0 * np.pi * freq
    matrices = np.empty((members, freq.size, size, size), dtype=complex)
    matrices.real[:] = np.stack(
        [system.conductance for system in systems]
    )[:, None]
    matrices.imag[:] = omega[None, :, None, None] * np.stack(
        [system.capacitance for system in systems]
    )[:, None]
    stacked = np.broadcast_to(
        rhs_stack[:, None], (members, freq.size) + rhs_stack.shape[1:]
    )
    try:
        return np.linalg.solve(matrices, stacked)
    except np.linalg.LinAlgError as error:
        raise AnalysisError(f"singular MNA matrix: {error}") from error
