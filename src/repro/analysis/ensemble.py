"""Stacked-ensemble Newton solves over a compiled stamp program.

The synthesis flow keeps re-solving the *same* small MNA system with
slightly perturbed device parameters: Monte-Carlo mismatch samples,
process-corner replicas, warm-started sizing rounds.  PR 1 compiled the
circuit once (:class:`~repro.analysis.stamps.StampProgram`); this module
batches the parameter vectors themselves.  K members share one program:
residuals become ``(K, n)``, Jacobians ``(K, n, n)``, and every Newton
iteration performs **one** stacked ``np.linalg.solve`` plus one batched
device-model evaluation for the whole ensemble.

Design rules (pinned by ``tests/test_ensemble.py``):

* **Parity** — member arithmetic is elementwise per row, the stacked
  linear solve runs LAPACK per matrix, and the linear-part residual is
  accumulated with a fixed-order ``einsum`` (never a batch-size-dependent
  GEMM kernel), so a member's trajectory is independent of which other
  members share its batch.  The default ``solve()`` mirrors the scalar
  :class:`~repro.resilience.policy.DirectNewton` rung stage for stage,
  keeping the stacked path sample-for-sample equal to the per-sample
  golden path at rtol 1e-9 — and shard partitioning bit-identical.
* **Masking** — a member that converges freezes (its row stops being
  updated); stragglers keep iterating.  A member that exhausts the fast
  batched rung falls back *individually* to the full scalar escalation
  ladder (:data:`~repro.resilience.policy.COMPILED_POLICY`), so one
  divergent sample cannot poison its batch and failures carry the same
  structured :class:`~repro.resilience.policy.ConvergenceReport` (and
  raise the same :class:`~repro.errors.ConvergenceError`) as before.
* **Warm-start chaining** — ``solve(chain=True)`` seeds the batch from
  its predecessor: member 0 starts from the previous ``solve()`` call's
  converged solution (round r+1 seeds from round r) and members 1..K-1
  start from member 0's fresh solution (the batched collapse of
  "member k seeds from member k-1" — true serial chaining would undo the
  stacking).  Chaining trades bitwise parity for fewer iterations, so
  the Monte-Carlo consumer keeps the default parity mode.

The per-sample path remains the golden reference behind
:data:`repro.analysis.engine.ensemble_engine` (``"per-sample"``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.analysis import lu
from repro.analysis.engine import (
    CHORD,
    PERSAMPLE,
    STACKED,
    ensemble_engine,
    newton_engine,
)
from repro.analysis.mna import NodeIndex
from repro.circuit.elements import (
    Capacitor,
    CurrentSource,
    Mos,
    Resistor,
    VoltageSource,
)
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError, ConvergenceError
from repro.resilience import faults
from repro.resilience.policy import (
    COMPILED_POLICY,
    ConvergenceReport,
)

__all__ = [
    "EnsembleProgram",
    "EnsembleSolution",
    "EnsembleMeasurement",
    "measure_ota_ensemble",
    "ensemble_engine",
    "STACKED",
    "PERSAMPLE",
]


class _StackedParams:
    """Duck-typed ``MosParams`` whose fields carry a leading ensemble axis.

    ``evaluate_batch`` is purely elementwise, so ``(K, n)`` parameter
    arrays broadcast against ``(K, n)`` bias arrays exactly like the
    per-device ``(n,)`` view the compiled engine already uses — one model
    call evaluates every device of every member.
    """

    def __init__(self, member_devices: Sequence[Sequence[Mos]]):
        first = member_devices[0]
        self.name = "+".join(sorted({m.params.name for m in first}))
        # Polarity is structural: it must not vary across members.
        self.sign = np.array([m.params.sign for m in first])
        for devices in member_devices[1:]:
            if any(
                m.params.sign != s for m, s in zip(devices, self.sign)
            ):
                raise AnalysisError(
                    "ensemble members must agree on device polarity"
                )

        def stack(attr: str) -> np.ndarray:
            return np.array(
                [
                    [getattr(m.params, attr) for m in devices]
                    for devices in member_devices
                ]
            )

        self.vto = stack("vto")
        self.gamma = stack("gamma")
        self.phi = stack("phi")
        self.kp = stack("kp")
        self.lambda_l = stack("lambda_l")


def _stacked_level1(proto, member_devices: Sequence[Sequence[Mos]]):
    """A level-1 model evaluating all members' devices in one batch."""
    merged = object.__new__(type(proto))
    merged.params = _StackedParams(member_devices)
    merged.temperature = proto.temperature
    merged.vt = proto.vt
    return merged


def _element_signature(element) -> tuple:
    """Structural identity of one element (values that stamp the shared
    linear part must match across members; MOS parameters may differ)."""
    if isinstance(element, Resistor):
        return ("R", element.name, element.a, element.b, element.value)
    if isinstance(element, Capacitor):
        return ("C", element.name, element.a, element.b, element.value)
    if isinstance(element, VoltageSource):
        return ("V", element.name, element.pos, element.neg, element.dc)
    if isinstance(element, CurrentSource):
        return ("I", element.name, element.pos, element.neg, element.dc)
    if isinstance(element, Mos):
        return ("M", element.name, element.d, element.g, element.s, element.b)
    return (type(element).__name__, element.name)


@dataclass
class EnsembleSolution:
    """Per-member outcome of one stacked ensemble solve."""

    voltages: np.ndarray
    """``(K, size)`` solution vectors (rows of failed members hold the
    last iterate of their scalar-ladder fallback)."""
    converged: np.ndarray
    """``(K,)`` bool."""
    iterations: np.ndarray
    """``(K,)`` Newton iterations spent per member (fallback included)."""
    residual_norms: np.ndarray
    """``(K,)`` last max-abs KCL residual evaluated per member."""
    gmin: np.ndarray
    """``(K,)`` achieved gmin per member (0.0 for a fully relaxed solve)."""
    index: NodeIndex
    reports: Dict[int, ConvergenceReport] = field(default_factory=dict)
    """Structured escalation record per member."""
    errors: Dict[int, ConvergenceError] = field(default_factory=dict)
    """The exact error a per-sample solve would have raised, per failed
    member."""

    @property
    def members(self) -> int:
        return int(self.voltages.shape[0])

    def raise_on_failure(self) -> None:
        """Raise the first failed member's :class:`ConvergenceError`
        (what the per-sample loop would have raised at that sample)."""
        if self.errors:
            raise self.errors[min(self.errors)]

    def warm_seed(self) -> Optional[np.ndarray]:
        """A converged member's voltages, for seeding a later ensemble."""
        hits = np.nonzero(self.converged)[0]
        if hits.size == 0:
            return None
        return self.voltages[hits[0]].copy()


class EnsembleProgram:
    """K parameter vectors solved simultaneously over one stamp program.

    Built either from per-member mismatch rows on a shared program
    (:meth:`from_mismatch` — the Monte-Carlo case) or from K structurally
    identical circuit variants whose device parameters differ
    (:meth:`from_variants` — the process-corner case).
    """

    def __init__(
        self,
        program,
        vth: np.ndarray,
        beta: np.ndarray,
        w: Optional[np.ndarray] = None,
        length: Optional[np.ndarray] = None,
        groups: Optional[List[Tuple[object, slice]]] = None,
        member_circuits: Optional[List[Circuit]] = None,
    ):
        self.program = program
        self.index = program.index
        vth = np.asarray(vth, dtype=float)
        beta = np.asarray(beta, dtype=float)
        if vth.ndim != 2 or vth.shape != beta.shape:
            raise AnalysisError(
                "ensemble mismatch stacks must be (members, n_mos) arrays"
            )
        if vth.shape[1] != program._n_mos:
            raise AnalysisError(
                f"ensemble mismatch stacks must have one column per MOS "
                f"({program._n_mos}), got {vth.shape[1]}"
            )
        self.members = int(vth.shape[0])
        self._vth = vth
        self._beta = beta
        self._w = program._mos_w if w is None else np.asarray(w, dtype=float)
        self._l = (
            program._mos_l if length is None
            else np.asarray(length, dtype=float)
        )
        self._groups = program._groups if groups is None else groups
        self._circuits = member_circuits
        self._kidx = np.arange(self.members)[:, None]
        self._swap_cache: Optional[Tuple[np.ndarray, ...]] = None
        self._warm: Optional[np.ndarray] = None

    def fingerprint(self) -> str:
        """16-hex content hash of the ensemble's inputs.

        Folds the base program's circuit fingerprint with the exact
        bytes of every member parameter stack, so two ensembles hash
        equal iff they solve the same batched system — the contract the
        worker-resident caches in :mod:`repro.runtime.pool` key on.
        """
        import hashlib

        digest = hashlib.sha256(self.program.fingerprint().encode())
        for stack in (self._vth, self._beta, self._w, self._l):
            digest.update(np.ascontiguousarray(stack).tobytes())
        return digest.hexdigest()[:16]

    # -- Constructors ----------------------------------------------------------

    @classmethod
    def from_mismatch(
        cls, program, vth_rows: np.ndarray, beta_rows: np.ndarray
    ) -> "EnsembleProgram":
        """Members = pre-drawn Pelgrom mismatch rows on a shared program.

        Rows follow ``program.mos_names`` order (the caller applies its
        name permutation first, exactly as with ``set_mismatch``).
        """
        return cls(program, vth_rows, beta_rows)

    @classmethod
    def from_variants(
        cls, circuits: Sequence[Circuit], index: Optional[NodeIndex] = None
    ) -> "EnsembleProgram":
        """Members = structurally identical circuits (process corners).

        Every circuit must stamp the same linear part (same elements,
        nets and R/V/I values); only MOS parameters, geometry and
        mismatch may differ.  All devices must use level-1 models at one
        temperature so the parameter stacks broadcast through a single
        merged model — anything else raises :class:`AnalysisError` and
        the caller falls back to the per-member path.
        """
        from repro.analysis.dcop import model_for
        from repro.analysis.stamps import StampProgram
        from repro.mos.level1 import Level1Model

        circuits = list(circuits)
        if not circuits:
            raise AnalysisError("ensemble needs at least one member circuit")
        base = StampProgram(circuits[0], index)
        signature = [_element_signature(e) for e in circuits[0]]
        for circuit in circuits[1:]:
            circuit.validate()
            if [_element_signature(e) for e in circuit] != signature:
                raise AnalysisError(
                    "ensemble member circuits must be structurally "
                    "identical (same elements, nets and linear values)"
                )
        member_devices: List[List[Mos]] = [
            [circuit.mos(name) for name in base.mos_names]
            for circuit in circuits
        ]
        models = {
            id(model_for(m)): model_for(m)
            for devices in member_devices
            for m in devices
        }
        if not all(type(m) is Level1Model for m in models.values()):
            raise AnalysisError(
                "ensemble variants need level-1 models throughout"
            )
        temperatures = {m.temperature for m in models.values()}
        if len(temperatures) != 1:
            raise AnalysisError(
                "ensemble variants must share one model temperature"
            )
        proto = next(iter(models.values()))
        n = len(base.mos_names)
        stacked_model = _stacked_level1(proto, member_devices)
        return cls(
            base,
            vth=np.array(
                [[m.mismatch_vth for m in devices]
                 for devices in member_devices]
            ),
            beta=np.array(
                [[m.mismatch_beta for m in devices]
                 for devices in member_devices]
            ),
            w=np.array(
                [[m.w for m in devices] for devices in member_devices]
            ),
            length=np.array(
                [[m.l for m in devices] for devices in member_devices]
            ),
            groups=[(stacked_model, slice(0, n))],
            member_circuits=circuits,
        )

    # -- Assembly --------------------------------------------------------------

    def residual_and_jacobian(
        self,
        voltages: np.ndarray,
        gmin: float,
        source_scale: float = 1.0,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Stacked residuals ``(K, size)`` and Jacobians ``(K, size, size)``.

        Mirrors :meth:`StampProgram.residual_and_jacobian` row for row;
        every operation is elementwise per member (the linear part uses a
        fixed-order einsum), so a row's values do not depend on the batch
        size — the property that keeps shard partitioning bit-identical.
        """
        program = self.program
        size = program.size
        pad = size + 1
        K = self.members
        v_pad = np.zeros((K, pad))
        v_pad[:, :size] = voltages

        jacobian = np.empty((K, pad, pad))
        jacobian[:] = program._a_pad
        # einsum (optimize=False) accumulates j in fixed order per (k, i):
        # deliberately *not* a GEMM, whose blocking may depend on K.
        residual = np.einsum("ij,kj->ki", program._a_pad, v_pad)
        residual -= source_scale * program._source_vector

        if program._n_mos:
            vd = v_pad[:, program._mos_d]
            vg = v_pad[:, program._mos_g]
            vs = v_pad[:, program._mos_s]
            vb = v_pad[:, program._mos_b]
            sign = program._mos_sign
            swapped = sign * (vd - vs) < 0.0
            vd_f = np.where(swapped, vs, vd)
            vs_f = np.where(swapped, vd, vs)
            vgs = sign * (vg - vs_f) - self._vth
            vds = sign * (vd_f - vs_f)
            vsb = sign * (vs_f - vb)

            current = np.empty((K, program._n_mos))
            gm = np.empty((K, program._n_mos))
            gds = np.empty((K, program._n_mos))
            gmb = np.empty((K, program._n_mos))
            for model, members in self._groups:
                ids, gms, gdss, gmbs, _regions = model.evaluate_batch(
                    self._w[..., members],
                    self._l[..., members],
                    vgs[:, members],
                    vds[:, members],
                    vsb[:, members],
                )
                current[:, members] = ids
                gm[:, members] = gms
                gds[:, members] = gdss
                gmb[:, members] = gmbs
            if faults.active():
                fault = faults.fire("model.eval")
                if fault is not None:
                    if fault.action == "nan":
                        current.fill(np.nan)
                    else:
                        raise fault.exception()
            beta_scale = 1.0 + self._beta
            current *= beta_scale
            gm *= beta_scale
            gds *= beta_scale
            gmb *= beta_scale
            i_ds = sign * current

            cache = self._swap_cache
            if cache is None or not np.array_equal(cache[0], swapped):
                drain = np.where(swapped, program._mos_s, program._mos_d)
                source = np.where(swapped, program._mos_d, program._mos_s)
                gate = np.broadcast_to(program._mos_g, drain.shape)
                bulk = np.broadcast_to(program._mos_b, drain.shape)
                rows = np.concatenate(
                    (drain, drain, drain, drain,
                     source, source, source, source),
                    axis=1,
                )
                cols = np.concatenate(
                    (drain, gate, source, bulk) * 2, axis=1
                )
                cache = (swapped.copy(), drain, source, rows, cols)
                self._swap_cache = cache
            _swapped, drain, source, rows, cols = cache
            np.add.at(residual, (self._kidx, drain), i_ds)
            np.add.at(residual, (self._kidx, source), -i_ds)

            minus_sum = -(gm + gds + gmb)
            vals = np.concatenate(
                (gds, gm, minus_sum, gmb, -gds, -gm, -minus_sum, -gmb),
                axis=1,
            )
            np.add.at(jacobian, (self._kidx, rows, cols), vals)

        nodes = program.node_count
        residual[:, :nodes] += gmin * v_pad[:, :nodes]
        diag = np.arange(nodes)
        jacobian[:, diag, diag] += gmin

        return residual[:, :size], jacobian[:, :size, :size]

    # -- Masked batched Newton -------------------------------------------------

    def _newton_masked(
        self,
        voltages: np.ndarray,
        running: np.ndarray,
        gmin: float,
        source_scale: float = 1.0,
        max_iterations: int = 200,
        abs_tolerance: float = 1e-10,
        step_limit: float = 0.6,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Damped Newton on the ``running`` members, updating in place.

        Per-member control flow mirrors :meth:`StampProgram.newton`
        exactly (same damping, same two-part convergence test, same
        treatment of linear-solve failure); converged members freeze.
        Returns ``(converged, iterations, residual_norms)`` arrays (full
        K length; entries meaningful for members that started running).

        Under the opt-in chord ``newton`` engine each member carries its
        own LU factorization, reused across iterations and refreshed
        per-member on residual stall or reuse expiry — the batched
        mirror of :meth:`StampProgram.newton_chord`.  A member whose
        refactorization hits a singular Jacobian produces a non-finite
        step and demotes to the scalar fallback ladder, exactly like a
        singular member in the full-Newton batch.
        """
        K = self.members
        converged = np.zeros(K, dtype=bool)
        iterations = np.zeros(K, dtype=np.intp)
        norms = np.full(K, np.inf)
        alive = running.copy()
        chord = newton_engine.default() == CHORD
        lu_all = piv_all = None
        factored = np.zeros(K, dtype=bool)
        age = np.zeros(K, dtype=np.intp)
        prev_norms = np.full(K, np.inf)
        # A damped member refactors next iteration: inside the damping
        # region a stale Jacobian oscillates (see newton_chord).
        was_damped = np.ones(K, dtype=bool)
        for iteration in range(1, max_iterations + 1):
            idx = np.nonzero(alive)[0]
            if idx.size == 0:
                break
            residual, jacobian = self.residual_and_jacobian(
                voltages, gmin, source_scale
            )
            r = residual[idx]
            batch_norms = np.max(np.abs(r), axis=1)
            norms[idx] = batch_norms
            iterations[idx] = iteration
            # A member gone non-finite can never pass the convergence
            # test; drop it to the scalar fallback instead of burning
            # the whole iteration cap on NaNs.
            finite = np.isfinite(batch_norms)
            if not finite.all():
                alive[idx[~finite]] = False
                idx = idx[finite]
                r = r[finite]
                if idx.size == 0:
                    continue
            try:
                if faults.active():
                    faults.maybe_raise("solve.linear")
                if chord:
                    if lu_all is None:
                        n = jacobian.shape[1]
                        lu_all = np.zeros((K, n, n))
                        piv_all = np.zeros((K, n), dtype=np.intp)
                    cur = np.max(np.abs(r), axis=1)
                    need = (
                        ~factored[idx]
                        | (age[idx] >= lu.DEFAULT_MAX_REUSE)
                        | was_damped[idx]
                        | (cur > lu.DEFAULT_STALL_RATIO * prev_norms[idx])
                    )
                    refresh = idx[need]
                    if refresh.size:
                        refactors = int(np.count_nonzero(factored[refresh]))
                        if refactors:
                            telemetry.count("newton.refactor", refactors)
                        lu_f, piv_f = lu.lu_factor_batched(jacobian[refresh])
                        lu_all[refresh] = lu_f
                        piv_all[refresh] = piv_f
                        factored[refresh] = True
                        age[refresh] = 0
                    delta = lu.lu_solve_batched(
                        lu_all[idx], piv_all[idx], -r
                    )
                    age[idx] += 1
                    prev_norms[idx] = cur
                else:
                    # The explicit trailing RHS axis keeps NumPy >= 2
                    # treating r as a stack of vectors (never a
                    # broadcast matrix).
                    delta = np.linalg.solve(
                        jacobian[idx], -r[..., None]
                    )[..., 0]
            except Exception:
                # Stacked solve failed — LAPACK raises one LinAlgError
                # for the whole (K, n, n) batch even when a single
                # member is singular (or a fault was injected).  Re-solve
                # member-by-member to isolate the offenders: healthy
                # members keep their Newton step, and only the genuinely
                # singular ones demote to the scalar fallback ladder.
                telemetry.count("ensemble.singular_batches")
                delta = np.empty_like(r)
                for row, k in enumerate(idx):
                    try:
                        delta[row] = np.linalg.solve(
                            jacobian[k], -residual[k]
                        )
                    except np.linalg.LinAlgError:
                        telemetry.count("ensemble.singular_members")
                        delta[row] = np.nan
            usable = np.isfinite(delta).all(axis=1)
            if not usable.all():
                alive[idx[~usable]] = False
                idx = idx[usable]
                delta = delta[usable]
                r = r[usable]
                if idx.size == 0:
                    continue
            batch_norms = np.max(np.abs(r), axis=1)
            max_step = (
                np.max(np.abs(delta), axis=1)
                if delta.shape[1]
                else np.zeros(idx.size)
            )
            over = max_step > step_limit
            if over.any():
                delta[over] *= (step_limit / max_step[over])[:, None]
            if chord:
                was_damped[idx] = over
            voltages[idx] += delta
            done = (
                (batch_norms < abs_tolerance) & (max_step < 1e-9)
            ) | ((max_step < 1e-12) & (batch_norms < 1e-6))
            if done.any():
                converged[idx[done]] = True
                alive[idx[done]] = False
        return converged, iterations, norms

    # -- Scalar fallback -------------------------------------------------------

    def _scalar_solve(
        self, k: int, max_iterations: int
    ) -> Tuple[
        Optional[np.ndarray],
        ConvergenceReport,
        Optional[ConvergenceError],
    ]:
        """Run the full scalar escalation ladder for member ``k``.

        This reproduces exactly what the per-sample path does for the
        member's parameter vector — including the same
        :class:`ConvergenceError` when the ladder is exhausted.
        """
        telemetry.count("ensemble.fallbacks")
        if self._circuits is not None:
            from repro.analysis.stamps import StampProgram

            backend = StampProgram(self._circuits[k])
        else:
            backend = self.program
            saved = (backend._mos_mvth, backend._mos_mbeta)
            backend.set_mismatch(self._vth[k], self._beta[k])
        try:
            voltages, report = COMPILED_POLICY.run(
                backend, max_iterations=max_iterations
            )
            return voltages, report, None
        except ConvergenceError as error:
            return error.report.final_voltages, error.report, error
        finally:
            if self._circuits is None:
                backend._mos_mvth, backend._mos_mbeta = saved
                backend._swap_cache = None

    # -- The ladder ------------------------------------------------------------

    def solve(
        self,
        seed: Optional[np.ndarray] = None,
        chain: bool = False,
        max_iterations: int = 200,
    ) -> EnsembleSolution:
        """Solve every member; returns an :class:`EnsembleSolution`.

        The fast path mirrors the scalar
        :class:`~repro.resilience.policy.DirectNewton` rung (two stages,
        gmin 1e-12 then 0, 50-iteration caps) batched over all members;
        members it cannot converge fall back individually to the full
        scalar ladder.  ``seed`` overrides the standard initial guess
        (``(size,)`` shared or ``(K, size)`` per member); with
        ``chain=True`` member 0 additionally seeds from the previous
        ``solve()`` call on this program, and members 1..K-1 from member
        0's converged solution.
        """
        program = self.program
        size = program.size
        K = self.members
        telemetry.count("ensemble.solves")
        telemetry.count("ensemble.members", K)

        voltages = np.empty((K, size))
        if seed is None:
            voltages[:] = program.initial_guess()
        else:
            voltages[:] = np.asarray(seed, dtype=float)
        converged = np.zeros(K, dtype=bool)
        iterations = np.zeros(K, dtype=np.intp)
        norms = np.full(K, np.inf)
        gmins = np.zeros(K)
        reports: Dict[int, ConvergenceReport] = {}
        errors: Dict[int, ConvergenceError] = {}

        def run_ladder(subset: np.ndarray) -> None:
            if subset.size == 0:
                return
            running = np.zeros(K, dtype=bool)
            running[subset] = True
            stages: List[Tuple[str, np.ndarray, np.ndarray, np.ndarray]] = []
            alive = running.copy()
            for stage_gmin in (1e-12, 0.0):
                conv_s, iter_s, norm_s = self._newton_masked(
                    voltages, alive, stage_gmin,
                    max_iterations=min(max_iterations, 50),
                )
                stages.append(
                    (f"gmin={stage_gmin:g}", conv_s, iter_s, norm_s)
                )
                alive = alive & conv_s
            direct = np.nonzero(alive)[0]
            converged[direct] = True
            gmins[direct] = 0.0
            for k in direct:
                report = ConvergenceReport(circuit=program.circuit_name)
                total = 0
                for stage, conv_s, iter_s, norm_s in stages:
                    report.add(
                        "direct-newton", stage, bool(conv_s[k]),
                        int(iter_s[k]), float(norm_s[k]),
                    )
                    total += int(iter_s[k])
                report.converged = True
                report.strategy = "direct-newton"
                report.achieved_gmin = 0.0
                reports[int(k)] = report
                iterations[k] = total
                norms[k] = stages[-1][3][k]
            fallback = subset[~converged[subset]]
            for k in fallback:
                v, report, error = self._scalar_solve(
                    int(k), max_iterations
                )
                reports[int(k)] = report
                iterations[k] = report.iterations
                if report.rungs:
                    norms[k] = report.rungs[-1].residual_norm
                if error is None:
                    voltages[k] = v
                    converged[k] = True
                    gmins[k] = report.achieved_gmin
                else:
                    errors[int(k)] = error
                    if v is not None:
                        voltages[k] = v

        if chain and K > 1:
            if self._warm is not None and self._warm.shape == (size,):
                voltages[0] = self._warm
                telemetry.count("ensemble.chained")
            run_ladder(np.array([0]))
            if converged[0]:
                voltages[1:] = voltages[0]
                telemetry.count("ensemble.chained", K - 1)
            run_ladder(np.arange(1, K))
        else:
            if chain and self._warm is not None and self._warm.shape == (
                size,
            ):
                voltages[:] = self._warm
                telemetry.count("ensemble.chained", K)
            run_ladder(np.arange(K))

        telemetry.count("ensemble.newton_iterations", int(iterations.sum()))
        solution = EnsembleSolution(
            voltages=voltages,
            converged=converged,
            iterations=iterations,
            residual_norms=norms,
            gmin=gmins,
            index=self.index,
            reports=reports,
            errors=errors,
        )
        if chain:
            warm = solution.warm_seed()
            if warm is not None:
                self._warm = warm
        return solution


# -- Ensemble measurement (process corners) ---------------------------------------


@dataclass
class EnsembleMeasurement:
    """One member's Table-1 measurement, or why it failed."""

    metrics: Optional[object]
    error: Optional[str] = None


def _measure_single(tb, f_start, f_stop, points_per_decade):
    from repro.analysis.metrics import measure_ota

    try:
        return EnsembleMeasurement(
            metrics=measure_ota(tb, f_start, f_stop, points_per_decade)
        )
    except (AnalysisError, ConvergenceError) as error:
        return EnsembleMeasurement(metrics=None, error=str(error))


def measure_ota_ensemble(
    benches,
    f_start: float = 1.0,
    f_stop: float = 3.0e9,
    points_per_decade: int = 24,
    engine: Optional[str] = None,
) -> List[EnsembleMeasurement]:
    """Table-1 measurement of K structurally identical testbenches.

    The stacked path shares one compiled program: one batched feedback DC
    solve biases every member, then all members' small-signal questions
    (drives, impedance probe, noise injections) are answered by a single
    ``(K, F, n, n)`` solve.  The per-member ``measure_ota`` loop remains
    the golden reference (``engine="per-sample"``), and is also the
    automatic fallback when the members are not stackable (different
    structure, non-level-1 models).
    """
    benches = list(benches)
    if not benches:
        return []
    if ensemble_engine.resolve(engine) == PERSAMPLE:
        return [
            _measure_single(tb, f_start, f_stop, points_per_decade)
            for tb in benches
        ]

    from repro.analysis.ac import logspace_frequencies
    from repro.analysis.dcop import _package_solution
    from repro.analysis.metrics import _metrics_from_sweeps
    from repro.analysis.noise import NoiseAnalysis
    from repro.analysis.stamps import LinearSystem, solve_stacked_systems
    from repro.analysis.transfer import TransferFunction

    feedbacks = []
    for tb in benches:
        clone = tb.circuit.clone(tb.circuit.name + "_fb")
        clone.remove(tb.source_neg)
        clone.add_vsource("_fb", tb.input_neg_net, tb.output_net, dc=0.0)
        feedbacks.append(clone)
    try:
        ensemble = EnsembleProgram.from_variants(feedbacks)
    except AnalysisError:
        return [
            _measure_single(tb, f_start, f_stop, points_per_decade)
            for tb in benches
        ]

    with telemetry.span(
        "analysis.measure_ensemble",
        members=len(benches),
        circuit=benches[0].circuit.name,
    ):
        solution = ensemble.solve()
        frequencies = logspace_frequencies(f_start, f_stop, points_per_decade)
        results: List[Optional[EnsembleMeasurement]] = [None] * len(benches)
        ac_members: List[tuple] = []
        index_ol = NodeIndex(benches[0].circuit)
        for k, tb in enumerate(benches):
            if not solution.converged[k]:
                error = solution.errors.get(k)
                results[k] = EnsembleMeasurement(
                    metrics=None,
                    error=str(error) if error is not None
                    else "ensemble member did not converge",
                )
                continue
            dc = _package_solution(
                feedbacks[k],
                ensemble.index,
                solution.voltages[k],
                int(solution.iterations[k]),
                float(solution.gmin[k]),
                report=solution.reports.get(k),
            )
            offset = dc.voltage(tb.output_net) - tb.common_mode_voltage()
            try:
                system = LinearSystem(tb.circuit, dc, index=index_ol)
                out_node = index_ol.node(tb.output_net)
                if out_node < 0:
                    raise AnalysisError(
                        "OTA output cannot be the ground net"
                    )
                diff_drive = {tb.source_pos: 0.5, tb.source_neg: -0.5}
                cm_drive = {tb.source_pos: 1.0, tb.source_neg: 1.0}
                silence = {
                    name: 0.0
                    for name in (
                        s.name for s in tb.circuit
                        if isinstance(s, VoltageSource)
                    )
                    if name not in (tb.source_pos, tb.source_neg)
                }
                supply_drive = {
                    **{name: 0.0 for name in silence},
                    tb.source_pos: 0.0,
                    tb.source_neg: 0.0,
                }
                for supply in tb.supply_sources:
                    supply_drive[supply] = 1.0
                noise_analysis = NoiseAnalysis(
                    tb.circuit, dc, tb.output_net,
                    {**silence, **diff_drive},
                    engine="compiled", system=system,
                )
                zout_column = system.injection_columns(
                    [(-1, out_node)]
                )[:, 0]
                columns = np.concatenate(
                    [
                        np.stack(
                            [
                                system.rhs({**silence, **diff_drive}),
                                system.rhs({**silence, **cm_drive}),
                                system.rhs(supply_drive),
                                zout_column,
                            ],
                            axis=1,
                        ),
                        noise_analysis.rhs_columns,
                    ],
                    axis=1,
                )
            except (AnalysisError, ConvergenceError) as error:
                results[k] = EnsembleMeasurement(
                    metrics=None, error=str(error)
                )
                continue
            ac_members.append(
                (k, dc, offset, noise_analysis, columns, system)
            )

        if ac_members:
            systems = [entry[5] for entry in ac_members]
            rhs_stack = np.stack([entry[4] for entry in ac_members])
            solved = solve_stacked_systems(systems, frequencies, rhs_stack)
            for row, (k, dc, offset, noise_analysis, _cols, _sys) in (
                enumerate(ac_members)
            ):
                tb = benches[k]
                out_node = index_ol.node(tb.output_net)
                transfers = solved[row][:, out_node, :]
                dm = TransferFunction(
                    frequencies.copy(), transfers[:, 0].copy()
                )
                cm = TransferFunction(
                    frequencies.copy(), transfers[:, 1].copy()
                )
                ps = TransferFunction(
                    frequencies.copy(), transfers[:, 2].copy()
                )
                output_resistance = float(abs(transfers[0, 3]))
                try:
                    noise = noise_analysis.result_from_output_transfers(
                        frequencies, transfers[:, 4:]
                    )
                    metrics = _metrics_from_sweeps(
                        tb, dc, offset, dm, cm, ps,
                        output_resistance, noise,
                    )
                    results[k] = EnsembleMeasurement(metrics=metrics)
                except (AnalysisError, ConvergenceError) as error:
                    results[k] = EnsembleMeasurement(
                        metrics=None, error=str(error)
                    )
        return [
            entry if entry is not None
            else EnsembleMeasurement(metrics=None, error="not measured")
            for entry in results
        ]
