"""OTA performance measurement.

:func:`measure_ota` reproduces, on our simulator, the measurement set the
paper reports in Table 1 for each sizing case: DC gain, GBW, phase margin,
slew rate, CMRR, offset voltage, output resistance, input noise (integrated,
thermal density, flicker density) and power dissipation.

The DC operating point is established in a unity-feedback configuration
(output tied to the inverting input), which both defines the bias point of a
high-gain open-loop amplifier robustly and yields the input-referred offset
directly; the AC analyses then run open-loop at that operating point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.analysis.ac import (
    ac_sweep,
    logspace_frequencies,
    output_impedance,
)
from repro import telemetry
from repro.analysis.dcop import DcSolution, solve_dc
from repro.analysis.engine import COMPILED, resolve_engine
from repro.analysis.noise import NoiseAnalysis
from repro.analysis.transfer import TransferFunction
from repro.circuit.net import canonical
from repro.circuit.elements import VoltageSource
from repro.circuit.testbench import OtaTestbench
from repro.errors import AnalysisError
from repro.units import db


@dataclass
class OtaMetrics:
    """Measured OTA performance (the rows of the paper's Table 1)."""

    dc_gain_db: float
    gbw: float
    phase_margin_deg: float
    slew_rate: float
    cmrr_db: float
    offset_voltage: float
    output_resistance: float
    input_noise_rms: float
    thermal_noise_density: float
    flicker_noise_density: float
    power: float
    psrr_db: float = 0.0
    """Supply rejection: differential gain over supply-to-output gain."""
    gain_margin_db: Optional[float] = None
    output_capacitance: float = 0.0
    device_regions: Dict[str, str] = field(default_factory=dict)
    saturation_margins: Dict[str, float] = field(default_factory=dict)

    def all_saturated(self, exclude: Tuple[str, ...] = ()) -> bool:
        """True when every (non-excluded) device is saturated."""
        return all(
            region == "saturation"
            for name, region in self.device_regions.items()
            if name not in exclude
        )


def feedback_dc_solution(
    tb: OtaTestbench, engine: Optional[str] = None
) -> Tuple[DcSolution, float]:
    """DC solve in unity feedback; returns (solution, offset voltage).

    The inverting-input source is replaced by a 0 V source from the output,
    forcing ``v(inn) = v(out)``; with the non-inverting input at the common
    mode, the converged output sits at ``vcm + offset``.
    """
    clone = tb.circuit.clone(tb.circuit.name + "_fb")
    clone.remove(tb.source_neg)
    clone.add_vsource("_fb", tb.input_neg_net, tb.output_net, dc=0.0)
    solution = solve_dc(clone, engine=engine)
    offset = solution.voltage(tb.output_net) - tb.common_mode_voltage()
    return solution, offset


def output_node_capacitance(tb: OtaTestbench, dc: DcSolution) -> float:
    """Total capacitance loading the output node, F.

    Sums explicit capacitors plus the linearised device capacitances whose
    one terminal is the output — the denominator of the slew-rate estimate.
    """
    out = canonical(tb.output_net)
    total = 0.0
    for capacitor in tb.circuit.capacitors:
        if out in (canonical(capacitor.a), canonical(capacitor.b)):
            total += capacitor.value
    for name, device in dc.devices.items():
        element = device.element
        op = device.op
        drain = canonical(device.eff_drain)
        source = canonical(device.eff_source)
        gate = canonical(element.g)
        bulk = canonical(element.b)
        if drain == out:
            total += op.cdb
            if gate != out:
                total += op.cgd
        if source == out:
            total += op.csb
            if gate != out:
                total += op.cgs
        if gate == out:
            total += op.cgs + op.cgd + op.cgb
    return total


def measure_ota(
    tb: OtaTestbench,
    f_start: float = 1.0,
    f_stop: float = 3.0e9,
    points_per_decade: int = 24,
    engine: Optional[str] = None,
) -> OtaMetrics:
    """Run the full Table-1 measurement suite on an OTA testbench.

    With the compiled engine the circuit is linearised once into a shared
    :class:`~repro.analysis.stamps.LinearSystem`; the differential,
    common-mode and supply sweeps plus the impedance probe become four
    right-hand-side columns of a single batched solve, and the noise
    analysis reuses the same system.
    """
    engine_name = resolve_engine(engine)
    with telemetry.span(
        "analysis.measure", circuit=tb.circuit.name, engine=engine_name
    ):
        return _measure_ota(tb, f_start, f_stop, points_per_decade, engine_name)


def _measure_ota(
    tb: OtaTestbench,
    f_start: float,
    f_stop: float,
    points_per_decade: int,
    engine_name: str,
) -> OtaMetrics:
    dc, offset = feedback_dc_solution(tb, engine=engine_name)

    frequencies = logspace_frequencies(f_start, f_stop, points_per_decade)
    diff_drive = {tb.source_pos: 0.5, tb.source_neg: -0.5}
    cm_drive = {tb.source_pos: 1.0, tb.source_neg: 1.0}
    silence = {
        name: 0.0
        for name in (s.name for s in tb.circuit if isinstance(s, VoltageSource))
        if name not in (tb.source_pos, tb.source_neg)
    }
    supply_drive = {
        **{name: 0.0 for name in silence},
        tb.source_pos: 0.0,
        tb.source_neg: 0.0,
    }
    for supply in tb.supply_sources:
        supply_drive[supply] = 1.0

    if engine_name == COMPILED:
        import numpy as np

        from repro.analysis.stamps import LinearSystem

        system = LinearSystem(tb.circuit, dc)
        out_node = system.index.node(tb.output_net)
        if out_node < 0:
            raise AnalysisError("OTA output cannot be the ground net")
        noise_analysis = NoiseAnalysis(
            tb.circuit,
            dc,
            tb.output_net,
            {**silence, **diff_drive},
            engine=engine_name,
            system=system,
        )
        # A current probe stamps nothing into G/C, so the impedance column
        # is a unit injection into the output on the very same system; the
        # noise injections ride along too, so the whole measurement suite
        # is one factorisation of the stacked (F, n, n) tensor.
        zout_column = system.injection_columns([(-1, out_node)])[:, 0]
        columns = np.concatenate(
            [
                np.stack(
                    [
                        system.rhs({**silence, **diff_drive}),
                        system.rhs({**silence, **cm_drive}),
                        system.rhs(supply_drive),
                        zout_column,
                    ],
                    axis=1,
                ),
                noise_analysis.rhs_columns,
            ],
            axis=1,
        )
        solved = system.solve_batch(frequencies, columns)
        transfers = solved[:, out_node, :]
        dm = TransferFunction(frequencies.copy(), transfers[:, 0].copy())
        cm = TransferFunction(frequencies.copy(), transfers[:, 1].copy())
        ps = TransferFunction(frequencies.copy(), transfers[:, 2].copy())
        output_resistance = float(abs(transfers[0, 3]))
        noise = noise_analysis.result_from_output_transfers(
            frequencies, transfers[:, 4:]
        )
    else:
        dm = ac_sweep(
            tb.circuit, dc, frequencies, {**silence, **diff_drive},
            engine=engine_name,
        ).transfer(tb.output_net)
        cm = ac_sweep(
            tb.circuit, dc, frequencies, {**silence, **cm_drive},
            engine=engine_name,
        ).transfer(tb.output_net)
        ps = ac_sweep(
            tb.circuit, dc, frequencies, supply_drive, engine=engine_name
        ).transfer(tb.output_net)
        zout = output_impedance(
            tb.circuit, dc, tb.output_net, [f_start], engine=engine_name
        )
        output_resistance = float(zout.magnitude[0])
        noise = NoiseAnalysis(
            tb.circuit, dc, tb.output_net, {**silence, **diff_drive},
            engine=engine_name,
        ).run(frequencies)

    return _metrics_from_sweeps(
        tb, dc, offset, dm, cm, ps, output_resistance, noise
    )


def _metrics_from_sweeps(
    tb: OtaTestbench,
    dc: DcSolution,
    offset: float,
    dm: TransferFunction,
    cm: TransferFunction,
    ps: TransferFunction,
    output_resistance: float,
    noise,
) -> OtaMetrics:
    """Fold the raw sweeps into :class:`OtaMetrics`.

    Shared by the per-testbench path above and the stacked ensemble
    measurement (:func:`repro.analysis.ensemble.measure_ota_ensemble`),
    which produces the same sweeps from one batched solve.
    """
    gbw = dm.unity_gain_frequency()
    if gbw is None:
        raise AnalysisError(
            "differential gain never crosses unity; widen the sweep"
        )
    phase_margin = dm.phase_margin()
    if phase_margin is None:
        raise AnalysisError("no phase margin: unity crossing not found")

    cmrr = dm.magnitude[0] / max(cm.magnitude[0], 1e-30)
    psrr = dm.magnitude[0] / max(ps.magnitude[0], 1e-30)

    # Noise ------------------------------------------------------------------
    input_noise_rms = noise.integrated_input_noise(f_low=1.0, f_high=gbw)
    thermal_density = noise.input_density(max(gbw / 3.0, 1e5))
    flicker_density = noise.input_density(1.0e3)

    # Slew rate ---------------------------------------------------------------
    out_capacitance = output_node_capacitance(tb, dc)
    if tb.slew_devices:
        limit = min(abs(dc.devices[name].op.id) for name in tb.slew_devices)
    else:
        limit = 0.0
    slew_rate = limit / out_capacitance if out_capacitance > 0.0 else math.inf

    # DC bookkeeping ------------------------------------------------------------
    power = dc.total_supply_power()
    regions = {name: dev.op.region.value for name, dev in dc.devices.items()}
    margins = {
        name: dev.op.vds - dev.op.vdsat for name, dev in dc.devices.items()
    }

    return OtaMetrics(
        dc_gain_db=dm.dc_gain_db,
        gbw=gbw,
        phase_margin_deg=phase_margin,
        slew_rate=slew_rate,
        cmrr_db=db(cmrr),
        offset_voltage=offset,
        output_resistance=output_resistance,
        input_noise_rms=input_noise_rms,
        thermal_noise_density=thermal_density,
        flicker_noise_density=flicker_density,
        power=power,
        psrr_db=db(psrr),
        gain_margin_db=dm.gain_margin_db(),
        output_capacitance=out_capacitance,
        device_regions=regions,
        saturation_margins=margins,
    )
