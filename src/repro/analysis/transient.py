"""Transient analysis.

Fixed-step backward-Euler integration over the nonlinear circuit: at each
step the resistive network is solved by Newton (re-using the DC stamps)
with every capacitance replaced by its companion model
``i = C (v - v_prev) / h``.  Device capacitances (gate and junction) are
re-linearised around the previous time point — a charge-conserving enough
treatment for the slewing/settling measurements this library needs.

The headline client is :func:`measure_slew_rate`: the paper reports slew
rate as a Table-1 row, and with this module the number is *measured* on a
unity-gain step response instead of estimated from ``I_tail / C_out``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.analysis.dcop import (
    DcSolution,
    _build_system,
    _device_terminal_state,
    model_for,
    solve_dc,
)
from repro.analysis.engine import COMPILED, resolve_engine
from repro.analysis.mna import NodeIndex, solve_linear
from repro.circuit.elements import VoltageSource
from repro.circuit.netlist import Circuit
from repro.circuit.testbench import OtaTestbench
from repro.errors import AnalysisError, ConvergenceError
from repro.mos.junction import DiffusionGeometry


def step_waveform(
    low: float, high: float, t_step: float, t_rise: float = 1e-9
) -> Callable[[float], float]:
    """A step from ``low`` to ``high`` at ``t_step`` with linear rise."""

    def waveform(t: float) -> float:
        if t <= t_step:
            return low
        if t >= t_step + t_rise:
            return high
        return low + (high - low) * (t - t_step) / t_rise

    return waveform


@dataclass
class TransientResult:
    """Sampled node voltages over time."""

    times: np.ndarray
    voltages: Dict[str, np.ndarray]
    newton_iterations: int = 0

    def voltage(self, net: str) -> np.ndarray:
        if net.lower() in ("0", "gnd", "vss", "ground"):
            return np.zeros_like(self.times)
        return self.voltages[net]

    def slew_rate(
        self, net: str, t_start: float = 0.0, t_stop: Optional[float] = None
    ) -> float:
        """Maximum |dv/dt| of ``net`` within the window, V/s."""
        trace = self.voltage(net)
        mask = self.times >= t_start
        if t_stop is not None:
            mask &= self.times <= t_stop
        times = self.times[mask]
        values = trace[mask]
        if len(times) < 3:
            raise AnalysisError("slew window contains fewer than 3 samples")
        derivative = np.gradient(values, times)
        return float(np.max(np.abs(derivative)))

    def settling_time(
        self,
        net: str,
        target: float,
        tolerance: float,
        t_start: float = 0.0,
    ) -> Optional[float]:
        """First time after ``t_start`` the trace stays within tolerance.

        Returns None when the trace never settles inside the band.
        """
        trace = self.voltage(net)
        inside = np.abs(trace - target) <= tolerance
        inside &= self.times >= t_start
        for i in range(len(self.times)):
            if inside[i] and np.all(inside[i:]):
                return float(self.times[i])
        return None


def _device_capacitance_stamps(
    circuit: Circuit, index: NodeIndex, voltages: np.ndarray
) -> List[Tuple[int, int, float]]:
    """(node_a, node_b, C) entries for every device capacitance,
    linearised at the present iterate."""
    stamps: List[Tuple[int, int, float]] = []
    for mos in circuit.mos_devices:
        assert mos.params is not None
        model = model_for(mos)
        sign = mos.params.sign
        vd, vg, vs, vb = _device_terminal_state(mos, voltages, index)
        swapped = sign * (vd - vs) < 0.0
        if swapped:
            vd, vs = vs, vd
            drain, source = index.node(mos.s), index.node(mos.d)
        else:
            drain, source = index.node(mos.d), index.node(mos.s)
        gate, bulk = index.node(mos.g), index.node(mos.b)
        vgs = sign * (vg - vs) - mos.mismatch_vth
        vds = sign * (vd - vs)
        vsb = sign * (vs - vb)
        geometry = mos.geometry
        if geometry is not None and swapped:
            geometry = DiffusionGeometry(
                ad=geometry.as_, pd=geometry.ps,
                as_=geometry.ad, ps=geometry.pd,
            )
        op = model.operating_point(mos.w, mos.l, vgs, max(vds, 0.0), vsb,
                                   geometry)
        stamps.extend(
            (
                (gate, source, op.cgs),
                (gate, drain, op.cgd),
                (gate, bulk, op.cgb),
                (drain, bulk, op.cdb),
                (source, bulk, op.csb),
            )
        )
    return stamps


def run_transient(
    circuit: Circuit,
    t_stop: float,
    dt: float,
    waveforms: Optional[Mapping[str, Callable[[float], float]]] = None,
    initial: Optional[DcSolution] = None,
    max_newton: int = 60,
    engine: Optional[str] = None,
) -> TransientResult:
    """Integrate the circuit from its DC state to ``t_stop``.

    ``waveforms`` maps voltage-source names to ``v(t)`` callables; other
    sources hold their DC values.  Backward Euler with per-step Newton.
    The compiled engine assembles each Newton system from one shared
    :class:`~repro.analysis.stamps.StampProgram` (companion capacitors
    enter as scatter-add index arrays) instead of re-stamping per element.
    """
    if dt <= 0.0 or t_stop <= dt:
        raise AnalysisError("need 0 < dt < t_stop")
    engine_name = resolve_engine(engine)
    waveforms = dict(waveforms or {})
    for name in waveforms:
        element = circuit.element(name)
        if not isinstance(element, VoltageSource):
            raise AnalysisError(f"waveform target {name!r} is not a Vsource")

    work = circuit.clone(circuit.name + "_tran")
    index = NodeIndex(work)
    if initial is None:
        # DC state at t = 0 waveform values.
        for name, waveform in waveforms.items():
            source = work.element(name)
            assert isinstance(source, VoltageSource)
            source.dc = waveform(0.0)
        initial = solve_dc(work)

    size = index.size
    state = np.zeros(size)
    for net in index.nets:
        state[index.node(net)] = initial.voltage(net)
    for source in index.sources:
        state[index.branch(source.name)] = initial.source_currents.get(
            source.name, 0.0
        )

    steps = int(math.ceil(t_stop / dt))
    times = np.linspace(0.0, steps * dt, steps + 1)
    traces = {net: np.zeros(steps + 1) for net in index.nets}
    for net in index.nets:
        traces[net][0] = state[index.node(net)]

    fixed_caps = [
        (index.node(c.a), index.node(c.b), c.value)
        for c in work.capacitors
        if c.value > 0.0
    ]

    program = None
    if engine_name == COMPILED:
        from repro.analysis.stamps import StampProgram

        program = StampProgram(work, index)

    total_newton = 0
    previous = state.copy()
    for step in range(1, steps + 1):
        t = times[step]
        for name, waveform in waveforms.items():
            source = work.element(name)
            assert isinstance(source, VoltageSource)
            source.dc = waveform(t)

        # Device capacitances linearised at the previous accepted point.
        device_caps = _device_capacitance_stamps(work, index, previous)
        all_caps = fixed_caps + device_caps

        voltages = previous.copy()
        converged = False
        if program is not None:
            program.refresh_sources()
            # Companion models as index arrays; ground maps to the padded
            # trash slot whose voltage is pinned at zero.
            node_a = np.array(
                [a if a >= 0 else size for a, _b, _v in all_caps],
                dtype=np.intp,
            )
            node_b = np.array(
                [b if b >= 0 else size for _a, b, _v in all_caps],
                dtype=np.intp,
            )
            c_over_dt = np.array([v / dt for _a, _b, v in all_caps])
            previous_pad = np.zeros(size + 1)
            previous_pad[:size] = previous
            companion = (node_a, node_b, c_over_dt, previous_pad)

        for iteration in range(1, max_newton + 1):
            if program is not None:
                residual, jacobian = program.residual_and_jacobian(
                    voltages, gmin=1e-12, source_scale=1.0,
                    companion=companion,
                )
            else:
                residual, jacobian = _build_system(
                    work, index, voltages, gmin=1e-12, source_scale=1.0
                )
                # Companion models: i = C (v - v_prev)/dt out of node a.
                for cap_a, cap_b, value in all_caps:
                    conductance = value / dt
                    dv = 0.0
                    if cap_a >= 0:
                        dv += voltages[cap_a] - previous[cap_a]
                    if cap_b >= 0:
                        dv -= voltages[cap_b] - previous[cap_b]
                    current = conductance * dv
                    if cap_a >= 0:
                        residual[cap_a] += current
                        jacobian[cap_a, cap_a] += conductance
                        if cap_b >= 0:
                            jacobian[cap_a, cap_b] -= conductance
                    if cap_b >= 0:
                        residual[cap_b] -= current
                        jacobian[cap_b, cap_b] += conductance
                        if cap_a >= 0:
                            jacobian[cap_b, cap_a] -= conductance

            norm = float(np.max(np.abs(residual)))
            delta = solve_linear(jacobian, -residual)
            step_size = float(np.max(np.abs(delta))) if delta.size else 0.0
            if step_size > 0.5:
                delta *= 0.5 / step_size
            voltages += delta
            total_newton += 1
            if norm < 1e-9 and step_size < 1e-7:
                converged = True
                break
        if not converged:
            raise ConvergenceError(
                f"transient Newton failed at t = {t:.3e} s"
            )

        previous = voltages.copy()
        for net in index.nets:
            traces[net][step] = voltages[index.node(net)]

    traces["0"] = np.zeros(steps + 1)
    return TransientResult(
        times=times, voltages=traces, newton_iterations=total_newton
    )


def measure_slew_rate(
    tb: OtaTestbench,
    step_amplitude: float = 0.8,
    dt: Optional[float] = None,
    duration: Optional[float] = None,
) -> Tuple[float, TransientResult]:
    """Measured slew rate of an OTA in unity feedback, V/s.

    The amplifier is wired as a buffer (output to the inverting input) and
    the non-inverting input steps by ``step_amplitude``; the output's
    maximum |dv/dt| is the slew rate.  Returns the number and the raw
    transient for further inspection (settling time etc.).
    """
    circuit = tb.circuit.clone(tb.circuit.name + "_slew")
    circuit.remove(tb.source_neg)
    circuit.add_vsource("_fb", tb.input_neg_net, tb.output_net, dc=0.0)

    vcm = tb.common_mode_voltage()
    t_step = 20e-9
    if duration is None:
        duration = 400e-9
    if dt is None:
        dt = 1e-9
    waveform = step_waveform(
        vcm - step_amplitude / 2.0, vcm + step_amplitude / 2.0, t_step
    )
    result = run_transient(
        circuit, t_stop=duration, dt=dt,
        waveforms={tb.source_pos: waveform},
    )
    slew = result.slew_rate(tb.output_net, t_start=t_step)
    return slew, result
