"""Analysis engine selection.

Every analysis entry point (:func:`~repro.analysis.dcop.solve_dc`,
:func:`~repro.analysis.ac.ac_sweep`, :class:`~repro.analysis.noise.NoiseAnalysis`,
:func:`~repro.analysis.metrics.measure_ota`) accepts an ``engine`` argument:

* ``"compiled"`` — the vectorized compiled-stamp engine
  (:mod:`repro.analysis.stamps`): one walk over the circuit produces a
  stamp program of flat numpy index/value arrays, Newton iterations update
  the system with scatter-adds and batched model evaluation, and AC sweeps
  solve all frequencies as one stacked tensor;
* ``"legacy"`` — the original per-element, per-frequency reference
  implementation, kept as the golden oracle for equivalence tests and as
  the "before" side of the benchmark harness.

``None`` (the default everywhere) resolves to the process-wide default set
here, so a single :func:`use_engine` context flips a whole flow — this is
how ``python -m repro bench`` measures before/after on identical code paths.

A second, independent knob selects how *ensembles* of parameter vectors
(Monte-Carlo mismatch samples, process corners) are evaluated on top of
the compiled engine:

* ``"stacked"`` — :mod:`repro.analysis.ensemble` solves all K members as
  one batched ``(K, n, n)`` Newton with per-member convergence masking;
* ``"per-sample"`` — the original one-solve-per-member loop, kept as the
  golden reference (equivalence pinned sample-for-sample at rtol 1e-9).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

COMPILED = "compiled"
LEGACY = "legacy"
_ENGINES = (COMPILED, LEGACY)

STACKED = "stacked"
PERSAMPLE = "per-sample"

_default_engine = COMPILED


class EngineSwitch:
    """One process-wide engine knob with scoped override support.

    Mirror of :class:`repro.layout.engine.EngineSwitch` for the analysis
    side, so the ensemble knob composes with (not replaces) the
    compiled/legacy selection above.
    """

    __slots__ = ("label", "options", "_current")

    def __init__(self, label: str, default: str, options: Tuple[str, ...]):
        self.label = label
        self.options = options
        self._current = self._validated(default)

    def _validated(self, name: str) -> str:
        if name not in self.options:
            raise ValueError(
                f"unknown {self.label} engine {name!r}; "
                f"expected one of {self.options}"
            )
        return name

    def default(self) -> str:
        """The engine used when callers pass ``engine=None``."""
        return self._current

    def set_default(self, name: str) -> None:
        self._current = self._validated(name)

    def resolve(self, engine: Optional[str]) -> str:
        """Resolve an ``engine`` argument to a concrete engine name."""
        if engine is None:
            return self._current
        return self._validated(engine)

    @contextmanager
    def use(self, name: str) -> Iterator[str]:
        """Temporarily switch the default (benchmarks, golden tests)."""
        previous = self._current
        self._current = self._validated(name)
        try:
            yield self._current
        finally:
            self._current = previous


#: How K-member parameter ensembles are solved on the compiled engine.
ensemble_engine = EngineSwitch("ensemble", STACKED, (STACKED, PERSAMPLE))

FULL = "full"
CHORD = "chord"

#: How Newton linear systems are solved on the compiled engine:
#: ``"full"`` factors the Jacobian every iteration (the reference
#: behaviour, bit-stable across releases); ``"chord"`` reuses one LU
#: factorization for trailing iterations and refactors on residual
#: stall (:meth:`~repro.analysis.stamps.StampProgram.newton_chord`).
#: Chord iterates converge to the same fixed point but along a
#: different path, so the switch defaults to ``"full"`` and chord is
#: opt-in per run.
newton_engine = EngineSwitch("newton", FULL, (FULL, CHORD))


def default_engine() -> str:
    """The process-wide engine used when callers pass ``engine=None``."""
    return _default_engine


def set_default_engine(name: str) -> None:
    """Set the process-wide default analysis engine."""
    global _default_engine
    _default_engine = _validated(name)


def resolve_engine(engine: Optional[str]) -> str:
    """Resolve an ``engine`` argument to a concrete engine name."""
    if engine is None:
        return _default_engine
    return _validated(engine)


@contextmanager
def use_engine(name: str) -> Iterator[str]:
    """Temporarily switch the default engine (benchmarks, golden tests)."""
    global _default_engine
    previous = _default_engine
    _default_engine = _validated(name)
    try:
        yield _default_engine
    finally:
        _default_engine = previous


def _validated(name: str) -> str:
    if name not in _ENGINES:
        raise ValueError(
            f"unknown analysis engine {name!r}; expected one of {_ENGINES}"
        )
    return name
