"""Noise analysis.

Each MOS device contributes channel thermal noise and flicker noise as a
current source between its effective drain and source; each resistor
contributes 4kT/R.  For every frequency the linearised MNA matrix is
factorised once and solved against one right-hand side per noise source, so
the cost stays linear in device count.

Output noise is the PSD at the output node; input-referred noise divides by
the squared magnitude of the signal transfer (differential drive).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.analysis.ac import build_ac_matrices, build_ac_rhs
from repro.analysis.dcop import DcSolution, model_for
from repro.analysis.engine import COMPILED, resolve_engine
from repro.circuit.elements import Mos, Resistor
from repro.circuit.netlist import Circuit
from repro.errors import AnalysisError
from repro.units import BOLTZMANN


@dataclass
class NoiseResult:
    """Sampled noise spectra plus integration helpers."""

    frequencies: np.ndarray
    output_psd: np.ndarray
    """Output noise voltage PSD, V^2/Hz."""
    input_psd: np.ndarray
    """Input-referred noise voltage PSD, V^2/Hz."""
    contributions: Dict[str, np.ndarray] = field(default_factory=dict)
    """Per-element output PSD, V^2/Hz."""

    def input_density(self, frequency: float) -> float:
        """Input-referred voltage noise density, V/sqrt(Hz)."""
        psd = float(
            np.interp(
                np.log10(frequency),
                np.log10(self.frequencies),
                self.input_psd,
            )
        )
        return float(np.sqrt(max(psd, 0.0)))

    def integrated_input_noise(
        self, f_low: Optional[float] = None, f_high: Optional[float] = None
    ) -> float:
        """RMS input-referred noise voltage over [f_low, f_high], V."""
        mask = np.ones(len(self.frequencies), dtype=bool)
        if f_low is not None:
            mask &= self.frequencies >= f_low
        if f_high is not None:
            mask &= self.frequencies <= f_high
        if mask.sum() < 2:
            raise AnalysisError("integration band contains fewer than 2 samples")
        freq = self.frequencies[mask]
        psd = self.input_psd[mask]
        return float(np.sqrt(np.trapezoid(psd, freq)))

    def dominant_contributors(self, count: int = 5) -> List[Tuple[str, float]]:
        """Elements ranked by integrated output noise power."""
        totals = [
            (name, float(np.trapezoid(psd, self.frequencies)))
            for name, psd in self.contributions.items()
        ]
        totals.sort(key=lambda item: item[1], reverse=True)
        return totals[:count]


class NoiseAnalysis:
    """Noise of a linearised circuit as seen at one output net."""

    def __init__(
        self,
        circuit: Circuit,
        dc: DcSolution,
        output_net: str,
        input_overrides: Optional[Dict[str, complex]] = None,
        temperature: float = 300.15,
        engine: Optional[str] = None,
        system=None,
    ):
        """``input_overrides`` defines the signal drive (source name to AC
        amplitude) used to refer output noise to the input; when omitted the
        stored ``ac`` fields are used.

        ``system`` optionally passes an already-compiled
        :class:`~repro.analysis.stamps.LinearSystem` for the same
        ``(circuit, dc)`` pair so callers running several small-signal
        analyses (e.g. :func:`~repro.analysis.metrics.measure_ota`) share
        one linearisation.
        """
        self.circuit = circuit
        self.dc = dc
        self.output_net = output_net
        self.temperature = temperature
        self.engine = resolve_engine(engine)
        if self.engine == COMPILED:
            if system is None:
                from repro.analysis.stamps import LinearSystem

                system = LinearSystem(circuit, dc)
            self._system = system
            self.index = system.index
            self._signal_rhs = system.rhs(input_overrides)
        else:
            self._system = None
            self._conductance, self._capacitance, self.index = build_ac_matrices(
                circuit, dc
            )
            self._signal_rhs = build_ac_rhs(circuit, self.index, input_overrides)
        if not np.any(self._signal_rhs):
            raise AnalysisError(
                "noise analysis needs a non-zero signal drive to refer "
                "noise to the input"
            )
        self._sources = self._collect_sources()
        if self.engine == COMPILED:
            injections = self._system.injection_columns(
                [(a, b) for _name, a, b, _psd in self._sources]
            )
            self._rhs_columns = np.concatenate(
                [injections, self._signal_rhs[:, None]], axis=1
            )
            self._psd_const, self._psd_coef = self._psd_vectors()

    def _collect_sources(self) -> List[Tuple[str, int, int, object]]:
        """(name, node_a, node_b, psd_fn) per noise source.

        The injected noise current flows from node_a to node_b.
        """
        sources: List[Tuple[str, int, int, object]] = []
        for element in self.circuit:
            if isinstance(element, Mos):
                solution = self.dc.devices[element.name]
                model = model_for(element)
                op = solution.op
                thermal = model.thermal_noise_current_psd(op)

                def psd(frequency: float, _model=model, _op=op, _thermal=thermal):
                    return _thermal + _model.flicker_noise_current_psd(
                        _op, frequency
                    )

                sources.append(
                    (
                        element.name,
                        self.index.node(solution.eff_drain),
                        self.index.node(solution.eff_source),
                        psd,
                    )
                )
            elif isinstance(element, Resistor):
                psd_value = 4.0 * BOLTZMANN * self.temperature / element.value

                def psd_r(frequency: float, _value=psd_value):
                    return _value

                sources.append(
                    (
                        element.name,
                        self.index.node(element.a),
                        self.index.node(element.b),
                        psd_r,
                    )
                )
        return sources

    def _psd_vectors(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-source PSD decomposition ``psd(f) = const + coef / f``.

        Every noise source in this model family is white plus 1/f: MOS
        thermal + SPICE2 flicker (``KF Id^AF / (Cox Leff^2 f)``) and
        resistor 4kT/R — which is what lets the compiled path evaluate all
        sources at all frequencies with one broadcast.
        """
        const: List[float] = []
        coef: List[float] = []
        for element in self.circuit:
            if isinstance(element, Mos):
                solution = self.dc.devices[element.name]
                model = model_for(element)
                const.append(model.thermal_noise_current_psd(solution.op))
                coef.append(
                    model.flicker_noise_current_psd(solution.op, 1.0)
                )
            elif isinstance(element, Resistor):
                const.append(
                    4.0 * BOLTZMANN * self.temperature / element.value
                )
                coef.append(0.0)
        return np.asarray(const), np.asarray(coef)

    @property
    def rhs_columns(self) -> np.ndarray:
        """Noise-injection columns plus the signal drive, ``(size, n+1)``.

        Compiled engine only.  Callers already running a batched solve on
        the shared system (:func:`~repro.analysis.metrics.measure_ota`) can
        append these columns and hand the output-row transfers back to
        :meth:`result_from_output_transfers`, sharing one factorisation.
        """
        if self.engine != COMPILED:
            raise AnalysisError("rhs_columns requires the compiled engine")
        return self._rhs_columns

    def result_from_output_transfers(
        self, freq_array: np.ndarray, transfers: np.ndarray
    ) -> NoiseResult:
        """Noise result from precomputed output-node transfers.

        ``transfers`` is ``(F, n_sources + 1)`` complex — the output-node
        row of a solve against :attr:`rhs_columns` (signal drive last).
        """
        n_sources = len(self._sources)
        signal_gain = np.abs(transfers[:, n_sources])
        power = np.abs(transfers[:, :n_sources]) ** 2
        psd = self._psd_const[None, :] + self._psd_coef[None, :] / freq_array[:, None]
        contribution_matrix = power * psd
        output_psd = contribution_matrix.sum(axis=1)
        contributions = {
            name: contribution_matrix[:, column]
            for column, (name, *_rest) in enumerate(self._sources)
        }
        with np.errstate(divide="ignore", invalid="ignore"):
            input_psd = np.where(
                signal_gain > 0.0, output_psd / signal_gain**2, np.inf
            )
        return NoiseResult(
            frequencies=freq_array,
            output_psd=output_psd,
            input_psd=input_psd,
            contributions=contributions,
        )

    def _run_compiled(
        self, freq_array: np.ndarray, out_node: int
    ) -> NoiseResult:
        """Batched noise run: one stacked solve over (frequency, source)."""
        solutions = self._system.solve_batch(freq_array, self._rhs_columns)
        return self.result_from_output_transfers(
            freq_array, solutions[:, out_node, :]
        )

    def run(self, frequencies: Iterable[float]) -> NoiseResult:
        """Compute output and input-referred noise over ``frequencies``."""
        freq_array = np.asarray(list(frequencies), dtype=float)
        if np.any(freq_array <= 0.0):
            raise AnalysisError("noise frequencies must be positive")
        out_node = self.index.node(self.output_net)
        if out_node < 0:
            raise AnalysisError("noise output cannot be the ground net")
        if self.engine == COMPILED:
            return self._run_compiled(freq_array, out_node)

        size = self.index.size
        n_sources = len(self._sources)
        output_psd = np.zeros(freq_array.size)
        contributions = {name: np.zeros(freq_array.size) for name, *_ in self._sources}
        signal_gain = np.zeros(freq_array.size)

        # One RHS column per noise source (unit current injection) plus the
        # signal drive in the last column.
        rhs = np.zeros((size, n_sources + 1), dtype=complex)
        for column, (_name, node_a, node_b, _psd) in enumerate(self._sources):
            if node_a >= 0:
                rhs[node_a, column] -= 1.0
            if node_b >= 0:
                rhs[node_b, column] += 1.0
        rhs[:, n_sources] = self._signal_rhs

        for i, frequency in enumerate(freq_array):
            omega = 2.0 * np.pi * frequency
            matrix = self._conductance + 1j * omega * self._capacitance
            try:
                solutions = np.linalg.solve(matrix, rhs)
            except np.linalg.LinAlgError as error:
                raise AnalysisError(f"singular matrix in noise run: {error}")
            transfers = solutions[out_node, :]
            signal_gain[i] = abs(transfers[n_sources])
            for column, (name, _a, _b, psd) in enumerate(self._sources):
                contribution = (abs(transfers[column]) ** 2) * psd(frequency)
                contributions[name][i] = contribution
                output_psd[i] += contribution

        with np.errstate(divide="ignore", invalid="ignore"):
            input_psd = np.where(
                signal_gain > 0.0, output_psd / signal_gain**2, np.inf
            )
        return NoiseResult(
            frequencies=freq_array,
            output_psd=output_psd,
            input_psd=input_psd,
            contributions=contributions,
        )
