"""Monte-Carlo mismatch analysis.

The paper's sizing tool "permits to undergo statistical analysis to check
the reliability of the synthesized circuit".  We implement the standard
Pelgrom mismatch model: each device draws an independent threshold shift
with ``sigma_VT = A_VT / sqrt(W L)`` and a relative current-factor error
with ``sigma_beta = A_beta / sqrt(W L)``, then the requested measurement is
re-run per sample.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.analysis.metrics import OtaTestbench, feedback_dc_solution
from repro.circuit.netlist import Circuit


@dataclass
class MonteCarloResult:
    """Sampled statistic collection."""

    samples: Dict[str, List[float]] = field(default_factory=dict)

    def mean(self, key: str) -> float:
        return float(np.mean(self.samples[key]))

    def std(self, key: str) -> float:
        return float(np.std(self.samples[key], ddof=1))

    def worst(self, key: str) -> float:
        """Sample farthest from the mean."""
        values = np.asarray(self.samples[key])
        return float(values[np.argmax(np.abs(values - values.mean()))])

    def summary(self) -> str:
        lines = []
        for key in sorted(self.samples):
            lines.append(
                f"{key}: mean={self.mean(key):.4g} sigma={self.std(key):.4g}"
            )
        return "\n".join(lines)


def apply_mismatch(circuit: Circuit, rng: np.random.Generator) -> Circuit:
    """Clone ``circuit`` with Pelgrom-sampled per-device mismatch."""
    clone = circuit.clone(circuit.name + "_mc")
    for mos in clone.mos_devices:
        assert mos.params is not None
        area = mos.w * mos.l
        sigma_vt = mos.params.avt / math.sqrt(area)
        sigma_beta = mos.params.abeta / math.sqrt(area)
        mos.mismatch_vth = float(rng.normal(0.0, sigma_vt))
        mos.mismatch_beta = float(rng.normal(0.0, sigma_beta))
    return clone


def run_monte_carlo(
    tb: OtaTestbench,
    runs: int = 50,
    seed: int = 1234,
    measure: Optional[Callable[[OtaTestbench], Dict[str, float]]] = None,
) -> MonteCarloResult:
    """Sample mismatch and collect statistics.

    By default only the input-referred offset is measured per sample (one
    DC solve); pass ``measure`` for a custom (more expensive) extraction
    returning a dict of named statistics.
    """
    rng = np.random.default_rng(seed)
    result = MonteCarloResult()

    for _ in range(runs):
        perturbed = apply_mismatch(tb.circuit, rng)
        sample_tb = OtaTestbench(
            circuit=perturbed,
            source_pos=tb.source_pos,
            source_neg=tb.source_neg,
            input_neg_net=tb.input_neg_net,
            output_net=tb.output_net,
            supply_sources=tb.supply_sources,
            slew_devices=tb.slew_devices,
        )
        if measure is None:
            _dc, offset = feedback_dc_solution(sample_tb)
            stats = {"offset_voltage": offset}
        else:
            stats = measure(sample_tb)
        for key, value in stats.items():
            result.samples.setdefault(key, []).append(float(value))

    return result
